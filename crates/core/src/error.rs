//! Error type of the generative layer.

use gdlog_data::DataError;
use gdlog_engine::depgraph::NotStratified;
use gdlog_engine::stable::StableError;
use gdlog_prob::DistError;
use std::fmt;

/// Errors raised by `gdlog-core`.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A rule violates a syntactic restriction (safety, arity, reserved
    /// names).
    Validation(String),
    /// A distribution was used incorrectly.
    Dist(DistError),
    /// A relational-layer error.
    Data(DataError),
    /// The perfect grounder requires stratified negation.
    NotStratified(NotStratified),
    /// The stable-model engine hit a guard rail.
    Stable(StableError),
    /// The chase exceeded its budget in a way that prevents producing a
    /// meaningful result (e.g. zero explored outcomes requested).
    Budget(String),
    /// A [`crate::api::QueryRequest`] is malformed (e.g. Monte-Carlo
    /// estimation without any query atoms).
    Request(String),
    /// A cooperative [`gdlog_engine::CancelToken`] fired mid-solve in a
    /// phase that cannot degrade to an exact partial result (stable-model
    /// search, factor analysis, Monte-Carlo estimation, space
    /// finalization). The payload names the interrupted phase.
    Interrupted(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Validation(msg) => write!(f, "invalid program: {msg}"),
            CoreError::Dist(e) => write!(f, "distribution error: {e}"),
            CoreError::Data(e) => write!(f, "data error: {e}"),
            CoreError::NotStratified(e) => write!(f, "{e}"),
            CoreError::Stable(e) => write!(f, "stable model search: {e}"),
            CoreError::Budget(msg) => write!(f, "chase budget: {msg}"),
            CoreError::Request(msg) => write!(f, "invalid request: {msg}"),
            CoreError::Interrupted(phase) => write!(f, "query interrupted during {phase}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<DistError> for CoreError {
    fn from(e: DistError) -> Self {
        CoreError::Dist(e)
    }
}

impl From<DataError> for CoreError {
    fn from(e: DataError) -> Self {
        CoreError::Data(e)
    }
}

impl From<NotStratified> for CoreError {
    fn from(e: NotStratified) -> Self {
        CoreError::NotStratified(e)
    }
}

impl From<StableError> for CoreError {
    fn from(e: StableError) -> Self {
        match e {
            StableError::Interrupted => CoreError::Interrupted("stable-model search".into()),
            other => CoreError::Stable(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: CoreError = DistError::UnknownDistribution("Gauss".into()).into();
        assert!(e.to_string().contains("Gauss"));
        let e: CoreError = DataError::NonFiniteReal(f64::NAN).into();
        assert!(e.to_string().contains("non-finite"));
        let e = CoreError::Validation("unsafe variable x".into());
        assert!(e.to_string().contains("unsafe variable"));
        let e = CoreError::Budget("no outcomes".into());
        assert!(e.to_string().contains("budget"));
        let e: CoreError = StableError::TooManyModels { limit: 1 }.into();
        assert!(e.to_string().contains("stable"));
    }
}

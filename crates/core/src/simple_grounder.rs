//! The simple grounder `GSimple_Π` (Definition 3.4).
//!
//! `GSimple_Π(Σ) = Simple^∞_{Σ′}(∅) \ Σ` with `Σ′ = Σ∄_Π ∪ Σ`, where the
//! `Simple` operator extends a set of ground rules with every homomorphic
//! image `h(σ)` of a rule `σ` whose *positive* body atoms are matched by head
//! atoms derived so far. Negative literals are carried along but **not**
//! inspected — that is exactly what makes the simple grounder correct for
//! arbitrary programs (Proposition 3.5) at the price of producing superfluous
//! rules for stratified ones (Section 5).

use crate::grounding::{AtrSet, GroundRuleSet, Grounder};
use crate::translate::{SigmaPi, TgdRule};
use gdlog_data::substitution::match_atoms;
use gdlog_data::{Database, GroundAtom};
use gdlog_engine::GroundRule;
use std::collections::HashSet;
use std::sync::Arc;

/// The simple grounder.
#[derive(Clone)]
pub struct SimpleGrounder {
    sigma: Arc<SigmaPi>,
}

impl SimpleGrounder {
    /// Build a simple grounder for a translated program.
    pub fn new(sigma: Arc<SigmaPi>) -> Self {
        SimpleGrounder { sigma }
    }
}

impl Grounder for SimpleGrounder {
    fn sigma(&self) -> &SigmaPi {
        &self.sigma
    }

    fn name(&self) -> &'static str {
        "simple"
    }

    fn ground(&self, atr: &AtrSet) -> GroundRuleSet {
        let rules: Vec<&TgdRule> = self.sigma.rules.iter().collect();
        saturate(&rules, atr, GroundRuleSet::new(), None)
    }
}

/// The shared saturation loop used by both grounders.
///
/// Starting from `initial` (already-derived ground rules), repeatedly add
/// every ground instance `h(σ)` of a rule in `rules` whose positive body is
/// contained in the current head set; when `neg_reference` is `Some(db)` a
/// rule instance is only added if none of its (ground) negative body atoms
/// occurs in `db` (the `Perfect` operator), otherwise negative literals are
/// ignored (the `Simple` operator). Ground AtR rules of `atr` contribute
/// their `Result` head as soon as their `Active` body has been derived.
pub(crate) fn saturate(
    rules: &[&TgdRule],
    atr: &AtrSet,
    initial: GroundRuleSet,
    neg_reference: Option<&Database>,
) -> GroundRuleSet {
    let mut derived = initial;
    let mut heads = derived.heads();
    let mut included_atr: HashSet<GroundAtom> = HashSet::new();

    // Seed: AtR rules whose Active atom is already derivable.
    loop {
        let mut changed = false;

        // Activate AtR rules whose body is available.
        for atr_rule in atr.iter() {
            if !included_atr.contains(&atr_rule.active) && heads.contains(&atr_rule.active) {
                included_atr.insert(atr_rule.active.clone());
                if heads.insert(atr_rule.result.clone()) {
                    changed = true;
                }
            }
        }

        // One pass over the non-ground rules.
        let mut new_rules: Vec<GroundRule> = Vec::new();
        for rule in rules {
            let homs = match_atoms(&rule.pos, |pattern| heads.candidates(pattern));
            for h in homs {
                let head = rule
                    .head
                    .apply_ground(&h)
                    .expect("safety guarantees the head grounds");
                let pos: Vec<GroundAtom> = rule
                    .pos
                    .iter()
                    .map(|a| a.apply_ground(&h).expect("matched atoms are ground"))
                    .collect();
                let neg: Vec<GroundAtom> = rule
                    .neg
                    .iter()
                    .map(|a| {
                        a.apply_ground(&h)
                            .expect("safety grounds negative literals")
                    })
                    .collect();
                if let Some(reference) = neg_reference {
                    if neg.iter().any(|a| reference.contains(a)) {
                        continue;
                    }
                }
                new_rules.push(GroundRule::new(head, pos, neg));
            }
        }
        for rule in new_rules {
            let head = rule.head.clone();
            if derived.push(rule) {
                heads.insert(head);
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }
    derived
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grounding::AtrRule;
    use crate::program::{coin_program, network_resilience_program};
    use crate::translate::SigmaPi;
    use gdlog_data::{Const, Predicate};

    fn network_db() -> Database {
        let mut db = Database::new();
        for i in 1..=3i64 {
            db.insert_fact("Router", [Const::Int(i)]);
            for j in 1..=3i64 {
                if i != j {
                    db.insert_fact("Connected", [Const::Int(i), Const::Int(j)]);
                }
            }
        }
        db.insert_fact("Infected", [Const::Int(1), Const::Int(1)]);
        db
    }

    fn network_grounder() -> SimpleGrounder {
        let sigma = SigmaPi::translate(&network_resilience_program(0.1), &network_db()).unwrap();
        SimpleGrounder::new(Arc::new(sigma))
    }

    #[test]
    fn example_3_6_empty_choice_set() {
        let grounder = network_grounder();
        let rules = grounder.ground(&AtrSet::new());
        let sigma = grounder.sigma();
        let active_pred = sigma.atr_schemas[0].active;

        // GSimple(∅) contains the two Active rules for router 1's neighbours
        // (Example 3.6) and no Result-consuming Infected rules yet.
        let active_heads: Vec<_> = rules
            .iter()
            .filter(|r| r.head.predicate == active_pred)
            .collect();
        assert_eq!(active_heads.len(), 2);

        let infected_rules: Vec<_> = rules
            .iter()
            .filter(|r| r.head.predicate == Predicate::new("Infected", 2) && !r.pos.is_empty())
            .collect();
        assert!(infected_rules.is_empty());

        // The Uninfected rules for all three routers are present (negation is
        // not inspected by the simple grounder).
        let uninfected: Vec<_> = rules
            .iter()
            .filter(|r| r.head.predicate == Predicate::new("Uninfected", 1))
            .collect();
        assert_eq!(uninfected.len(), 3);

        // ∅ is not terminal: the two Active atoms are triggers.
        assert!(!grounder.is_terminal(&AtrSet::new()));
        assert_eq!(grounder.triggers(&AtrSet::new(), &rules).len(), 2);
    }

    #[test]
    fn example_3_6_full_choice_set_is_terminal() {
        let grounder = network_grounder();
        let sigma = grounder.sigma();
        let schema = &sigma.atr_schemas[0];
        let p = Const::real(0.1).unwrap();

        // Both neighbours stay uninfected (outcome 0) — the Σ of Example 3.6.
        let mut atr = AtrSet::new();
        for i in [2i64, 3] {
            let active = GroundAtom {
                predicate: schema.active,
                args: vec![p, Const::Int(1), Const::Int(i)],
            };
            atr.insert(AtrRule::new(sigma, active, Const::Int(0)).unwrap())
                .unwrap();
        }
        let rules = grounder.ground(&atr);
        assert!(grounder.is_compatible(&atr, &rules));
        assert!(grounder.is_terminal(&atr));
        assert!(grounder.triggers(&atr, &rules).is_empty());

        // The grounding now contains the Result-consuming rules deriving
        // Infected(2, 0) and Infected(3, 0).
        let infected_rules: Vec<_> = rules
            .iter()
            .filter(|r| r.head.predicate == Predicate::new("Infected", 2) && !r.pos.is_empty())
            .collect();
        assert_eq!(infected_rules.len(), 2);

        // Pr(Σ) = 0.9² = 0.81 (Example 3.10).
        assert_eq!(
            atr.probability(sigma).unwrap(),
            gdlog_prob::Prob::ratio(81, 100)
        );
    }

    #[test]
    fn infection_cascade_extends_the_grounding() {
        // If router 2 becomes infected, new Active atoms for its neighbours
        // appear (monotonicity of the grounder).
        let grounder = network_grounder();
        let sigma = grounder.sigma();
        let schema = &sigma.atr_schemas[0];
        let p = Const::real(0.1).unwrap();

        let active_12 = GroundAtom {
            predicate: schema.active,
            args: vec![p, Const::Int(1), Const::Int(2)],
        };
        let atr = AtrSet::new()
            .extended(AtrRule::new(sigma, active_12, Const::Int(1)).unwrap())
            .unwrap();
        let rules = grounder.ground(&atr);
        // Router 2 is now infected, so Active atoms for (2,1) and (2,3) are
        // derived; (2,1) and (2,3) are new triggers along with (1,3).
        let triggers = grounder.triggers(&atr, &rules);
        assert_eq!(triggers.len(), 3);
        assert!(!grounder.is_terminal(&atr));
    }

    #[test]
    fn grounder_is_monotone() {
        let grounder = network_grounder();
        let sigma = grounder.sigma();
        let schema = &sigma.atr_schemas[0];
        let p = Const::real(0.1).unwrap();
        let active_12 = GroundAtom {
            predicate: schema.active,
            args: vec![p, Const::Int(1), Const::Int(2)],
        };

        let small = AtrSet::new();
        let large = AtrSet::new()
            .extended(AtrRule::new(sigma, active_12, Const::Int(1)).unwrap())
            .unwrap();
        let g_small = grounder.ground(&small);
        let g_large = grounder.ground(&large);
        for rule in g_small.iter() {
            assert!(g_large.contains(rule), "monotonicity violated for {rule}");
        }
        assert!(g_large.len() >= g_small.len());
    }

    #[test]
    fn coin_program_grounding() {
        let sigma = SigmaPi::translate(&coin_program(), &Database::new()).unwrap();
        let grounder = SimpleGrounder::new(Arc::new(sigma));
        let rules = grounder.ground(&AtrSet::new());
        // The bodyless Active rule is always present; the single trigger is
        // the coin flip itself.
        assert_eq!(grounder.triggers(&AtrSet::new(), &rules).len(), 1);

        let sigma = grounder.sigma();
        let schema = &sigma.atr_schemas[0];
        let active = GroundAtom {
            predicate: schema.active,
            args: vec![Const::real(0.5).unwrap()],
        };
        let tails = AtrSet::new()
            .extended(AtrRule::new(sigma, active.clone(), Const::Int(1)).unwrap())
            .unwrap();
        let rules = grounder.ground(&tails);
        assert!(grounder.is_terminal(&tails));
        // Coin(1) is derivable, so the Aux1/Aux2 rules are instantiated.
        assert!(rules
            .iter()
            .any(|r| r.head.predicate == Predicate::new("Aux1", 0)));
        assert!(rules
            .iter()
            .any(|r| r.head.predicate == Predicate::new("Aux2", 0)));

        // Full program includes the AtR rule itself.
        let full = grounder.full_program(&tails);
        assert_eq!(full.len(), rules.len() + 1);
    }
}

//! The simple grounder `GSimple_Π` (Definition 3.4).
//!
//! `GSimple_Π(Σ) = Simple^∞_{Σ′}(∅) \ Σ` with `Σ′ = Σ∄_Π ∪ Σ`, where the
//! `Simple` operator extends a set of ground rules with every homomorphic
//! image `h(σ)` of a rule `σ` whose *positive* body atoms are matched by head
//! atoms derived so far. Negative literals are carried along but **not**
//! inspected — that is exactly what makes the simple grounder correct for
//! arbitrary programs (Proposition 3.5) at the price of producing superfluous
//! rules for stratified ones (Section 5).

use crate::grounding::{AtrSet, GroundRuleSet, Grounder};
use crate::translate::{SigmaPi, TgdRule};
use gdlog_data::{match_atoms_delta, match_atoms_indexed, Database, GroundAtom, Substitution};
use gdlog_engine::{CancelToken, GroundRule};
use std::collections::HashSet;
use std::sync::Arc;

/// The simple grounder.
#[derive(Clone)]
pub struct SimpleGrounder {
    sigma: Arc<SigmaPi>,
    /// Cooperative cancellation, polled once per saturation round. A
    /// cancelled saturation returns its partial rule set; the chase re-checks
    /// the token after grounding, so the partial set is never trusted.
    cancel: CancelToken,
}

impl SimpleGrounder {
    /// Build a simple grounder for a translated program.
    pub fn new(sigma: Arc<SigmaPi>) -> Self {
        SimpleGrounder {
            sigma,
            cancel: CancelToken::never(),
        }
    }

    /// Ground with the retained naive (non-semi-naive) saturation — the
    /// reference oracle kept for property tests and benchmarks; see
    /// [`crate::naive`].
    pub fn ground_naive(&self, atr: &AtrSet) -> GroundRuleSet {
        let rules: Vec<&TgdRule> = self.sigma.rules.iter().collect();
        crate::naive::saturate_naive(&rules, atr, GroundRuleSet::new(), None)
    }

    /// Incremental grounding for chase descent: `parent_rules` must be a
    /// snapshot of `self.ground(parent_atr)` with `parent_atr ⊆ atr`. By
    /// monotonicity of the simple grounder the result equals
    /// `self.ground(atr)`, but saturation starts from the parent's rules
    /// (shared structurally, not copied) with only the `Result` atoms the
    /// parent had *not* already activated as the initial delta, so the work
    /// is proportional to what the new choices unlock.
    pub fn ground_extending(
        &self,
        atr: &AtrSet,
        parent_atr: &AtrSet,
        parent_rules: GroundRuleSet,
    ) -> GroundRuleSet {
        // The parent's saturation activated exactly the parent choices whose
        // Active atom it derived; their Result atoms seeded the parent's
        // matching already and must not re-seed the child's delta.
        let parent_heads = parent_rules.heads();
        let old_results = Database::from_atoms(
            parent_atr
                .iter()
                .filter(|r| parent_heads.contains(&r.active))
                .map(|r| r.result.clone()),
        );
        let rules: Vec<&TgdRule> = self.sigma.rules.iter().collect();
        saturate_impl(
            &rules,
            atr,
            parent_rules,
            None,
            Some(&old_results),
            Some(&self.cancel),
        )
    }
}

impl Grounder for SimpleGrounder {
    fn sigma(&self) -> &SigmaPi {
        &self.sigma
    }

    fn name(&self) -> &'static str {
        "simple"
    }

    fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    fn ground(&self, atr: &AtrSet) -> GroundRuleSet {
        let rules: Vec<&TgdRule> = self.sigma.rules.iter().collect();
        saturate_impl(
            &rules,
            atr,
            GroundRuleSet::new(),
            None,
            None,
            Some(&self.cancel),
        )
    }

    fn ground_from(
        &self,
        atr: &AtrSet,
        parent_atr: &AtrSet,
        parent: &mut crate::grounding::Grounding,
    ) -> crate::grounding::Grounding {
        let snapshot = parent.snapshot();
        crate::grounding::Grounding::new(self.ground_extending(
            atr,
            parent_atr,
            snapshot.into_rules(),
        ))
    }
}

/// Instantiate `rule` under the homomorphism `h` and add it to `new_rules`
/// unless a negative body atom is contradicted by `neg_reference`.
fn instantiate(
    rule: &TgdRule,
    h: &Substitution,
    neg_reference: Option<&Database>,
    new_rules: &mut Vec<GroundRule>,
) {
    let head = rule
        .head
        .apply_ground(h)
        .expect("safety guarantees the head grounds");
    let pos: Vec<GroundAtom> = rule
        .pos
        .iter()
        .map(|a| a.apply_ground(h).expect("matched atoms are ground"))
        .collect();
    let neg: Vec<GroundAtom> = rule
        .neg
        .iter()
        .map(|a| a.apply_ground(h).expect("safety grounds negative literals"))
        .collect();
    if let Some(reference) = neg_reference {
        if neg.iter().any(|a| reference.contains(a)) {
            return;
        }
    }
    new_rules.push(GroundRule::new(head, pos, neg));
}

/// The shared saturation loop used by both grounders, evaluated
/// **semi-naively**: after an initial full round, a rule is only re-matched
/// through body positions that can consume an atom derived in the previous
/// round (the *delta*), with the remaining positions answered by the indexed
/// head set. Instantiations whose body atoms are all old are never
/// re-derived, so the total matching work is proportional to the newly
/// derived facts rather than `rounds × rules × |heads|^arity`.
///
/// Starting from `initial` (already-derived ground rules), repeatedly add
/// every ground instance `h(σ)` of a rule in `rules` whose positive body is
/// contained in the current head set; when `neg_reference` is `Some(db)` a
/// rule instance is only added if none of its (ground) negative body atoms
/// occurs in `db` (the `Perfect` operator), otherwise negative literals are
/// ignored (the `Simple` operator). Ground AtR rules of `atr` contribute
/// their `Result` head as soon as their `Active` body has been derived; the
/// activation check is itself delta-driven.
///
/// The retained naive formulation lives in [`crate::naive`]; property tests
/// assert both produce identical [`GroundRuleSet`]s.
///
/// The loop polls the [`CancelToken`] once per round; a cancelled saturation
/// breaks out early and returns whatever it derived so far, so callers (the
/// chase) must re-check the token before trusting the result. Pass
/// [`CancelToken::never`] for an uninterruptible saturation.
pub(crate) fn saturate_cancellable(
    rules: &[&TgdRule],
    atr: &AtrSet,
    initial: GroundRuleSet,
    neg_reference: Option<&Database>,
    cancel: &CancelToken,
) -> GroundRuleSet {
    saturate_impl(rules, atr, initial, neg_reference, None, Some(cancel))
}

/// [`saturate_cancellable`] for an `initial` set that is already saturated
/// under a sub-configuration of `atr` whose activated `Result` atoms are
/// `old_results`: the full round 0 is skipped and only the newly activated
/// `Result` atoms form the first delta. Only sound when every rule
/// instantiation over `initial`'s heads plus `old_results` is already
/// present in `initial`.
pub(crate) fn saturate_extending_cancellable(
    rules: &[&TgdRule],
    atr: &AtrSet,
    initial: GroundRuleSet,
    neg_reference: Option<&Database>,
    old_results: &Database,
    cancel: &CancelToken,
) -> GroundRuleSet {
    saturate_impl(
        rules,
        atr,
        initial,
        neg_reference,
        Some(old_results),
        Some(cancel),
    )
}

fn saturate_impl(
    rules: &[&TgdRule],
    atr: &AtrSet,
    initial: GroundRuleSet,
    neg_reference: Option<&Database>,
    saturated_with_results: Option<&Database>,
    cancel: Option<&CancelToken>,
) -> GroundRuleSet {
    let mut derived = initial;
    let mut heads: Database = derived.heads().clone();
    let mut included_atr: HashSet<GroundAtom> = HashSet::new();

    // Seed: activate AtR rules whose Active atom is already derivable from
    // `initial` (relevant for the perfect grounder's later strata). Round 0
    // then matches every rule fully against the seeded head set, and round
    // `k > 0` only matches through the delta of round `k - 1`.
    //
    // In extending mode the full round 0 is skipped: the initial rules are
    // known saturated (including the parent's activated results), so
    // everything derivable from their heads alone is already present and the
    // genuinely new seed results are the whole round-0 delta.
    let mut delta: Option<Database> = saturated_with_results.map(|_| Database::new());
    for atr_rule in atr.iter() {
        if heads.contains(&atr_rule.active)
            && included_atr.insert(atr_rule.active.clone())
            && heads.insert(atr_rule.result.clone())
        {
            if let (Some(seed), Some(old)) = (&mut delta, saturated_with_results) {
                // Results the parent had already activated seeded the
                // parent's matching and stay out of the delta.
                if !old.contains(&atr_rule.result) {
                    seed.insert(atr_rule.result.clone());
                }
            }
        }
    }
    loop {
        // A saturation round is the grounding checkpoint: break out with the
        // partial rule set; the chase re-checks the token and cuts the node.
        if cancel.is_some_and(CancelToken::is_cancelled) {
            break;
        }
        let mut new_rules: Vec<GroundRule> = Vec::new();
        match &delta {
            None => {
                for rule in rules {
                    for h in match_atoms_indexed(&rule.pos, &heads) {
                        instantiate(rule, &h, neg_reference, &mut new_rules);
                    }
                }
            }
            Some(delta) => {
                for rule in rules {
                    // A new instantiation must consume at least one delta
                    // atom in some positive body position; enumerate each
                    // position as the delta-constrained one.
                    for delta_idx in 0..rule.pos.len() {
                        for h in match_atoms_delta(&rule.pos, delta_idx, &heads, delta) {
                            instantiate(rule, &h, neg_reference, &mut new_rules);
                        }
                    }
                }
            }
        }

        // Integrate the round: new head atoms form the next delta, and any
        // AtR rule whose Active atom just appeared contributes its Result.
        let mut next_delta = Database::new();
        for rule in new_rules {
            let head = rule.head.clone();
            if derived.push(rule) && heads.insert(head.clone()) {
                next_delta.insert(head);
            }
        }
        for atr_rule in atr.iter() {
            if next_delta.contains(&atr_rule.active)
                && included_atr.insert(atr_rule.active.clone())
                && heads.insert(atr_rule.result.clone())
            {
                next_delta.insert(atr_rule.result.clone());
            }
        }

        if next_delta.is_empty() {
            break;
        }
        delta = Some(next_delta);
    }
    derived
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grounding::AtrRule;
    use crate::program::{coin_program, network_resilience_program};
    use crate::translate::SigmaPi;
    use gdlog_data::{Const, Predicate};

    fn network_db() -> Database {
        let mut db = Database::new();
        for i in 1..=3i64 {
            db.insert_fact("Router", [Const::Int(i)]);
            for j in 1..=3i64 {
                if i != j {
                    db.insert_fact("Connected", [Const::Int(i), Const::Int(j)]);
                }
            }
        }
        db.insert_fact("Infected", [Const::Int(1), Const::Int(1)]);
        db
    }

    fn network_grounder() -> SimpleGrounder {
        let sigma = SigmaPi::translate(&network_resilience_program(0.1), &network_db()).unwrap();
        SimpleGrounder::new(Arc::new(sigma))
    }

    #[test]
    fn example_3_6_empty_choice_set() {
        let grounder = network_grounder();
        let rules = grounder.ground(&AtrSet::new());
        let sigma = grounder.sigma();
        let active_pred = sigma.atr_schemas[0].active;

        // GSimple(∅) contains the two Active rules for router 1's neighbours
        // (Example 3.6) and no Result-consuming Infected rules yet.
        let active_heads: Vec<_> = rules
            .iter()
            .filter(|r| r.head.predicate == active_pred)
            .collect();
        assert_eq!(active_heads.len(), 2);

        let infected_rules: Vec<_> = rules
            .iter()
            .filter(|r| r.head.predicate == Predicate::new("Infected", 2) && !r.pos.is_empty())
            .collect();
        assert!(infected_rules.is_empty());

        // The Uninfected rules for all three routers are present (negation is
        // not inspected by the simple grounder).
        let uninfected: Vec<_> = rules
            .iter()
            .filter(|r| r.head.predicate == Predicate::new("Uninfected", 1))
            .collect();
        assert_eq!(uninfected.len(), 3);

        // ∅ is not terminal: the two Active atoms are triggers.
        assert!(!grounder.is_terminal(&AtrSet::new()));
        assert_eq!(grounder.triggers(&AtrSet::new(), &rules).len(), 2);
    }

    #[test]
    fn example_3_6_full_choice_set_is_terminal() {
        let grounder = network_grounder();
        let sigma = grounder.sigma();
        let schema = &sigma.atr_schemas[0];
        let p = Const::real(0.1).unwrap();

        // Both neighbours stay uninfected (outcome 0) — the Σ of Example 3.6.
        let mut atr = AtrSet::new();
        for i in [2i64, 3] {
            let active = GroundAtom {
                predicate: schema.active,
                args: vec![p, Const::Int(1), Const::Int(i)],
            };
            atr.insert(AtrRule::new(sigma, active, Const::Int(0)).unwrap())
                .unwrap();
        }
        let rules = grounder.ground(&atr);
        assert!(grounder.is_compatible(&atr, &rules));
        assert!(grounder.is_terminal(&atr));
        assert!(grounder.triggers(&atr, &rules).is_empty());

        // The grounding now contains the Result-consuming rules deriving
        // Infected(2, 0) and Infected(3, 0).
        let infected_rules: Vec<_> = rules
            .iter()
            .filter(|r| r.head.predicate == Predicate::new("Infected", 2) && !r.pos.is_empty())
            .collect();
        assert_eq!(infected_rules.len(), 2);

        // Pr(Σ) = 0.9² = 0.81 (Example 3.10).
        assert_eq!(
            atr.probability(sigma).unwrap(),
            gdlog_prob::Prob::ratio(81, 100)
        );
    }

    #[test]
    fn infection_cascade_extends_the_grounding() {
        // If router 2 becomes infected, new Active atoms for its neighbours
        // appear (monotonicity of the grounder).
        let grounder = network_grounder();
        let sigma = grounder.sigma();
        let schema = &sigma.atr_schemas[0];
        let p = Const::real(0.1).unwrap();

        let active_12 = GroundAtom {
            predicate: schema.active,
            args: vec![p, Const::Int(1), Const::Int(2)],
        };
        let atr = AtrSet::new()
            .extended(AtrRule::new(sigma, active_12, Const::Int(1)).unwrap())
            .unwrap();
        let rules = grounder.ground(&atr);
        // Router 2 is now infected, so Active atoms for (2,1) and (2,3) are
        // derived; (2,1) and (2,3) are new triggers along with (1,3).
        let triggers = grounder.triggers(&atr, &rules);
        assert_eq!(triggers.len(), 3);
        assert!(!grounder.is_terminal(&atr));
    }

    #[test]
    fn grounder_is_monotone() {
        let grounder = network_grounder();
        let sigma = grounder.sigma();
        let schema = &sigma.atr_schemas[0];
        let p = Const::real(0.1).unwrap();
        let active_12 = GroundAtom {
            predicate: schema.active,
            args: vec![p, Const::Int(1), Const::Int(2)],
        };

        let small = AtrSet::new();
        let large = AtrSet::new()
            .extended(AtrRule::new(sigma, active_12, Const::Int(1)).unwrap())
            .unwrap();
        let g_small = grounder.ground(&small);
        let g_large = grounder.ground(&large);
        for rule in g_small.iter() {
            assert!(g_large.contains(rule), "monotonicity violated for {rule}");
        }
        assert!(g_large.len() >= g_small.len());
    }

    #[test]
    fn coin_program_grounding() {
        let sigma = SigmaPi::translate(&coin_program(), &Database::new()).unwrap();
        let grounder = SimpleGrounder::new(Arc::new(sigma));
        let rules = grounder.ground(&AtrSet::new());
        // The bodyless Active rule is always present; the single trigger is
        // the coin flip itself.
        assert_eq!(grounder.triggers(&AtrSet::new(), &rules).len(), 1);

        let sigma = grounder.sigma();
        let schema = &sigma.atr_schemas[0];
        let active = GroundAtom {
            predicate: schema.active,
            args: vec![Const::real(0.5).unwrap()],
        };
        let tails = AtrSet::new()
            .extended(AtrRule::new(sigma, active.clone(), Const::Int(1)).unwrap())
            .unwrap();
        let rules = grounder.ground(&tails);
        assert!(grounder.is_terminal(&tails));
        // Coin(1) is derivable, so the Aux1/Aux2 rules are instantiated.
        assert!(rules
            .iter()
            .any(|r| r.head.predicate == Predicate::new("Aux1", 0)));
        assert!(rules
            .iter()
            .any(|r| r.head.predicate == Predicate::new("Aux2", 0)));

        // Full program includes the AtR rule itself.
        let full = grounder.full_program(&tails);
        assert_eq!(full.len(), rules.len() + 1);
    }
}

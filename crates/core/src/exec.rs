//! Execution policy for the chase and the Monte-Carlo sampler.
//!
//! Once a chase node's grounding snapshot is taken, sibling subtrees share no
//! mutable state (see `ARCHITECTURE.md`), so exploring them is embarrassingly
//! parallel. An [`Executor`] decides whether that parallelism is used: it is
//! either sequential or it owns a work-stealing [`rayon::ThreadPool`] to
//! which independent subtrees (and independent Monte-Carlo walks) are
//! dispatched. Results are **bit-identical across executors** — the parallel
//! paths merge in deterministic trigger order and derive per-walk RNG streams
//! from the root seed, so the thread count is a pure throughput knob, never a
//! semantics knob. CI enforces this with a `GDLOG_THREADS` matrix.

use rayon::{ThreadPool, ThreadPoolBuilder};
use std::fmt;

/// Environment variable consulted by [`Executor::from_env`] (and therefore
/// by every [`crate::Pipeline`] built without an explicit thread count).
pub const THREADS_ENV: &str = "GDLOG_THREADS";

/// A sequential-or-parallel execution policy.
pub struct Executor {
    threads: usize,
    pool: Option<ThreadPool>,
}

impl Executor {
    /// The sequential executor: everything runs on the calling thread.
    pub fn sequential() -> Self {
        Executor {
            threads: 1,
            pool: None,
        }
    }

    /// An executor with the given parallelism. `0` means one thread per
    /// available CPU; `1` is [`Executor::sequential`].
    pub fn new(threads: usize) -> Self {
        // The builder owns the `0 → available parallelism` defaulting; read
        // the resolved count back from the pool so the two can never drift.
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool construction cannot fail");
        let threads = pool.current_num_threads();
        if threads <= 1 {
            return Self::sequential();
        }
        Executor {
            threads,
            pool: Some(pool),
        }
    }

    /// An executor configured from the `GDLOG_THREADS` environment variable
    /// (unset, empty or unparsable means sequential; `0` means one thread
    /// per available CPU).
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV) {
            Ok(value) => match value.trim().parse::<usize>() {
                Ok(n) => Self::new(n),
                Err(_) => Self::sequential(),
            },
            Err(_) => Self::sequential(),
        }
    }

    /// The configured number of threads (1 for the sequential executor).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Is this executor parallel?
    pub fn is_parallel(&self) -> bool {
        self.pool.is_some()
    }

    /// The thread pool, when parallel.
    pub(crate) fn pool(&self) -> Option<&ThreadPool> {
        self.pool.as_ref()
    }
}

impl Default for Executor {
    fn default() -> Self {
        Self::sequential()
    }
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_has_one_thread_and_no_pool() {
        let e = Executor::sequential();
        assert_eq!(e.threads(), 1);
        assert!(!e.is_parallel());
        assert!(e.pool().is_none());
        assert_eq!(Executor::default().threads(), 1);
    }

    #[test]
    fn one_thread_collapses_to_sequential() {
        assert!(!Executor::new(1).is_parallel());
        let e = Executor::new(3);
        assert!(e.is_parallel());
        assert_eq!(e.threads(), 3);
        assert_eq!(e.pool().unwrap().current_num_threads(), 3);
    }

    #[test]
    fn zero_means_available_parallelism() {
        let e = Executor::new(0);
        assert!(e.threads() >= 1);
    }

    #[test]
    fn debug_shows_the_thread_count() {
        assert_eq!(format!("{:?}", Executor::new(2)), "Executor { threads: 2 }");
    }
}

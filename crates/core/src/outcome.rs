//! Possible outcomes (Definition 3.7).
//!
//! A possible outcome of `D` w.r.t. `Π` relative to a grounder `G` is a
//! program `Σ ∪ G(Σ)` for a ⊆-minimal terminal `Σ` such that every chosen
//! outcome has strictly positive probability. A [`PossibleOutcome`] couples
//! the choice set `Σ` (an [`AtrSet`]), the grounder-produced rules `G(Σ)`,
//! and the probability `Pr(Σ)`; the induced set of stable models
//! `sms(Σ ∪ G(Σ))` is computed on demand through `gdlog-engine`.

use crate::error::CoreError;
use crate::grounding::{AtrSet, GroundRuleSet};
use gdlog_data::{Database, GroundAtom};
use gdlog_engine::{
    stable_models, stable_models_with_cancel, CancelToken, GroundProgram, StableModelLimits,
};
use gdlog_prob::Prob;
use std::fmt;

/// A canonical, hashable encoding of a *set of stable models* — the event key
/// of the output probability space (two finite possible outcomes belong to
/// the same event iff they induce the same set of stable models).
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ModelSetKey(Vec<Vec<GroundAtom>>);

impl ModelSetKey {
    /// Build a key from a set of stable models.
    pub fn from_models(models: &[Database]) -> Self {
        let mut encoded: Vec<Vec<GroundAtom>> =
            models.iter().map(Database::canonical_atoms).collect();
        encoded.sort();
        encoded.dedup();
        ModelSetKey(encoded)
    }

    /// The empty set of stable models (the event "no stable model").
    pub fn empty() -> Self {
        ModelSetKey(Vec::new())
    }

    /// Number of stable models in the set.
    pub fn model_count(&self) -> usize {
        self.0.len()
    }

    /// Is this the empty set of stable models?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate over the models as sorted atom lists.
    pub fn models(&self) -> impl Iterator<Item = &Vec<GroundAtom>> {
        self.0.iter()
    }

    /// Does the atom hold in *every* stable model of the set (cautiously)?
    /// Returns `false` for the empty set.
    pub fn cautious(&self, atom: &GroundAtom) -> bool {
        !self.0.is_empty() && self.0.iter().all(|m| m.binary_search(atom).is_ok())
    }

    /// Does the atom hold in *some* stable model of the set (bravely)?
    pub fn brave(&self, atom: &GroundAtom) -> bool {
        self.0.iter().any(|m| m.binary_search(atom).is_ok())
    }

    /// The event key of a union of programs over disjoint atom sets: by the
    /// splitting theorem, `sms(P₁ ⊎ … ⊎ Pₘ)` is the set of unions of one
    /// stable model per part, so the joint key is the cross product of the
    /// per-part keys with each joint model the (sorted, deduplicated) union
    /// of its parts. Any empty part makes the whole product empty — a union
    /// has a stable model only if every part does.
    pub fn product(keys: &[&ModelSetKey]) -> ModelSetKey {
        if keys.iter().any(|k| k.is_empty()) {
            return ModelSetKey::empty();
        }
        let mut encoded: Vec<Vec<GroundAtom>> = vec![Vec::new()];
        for key in keys {
            let mut next = Vec::with_capacity(encoded.len() * key.0.len());
            for prefix in &encoded {
                for model in &key.0 {
                    let mut joined = prefix.clone();
                    joined.extend(model.iter().cloned());
                    next.push(joined);
                }
            }
            encoded = next;
        }
        for model in &mut encoded {
            model.sort();
            model.dedup();
        }
        encoded.sort();
        encoded.dedup();
        ModelSetKey(encoded)
    }

    /// Restrict every model to the given predicate filter, re-canonicalising
    /// the key (used to compare outcomes "modulo active").
    pub fn filter_atoms<F: Fn(&GroundAtom) -> bool>(&self, keep: F) -> ModelSetKey {
        let mut encoded: Vec<Vec<GroundAtom>> = self
            .0
            .iter()
            .map(|m| m.iter().filter(|a| keep(a)).cloned().collect())
            .collect();
        encoded.sort();
        encoded.dedup();
        ModelSetKey(encoded)
    }
}

impl fmt::Display for ModelSetKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, m) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{{")?;
            for (j, a) in m.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, "}}")?;
        }
        write!(f, "}}")
    }
}

/// A finite possible outcome together with its probability.
#[derive(Clone, Debug)]
pub struct PossibleOutcome {
    /// The configuration of probabilistic choices `Σ`.
    pub atr: AtrSet,
    /// The grounder-produced rules `G(Σ)`.
    pub rules: GroundRuleSet,
    /// The probability `Pr(Σ) = ∏ δ⟨p̄⟩(o)`.
    pub probability: Prob,
}

impl PossibleOutcome {
    /// Assemble a possible outcome.
    pub fn new(atr: AtrSet, rules: GroundRuleSet, probability: Prob) -> Self {
        PossibleOutcome {
            atr,
            rules,
            probability,
        }
    }

    /// The full ground program `Σ ∪ G(Σ)` whose stable models this outcome
    /// induces.
    pub fn full_program(&self) -> GroundProgram {
        let mut p = self.rules.clone();
        p.extend(self.atr.to_ground_rules());
        p
    }

    /// Compute `sms(Σ ∪ G(Σ))`.
    pub fn stable_models(&self, limits: &StableModelLimits) -> Result<Vec<Database>, CoreError> {
        Ok(stable_models(&self.full_program(), limits)?)
    }

    /// [`Self::stable_models`] with a cooperative cancellation token. A
    /// cancelled search returns [`CoreError::Interrupted`] — stable-model
    /// enumeration is exact-or-nothing, so there is no partial result to
    /// degrade to.
    pub fn stable_models_cancellable(
        &self,
        limits: &StableModelLimits,
        cancel: &CancelToken,
    ) -> Result<Vec<Database>, CoreError> {
        Ok(stable_models_with_cancel(
            &self.full_program(),
            limits,
            cancel,
        )?)
    }

    /// Compute the event key of the outcome (its set of stable models).
    pub fn model_set_key(&self, limits: &StableModelLimits) -> Result<ModelSetKey, CoreError> {
        Ok(ModelSetKey::from_models(&self.stable_models(limits)?))
    }

    /// [`Self::model_set_key`] with a cooperative cancellation token.
    pub fn model_set_key_cancellable(
        &self,
        limits: &StableModelLimits,
        cancel: &CancelToken,
    ) -> Result<ModelSetKey, CoreError> {
        Ok(ModelSetKey::from_models(
            &self.stable_models_cancellable(limits, cancel)?,
        ))
    }

    /// The canonical, collision-free identity of the outcome's ground
    /// program `Σ ∪ G(Σ)` — the memoization key of
    /// [`crate::ModelSetCache`]. Outcomes with equal fingerprints denote the
    /// same program and therefore the same [`ModelSetKey`].
    pub fn program_fingerprint(&self) -> crate::model_cache::ProgramFingerprint {
        crate::model_cache::ProgramFingerprint::new(
            self.atr.canonical(),
            self.rules.canonical_rules(),
        )
    }

    /// Number of probabilistic choices made in this outcome.
    pub fn choice_count(&self) -> usize {
        self.atr.len()
    }

    /// Number of ground rules produced by the grounder.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }
}

impl fmt::Display for PossibleOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "outcome(Pr = {}, {} choices, {} ground rules)",
            self.probability,
            self.choice_count(),
            self.rule_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdlog_data::Const;

    fn atom(name: &str, args: &[i64]) -> GroundAtom {
        GroundAtom::make(name, args.iter().map(|&i| Const::Int(i)).collect())
    }

    fn db(atoms: &[GroundAtom]) -> Database {
        Database::from_atoms(atoms.iter().cloned())
    }

    #[test]
    fn key_is_order_insensitive_and_deduplicated() {
        let m1 = db(&[atom("A", &[1]), atom("B", &[2])]);
        let m2 = db(&[atom("C", &[3])]);
        let k1 = ModelSetKey::from_models(&[m1.clone(), m2.clone()]);
        let k2 = ModelSetKey::from_models(&[m2.clone(), m1.clone(), m2]);
        assert_eq!(k1, k2);
        assert_eq!(k1.model_count(), 2);
        assert!(!k1.is_empty());
        assert_eq!(ModelSetKey::empty().model_count(), 0);
        assert!(ModelSetKey::empty().is_empty());
        assert_eq!(k1.models().count(), 2);
    }

    #[test]
    fn cautious_and_brave_reasoning() {
        let m1 = db(&[atom("A", &[1]), atom("B", &[2])]);
        let m2 = db(&[atom("A", &[1]), atom("C", &[3])]);
        let k = ModelSetKey::from_models(&[m1, m2]);
        assert!(k.cautious(&atom("A", &[1])));
        assert!(!k.cautious(&atom("B", &[2])));
        assert!(k.brave(&atom("B", &[2])));
        assert!(k.brave(&atom("C", &[3])));
        assert!(!k.brave(&atom("D", &[4])));
        // The empty set is cautious about nothing and brave about nothing.
        assert!(!ModelSetKey::empty().cautious(&atom("A", &[1])));
        assert!(!ModelSetKey::empty().brave(&atom("A", &[1])));
    }

    #[test]
    fn filtering_atoms_re_canonicalises() {
        let m1 = db(&[atom("A", &[1]), atom("Hidden", &[9])]);
        let m2 = db(&[atom("A", &[1])]);
        let k = ModelSetKey::from_models(&[m1, m2]);
        assert_eq!(k.model_count(), 2);
        let filtered = k.filter_atoms(|a| a.predicate.name() != "Hidden");
        // After dropping the Hidden atom both models coincide.
        assert_eq!(filtered.model_count(), 1);
    }

    #[test]
    fn product_is_the_cross_product_of_model_unions() {
        let left = ModelSetKey::from_models(&[db(&[atom("A", &[1])]), db(&[atom("A", &[2])])]);
        let right = ModelSetKey::from_models(&[db(&[atom("B", &[1])])]);
        let joint = ModelSetKey::product(&[&left, &right]);
        assert_eq!(joint.model_count(), 2);
        assert!(joint.brave(&atom("A", &[1])));
        assert!(joint.cautious(&atom("B", &[1])));
        assert!(!joint.cautious(&atom("A", &[1])));
        // Projecting back onto the factor's atoms recovers the factor key.
        assert_eq!(joint.filter_atoms(|a| a.predicate.name() == "A"), left);
        assert_eq!(joint.filter_atoms(|a| a.predicate.name() == "B"), right);
        // Any empty part collapses the whole product.
        assert!(ModelSetKey::product(&[&left, &ModelSetKey::empty()]).is_empty());
        // The empty product is the key with one empty model (the union of no
        // programs has exactly one stable model: the empty database).
        let unit = ModelSetKey::product(&[]);
        assert_eq!(unit.model_count(), 1);
        assert_eq!(ModelSetKey::product(&[&left, &unit]), left);
    }

    #[test]
    fn display_is_readable() {
        let k = ModelSetKey::from_models(&[db(&[atom("A", &[1])])]);
        assert_eq!(k.to_string(), "{{A(1)}}");
    }

    #[test]
    fn outcome_accessors() {
        let outcome = PossibleOutcome::new(AtrSet::new(), GroundRuleSet::new(), Prob::ratio(1, 2));
        assert_eq!(outcome.choice_count(), 0);
        assert_eq!(outcome.rule_count(), 0);
        assert_eq!(outcome.full_program().len(), 0);
        let models = outcome
            .stable_models(&StableModelLimits::default())
            .unwrap();
        assert_eq!(models, vec![Database::new()]);
        let key = outcome
            .model_set_key(&StableModelLimits::default())
            .unwrap();
        assert_eq!(key.model_count(), 1);
        assert!(outcome.to_string().contains("Pr = 1/2"));
    }
}

//! A fluent builder for GDatalog¬\[Δ\] programs.
//!
//! The builder is a convenience for writing programs in Rust without going
//! through the textual syntax of `gdlog-parser`:
//!
//! ```
//! use gdlog_core::ProgramBuilder;
//! use gdlog_data::Term;
//!
//! let program = ProgramBuilder::new()
//!     .rule(|r| {
//!         r.body("Infected", vec![Term::var("x"), Term::int(1)])
//!             .body("Connected", vec![Term::var("x"), Term::var("y")])
//!             .head_with_delta(
//!                 "Infected",
//!                 vec![Term::var("y")],
//!                 "Flip",
//!                 vec![Term::int(0) /* placeholder parameter */],
//!                 vec![Term::var("x"), Term::var("y")],
//!             )
//!     })
//!     .rule(|r| {
//!         r.body("Router", vec![Term::var("x")])
//!             .not_body("Infected", vec![Term::var("x"), Term::int(1)])
//!             .head("Uninfected", vec![Term::var("x")])
//!     })
//!     .constraint(|r| {
//!         r.body("Uninfected", vec![Term::var("x")])
//!             .body("Uninfected", vec![Term::var("y")])
//!             .body("Connected", vec![Term::var("x"), Term::var("y")])
//!     })
//!     .build()
//!     .unwrap();
//! assert_eq!(program.rules().len(), 4);
//! ```

use crate::delta::DeltaTerm;
use crate::error::CoreError;
use crate::program::Program;
use crate::rule::{Head, HeadTerm, Rule};
use gdlog_data::{Atom, Term};
use gdlog_prob::DeltaRegistry;

/// Builder for a single rule.
#[derive(Default, Clone, Debug)]
pub struct RuleBuilder {
    pos: Vec<Atom>,
    neg: Vec<Atom>,
    head: Option<Head>,
}

impl RuleBuilder {
    /// Add a positive body atom.
    pub fn body(mut self, name: &str, args: Vec<Term>) -> Self {
        self.pos.push(Atom::make(name, args));
        self
    }

    /// Add a negative body literal.
    pub fn not_body(mut self, name: &str, args: Vec<Term>) -> Self {
        self.neg.push(Atom::make(name, args));
        self
    }

    /// Set a plain (non-probabilistic) head.
    pub fn head(mut self, name: &str, args: Vec<Term>) -> Self {
        self.head = Some(Head::make(
            name,
            args.into_iter().map(HeadTerm::Term).collect(),
        ));
        self
    }

    /// Set a head whose *last* argument is a Δ-term `dist⟨params⟩[event]`,
    /// preceded by the given plain arguments. For more general shapes use
    /// [`RuleBuilder::head_terms`].
    pub fn head_with_delta(
        mut self,
        name: &str,
        leading_args: Vec<Term>,
        dist: &str,
        params: Vec<Term>,
        event: Vec<Term>,
    ) -> Self {
        let mut args: Vec<HeadTerm> = leading_args.into_iter().map(HeadTerm::Term).collect();
        args.push(HeadTerm::Delta(DeltaTerm::new(dist, params, event)));
        self.head = Some(Head::make(name, args));
        self
    }

    /// Set a head from explicit [`HeadTerm`]s.
    pub fn head_terms(mut self, name: &str, args: Vec<HeadTerm>) -> Self {
        self.head = Some(Head::make(name, args));
        self
    }

    fn finish(self) -> Result<Rule, CoreError> {
        let head = self.head.ok_or_else(|| {
            CoreError::Validation("rule is missing a head (use head/head_terms)".to_owned())
        })?;
        let rule = Rule::new(self.pos, self.neg, head);
        rule.validate()?;
        Ok(rule)
    }

    fn finish_constraint(self) -> Result<(Vec<Atom>, Vec<Atom>), CoreError> {
        if self.head.is_some() {
            return Err(CoreError::Validation(
                "a constraint must not set a head".to_owned(),
            ));
        }
        if self.pos.is_empty() {
            return Err(CoreError::Validation(
                "a constraint needs at least one positive body atom".to_owned(),
            ));
        }
        Ok((self.pos, self.neg))
    }
}

/// Builder for whole programs.
#[derive(Default)]
pub struct ProgramBuilder {
    rules: Vec<Rule>,
    constraints: Vec<(Vec<Atom>, Vec<Atom>)>,
    delta: Option<DeltaRegistry>,
    error: Option<CoreError>,
}

impl ProgramBuilder {
    /// Start an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Use a custom distribution registry instead of the standard one.
    pub fn registry(mut self, delta: DeltaRegistry) -> Self {
        self.delta = Some(delta);
        self
    }

    /// Add a rule built with a [`RuleBuilder`].
    pub fn rule<F>(mut self, build: F) -> Self
    where
        F: FnOnce(RuleBuilder) -> RuleBuilder,
    {
        if self.error.is_some() {
            return self;
        }
        match build(RuleBuilder::default()).finish() {
            Ok(rule) => self.rules.push(rule),
            Err(e) => self.error = Some(e),
        }
        self
    }

    /// Add a pre-built rule.
    pub fn push_rule(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Add a fact `→ name(args…)`.
    pub fn fact(mut self, name: &str, args: Vec<Term>) -> Self {
        self.rules.push(Rule::fact(Head::make(
            name,
            args.into_iter().map(HeadTerm::Term).collect(),
        )));
        self
    }

    /// Add a constraint `body → ⊥`.
    pub fn constraint<F>(mut self, build: F) -> Self
    where
        F: FnOnce(RuleBuilder) -> RuleBuilder,
    {
        if self.error.is_some() {
            return self;
        }
        match build(RuleBuilder::default()).finish_constraint() {
            Ok(c) => self.constraints.push(c),
            Err(e) => self.error = Some(e),
        }
        self
    }

    /// Finish and validate the program.
    pub fn build(self) -> Result<Program, CoreError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let mut program = match self.delta {
            Some(delta) => Program::with_registry(self.rules, delta),
            None => Program::new(self.rules),
        };
        for (pos, neg) in self.constraints {
            program.push_constraint(pos, neg);
        }
        program.validate()?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdlog_data::Const;

    #[test]
    fn build_the_network_program() {
        let p = Term::Const(Const::real(0.1).unwrap());
        let program = ProgramBuilder::new()
            .rule(|r| {
                r.body("Infected", vec![Term::var("x"), Term::int(1)])
                    .body("Connected", vec![Term::var("x"), Term::var("y")])
                    .head_with_delta(
                        "Infected",
                        vec![Term::var("y")],
                        "Flip",
                        vec![p],
                        vec![Term::var("x"), Term::var("y")],
                    )
            })
            .rule(|r| {
                r.body("Router", vec![Term::var("x")])
                    .not_body("Infected", vec![Term::var("x"), Term::int(1)])
                    .head("Uninfected", vec![Term::var("x")])
            })
            .constraint(|r| {
                r.body("Uninfected", vec![Term::var("x")])
                    .body("Uninfected", vec![Term::var("y")])
                    .body("Connected", vec![Term::var("x"), Term::var("y")])
            })
            .build()
            .unwrap();
        // Mirrors Example 3.1 / `network_resilience_program`.
        assert_eq!(program.len(), 4);
        assert!(program.is_probabilistic());
        assert_eq!(
            program.to_string(),
            crate::program::network_resilience_program(0.1).to_string()
        );
    }

    #[test]
    fn facts_and_head_terms() {
        let program = ProgramBuilder::new()
            .fact("Router", vec![Term::int(1)])
            .rule(|r| {
                r.body("Router", vec![Term::var("x")]).head_terms(
                    "Level",
                    vec![
                        HeadTerm::var("x"),
                        HeadTerm::Delta(DeltaTerm::new(
                            "UniformInt",
                            vec![Term::int(1), Term::int(6)],
                            vec![Term::var("x")],
                        )),
                    ],
                )
            })
            .build()
            .unwrap();
        assert_eq!(program.len(), 2);
    }

    #[test]
    fn errors_are_reported_at_build_time() {
        // Missing head.
        let err = ProgramBuilder::new()
            .rule(|r| r.body("A", vec![Term::var("x")]))
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::Validation(_)));

        // Unsafe rule.
        let err = ProgramBuilder::new()
            .rule(|r| {
                r.body("A", vec![Term::var("x")])
                    .head("B", vec![Term::var("z")])
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::Validation(_)));

        // Constraint with a head.
        let err = ProgramBuilder::new()
            .constraint(|r| {
                r.body("A", vec![Term::var("x")])
                    .head("B", vec![Term::var("x")])
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::Validation(_)));

        // Constraint without positive body.
        let err = ProgramBuilder::new()
            .constraint(|r| r.not_body("A", vec![]))
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::Validation(_)));
    }

    #[test]
    fn custom_registry() {
        let mut registry = DeltaRegistry::empty();
        registry.register("Bernoulli", gdlog_prob::Distribution::Flip);
        let program = ProgramBuilder::new()
            .registry(registry)
            .rule(|r| {
                r.body("A", vec![Term::var("x")]).head_with_delta(
                    "B",
                    vec![Term::var("x")],
                    "Bernoulli",
                    vec![Term::Const(Const::real(0.5).unwrap())],
                    vec![Term::var("x")],
                )
            })
            .build()
            .unwrap();
        assert!(program.validate().is_ok());
        // The standard name is unknown in this registry.
        let err = ProgramBuilder::new()
            .registry(DeltaRegistry::empty())
            .rule(|r| {
                r.body("A", vec![Term::var("x")]).head_with_delta(
                    "B",
                    vec![Term::var("x")],
                    "Flip",
                    vec![Term::Const(Const::real(0.5).unwrap())],
                    vec![],
                )
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::Dist(_)));
    }
}

//! The dependency graph `dg(Π)` of a GDatalog¬\[Δ\] program.
//!
//! Section 5 of the paper: vertices are the predicates of `sch(Π)`; for every
//! rule ρ with head predicate `P` there is a positive (resp. negative) edge
//! `(R, P)` for every predicate `R` of `B⁺(ρ)` (resp. `B⁻(ρ)`). A program has
//! stratified negation if no cycle of `dg(Π)` goes through a negative edge.
//!
//! The graph machinery itself (SCCs, topological strata) lives in
//! [`gdlog_engine::depgraph`]; this module builds the graph from the
//! *generative* (non-ground) rules and re-exports the shared types.

use crate::program::Program;
pub use gdlog_engine::depgraph::{DependencyGraph, EdgeSign, Stratification};

/// Build `dg(Π)` for a program.
pub fn dependency_graph(program: &Program) -> DependencyGraph {
    let mut g = DependencyGraph::new();
    for pred in program.schema().iter() {
        g.add_vertex(*pred);
    }
    for rule in program.rules() {
        let head = rule.head.predicate;
        g.add_vertex(head);
        for a in &rule.pos {
            g.add_edge(a.predicate, head, EdgeSign::Positive);
        }
        for a in &rule.neg {
            g.add_edge(a.predicate, head, EdgeSign::Negative);
        }
    }
    g
}

/// Compute a stratification of `dg(Π)` (topologically ordered SCCs), or an
/// error if the program is not stratified.
pub fn stratification(
    program: &Program,
) -> Result<Stratification, gdlog_engine::depgraph::NotStratified> {
    dependency_graph(program).stratify()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{coin_program, dime_quarter_program, network_resilience_program};
    use gdlog_data::Predicate;

    #[test]
    fn figure_1_graph_of_the_dime_quarter_program() {
        let program = dime_quarter_program();
        let g = dependency_graph(&program);
        // Vertices: Dime, Quarter, DimeTail, QuarterTail, SomeDimeTail.
        assert_eq!(g.vertex_count(), 5);
        // Exactly one negative edge: SomeDimeTail → QuarterTail (dashed arc in
        // Figure 1).
        let neg: Vec<_> = g
            .edges()
            .filter(|(_, _, s)| *s == EdgeSign::Negative)
            .collect();
        assert_eq!(neg.len(), 1);
        assert_eq!(neg[0].0, Predicate::new("SomeDimeTail", 0));
        assert_eq!(neg[0].1, Predicate::new("QuarterTail", 2));

        let strat = stratification(&program).unwrap();
        assert_eq!(strat.len(), 5);
        let s = |name: &str, ar: usize| strat.stratum_of(&Predicate::new(name, ar)).unwrap();
        assert!(s("Dime", 1) < s("DimeTail", 2));
        assert!(s("DimeTail", 2) < s("SomeDimeTail", 0));
        assert!(s("SomeDimeTail", 0) < s("QuarterTail", 2));
    }

    #[test]
    fn coin_program_is_not_stratified() {
        let program = coin_program();
        let g = dependency_graph(&program);
        assert!(!g.is_stratified());
        assert!(stratification(&program).is_err());
    }

    #[test]
    fn network_program_is_not_stratified_due_to_the_fail_aux_encoding() {
        // The desugared ⊥ introduces `Fail, ¬Aux → Aux`, a negative
        // self-loop, so the full Example 3.1 program is evaluated with the
        // simple grounder (as the paper does in Example 3.10).
        let program = network_resilience_program(0.1);
        assert!(stratification(&program).is_err());

        // Dropping the constraint leaves a stratified propagation program.
        let propagation =
            crate::program::Program::new(network_resilience_program(0.1).rules()[..2].to_vec());
        let strat = stratification(&propagation).unwrap();
        let s = |name: &str, ar: usize| strat.stratum_of(&Predicate::new(name, ar)).unwrap();
        assert!(s("Infected", 2) < s("Uninfected", 1));
    }

    #[test]
    fn isolated_edb_predicates_are_vertices() {
        let program = network_resilience_program(0.1);
        let g = dependency_graph(&program);
        assert!(g.vertices().any(|p| p.name() == "Router"));
        assert!(g.vertices().any(|p| p.name() == "Connected"));
    }
}

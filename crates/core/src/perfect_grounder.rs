//! The perfect grounder `GPerfect_Π` for stratified programs (Definition 5.1).
//!
//! For a GDatalog¬ₛ\[Δ\] program the predicates can be ordered into strata
//! `C₁, …, Cₙ` (a topological ordering of the SCCs of `dg(Π)`). The perfect
//! grounder processes the rules stratum by stratum with the `Perfect`
//! operator, which only instantiates a rule when its positive body is
//! derivable *and* none of its negative body atoms is derivable — negative
//! literals of a stratum-`i` rule only mention predicates of strictly lower
//! strata, whose extension is already complete, so the check is final.
//!
//! Compared to the simple grounder this avoids "superfluous" ground rules
//! (e.g. it never instantiates the quarter-tossing rule of Appendix E once
//! some dime shows tails), which is exactly why its semantics is *as good as*
//! any other grounder's on stratified programs (Theorem 5.3).

use crate::error::CoreError;
use crate::grounding::{AtrSet, GroundRuleSet, Grounder, Grounding};
use crate::simple_grounder::{saturate_cancellable, saturate_extending_cancellable};
use crate::translate::{SigmaPi, TgdRule};
use gdlog_data::{Database, Predicate};
use gdlog_engine::depgraph::{DependencyGraph, EdgeSign};
use gdlog_engine::CancelToken;
use std::collections::HashMap;
use std::sync::Arc;

/// Signature shared by the semi-naive saturation and the retained naive
/// reference, so the stratum loop is written once.
type SaturateFn<'a> =
    dyn Fn(&[&TgdRule], &AtrSet, GroundRuleSet, Option<&Database>) -> GroundRuleSet + 'a;

/// The perfect grounder. Construction fails if the program does not have
/// stratified negation.
#[derive(Clone)]
pub struct PerfectGrounder {
    sigma: Arc<SigmaPi>,
    /// Rule indices of `sigma.rules`, grouped by the stratum of the rule's
    /// originating head predicate, in bottom-up stratum order.
    rules_by_stratum: Vec<Vec<usize>>,
    /// Cooperative cancellation, polled per stratum and per saturation
    /// round; a cancelled grounding returns its partial rule set (the chase
    /// re-checks the token before trusting it).
    cancel: CancelToken,
}

impl PerfectGrounder {
    /// Build a perfect grounder for a translated program.
    pub fn new(sigma: Arc<SigmaPi>) -> Result<Self, CoreError> {
        // Reconstruct dg(Π[D]) over the *original* predicates: generated
        // Active/Result predicates are ignored (they are not part of sch(Π)).
        let mut graph = DependencyGraph::new();
        for p in sigma.original_schema() {
            graph.add_vertex(*p);
        }
        for rule in &sigma.rules {
            for a in &rule.pos {
                if sigma.original_schema().contains(&a.predicate) {
                    graph.add_edge(a.predicate, rule.origin_head, EdgeSign::Positive);
                }
            }
            for a in &rule.neg {
                graph.add_edge(a.predicate, rule.origin_head, EdgeSign::Negative);
            }
        }
        let stratification = graph.stratify()?;

        let stratum_of: HashMap<Predicate, usize> = stratification
            .strata()
            .iter()
            .enumerate()
            .flat_map(|(i, comp)| comp.iter().map(move |p| (*p, i)))
            .collect();
        let mut rules_by_stratum: Vec<Vec<usize>> = vec![Vec::new(); stratification.len()];
        for (idx, rule) in sigma.rules.iter().enumerate() {
            let stratum = *stratum_of
                .get(&rule.origin_head)
                .expect("every origin predicate is a vertex of dg(Π)");
            rules_by_stratum[stratum].push(idx);
        }
        Ok(PerfectGrounder {
            sigma,
            rules_by_stratum,
            cancel: CancelToken::never(),
        })
    }

    /// Number of strata.
    pub fn stratum_count(&self) -> usize {
        self.rules_by_stratum.len()
    }

    /// Ground with the retained naive saturation — the reference oracle kept
    /// for property tests and benchmarks; see [`crate::naive`].
    pub fn ground_naive(&self, atr: &AtrSet) -> GroundRuleSet {
        self.ground_with(atr, &crate::naive::saturate_naive)
    }

    fn ground_with(&self, atr: &AtrSet, saturate_fn: &SaturateFn<'_>) -> GroundRuleSet {
        self.ground_with_cursor(atr, saturate_fn).into_rules()
    }

    /// The semi-naive per-stratum saturation, polling the grounder's cancel
    /// token once per round.
    fn saturate_stratum(
        &self,
        rules: &[&TgdRule],
        atr: &AtrSet,
        initial: GroundRuleSet,
        neg_reference: Option<&Database>,
    ) -> GroundRuleSet {
        saturate_cancellable(rules, atr, initial, neg_reference, &self.cancel)
    }

    /// The stratum-by-stratum grounding loop, returning the rules together
    /// with the *stratum cursor*: the number of strata whose saturation
    /// completed before `AtR_Σ` stopped being compatible (equal to the
    /// stratum count when the whole program was grounded).
    fn ground_with_cursor(&self, atr: &AtrSet, saturate_fn: &SaturateFn<'_>) -> Grounding {
        let mut derived = GroundRuleSet::new();
        let mut cursor = 0usize;
        for (i, stratum_rules) in self.rules_by_stratum.iter().enumerate() {
            // Stratum boundaries are cancellation checkpoints too: stop with
            // the strata grounded so far (the chase re-checks the token).
            if self.cancel.is_cancelled() {
                break;
            }
            // Σ↑Cᵢ is only computed if AtR_Σ is compatible with Σ↑Cᵢ₋₁
            // (defined on every Active atom derived so far); otherwise the
            // grounding is stuck at the previous stratum.
            if !self.is_compatible(atr, &derived) {
                break;
            }
            cursor = i + 1;
            if stratum_rules.is_empty() {
                continue;
            }
            let rules = self.stratum_rules(i);
            // Negative literals refer to strictly lower strata, whose
            // extension (the heads derived so far) is final. The snapshot is
            // an O(1) freeze, not a copy.
            let neg_reference = derived.heads_snapshot();
            derived = saturate_fn(&rules, atr, derived, Some(&neg_reference));
        }
        Grounding::with_cursor(derived, cursor)
    }

    fn stratum_rules(&self, stratum: usize) -> Vec<&TgdRule> {
        self.rules_by_stratum[stratum]
            .iter()
            .map(|&i| &self.sigma.rules[i])
            .collect()
    }
}

impl Grounder for PerfectGrounder {
    fn sigma(&self) -> &SigmaPi {
        &self.sigma
    }

    fn name(&self) -> &'static str {
        "perfect"
    }

    fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    fn ground(&self, atr: &AtrSet) -> GroundRuleSet {
        self.ground_with(atr, &|r, a, i, n| self.saturate_stratum(r, a, i, n))
    }

    fn ground_node(&self, atr: &AtrSet) -> Grounding {
        self.ground_with_cursor(atr, &|r, a, i, n| self.saturate_stratum(r, a, i, n))
    }

    /// Incremental chase descent via the stratum cursor.
    ///
    /// `parent` must be `self.ground_node(parent_atr)` (or a snapshot of it)
    /// with `parent_atr ⊆ atr`, every choice in `atr \ parent_atr` being
    /// either a trigger of the parent or irrelevant (its `Active` atom not
    /// derivable) — exactly what the chase produces. Soundness of resuming at
    /// the last processed stratum `cursor - 1`:
    ///
    /// * every trigger of the parent was derived during its last processed
    ///   stratum (had it been derived earlier, the compatibility check would
    ///   have stopped the parent earlier), so the new choices can only
    ///   activate rules from that stratum upward;
    /// * strata below it are final: atoms of a predicate are only derived
    ///   while its own stratum is processed, so later activations cannot add
    ///   to them;
    /// * the parent's full head set is a valid negative reference for the
    ///   resumed stratum: its rules only negate predicates of strictly lower
    ///   strata, whose extension the head set carries completely and
    ///   finally.
    fn ground_from(&self, atr: &AtrSet, parent_atr: &AtrSet, parent: &mut Grounding) -> Grounding {
        let parent_cursor = parent.cursor();
        if parent_cursor == 0 {
            // The parent grounded nothing (no strata): nothing to resume.
            return self.ground_node(atr);
        }
        let snapshot = parent.snapshot();
        let mut derived = snapshot.into_rules();

        // Re-saturate the stratum the parent was stuck in, semi-naively:
        // only the freshly activated Result atoms form the delta, and the
        // parent's head set (frozen, shared) is the fixed negative
        // reference.
        let resume = parent_cursor - 1;
        let neg_reference = derived.heads_snapshot();
        let old_results = Database::from_atoms(
            parent_atr
                .iter()
                .filter(|r| neg_reference.contains(&r.active))
                .map(|r| r.result.clone()),
        );
        derived = saturate_extending_cancellable(
            &self.stratum_rules(resume),
            atr,
            derived,
            Some(&neg_reference),
            &old_results,
            &self.cancel,
        );

        // Continue the normal stratum loop from where the parent stopped.
        let mut cursor = parent_cursor;
        for i in parent_cursor..self.rules_by_stratum.len() {
            if self.cancel.is_cancelled() {
                break;
            }
            if !self.is_compatible(atr, &derived) {
                break;
            }
            cursor = i + 1;
            if self.rules_by_stratum[i].is_empty() {
                continue;
            }
            let neg_reference = derived.heads_snapshot();
            derived =
                self.saturate_stratum(&self.stratum_rules(i), atr, derived, Some(&neg_reference));
        }
        Grounding::with_cursor(derived, cursor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grounding::AtrRule;
    use crate::program::{coin_program, dime_quarter_program, network_resilience_program};
    use crate::simple_grounder::SimpleGrounder;
    use crate::translate::SigmaPi;
    use gdlog_data::{Const, Database, GroundAtom, Predicate};
    use gdlog_prob::Prob;

    fn dime_db() -> Database {
        let mut db = Database::new();
        db.insert_fact("Dime", [Const::Int(1)]);
        db.insert_fact("Dime", [Const::Int(2)]);
        db.insert_fact("Quarter", [Const::Int(3)]);
        db
    }

    fn dime_grounder() -> PerfectGrounder {
        let sigma = SigmaPi::translate(&dime_quarter_program(), &dime_db()).unwrap();
        PerfectGrounder::new(Arc::new(sigma)).unwrap()
    }

    fn flip_active(sigma: &SigmaPi, id: i64) -> GroundAtom {
        let schema = &sigma.atr_schemas[0];
        GroundAtom {
            predicate: schema.active,
            args: vec![Const::real(0.5).unwrap(), Const::Int(id)],
        }
    }

    #[test]
    fn non_stratified_programs_are_rejected() {
        let sigma = SigmaPi::translate(&coin_program(), &Database::new()).unwrap();
        assert!(matches!(
            PerfectGrounder::new(Arc::new(sigma)),
            Err(CoreError::NotStratified(_))
        ));
    }

    #[test]
    fn appendix_e_first_case_dime_one_tails() {
        // Σ: dime 1 shows tails (1), dime 2 shows heads (0).
        let grounder = dime_grounder();
        let sigma = grounder.sigma();
        let mut atr = AtrSet::new();
        atr.insert(AtrRule::new(sigma, flip_active(sigma, 1), Const::Int(1)).unwrap())
            .unwrap();
        atr.insert(AtrRule::new(sigma, flip_active(sigma, 2), Const::Int(0)).unwrap())
            .unwrap();

        let rules = grounder.ground(&atr);
        // The quarter rule is *not* instantiated: SomeDimeTail is derivable.
        let quarter_active: Vec<_> = rules
            .iter()
            .filter(|r| {
                r.head.predicate == sigma.atr_schemas[0].active && r.head.args[1] == Const::Int(3)
            })
            .collect();
        assert!(quarter_active.is_empty(), "quarter must not be tossed");
        // SomeDimeTail is derived from DimeTail(1, 1).
        assert!(rules
            .iter()
            .any(|r| r.head.predicate == Predicate::new("SomeDimeTail", 0)));
        // Σ is terminal for the perfect grounder (Appendix E).
        assert!(grounder.is_terminal(&atr));

        // The simple grounder, in contrast, *does* instantiate the quarter
        // rule (negation is ignored), so the same Σ is not terminal for it.
        let simple = SimpleGrounder::new(Arc::new(sigma.clone()));
        assert!(!simple.is_terminal(&atr));
    }

    #[test]
    fn appendix_e_second_case_no_dime_tails() {
        // Σ: both dimes show heads — now the quarter must be tossed, so Σ is
        // not terminal (Active_Flip(0.5, 3) is an undefined trigger).
        let grounder = dime_grounder();
        let sigma = grounder.sigma();
        let mut atr = AtrSet::new();
        for d in [1i64, 2] {
            atr.insert(AtrRule::new(sigma, flip_active(sigma, d), Const::Int(0)).unwrap())
                .unwrap();
        }
        let rules = grounder.ground(&atr);
        assert!(!grounder.is_terminal(&atr));
        let triggers = grounder.triggers(&atr, &rules);
        assert_eq!(triggers, vec![flip_active(sigma, 3)]);

        // Extending with the quarter toss yields a terminal configuration of
        // probability 1/8.
        let full = atr
            .extended(AtrRule::new(sigma, flip_active(sigma, 3), Const::Int(1)).unwrap())
            .unwrap();
        assert!(grounder.is_terminal(&full));
        assert_eq!(full.probability(sigma).unwrap(), Prob::ratio(1, 8));
    }

    #[test]
    fn empty_choice_set_stops_at_the_dime_stratum() {
        // With no choices at all, the dime tosses are undefined triggers and
        // grounding stops before the SomeDimeTail / quarter strata.
        let grounder = dime_grounder();
        let rules = grounder.ground(&AtrSet::new());
        let triggers = grounder.triggers(&AtrSet::new(), &rules);
        assert_eq!(triggers.len(), 2);
        // No DimeTail rule can be instantiated yet.
        assert!(!rules
            .iter()
            .any(|r| r.head.predicate == Predicate::new("DimeTail", 2)));
    }

    #[test]
    fn perfect_produces_no_more_rules_than_simple() {
        let grounder = dime_grounder();
        let sigma = grounder.sigma();
        let simple = SimpleGrounder::new(Arc::new(sigma.clone()));
        let mut atr = AtrSet::new();
        atr.insert(AtrRule::new(sigma, flip_active(sigma, 1), Const::Int(1)).unwrap())
            .unwrap();
        atr.insert(AtrRule::new(sigma, flip_active(sigma, 2), Const::Int(0)).unwrap())
            .unwrap();
        let perfect_rules = grounder.ground(&atr);
        let simple_rules = simple.ground(&atr);
        assert!(perfect_rules.len() <= simple_rules.len());
        for rule in perfect_rules.iter() {
            assert!(simple_rules.contains(rule));
        }
    }

    #[test]
    fn perfect_grounder_is_monotone() {
        let grounder = dime_grounder();
        let sigma = grounder.sigma();
        let small = AtrSet::new()
            .extended(AtrRule::new(sigma, flip_active(sigma, 1), Const::Int(0)).unwrap())
            .unwrap();
        let large = small
            .extended(AtrRule::new(sigma, flip_active(sigma, 2), Const::Int(0)).unwrap())
            .unwrap();
        let g_small = grounder.ground(&small);
        let g_large = grounder.ground(&large);
        for rule in g_small.iter() {
            assert!(g_large.contains(rule));
        }
    }

    #[test]
    fn constraint_free_network_program_works_with_the_perfect_grounder() {
        // The full Example 3.1 program is not stratified because of the ⊥
        // desugaring; the propagation fragment (infection + Uninfected) is.
        let mut db = Database::new();
        for i in 1..=2i64 {
            db.insert_fact("Router", [Const::Int(i)]);
        }
        db.insert_fact("Connected", [Const::Int(1), Const::Int(2)]);
        db.insert_fact("Connected", [Const::Int(2), Const::Int(1)]);
        db.insert_fact("Infected", [Const::Int(1), Const::Int(1)]);
        let propagation =
            crate::program::Program::new(network_resilience_program(0.1).rules()[..2].to_vec());
        let sigma = SigmaPi::translate(&propagation, &db).unwrap();
        let grounder = PerfectGrounder::new(Arc::new(sigma)).unwrap();
        assert!(grounder.stratum_count() >= 4);
        let rules = grounder.ground(&AtrSet::new());
        assert_eq!(grounder.triggers(&AtrSet::new(), &rules).len(), 1);
    }
}

//! The BCKOV semantics for positive generative Datalog (Appendix C).
//!
//! Bárány, ten Cate, Kimelfeld, Olteanu and Vagena \[3\] define the semantics
//! of *positive* GDatalog\[Δ\] programs directly over instances: a possible
//! outcome is a minimal model of the translated TGD program `Σ̃_Π` in which
//! every `Result` atom has positive probability. This module implements that
//! semantics as the **baseline** against which our grounder-based semantics
//! is compared: Theorem C.4 states that for positive programs whose simple
//! grounding is finite the two probability spaces are isomorphic, with the
//! isomorphism mapping a possible outcome to the unique stable model of its
//! ground program "modulo active" (i.e. after dropping the generated
//! `Active` atoms).

use crate::chase::{ChaseBudget, ChaseResult};
use crate::error::CoreError;
use crate::grounding::Grounder;
use crate::translate::SigmaPi;
use gdlog_data::match_atoms_indexed;
use gdlog_data::{Database, GroundAtom};
use gdlog_engine::StableModelLimits;
use gdlog_prob::Prob;

/// A BCKOV possible outcome: an instance together with its probability.
#[derive(Clone, Debug)]
pub struct BckovOutcome {
    /// The minimal model (an instance over `sch(Π)` plus `Result` atoms).
    pub instance: Database,
    /// The product of the probabilities of its `Result` atoms.
    pub probability: Prob,
}

/// The output of the BCKOV semantics: the explored possible outcomes plus the
/// unexplored (residual) mass.
#[derive(Clone, Debug)]
pub struct BckovOutput {
    /// The explored possible outcomes.
    pub outcomes: Vec<BckovOutcome>,
    /// Mass of anything not explored within the budget.
    pub residual_mass: Prob,
    /// Did the enumeration hit the budget?
    pub truncated: bool,
}

impl BckovOutput {
    /// Total explored mass.
    pub fn explored_mass(&self) -> Prob {
        Prob::sum(self.outcomes.iter().map(|o| o.probability))
    }
}

/// Enumerate the BCKOV possible outcomes of a *positive* program.
///
/// The instance-level chase interleaves (i) saturating all existential-free
/// rules (a least-fixpoint step) and (ii) branching over the outcomes of an
/// unresolved `Active` requirement. Because the program is positive the
/// saturation is exactly the minimal-model construction of \[3\].
pub fn bckov_output(sigma: &SigmaPi, budget: &ChaseBudget) -> Result<BckovOutput, CoreError> {
    for rule in &sigma.rules {
        if !rule.neg.is_empty() {
            return Err(CoreError::Validation(
                "the BCKOV semantics is only defined for positive programs".to_owned(),
            ));
        }
    }
    let mut output = BckovOutput {
        outcomes: Vec::new(),
        residual_mass: Prob::ZERO,
        truncated: false,
    };
    explore_instance(sigma, budget, &Database::new(), Prob::ONE, 0, &mut output)?;
    Ok(output)
}

fn saturate_instance(sigma: &SigmaPi, start: &Database) -> Database {
    let mut instance = start.clone();
    loop {
        let mut added = false;
        for rule in &sigma.rules {
            let homs = match_atoms_indexed(&rule.pos, &instance);
            for h in homs {
                let head = rule
                    .head
                    .apply_ground(&h)
                    .expect("safety guarantees ground heads");
                if instance.insert(head) {
                    added = true;
                }
            }
        }
        if !added {
            return instance;
        }
    }
}

fn unresolved_active(sigma: &SigmaPi, instance: &Database) -> Option<GroundAtom> {
    let mut candidates: Vec<GroundAtom> = instance
        .iter()
        .filter(|a| sigma.is_active_predicate(&a.predicate))
        .filter(|active| {
            let schema = sigma
                .schema_for_active(&active.predicate)
                .expect("registered");
            // Unresolved iff no Result atom with the same (p̄, q̄) prefix.
            !instance
                .atoms_of(&schema.result)
                .any(|r| r.args[..active.args.len()] == active.args[..])
        })
        .cloned()
        .collect();
    candidates.sort();
    candidates.into_iter().next()
}

fn explore_instance(
    sigma: &SigmaPi,
    budget: &ChaseBudget,
    start: &Database,
    path_prob: Prob,
    depth: usize,
    output: &mut BckovOutput,
) -> Result<(), CoreError> {
    let instance = saturate_instance(sigma, start);
    match unresolved_active(sigma, &instance) {
        None => {
            if output.outcomes.len() >= budget.max_outcomes {
                output.residual_mass = output.residual_mass.add(&path_prob);
                output.truncated = true;
                return Ok(());
            }
            // The BCKOV outcome is the instance *without* the auxiliary
            // Active atoms (they are an artefact of our shared translation;
            // the Σ̃ translation of Appendix C has no Active predicates).
            output.outcomes.push(BckovOutcome {
                instance: sigma.strip_active_only(&instance),
                probability: path_prob,
            });
            Ok(())
        }
        Some(active) => {
            if depth >= budget.max_depth {
                output.residual_mass = output.residual_mass.add(&path_prob);
                output.truncated = true;
                return Ok(());
            }
            let schema = sigma
                .schema_for_active(&active.predicate)
                .expect("registered");
            let branches = schema.outcomes(&active, budget.max_branching)?;
            let branch_mass = Prob::sum(branches.iter().map(|(_, p)| *p));
            let tail = path_prob.mul(&Prob::ONE.sub(&branch_mass));
            if tail.to_f64() > 1e-15 {
                output.residual_mass = output.residual_mass.add(&tail);
                output.truncated = true;
            }
            for (value, mass) in branches {
                let mut next = instance.clone();
                next.insert(schema.result_atom(&active, value));
                explore_instance(
                    sigma,
                    budget,
                    &next,
                    path_prob.mul(&mass),
                    depth + 1,
                    output,
                )?;
            }
            Ok(())
        }
    }
}

/// Check the isomorphism of Theorem C.4 between a grounder-based chase result
/// and the BCKOV output: the map sending a possible outcome `Σ ∪ G(Σ)` to its
/// unique stable model *modulo active* must be a probability-preserving
/// bijection onto the BCKOV possible outcomes.
pub fn isomorphic_to_bckov(
    grounder: &dyn Grounder,
    chase: &ChaseResult,
    bckov: &BckovOutput,
    limits: &StableModelLimits,
) -> Result<bool, CoreError> {
    let sigma = grounder.sigma();
    // Map each of our outcomes to (stable model modulo active, probability).
    let mut ours: Vec<(Vec<GroundAtom>, Prob)> = Vec::with_capacity(chase.outcomes.len());
    for outcome in &chase.outcomes {
        let models = outcome.stable_models(limits)?;
        if models.len() != 1 {
            return Ok(false);
        }
        let stripped = sigma.strip_active_only(&models[0]);
        ours.push((stripped.canonical_atoms(), outcome.probability));
    }
    let mut theirs: Vec<(Vec<GroundAtom>, Prob)> = bckov
        .outcomes
        .iter()
        .map(|o| (o.instance.canonical_atoms(), o.probability))
        .collect();
    if ours.len() != theirs.len() {
        return Ok(false);
    }
    ours.sort_by(|a, b| a.0.cmp(&b.0));
    theirs.sort_by(|a, b| a.0.cmp(&b.0));
    for ((m1, p1), (m2, p2)) in ours.iter().zip(theirs.iter()) {
        if m1 != m2 || !p1.approx_eq(p2, 1e-9) {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::{enumerate_outcomes, TriggerOrder};
    use crate::program::{network_resilience_program, Program};
    use crate::simple_grounder::SimpleGrounder;
    use gdlog_data::Const;
    use std::sync::Arc;

    /// The positive fragment of Example 3.1 (infection propagation only).
    fn positive_program() -> Program {
        Program::new(network_resilience_program(0.1).rules()[..1].to_vec())
    }

    fn line_db(n: i64) -> Database {
        let mut db = Database::new();
        for i in 1..=n {
            db.insert_fact("Router", [Const::Int(i)]);
        }
        for i in 1..n {
            db.insert_fact("Connected", [Const::Int(i), Const::Int(i + 1)]);
        }
        db.insert_fact("Infected", [Const::Int(1), Const::Int(1)]);
        db
    }

    #[test]
    fn bckov_outcomes_of_a_line_network() {
        let sigma = SigmaPi::translate(&positive_program(), &line_db(3)).unwrap();
        let output = bckov_output(&sigma, &ChaseBudget::default()).unwrap();
        assert!(!output.truncated);
        assert_eq!(output.explored_mass(), Prob::ONE);
        // Outcomes: router 2 resists (0.9); router 2 infected & router 3
        // resists (0.1·0.9); both infected (0.1·0.1) → 3 outcomes.
        assert_eq!(output.outcomes.len(), 3);
        let mut probs: Vec<Prob> = output.outcomes.iter().map(|o| o.probability).collect();
        probs.sort_by(|a, b| a.to_f64().partial_cmp(&b.to_f64()).unwrap());
        assert_eq!(probs[0], Prob::ratio(1, 100));
        assert_eq!(probs[1], Prob::ratio(9, 100));
        assert_eq!(probs[2], Prob::ratio(9, 10));
    }

    #[test]
    fn bckov_rejects_programs_with_negation() {
        let sigma = SigmaPi::translate(&network_resilience_program(0.1), &line_db(2)).unwrap();
        assert!(bckov_output(&sigma, &ChaseBudget::default()).is_err());
    }

    #[test]
    fn theorem_c4_isomorphism_on_the_line_network() {
        let sigma = Arc::new(SigmaPi::translate(&positive_program(), &line_db(4)).unwrap());
        let grounder = SimpleGrounder::new(sigma.clone());
        let chase =
            enumerate_outcomes(&grounder, &ChaseBudget::default(), TriggerOrder::First).unwrap();
        let bckov = bckov_output(&sigma, &ChaseBudget::default()).unwrap();
        assert!(
            isomorphic_to_bckov(&grounder, &chase, &bckov, &StableModelLimits::default()).unwrap()
        );
        // Sanity: both sides explore the same number of outcomes and the same
        // total mass.
        assert_eq!(chase.outcomes.len(), bckov.outcomes.len());
        assert_eq!(chase.explored_mass(), bckov.explored_mass());
    }

    #[test]
    fn isomorphism_fails_when_probabilities_differ() {
        let sigma_01 = Arc::new(SigmaPi::translate(&positive_program(), &line_db(3)).unwrap());
        let grounder = SimpleGrounder::new(sigma_01.clone());
        let chase =
            enumerate_outcomes(&grounder, &ChaseBudget::default(), TriggerOrder::First).unwrap();
        // BCKOV output of a *different* parameterisation (p = 0.5).
        let other_program = Program::new(network_resilience_program(0.5).rules()[..1].to_vec());
        let sigma_05 = SigmaPi::translate(&other_program, &line_db(3)).unwrap();
        let bckov = bckov_output(&sigma_05, &ChaseBudget::default()).unwrap();
        assert!(
            !isomorphic_to_bckov(&grounder, &chase, &bckov, &StableModelLimits::default()).unwrap()
        );
    }
}

//! Qualitative comparison of semantics (Definition 3.11).
//!
//! Different grounders induce different probability spaces for the same
//! program and database. `Π_G(D)` is *as good as* `Π_G′(D)` if, for every set
//! of stable models `I`, the probability mass that `G` assigns to finite
//! outcomes inducing `I` is at least the mass `G′` assigns. Theorem 3.12
//! (positive programs) and Theorem 5.3 (stratified programs) state that the
//! simple, resp. perfect, grounder is as good as any other; this module makes
//! the relation executable so the experiment suite can verify those
//! statements on concrete inputs.

use crate::outcome::ModelSetKey;
use crate::semantics::OutputSpace;
use gdlog_prob::Prob;
use std::collections::BTreeSet;

/// The per-event masses of two output spaces, plus the two directions of the
/// "as good as" relation.
#[derive(Clone, Debug)]
pub struct SemanticsComparison {
    /// Every set of stable models observed in either space, with the mass
    /// each space assigns to it (left, right).
    pub events: Vec<(ModelSetKey, Prob, Prob)>,
    /// Is the left space as good as the right one?
    pub left_as_good_as_right: bool,
    /// Is the right space as good as the left one?
    pub right_as_good_as_left: bool,
    /// Residual (error/unexplored) mass of the left space.
    pub left_residual: Prob,
    /// Residual (error/unexplored) mass of the right space.
    pub right_residual: Prob,
}

impl SemanticsComparison {
    /// Are the two spaces equivalent event-by-event?
    pub fn equivalent(&self) -> bool {
        self.left_as_good_as_right && self.right_as_good_as_left
    }
}

/// Numerical tolerance used when one of the masses is not exact.
const TOLERANCE: f64 = 1e-9;

fn at_least(a: &Prob, b: &Prob) -> bool {
    match (a.as_exact(), b.as_exact()) {
        (Some(x), Some(y)) => x >= y,
        _ => a.to_f64() + TOLERANCE >= b.to_f64(),
    }
}

/// Compare two output spaces event by event.
pub fn compare_outputs(left: &OutputSpace, right: &OutputSpace) -> SemanticsComparison {
    let keys: BTreeSet<ModelSetKey> = left
        .outcomes()
        .iter()
        .map(|(_, k)| k.clone())
        .chain(right.outcomes().iter().map(|(_, k)| k.clone()))
        .collect();
    let mut events = Vec::with_capacity(keys.len());
    let mut left_good = true;
    let mut right_good = true;
    for key in keys {
        let l = left.event_probability(&key);
        let r = right.event_probability(&key);
        if !at_least(&l, &r) {
            left_good = false;
        }
        if !at_least(&r, &l) {
            right_good = false;
        }
        events.push((key, l, r));
    }
    SemanticsComparison {
        events,
        left_as_good_as_right: left_good,
        right_as_good_as_left: right_good,
        left_residual: left.residual_mass(),
        right_residual: right.residual_mass(),
    }
}

/// Is `left` as good as `right` (Definition 3.11)?
pub fn as_good_as(left: &OutputSpace, right: &OutputSpace) -> bool {
    compare_outputs(left, right).left_as_good_as_right
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::{enumerate_outcomes, ChaseBudget, TriggerOrder};
    use crate::grounding::Grounder;
    use crate::perfect_grounder::PerfectGrounder;
    use crate::program::{dime_quarter_program, network_resilience_program, Program};
    use crate::simple_grounder::SimpleGrounder;
    use crate::translate::SigmaPi;
    use gdlog_data::{Const, Database};
    use gdlog_engine::StableModelLimits;
    use std::sync::Arc;

    fn dime_db() -> Database {
        let mut db = Database::new();
        db.insert_fact("Dime", [Const::Int(1)]);
        db.insert_fact("Dime", [Const::Int(2)]);
        db.insert_fact("Quarter", [Const::Int(3)]);
        db
    }

    fn space_for(grounder: &dyn Grounder) -> OutputSpace {
        let chase =
            enumerate_outcomes(grounder, &ChaseBudget::default(), TriggerOrder::First).unwrap();
        OutputSpace::from_chase(&chase, &StableModelLimits::default()).unwrap()
    }

    #[test]
    fn theorem_5_3_perfect_is_as_good_as_simple_on_the_dime_program() {
        let sigma = Arc::new(SigmaPi::translate(&dime_quarter_program(), &dime_db()).unwrap());
        let simple = SimpleGrounder::new(sigma.clone());
        let perfect = PerfectGrounder::new(sigma).unwrap();
        let s_space = space_for(&simple);
        let p_space = space_for(&perfect);
        let cmp = compare_outputs(&p_space, &s_space);
        assert!(cmp.left_as_good_as_right, "perfect must dominate simple");
        assert!(as_good_as(&p_space, &s_space));
        // In this example both grounders happen to explore all finite mass,
        // but the simple grounder needs more ground rules to do so; the
        // dominance is still (weakly) satisfied in both directions here.
        assert!(cmp.events.iter().all(|(_, l, r)| at_least(l, r)));
        assert_eq!(cmp.left_residual, Prob::ZERO);
    }

    #[test]
    fn theorem_3_12_simple_equals_itself_on_positive_programs() {
        // A positive program: only the infection-propagation rule.
        let program = Program::new(network_resilience_program(0.1).rules()[..1].to_vec());
        let mut db = Database::new();
        db.insert_fact("Router", [Const::Int(1)]);
        db.insert_fact("Router", [Const::Int(2)]);
        db.insert_fact("Connected", [Const::Int(1), Const::Int(2)]);
        db.insert_fact("Connected", [Const::Int(2), Const::Int(1)]);
        db.insert_fact("Infected", [Const::Int(1), Const::Int(1)]);
        let sigma = Arc::new(SigmaPi::translate(&program, &db).unwrap());
        let simple = SimpleGrounder::new(sigma.clone());
        let perfect = PerfectGrounder::new(sigma).unwrap();
        let cmp = compare_outputs(&space_for(&simple), &space_for(&perfect));
        assert!(cmp.equivalent(), "positive programs: all grounders agree");
    }

    #[test]
    fn comparison_detects_strict_dominance() {
        // Build two artificial spaces from the same program but different
        // budgets: the truncated one loses mass, so the full one strictly
        // dominates it.
        let sigma = Arc::new(SigmaPi::translate(&dime_quarter_program(), &dime_db()).unwrap());
        let grounder = SimpleGrounder::new(sigma);
        let full = space_for(&grounder);
        let truncated = {
            let chase = enumerate_outcomes(
                &grounder,
                &ChaseBudget {
                    max_outcomes: 2,
                    ..ChaseBudget::default()
                },
                TriggerOrder::First,
            )
            .unwrap();
            OutputSpace::from_chase(&chase, &StableModelLimits::default()).unwrap()
        };
        let cmp = compare_outputs(&full, &truncated);
        assert!(cmp.left_as_good_as_right);
        assert!(!cmp.right_as_good_as_left);
        assert!(!cmp.equivalent());
        assert!(cmp.right_residual.is_positive());
    }
}

//! The chase procedure for generative Datalog¬ (Section 4).
//!
//! The chase operates on configurations of probabilistic choices (ground AtR
//! sets). A *trigger* for `G(Σ)` on `Σ` is an `Active` atom occurring in
//! `heads(G(Σ))` on which `AtR_Σ` is not yet defined; applying it branches
//! over every outcome of positive probability (Definition 4.1). A chase tree
//! (Definition 4.2) applies triggers until none is left; the results of its
//! finite maximal paths are exactly the finite possible outcomes
//! (Lemma 4.5), independently of the order in which triggers are applied
//! (Lemma 4.4).
//!
//! [`enumerate_outcomes`] explores the chase tree exhaustively up to a
//! [`ChaseBudget`]; the probability mass of anything not fully explored
//! (paths that exceed the depth budget, tails of infinite supports, paths
//! whose probability falls below the cut-off) is accumulated in
//! [`ChaseResult::residual_mass`]. By Theorem 3.9 the explored mass plus the
//! residual equals one.

use crate::error::CoreError;
use crate::exec::Executor;
use crate::grounding::{AtrRule, AtrSet, Grounder, Grounding};
use gdlog_data::GroundAtom;
use gdlog_engine::CancelToken;
use gdlog_prob::Prob;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crate::outcome::PossibleOutcome;

/// How the chase selects which trigger to apply at a node. By Lemma 4.4 the
/// set of finite results is the same for every policy; exposing the policy
/// lets tests verify exactly that.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TriggerOrder {
    /// Apply the smallest trigger in the canonical atom order (deterministic
    /// default).
    #[default]
    First,
    /// Apply the largest trigger in the canonical atom order.
    Last,
    /// Apply the trigger at a pseudo-random position derived from the node's
    /// choice set (deterministic per node, but "shuffled" across the tree).
    Scrambled,
}

impl TriggerOrder {
    fn pick(&self, triggers: &[GroundAtom], depth: usize) -> usize {
        match self {
            TriggerOrder::First => 0,
            TriggerOrder::Last => triggers.len() - 1,
            TriggerOrder::Scrambled => {
                // A deterministic hash of the depth and the trigger atoms
                // themselves, so equal-depth siblings with equally many (but
                // different) triggers genuinely pick different positions.
                use std::hash::{Hash, Hasher};
                let mut hasher = std::collections::hash_map::DefaultHasher::new();
                depth.hash(&mut hasher);
                for trigger in triggers {
                    trigger.hash(&mut hasher);
                }
                (hasher.finish() as usize) % triggers.len()
            }
        }
    }
}

/// Exploration budget for the exact chase enumeration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaseBudget {
    /// Maximum number of finite outcomes to produce.
    pub max_outcomes: usize,
    /// Maximum number of trigger applications along a single path (chase
    /// depth). Paths that exceed it contribute to the residual mass.
    pub max_depth: usize,
    /// Outcomes of a single trigger application are enumerated up to this
    /// many branches (relevant for distributions with countably infinite
    /// support); the remaining tail contributes to the residual mass.
    pub max_branching: usize,
    /// Paths whose accumulated probability falls strictly below this bound
    /// are abandoned and contribute to the residual mass. Set to `0.0` to
    /// disable.
    pub min_path_probability: f64,
}

impl Default for ChaseBudget {
    fn default() -> Self {
        ChaseBudget {
            max_outcomes: 100_000,
            max_depth: 64,
            max_branching: 64,
            min_path_probability: 0.0,
        }
    }
}

impl ChaseBudget {
    /// A small budget suitable for unit tests and examples.
    pub fn small() -> Self {
        ChaseBudget {
            max_outcomes: 10_000,
            max_depth: 32,
            max_branching: 16,
            min_path_probability: 0.0,
        }
    }
}

/// The result of an exhaustive (budgeted) chase enumeration.
#[derive(Clone, Debug)]
pub struct ChaseResult {
    /// The finite possible outcomes explored, with their probabilities.
    pub outcomes: Vec<PossibleOutcome>,
    /// Probability mass of everything that was not fully explored: infinite
    /// paths (the error event) plus finite mass beyond the budget.
    pub residual_mass: Prob,
    /// Did the enumeration hit the budget anywhere? When `false`,
    /// `residual_mass` is exactly the error-event probability.
    pub truncated: bool,
    /// Number of chase-tree nodes visited.
    pub nodes_visited: usize,
    /// Did a [`CancelToken`] cut the enumeration short? The result is still
    /// exact — cancelled subtrees are accounted in `residual_mass` like any
    /// budget cut (and `truncated` is set alongside) — but *which* subtrees
    /// were cut depends on when the token fired, so an interrupted result is
    /// not reproducible and must never be treated as golden.
    pub interrupted: bool,
}

impl ChaseResult {
    /// Total probability mass of the explored finite outcomes.
    pub fn explored_mass(&self) -> Prob {
        Prob::sum(self.outcomes.iter().map(|o| o.probability))
    }

    /// Explored plus residual mass (should always be ≈ 1; exactly 1 when all
    /// probabilities are exact rationals).
    pub fn total_mass(&self) -> Prob {
        self.explored_mass().add(&self.residual_mass)
    }

    /// The first difference from `other` under **strict** equality — outcome
    /// list in order (choice sets and exact probabilities), residual mass,
    /// truncation flag and visited-node count — or `None` when the results
    /// are bit-identical. This is *the* definition of "bit-identical" that
    /// the parallel executor guarantees; the property tests, the chase
    /// benchmarks and CI's thread matrix all compare through it so the
    /// checked fields cannot drift apart.
    pub fn diff(&self, other: &ChaseResult) -> Option<String> {
        if self.outcomes.len() != other.outcomes.len() {
            return Some(format!(
                "outcome count: {} vs {}",
                self.outcomes.len(),
                other.outcomes.len()
            ));
        }
        for (i, (a, b)) in self.outcomes.iter().zip(&other.outcomes).enumerate() {
            if a.atr != b.atr {
                return Some(format!("outcome {i} choice set: {} vs {}", a.atr, b.atr));
            }
            if a.probability != b.probability {
                return Some(format!(
                    "outcome {i} probability: {} vs {}",
                    a.probability, b.probability
                ));
            }
        }
        if self.residual_mass.to_string() != other.residual_mass.to_string() {
            return Some(format!(
                "residual mass: {} vs {}",
                self.residual_mass, other.residual_mass
            ));
        }
        if self.truncated != other.truncated {
            return Some(format!(
                "truncated: {} vs {}",
                self.truncated, other.truncated
            ));
        }
        if self.nodes_visited != other.nodes_visited {
            return Some(format!(
                "nodes visited: {} vs {}",
                self.nodes_visited, other.nodes_visited
            ));
        }
        if self.interrupted != other.interrupted {
            return Some(format!(
                "interrupted: {} vs {}",
                self.interrupted, other.interrupted
            ));
        }
        None
    }
}

/// Exhaustively enumerate the finite possible outcomes of the translated
/// program relative to `grounder`, following the chase procedure
/// sequentially on the calling thread.
pub fn enumerate_outcomes(
    grounder: &dyn Grounder,
    budget: &ChaseBudget,
    order: TriggerOrder,
) -> Result<ChaseResult, CoreError> {
    enumerate_outcomes_with(grounder, budget, order, &Executor::sequential())
}

/// [`enumerate_outcomes`] under an explicit execution policy.
///
/// With a parallel [`Executor`] the chase tree is explored by the pool —
/// each sibling subtree extends an `Arc`-shared snapshot of its parent's
/// grounding, so subtrees share no mutable state — and the per-subtree
/// results are then merged **in trigger order** by a sequential replay, so
/// the outcome list, every probability, the residual mass, `truncated` and
/// `nodes_visited` are bit-identical to the sequential enumeration
/// regardless of the thread count or scheduling (see `ARCHITECTURE.md`,
/// "Parallel chase exploration").
pub fn enumerate_outcomes_with(
    grounder: &dyn Grounder,
    budget: &ChaseBudget,
    order: TriggerOrder,
    executor: &Executor,
) -> Result<ChaseResult, CoreError> {
    enumerate_outcomes_cancellable(grounder, budget, order, executor, &CancelToken::never())
}

/// [`enumerate_outcomes_with`] under a cooperative [`CancelToken`].
///
/// The token is polled at every chase-node expansion (and re-checked after
/// each node's grounding, so a saturation the grounder broke out of early
/// can never masquerade as a terminal leaf). A cancelled subtree is cut
/// exactly like a budget cut: its path mass moves to `residual_mass`,
/// `truncated` is set, and additionally [`ChaseResult::interrupted`] records
/// that the cut was a cancellation — the invariant `explored + residual = 1`
/// holds for interrupted results too.
pub fn enumerate_outcomes_cancellable(
    grounder: &dyn Grounder,
    budget: &ChaseBudget,
    order: TriggerOrder,
    executor: &Executor,
    cancel: &CancelToken,
) -> Result<ChaseResult, CoreError> {
    if budget.max_outcomes == 0 {
        return Err(CoreError::Budget(
            "max_outcomes must be at least one".to_owned(),
        ));
    }
    let mut result = ChaseResult {
        outcomes: Vec::new(),
        residual_mass: Prob::ZERO,
        truncated: false,
        nodes_visited: 0,
        interrupted: false,
    };
    match executor.pool() {
        None => explore(
            grounder,
            budget,
            order,
            AtrSet::new(),
            None,
            Prob::ONE,
            0,
            cancel,
            &mut result,
        )?,
        Some(pool) => {
            let ctx = Ctx {
                grounder,
                budget,
                order,
                found: AtomicUsize::new(0),
                cancel,
            };
            let root = Arc::new(Cell::new());
            pool.scope(|scope| {
                let ctx = &ctx;
                let root = Arc::clone(&root);
                scope.spawn(move |scope| {
                    speculate(ctx, scope, AtrSet::new(), None, Prob::ONE, 0, root)
                });
            });
            replay(
                grounder,
                budget,
                order,
                take_node(root),
                cancel,
                &mut result,
            )?;
        }
    }
    Ok(result)
}

/// Children are dispatched to the pool only above this depth; below it a
/// subtree is explored inline by the task that owns it. With binary
/// branching this yields up to 2¹² parallel subtrees — far more than any
/// realistic worker count — while keeping per-task overhead negligible for
/// deep trees.
const SPLIT_DEPTH: usize = 12;

/// What the parallel phase found out about one chase node. The variants
/// mirror the branch structure of [`explore`] exactly; the per-node
/// *decisions* that depend on global traversal state (the outcome budget)
/// are deferred to the sequential replay.
enum Node {
    /// Skipped speculatively because the outcome budget looked exhausted.
    /// The replay re-explores it sequentially if (and only if) the budget
    /// turns out not to be full when the walk reaches it in trigger order.
    Deferred {
        atr: AtrSet,
        path_prob: Prob,
        depth: usize,
    },
    /// `path_prob` is below the path-probability cut-off (a purely local
    /// decision, safe to take in parallel).
    MinPathCut { path_prob: Prob },
    /// A terminal configuration: a finite possible outcome.
    Leaf(Box<PossibleOutcome>),
    /// A non-terminal node at the depth budget.
    DepthCut { path_prob: Prob },
    /// A trigger application: children in branch (outcome) order.
    Branch {
        path_prob: Prob,
        support_cut: bool,
        tail: Prob,
        children: Vec<Arc<Cell>>,
    },
    /// A schema/branch-enumeration failure at this node. Sequentially the
    /// error is raised *after* the node's entry checks, so the replay still
    /// applies outcome-budget and path-probability pruning first (a pruned
    /// node never surfaces its error) — hence the `path_prob`.
    Failed { path_prob: Prob, error: CoreError },
    /// A failure constructing this child in its parent's branch loop.
    /// Sequentially the error is raised *before* the child node is entered,
    /// so the replay surfaces it unconditionally, without counting a visit.
    FailedChild(CoreError),
}

/// A write-once slot filled by exactly one exploration task.
type Cell = OnceLock<Node>;

struct Ctx<'a> {
    grounder: &'a dyn Grounder,
    budget: &'a ChaseBudget,
    order: TriggerOrder,
    /// Outcomes discovered so far across all tasks — a heuristic used only
    /// to stop speculative work once the budget *could* be full; the replay
    /// re-establishes the exact sequential semantics.
    found: AtomicUsize,
    /// Cooperative cancellation: once set, speculation defers every node it
    /// reaches and the replay cuts them to residual mass.
    cancel: &'a CancelToken,
}

fn set_node(cell: &Cell, node: Node) {
    if cell.set(node).is_err() {
        unreachable!("chase node cell filled twice");
    }
}

fn take_node(cell: Arc<Cell>) -> Node {
    Arc::try_unwrap(cell)
        .unwrap_or_else(|_| unreachable!("chase node cell still shared after the scope"))
        .into_inner()
        .expect("every exploration task fills its cell")
}

/// The parallel exploration phase: compute this node's grounding and local
/// structure, then fan its children out to the pool. Performs exactly the
/// per-node work of [`explore`] *except* for the decisions that depend on
/// global traversal order (outcome-budget pruning and result accumulation),
/// which [`replay`] takes afterwards.
fn speculate<'s>(
    ctx: &'s Ctx<'s>,
    scope: &rayon::Scope<'s>,
    atr: AtrSet,
    parent: Option<(AtrSet, Grounding)>,
    path_prob: Prob,
    depth: usize,
    cell: Arc<Cell>,
) {
    // A cancelled speculation defers: the replay re-enters the node
    // sequentially, sees the cancelled token, and cuts it to residual mass
    // without redoing any grounding work.
    if ctx.cancel.is_cancelled() || ctx.found.load(Ordering::Relaxed) >= ctx.budget.max_outcomes {
        set_node(
            &cell,
            Node::Deferred {
                atr,
                path_prob,
                depth,
            },
        );
        return;
    }
    if path_prob.to_f64() < ctx.budget.min_path_probability {
        set_node(&cell, Node::MinPathCut { path_prob });
        return;
    }

    let mut grounding = match parent {
        Some((parent_atr, mut parent_grounding)) => {
            ctx.grounder
                .ground_from(&atr, &parent_atr, &mut parent_grounding)
        }
        None => ctx.grounder.ground_node(&atr),
    };

    // Re-check after grounding: a cancelled grounder may have broken out of
    // saturation early, so this node's rule set (and hence its trigger set)
    // cannot be trusted to decide leaf-ness. Defer it; the replay cuts it.
    if ctx.cancel.is_cancelled() {
        set_node(
            &cell,
            Node::Deferred {
                atr,
                path_prob,
                depth,
            },
        );
        return;
    }
    let triggers = ctx.grounder.triggers(&atr, grounding.rules());

    if triggers.is_empty() {
        ctx.found.fetch_add(1, Ordering::Relaxed);
        set_node(
            &cell,
            Node::Leaf(Box::new(PossibleOutcome::new(
                atr,
                grounding.into_rules(),
                path_prob,
            ))),
        );
        return;
    }

    if depth >= ctx.budget.max_depth {
        set_node(&cell, Node::DepthCut { path_prob });
        return;
    }

    let trigger = triggers[ctx.order.pick(&triggers, depth)].clone();
    let schema = match ctx.grounder.sigma().schema_for_active(&trigger.predicate) {
        Some(schema) => schema,
        None => {
            set_node(
                &cell,
                Node::Failed {
                    path_prob,
                    error: CoreError::Validation(format!(
                        "trigger {trigger} does not use a generated Active predicate"
                    )),
                },
            );
            return;
        }
    };
    let mut branches = match schema.outcomes(&trigger, ctx.budget.max_branching.saturating_add(1)) {
        Ok(branches) => branches,
        Err(e) => {
            set_node(
                &cell,
                Node::Failed {
                    path_prob,
                    error: e.into(),
                },
            );
            return;
        }
    };
    let support_cut = branches.len() > ctx.budget.max_branching;
    branches.truncate(ctx.budget.max_branching);
    let branch_mass = Prob::sum(branches.iter().map(|(_, p)| *p));
    let tail = path_prob.mul(&Prob::ONE.sub(&branch_mass));

    let mut children = Vec::with_capacity(branches.len());
    for (outcome_value, mass) in branches {
        let child_cell = Arc::new(Cell::new());
        children.push(Arc::clone(&child_cell));
        // A construction failure becomes the child's node: the replay walks
        // the earlier children normally and surfaces the error exactly where
        // the sequential recursion would have.
        let rule = match AtrRule::new(ctx.grounder.sigma(), trigger.clone(), outcome_value) {
            Ok(rule) => rule,
            Err(e) => {
                set_node(&child_cell, Node::FailedChild(e));
                break;
            }
        };
        let child_atr = match atr.extended(rule) {
            Ok(child_atr) => child_atr,
            Err(e) => {
                set_node(&child_cell, Node::FailedChild(e));
                break;
            }
        };
        // O(1) structural snapshot: the child owns its view of the parent's
        // grounding, so sibling tasks share no mutable state. Taking the
        // snapshots serially here preserves the exact representation
        // evolution (freeze/flatten points) of the sequential descent.
        let child_parent = Some((atr.clone(), grounding.snapshot()));
        let child_prob = path_prob.mul(&mass);
        if depth < SPLIT_DEPTH {
            scope.spawn(move |scope| {
                speculate(
                    ctx,
                    scope,
                    child_atr,
                    child_parent,
                    child_prob,
                    depth + 1,
                    child_cell,
                )
            });
        } else {
            speculate(
                ctx,
                scope,
                child_atr,
                child_parent,
                child_prob,
                depth + 1,
                child_cell,
            );
        }
    }
    set_node(
        &cell,
        Node::Branch {
            path_prob,
            support_cut,
            tail,
            children,
        },
    );
}

/// The deterministic merge: walk the speculatively explored tree in trigger
/// order — the exact visit order of the sequential [`explore`] — applying
/// the order-dependent budget decisions and accumulating outcomes and
/// residual mass. Because every accumulation happens in the sequential
/// order, the result is bit-identical to the sequential enumeration (resid-
/// ual float adds included); subtrees the speculation skipped are explored
/// sequentially on demand, so the heuristic can never change the result.
fn replay(
    grounder: &dyn Grounder,
    budget: &ChaseBudget,
    order: TriggerOrder,
    node: Node,
    cancel: &CancelToken,
    result: &mut ChaseResult,
) -> Result<(), CoreError> {
    match node {
        // `explore` performs the node count and both budget checks itself.
        Node::Deferred {
            atr,
            path_prob,
            depth,
        } => {
            return explore(
                grounder, budget, order, atr, None, path_prob, depth, cancel, result,
            );
        }
        // Raised in the parent's branch loop, before this node is entered.
        Node::FailedChild(e) => return Err(e),
        _ => {}
    }

    result.nodes_visited += 1;
    let path_prob = match &node {
        Node::MinPathCut { path_prob }
        | Node::DepthCut { path_prob }
        | Node::Branch { path_prob, .. }
        | Node::Failed { path_prob, .. } => *path_prob,
        Node::Leaf(outcome) => outcome.probability,
        Node::Deferred { .. } | Node::FailedChild(_) => unreachable!("handled above"),
    };

    if cancel.is_cancelled() {
        result.residual_mass = result.residual_mass.add(&path_prob);
        result.truncated = true;
        result.interrupted = true;
        return Ok(());
    }
    if result.outcomes.len() >= budget.max_outcomes {
        result.residual_mass = result.residual_mass.add(&path_prob);
        result.truncated = true;
        return Ok(());
    }
    if path_prob.to_f64() < budget.min_path_probability {
        result.residual_mass = result.residual_mass.add(&path_prob);
        result.truncated = true;
        return Ok(());
    }

    match node {
        Node::Leaf(outcome) => {
            result.outcomes.push(*outcome);
        }
        Node::DepthCut { path_prob } => {
            result.residual_mass = result.residual_mass.add(&path_prob);
            result.truncated = true;
        }
        Node::Branch {
            support_cut,
            tail,
            children,
            ..
        } => {
            if support_cut {
                result.residual_mass = result.residual_mass.add(&tail);
                result.truncated = true;
            } else if tail.is_positive() {
                result.residual_mass = result.residual_mass.add(&tail);
            }
            for child in children {
                replay(grounder, budget, order, take_node(child), cancel, result)?;
            }
        }
        Node::Failed { error, .. } => return Err(error),
        // A `MinPathCut` always fails the cut-off re-check above, and the
        // remaining variants were dispatched before the checks.
        Node::MinPathCut { .. } | Node::Deferred { .. } | Node::FailedChild(_) => unreachable!(),
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn explore(
    grounder: &dyn Grounder,
    budget: &ChaseBudget,
    order: TriggerOrder,
    atr: AtrSet,
    parent: Option<(&AtrSet, &mut Grounding)>,
    path_prob: Prob,
    depth: usize,
    cancel: &CancelToken,
    result: &mut ChaseResult,
) -> Result<(), CoreError> {
    result.nodes_visited += 1;

    // Cancellation cuts exactly like a budget cut: the whole subtree's mass
    // is accounted in the residual, keeping explored + residual = 1.
    if cancel.is_cancelled() {
        result.residual_mass = result.residual_mass.add(&path_prob);
        result.truncated = true;
        result.interrupted = true;
        return Ok(());
    }

    // Once the outcome budget is full, no further node can contribute an
    // outcome: stop before doing any grounding work, so `max_outcomes`
    // bounds the number of nodes visited, not just the outcomes reported.
    if result.outcomes.len() >= budget.max_outcomes {
        result.residual_mass = result.residual_mass.add(&path_prob);
        result.truncated = true;
        return Ok(());
    }

    if path_prob.to_f64() < budget.min_path_probability {
        result.residual_mass = result.residual_mass.add(&path_prob);
        result.truncated = true;
        return Ok(());
    }

    // Each node extends its parent's configuration by one choice, so the
    // parent's grounding seeds an incremental saturation over a structurally
    // shared snapshot (all siblings share the parent's rule-log prefix).
    let mut grounding = match parent {
        Some((parent_atr, parent_grounding)) => {
            grounder.ground_from(&atr, parent_atr, parent_grounding)
        }
        None => grounder.ground_node(&atr),
    };

    // Re-check after grounding, *before* the leaf decision: a cancelled
    // grounder may have broken out of saturation early, and an incomplete
    // rule set must never be recorded as a terminal outcome.
    if cancel.is_cancelled() {
        result.residual_mass = result.residual_mass.add(&path_prob);
        result.truncated = true;
        result.interrupted = true;
        return Ok(());
    }
    let triggers = grounder.triggers(&atr, grounding.rules());

    if triggers.is_empty() {
        // Leaf node: Σ is terminal; `Σ ∪ G(Σ)` is a finite possible outcome.
        result
            .outcomes
            .push(PossibleOutcome::new(atr, grounding.into_rules(), path_prob));
        return Ok(());
    }

    if depth >= budget.max_depth {
        // The path is cut: its mass is unexplored (it may correspond to an
        // infinite possible outcome, i.e. the error event, or merely to a
        // deeper finite one).
        result.residual_mass = result.residual_mass.add(&path_prob);
        result.truncated = true;
        return Ok(());
    }

    // Apply one trigger (Definition 4.1): branch over every outcome with
    // positive probability. Enumerating one outcome past the branching
    // budget detects exactly whether the support was cut.
    let trigger = triggers[order.pick(&triggers, depth)].clone();
    let schema = grounder
        .sigma()
        .schema_for_active(&trigger.predicate)
        .ok_or_else(|| {
            CoreError::Validation(format!(
                "trigger {trigger} does not use a generated Active predicate"
            ))
        })?;
    let mut branches = schema.outcomes(&trigger, budget.max_branching.saturating_add(1))?;
    let support_cut = branches.len() > budget.max_branching;
    branches.truncate(budget.max_branching);

    // Whenever `max_branching` cut the support, the unenumerated tail is
    // accounted exactly in `Prob` — no matter how small its float value —
    // so `total_mass()` stays 1 and `truncated` reflects the cut.
    let branch_mass = Prob::sum(branches.iter().map(|(_, p)| *p));
    let tail = path_prob.mul(&Prob::ONE.sub(&branch_mass));
    if support_cut {
        result.residual_mass = result.residual_mass.add(&tail);
        result.truncated = true;
    } else if tail.is_positive() {
        // Float dust from inexact parameters: keep the masses summing to ~1
        // without claiming a budget truncation.
        result.residual_mass = result.residual_mass.add(&tail);
    }

    for (outcome_value, mass) in branches {
        let rule = AtrRule::new(grounder.sigma(), trigger.clone(), outcome_value)?;
        let child = atr.extended(rule)?;
        explore(
            grounder,
            budget,
            order,
            child,
            Some((&atr, &mut grounding)),
            path_prob.mul(&mass),
            depth + 1,
            cancel,
            result,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfect_grounder::PerfectGrounder;
    use crate::program::{coin_program, dime_quarter_program, network_resilience_program};
    use crate::simple_grounder::SimpleGrounder;
    use crate::translate::SigmaPi;
    use gdlog_data::{Const, Database};
    use gdlog_engine::StableModelLimits;
    use std::sync::Arc;

    fn network_db(n: i64) -> Database {
        let mut db = Database::new();
        for i in 1..=n {
            db.insert_fact("Router", [Const::Int(i)]);
            for j in 1..=n {
                if i != j {
                    db.insert_fact("Connected", [Const::Int(i), Const::Int(j)]);
                }
            }
        }
        db.insert_fact("Infected", [Const::Int(1), Const::Int(1)]);
        db
    }

    fn simple_for(program: &crate::Program, db: &Database) -> SimpleGrounder {
        SimpleGrounder::new(Arc::new(SigmaPi::translate(program, db).unwrap()))
    }

    #[test]
    fn coin_program_has_two_outcomes_of_probability_one_half() {
        let grounder = simple_for(&coin_program(), &Database::new());
        let result =
            enumerate_outcomes(&grounder, &ChaseBudget::default(), TriggerOrder::First).unwrap();
        assert_eq!(result.outcomes.len(), 2);
        assert!(!result.truncated);
        assert_eq!(result.residual_mass, Prob::ZERO);
        assert_eq!(result.total_mass(), Prob::ONE);
        for outcome in &result.outcomes {
            assert_eq!(outcome.probability, Prob::ratio(1, 2));
            assert_eq!(outcome.choice_count(), 1);
        }
        // One outcome (tails) has two stable models, the other (heads) none —
        // exactly the situation described in Section 3.
        let limits = StableModelLimits::default();
        let mut model_counts: Vec<usize> = result
            .outcomes
            .iter()
            .map(|o| o.stable_models(&limits).unwrap().len())
            .collect();
        model_counts.sort();
        assert_eq!(model_counts, vec![0, 2]);
    }

    #[test]
    fn network_example_3_10_outcome_structure() {
        let grounder = simple_for(&network_resilience_program(0.1), &network_db(3));
        let result =
            enumerate_outcomes(&grounder, &ChaseBudget::default(), TriggerOrder::First).unwrap();
        assert!(!result.truncated);
        assert_eq!(result.total_mass(), Prob::ONE);
        // The outcome where both neighbours resist infection has probability
        // 0.9² = 0.81 and no stable model (the network is not dominated ⇒ the
        // constraint kills every model ⇒ actually dominated-ness is the
        // *other* way round: no stable model means the malware failed).
        let limits = StableModelLimits::default();
        let no_model_mass = Prob::sum(
            result
                .outcomes
                .iter()
                .filter(|o| o.stable_models(&limits).unwrap().is_empty())
                .map(|o| o.probability),
        );
        // Probability that the network is dominated (has some stable model):
        let dominated = Prob::ONE.sub(&no_model_mass);
        assert_eq!(dominated, Prob::ratio(19, 100));
    }

    #[test]
    fn chase_is_order_independent() {
        // Lemma 4.4: the same set of finite results regardless of the trigger
        // selection policy.
        let grounder = simple_for(&network_resilience_program(0.1), &network_db(3));
        let budget = ChaseBudget::default();
        let canonical = |order: TriggerOrder| {
            let mut keys: Vec<(Vec<crate::grounding::AtrRule>, String)> =
                enumerate_outcomes(&grounder, &budget, order)
                    .unwrap()
                    .outcomes
                    .iter()
                    .map(|o| (o.atr.canonical(), o.probability.to_string()))
                    .collect();
            keys.sort();
            keys
        };
        let first = canonical(TriggerOrder::First);
        let last = canonical(TriggerOrder::Last);
        let scrambled = canonical(TriggerOrder::Scrambled);
        assert_eq!(first, last);
        assert_eq!(first, scrambled);
        assert!(!first.is_empty());
    }

    #[test]
    fn dime_quarter_with_perfect_grounder_has_six_outcomes() {
        // Two dimes: 4 configurations; the two configurations with no tail
        // each branch over the quarter (2 outcomes each): 3 + 1·... in fact
        // TT, TH, HT are terminal (3 outcomes) and HH splits into 2 → 5? No:
        // exactly one configuration (HH) requires the quarter toss, so
        // 3 + 2 = 5 outcomes for one quarter.
        let mut db = Database::new();
        db.insert_fact("Dime", [Const::Int(1)]);
        db.insert_fact("Dime", [Const::Int(2)]);
        db.insert_fact("Quarter", [Const::Int(3)]);
        let sigma = SigmaPi::translate(&dime_quarter_program(), &db).unwrap();
        let grounder = PerfectGrounder::new(Arc::new(sigma)).unwrap();
        let result =
            enumerate_outcomes(&grounder, &ChaseBudget::default(), TriggerOrder::First).unwrap();
        assert_eq!(result.outcomes.len(), 5);
        assert_eq!(result.total_mass(), Prob::ONE);
        assert!(!result.truncated);
        // The 3 dime-only outcomes have probability 1/4 each, the 2
        // quarter outcomes 1/8 each.
        let mut probs: Vec<String> = result
            .outcomes
            .iter()
            .map(|o| o.probability.to_string())
            .collect();
        probs.sort();
        assert_eq!(probs, vec!["1/4", "1/4", "1/4", "1/8", "1/8"]);
    }

    #[test]
    fn budget_truncation_is_accounted_in_residual_mass() {
        let grounder = simple_for(&network_resilience_program(0.5), &network_db(3));
        let tight = ChaseBudget {
            max_outcomes: 4,
            max_depth: 64,
            max_branching: 64,
            min_path_probability: 0.0,
        };
        let result = enumerate_outcomes(&grounder, &tight, TriggerOrder::First).unwrap();
        assert!(result.truncated);
        assert_eq!(result.outcomes.len(), 4);
        assert!(result.residual_mass.is_positive());
        assert!(result.total_mass().approx_eq(&Prob::ONE, 1e-9));
    }

    #[test]
    fn depth_budget_truncates_deep_paths() {
        let grounder = simple_for(&network_resilience_program(0.1), &network_db(3));
        let shallow = ChaseBudget {
            max_outcomes: 1000,
            max_depth: 1,
            max_branching: 64,
            min_path_probability: 0.0,
        };
        let result = enumerate_outcomes(&grounder, &shallow, TriggerOrder::First).unwrap();
        assert!(result.truncated);
        assert!(result.residual_mass.is_positive());
        assert!(result.total_mass().approx_eq(&Prob::ONE, 1e-9));
    }

    fn geometric_program() -> crate::Program {
        // → Steps(Geometric⟨1/2⟩): one trigger with countably infinite
        // support, so `max_branching` always cuts the support.
        crate::ProgramBuilder::new()
            .rule(|r| {
                r.head_with_delta(
                    "Steps",
                    vec![],
                    "Geometric",
                    vec![gdlog_data::Term::Const(Const::real(0.5).unwrap())],
                    vec![],
                )
            })
            .build()
            .unwrap()
    }

    #[test]
    fn branching_cut_tails_are_accounted_exactly_in_prob() {
        let grounder = simple_for(&geometric_program(), &Database::new());
        // A coarse cut: 4 of the countably many outcomes.
        let coarse = ChaseBudget {
            max_branching: 4,
            ..ChaseBudget::default()
        };
        let result = enumerate_outcomes(&grounder, &coarse, TriggerOrder::First).unwrap();
        assert_eq!(result.outcomes.len(), 4);
        assert!(result.truncated);
        assert_eq!(result.residual_mass, Prob::ratio(1, 16));
        assert_eq!(result.total_mass(), Prob::ONE);

        // Regression: with the default 64-way cut the tail mass 2⁻⁶⁴ is far
        // below any float threshold, but it is still support truncation —
        // `truncated` must say so and the tail must be accounted exactly, so
        // the total mass stays exactly one in `Prob`.
        let result =
            enumerate_outcomes(&grounder, &ChaseBudget::default(), TriggerOrder::First).unwrap();
        assert_eq!(result.outcomes.len(), 64);
        assert!(result.truncated);
        assert!(result.residual_mass.is_positive());
        assert_eq!(result.total_mass(), Prob::ONE);
    }

    fn coin_chain_program(n: i64, db: &mut Database) -> crate::Program {
        use gdlog_data::Term;
        for i in 1..=n {
            db.insert_fact("Coin", [Const::Int(i)]);
        }
        crate::ProgramBuilder::new()
            .rule(|r| {
                r.body("Coin", vec![Term::var("x")]).head_with_delta(
                    "Toss",
                    vec![Term::var("x")],
                    "Flip",
                    vec![Term::Const(Const::real(0.5).unwrap())],
                    vec![Term::var("x")],
                )
            })
            .build()
            .unwrap()
    }

    #[test]
    fn outcome_budget_stops_exploration_early() {
        // Six independent coins: the full chase tree has 2⁷ − 1 = 127 nodes
        // and 64 outcomes.
        let mut db = Database::new();
        let program = coin_chain_program(6, &mut db);
        let grounder = simple_for(&program, &db);
        let full =
            enumerate_outcomes(&grounder, &ChaseBudget::default(), TriggerOrder::First).unwrap();
        assert_eq!(full.outcomes.len(), 64);
        assert_eq!(full.nodes_visited, 127);

        // With max_outcomes = 1 the walk must stop after the first leaf:
        // only the leftmost path and its immediately abandoned siblings are
        // visited — O(depth), not the whole tree.
        let capped = ChaseBudget {
            max_outcomes: 1,
            ..ChaseBudget::default()
        };
        let result = enumerate_outcomes(&grounder, &capped, TriggerOrder::First).unwrap();
        assert_eq!(result.outcomes.len(), 1);
        assert!(result.truncated);
        assert_eq!(result.total_mass(), Prob::ONE);
        // Root-to-leaf path (7 nodes) plus one pruned sibling per level (6).
        assert_eq!(result.nodes_visited, 13);
    }

    #[test]
    fn pre_cancelled_chase_is_all_residual_and_interrupted() {
        let mut db = Database::new();
        let program = coin_chain_program(4, &mut db);
        let grounder = simple_for(&program, &db);
        let cancel = CancelToken::new();
        cancel.cancel();
        let result = enumerate_outcomes_cancellable(
            &grounder,
            &ChaseBudget::default(),
            TriggerOrder::First,
            &Executor::sequential(),
            &cancel,
        )
        .unwrap();
        // The root is cut before grounding anything: no outcomes, the whole
        // unit of mass is residual, and the accounting invariant holds.
        assert!(result.outcomes.is_empty());
        assert!(result.interrupted);
        assert!(result.truncated);
        assert_eq!(result.residual_mass, Prob::ONE);
        assert_eq!(result.total_mass(), Prob::ONE);
    }

    #[test]
    fn never_token_reproduces_the_uncancelled_chase() {
        let mut db = Database::new();
        let program = coin_chain_program(4, &mut db);
        let grounder = simple_for(&program, &db);
        let plain =
            enumerate_outcomes(&grounder, &ChaseBudget::default(), TriggerOrder::First).unwrap();
        let never = enumerate_outcomes_cancellable(
            &grounder,
            &ChaseBudget::default(),
            TriggerOrder::First,
            &Executor::sequential(),
            &CancelToken::never(),
        )
        .unwrap();
        assert!(!never.interrupted);
        assert!(plain.diff(&never).is_none());
    }

    #[test]
    fn mid_flight_cancellation_keeps_mass_accounting_exact() {
        // Cancel after the chase is already running (from a second thread,
        // racing real exploration): whatever prefix was explored, the
        // explored + residual invariant must hold exactly and the result
        // must be flagged interrupted.
        let mut db = Database::new();
        let program = coin_chain_program(12, &mut db);
        let grounder = simple_for(&program, &db);
        let cancel = CancelToken::new();
        let flag = cancel.clone();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            flag.cancel();
        });
        let result = enumerate_outcomes_cancellable(
            &grounder,
            &ChaseBudget::default(),
            TriggerOrder::First,
            &Executor::sequential(),
            &cancel,
        )
        .unwrap();
        canceller.join().unwrap();
        assert_eq!(result.total_mass(), Prob::ONE);
        // 2^12 outcomes under a 2ms deadline: the cut must land mid-tree on
        // any realistic machine; if the walk somehow finished first, the
        // invariants above still validated the uncancelled path.
        if result.interrupted {
            assert!(result.truncated);
            assert!(result.residual_mass.is_positive());
        }
    }

    #[test]
    fn scrambled_order_depends_on_the_trigger_atoms() {
        // Equal depth, equally many triggers, different atoms: the pick must
        // be derived from the atoms themselves, not just the counts.
        let sets: Vec<Vec<GroundAtom>> = (0..16)
            .map(|i| {
                vec![
                    GroundAtom::make("Active_Flip_1_1", vec![Const::Int(i), Const::Int(0)]),
                    GroundAtom::make("Active_Flip_1_1", vec![Const::Int(i), Const::Int(1)]),
                    GroundAtom::make("Active_Flip_1_1", vec![Const::Int(i), Const::Int(2)]),
                ]
            })
            .collect();
        let picks: std::collections::BTreeSet<usize> = sets
            .iter()
            .map(|triggers| TriggerOrder::Scrambled.pick(triggers, 3))
            .collect();
        assert!(
            picks.len() > 1,
            "equal-depth sibling nodes all picked position {picks:?}"
        );
        // Still deterministic per node.
        assert_eq!(
            TriggerOrder::Scrambled.pick(&sets[0], 3),
            TriggerOrder::Scrambled.pick(&sets[0], 3)
        );
    }

    /// Strict equality of chase results through the shared
    /// [`ChaseResult::diff`] definition.
    fn assert_bit_identical(a: &ChaseResult, b: &ChaseResult, label: &str) {
        if let Some(diff) = a.diff(b) {
            panic!("{label}: results differ: {diff}");
        }
    }

    #[test]
    fn parallel_enumeration_is_bit_identical_to_sequential() {
        let mut db = Database::new();
        let program = coin_chain_program(6, &mut db);
        let chain = simple_for(&program, &db);
        let ring = simple_for(&network_resilience_program(0.1), &network_db(3));
        let grounders: [&dyn crate::grounding::Grounder; 2] = [&chain, &ring];
        for grounder in grounders {
            for order in [
                TriggerOrder::First,
                TriggerOrder::Last,
                TriggerOrder::Scrambled,
            ] {
                let sequential =
                    enumerate_outcomes(grounder, &ChaseBudget::default(), order).unwrap();
                for threads in [2, 3, 8] {
                    let exec = crate::exec::Executor::new(threads);
                    let parallel =
                        enumerate_outcomes_with(grounder, &ChaseBudget::default(), order, &exec)
                            .unwrap();
                    assert_bit_identical(&sequential, &parallel, &format!("{order:?} x{threads}"));
                }
            }
        }
    }

    #[test]
    fn parallel_enumeration_replays_outcome_budget_truncation_exactly() {
        // max_outcomes = 1 prunes almost the whole tree sequentially; the
        // parallel walk may speculate past the budget but the replay must
        // reproduce the sequential pruning — outcomes, residual *and* the
        // visited-node count.
        let mut db = Database::new();
        let program = coin_chain_program(6, &mut db);
        let grounder = simple_for(&program, &db);
        for budget in [
            ChaseBudget {
                max_outcomes: 1,
                ..ChaseBudget::default()
            },
            ChaseBudget {
                max_outcomes: 5,
                max_depth: 3,
                max_branching: 2,
                min_path_probability: 0.0,
            },
            ChaseBudget {
                min_path_probability: 0.2,
                ..ChaseBudget::default()
            },
        ] {
            let sequential = enumerate_outcomes(&grounder, &budget, TriggerOrder::First).unwrap();
            for threads in [2, 8] {
                let exec = crate::exec::Executor::new(threads);
                let parallel =
                    enumerate_outcomes_with(&grounder, &budget, TriggerOrder::First, &exec)
                        .unwrap();
                assert_bit_identical(&sequential, &parallel, &format!("{budget:?} x{threads}"));
            }
        }
    }

    #[test]
    fn parallel_enumeration_accounts_branching_cuts_exactly() {
        // Countably infinite support: the branch tail must be accounted in
        // `Prob` identically under parallel exploration.
        let grounder = simple_for(&geometric_program(), &Database::new());
        let coarse = ChaseBudget {
            max_branching: 4,
            ..ChaseBudget::default()
        };
        let sequential = enumerate_outcomes(&grounder, &coarse, TriggerOrder::First).unwrap();
        let exec = crate::exec::Executor::new(4);
        let parallel =
            enumerate_outcomes_with(&grounder, &coarse, TriggerOrder::First, &exec).unwrap();
        assert_bit_identical(&sequential, &parallel, "geometric cut");
        assert_eq!(parallel.residual_mass, Prob::ratio(1, 16));
        assert_eq!(parallel.total_mass(), Prob::ONE);
    }

    #[test]
    fn zero_outcome_budget_is_rejected() {
        let grounder = simple_for(&coin_program(), &Database::new());
        let bad = ChaseBudget {
            max_outcomes: 0,
            ..ChaseBudget::default()
        };
        assert!(matches!(
            enumerate_outcomes(&grounder, &bad, TriggerOrder::First),
            Err(CoreError::Budget(_))
        ));
    }

    #[test]
    fn non_probabilistic_programs_have_a_single_certain_outcome() {
        // A plain Datalog¬ program: the chase terminates immediately with the
        // empty choice set and probability 1.
        let program = crate::Program::new(network_resilience_program(0.1).rules()[1..2].to_vec());
        let mut db = Database::new();
        db.insert_fact("Router", [Const::Int(1)]);
        let grounder = simple_for(&program, &db);
        let result =
            enumerate_outcomes(&grounder, &ChaseBudget::default(), TriggerOrder::First).unwrap();
        assert_eq!(result.outcomes.len(), 1);
        assert_eq!(result.outcomes[0].probability, Prob::ONE);
        assert_eq!(result.outcomes[0].choice_count(), 0);
        assert_eq!(result.nodes_visited, 1);
    }
}

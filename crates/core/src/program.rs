//! GDatalog¬\[Δ\] programs.

use crate::delta::DeltaTerm;
use crate::error::CoreError;
use crate::rule::{Head, HeadTerm, Rule};
use gdlog_data::{Atom, Predicate, Schema, Term};
use gdlog_prob::DeltaRegistry;
use std::collections::BTreeSet;
use std::fmt;

/// The reserved 0-ary predicate used to desugar `⊥` rule heads (named `Fail`,
/// exactly as in the paper's description of the encoding).
pub const FAIL_PREDICATE: &str = "Fail";
/// The reserved 0-ary predicate used by the `Fail, ¬Aux → Aux` constraint
/// encoding described after Example 3.1 of the paper. Programs should not use
/// `Fail`/`Aux` for their own predicates.
pub const AUX_PREDICATE: &str = "Aux";

/// A GDatalog¬\[Δ\] program: a finite set of rules over a finite set Δ of
/// parameterized distributions.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    rules: Vec<Rule>,
    delta: DeltaRegistry,
}

impl Program {
    /// Build a program from rules, using the standard distribution registry.
    pub fn new(rules: Vec<Rule>) -> Self {
        Program {
            rules,
            delta: DeltaRegistry::standard(),
        }
    }

    /// Build a program from rules and an explicit Δ registry.
    pub fn with_registry(rules: Vec<Rule>, delta: DeltaRegistry) -> Self {
        Program { rules, delta }
    }

    /// The program's rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The program's distribution registry Δ.
    pub fn delta(&self) -> &DeltaRegistry {
        &self.delta
    }

    /// Add a rule.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Add a *constraint* `body → ⊥`.
    ///
    /// Following the paper (Example 3.1), `⊥` is syntactic sugar: the body
    /// derives the reserved `Fail` atom and a single auxiliary rule
    /// `Fail, ¬Aux → Aux` forces `Fail` to be false in every stable
    /// model. The auxiliary rule is added at most once.
    pub fn push_constraint(&mut self, pos: Vec<Atom>, neg: Vec<Atom>) {
        let fail_head = Head::make(FAIL_PREDICATE, vec![]);
        self.rules.push(Rule::new(pos, neg, fail_head));
        self.ensure_fail_aux_rule();
    }

    fn ensure_fail_aux_rule(&mut self) {
        let aux_rule = Rule::new(
            vec![Atom::make(FAIL_PREDICATE, vec![])],
            vec![Atom::make(AUX_PREDICATE, vec![])],
            Head::make(AUX_PREDICATE, vec![]),
        );
        if !self.rules.contains(&aux_rule) {
            self.rules.push(aux_rule);
        }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Is the program empty?
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Is the program positive (no negation anywhere)?
    pub fn is_positive(&self) -> bool {
        self.rules.iter().all(Rule::is_positive)
    }

    /// Does any rule sample from a distribution?
    pub fn is_probabilistic(&self) -> bool {
        self.rules.iter().any(Rule::is_probabilistic)
    }

    /// The full schema `sch(Π)` (every predicate mentioned in the program).
    pub fn schema(&self) -> Schema {
        Schema::from_predicates(self.rules.iter().flat_map(|r| r.predicates()))
    }

    /// The intensional predicates `idb(Π)`: those occurring in some rule
    /// head.
    pub fn idb(&self) -> BTreeSet<Predicate> {
        self.rules.iter().map(|r| r.head.predicate).collect()
    }

    /// The extensional (database) predicates `edb(Π)`: those occurring only
    /// in rule bodies.
    pub fn edb(&self) -> BTreeSet<Predicate> {
        let idb = self.idb();
        self.rules
            .iter()
            .flat_map(|r| r.predicates())
            .filter(|p| !idb.contains(p))
            .collect()
    }

    /// Validate every rule (safety, Δ-term well-formedness, known
    /// distributions, consistent arities).
    pub fn validate(&self) -> Result<(), CoreError> {
        self.validate_rules().map_err(|(_, e)| e)
    }

    /// Like [`Program::validate`], but reports the index (into
    /// [`Program::rules`]) of the first offending rule alongside the error —
    /// the parser maps the index back to a source span so the CLI can render
    /// a caret diagnostic instead of a bare message.
    ///
    /// Arity consistency is checked by accumulating the schema rule by rule,
    /// so a conflict is attributed to the *later* rule (the first one at
    /// which the program became inconsistent).
    pub fn validate_rules(&self) -> Result<(), (usize, CoreError)> {
        match self.validate_all().into_iter().next() {
            Some(issue) => Err((issue.rule, issue.error)),
            None => Ok(()),
        }
    }

    /// Collect *every* validation issue (safety, arity consistency, Δ-term
    /// well-formedness), each with the rule index and a
    /// [`crate::analyze::RuleLocus`] naming the offending literal or term.
    pub fn validate_all(&self) -> Vec<crate::analyze::RuleIssue> {
        crate::analyze::validate_all(self)
    }

    /// Does the program have stratified negation (no cycle of `dg(Π)` through
    /// a negative edge, Section 5)?
    pub fn has_stratified_negation(&self) -> bool {
        crate::depgraph::dependency_graph(self).is_stratified()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

/// Build the GDatalog¬\[Δ\] program of Example 3.1 (network resilience).
///
/// Exposed because it is used pervasively in tests, examples and benchmarks.
pub fn network_resilience_program(infection_probability: f64) -> Program {
    let p = Term::Const(gdlog_data::Const::real(infection_probability).expect("finite"));
    let mut program = Program::new(vec![
        // Infected(x, 1), Connected(x, y) → Infected(y, Flip⟨p⟩[x, y])
        Rule::new(
            vec![
                Atom::make("Infected", vec![Term::var("x"), Term::int(1)]),
                Atom::make("Connected", vec![Term::var("x"), Term::var("y")]),
            ],
            vec![],
            Head::make(
                "Infected",
                vec![
                    HeadTerm::var("y"),
                    HeadTerm::Delta(DeltaTerm::new(
                        "Flip",
                        vec![p],
                        vec![Term::var("x"), Term::var("y")],
                    )),
                ],
            ),
        ),
        // Router(x), ¬Infected(x, 1) → Uninfected(x)
        Rule::new(
            vec![Atom::make("Router", vec![Term::var("x")])],
            vec![Atom::make("Infected", vec![Term::var("x"), Term::int(1)])],
            Head::make("Uninfected", vec![HeadTerm::var("x")]),
        ),
    ]);
    // Uninfected(x), Uninfected(y), Connected(x, y) → ⊥
    program.push_constraint(
        vec![
            Atom::make("Uninfected", vec![Term::var("x")]),
            Atom::make("Uninfected", vec![Term::var("y")]),
            Atom::make("Connected", vec![Term::var("x"), Term::var("y")]),
        ],
        vec![],
    );
    program
}

/// Build the coin program Π_coin of Section 3.
pub fn coin_program() -> Program {
    let half = Term::Const(gdlog_data::Const::real(0.5).expect("finite"));
    let mut program = Program::new(vec![
        // → Coin(Flip⟨0.5⟩)
        Rule::fact(Head::make(
            "Coin",
            vec![HeadTerm::Delta(DeltaTerm::simple("Flip", vec![half]))],
        )),
        // Coin(1), ¬Aux1 → Aux2
        Rule::new(
            vec![Atom::make("Coin", vec![Term::int(1)])],
            vec![Atom::make("Aux1", vec![])],
            Head::make("Aux2", vec![]),
        ),
        // Coin(1), ¬Aux2 → Aux1
        Rule::new(
            vec![Atom::make("Coin", vec![Term::int(1)])],
            vec![Atom::make("Aux2", vec![])],
            Head::make("Aux1", vec![]),
        ),
    ]);
    // Coin(0) → ⊥
    program.push_constraint(vec![Atom::make("Coin", vec![Term::int(0)])], vec![]);
    program
}

/// Build the dimes-and-quarters program of Appendix E.
pub fn dime_quarter_program() -> Program {
    let half = || Term::Const(gdlog_data::Const::real(0.5).expect("finite"));
    Program::new(vec![
        // Dime(x) → DimeTail(x, Flip⟨0.5⟩[x])
        Rule::new(
            vec![Atom::make("Dime", vec![Term::var("x")])],
            vec![],
            Head::make(
                "DimeTail",
                vec![
                    HeadTerm::var("x"),
                    HeadTerm::Delta(DeltaTerm::new("Flip", vec![half()], vec![Term::var("x")])),
                ],
            ),
        ),
        // DimeTail(x, 1) → SomeDimeTail
        Rule::new(
            vec![Atom::make("DimeTail", vec![Term::var("x"), Term::int(1)])],
            vec![],
            Head::make("SomeDimeTail", vec![]),
        ),
        // Quarter(x), ¬SomeDimeTail → QuarterTail(x, Flip⟨0.5⟩[x])
        Rule::new(
            vec![Atom::make("Quarter", vec![Term::var("x")])],
            vec![Atom::make("SomeDimeTail", vec![])],
            Head::make(
                "QuarterTail",
                vec![
                    HeadTerm::var("x"),
                    HeadTerm::Delta(DeltaTerm::new("Flip", vec![half()], vec![Term::var("x")])),
                ],
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_3_1_program_structure() {
        let p = network_resilience_program(0.1);
        assert!(p.validate().is_ok());
        assert!(!p.is_positive());
        assert!(p.is_probabilistic());
        // Infection rule, uninfected rule, constraint rule, fail/aux rule.
        assert_eq!(p.len(), 4);
        let edb = p.edb();
        assert!(edb.contains(&Predicate::new("Router", 1)));
        assert!(edb.contains(&Predicate::new("Connected", 2)));
        // Infected occurs in a head, so it is intensional.
        let idb = p.idb();
        assert!(idb.contains(&Predicate::new("Infected", 2)));
        assert!(idb.contains(&Predicate::new("Uninfected", 1)));
        assert!(idb.contains(&Predicate::new(FAIL_PREDICATE, 0)));
    }

    #[test]
    fn coin_program_structure() {
        let p = coin_program();
        assert!(p.validate().is_ok());
        assert_eq!(p.len(), 5);
        assert!(p.is_probabilistic());
        assert!(!p.has_stratified_negation(), "Aux1/Aux2 form an even loop");
        assert!(p.edb().is_empty());
    }

    #[test]
    fn dime_quarter_program_is_stratified() {
        let p = dime_quarter_program();
        assert!(p.validate().is_ok());
        assert!(p.has_stratified_negation());
        assert_eq!(p.len(), 3);
        let edb = p.edb();
        assert!(edb.contains(&Predicate::new("Dime", 1)));
        assert!(edb.contains(&Predicate::new("Quarter", 1)));
    }

    #[test]
    fn network_program_is_not_stratified_because_of_the_constraint_encoding() {
        // The ⊥ of Example 3.1 is desugared into `Fail, ¬Aux → Aux`
        // (exactly the encoding described in the paper), which introduces an
        // odd negative self-loop — so the desugared program is *not*
        // stratified and is evaluated with the simple grounder, as in
        // Example 3.10.
        let p = network_resilience_program(0.1);
        assert!(!p.has_stratified_negation());
    }

    #[test]
    fn constraints_add_the_aux_rule_once() {
        let mut p = Program::new(vec![]);
        p.push_constraint(vec![Atom::make("A", vec![])], vec![]);
        p.push_constraint(vec![Atom::make("B", vec![])], vec![]);
        // Two constraint rules plus exactly one Fail/Aux rule.
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn validation_catches_unknown_distribution_and_bad_dimension() {
        let bad = Program::new(vec![Rule::fact(Head::make(
            "X",
            vec![HeadTerm::Delta(DeltaTerm::simple(
                "Gauss",
                vec![Term::int(0)],
            ))],
        ))]);
        assert!(bad.validate().is_err());

        let bad_dim = Program::new(vec![Rule::fact(Head::make(
            "X",
            vec![HeadTerm::Delta(DeltaTerm::simple(
                "Flip",
                vec![Term::int(0), Term::int(1)],
            ))],
        ))]);
        assert!(matches!(bad_dim.validate(), Err(CoreError::Validation(_))));
    }

    #[test]
    fn validation_catches_inconsistent_arity() {
        let p = Program::new(vec![
            Rule::fact(Head::make("P", vec![HeadTerm::int(1)])),
            Rule::fact(Head::make("P", vec![HeadTerm::int(1), HeadTerm::int(2)])),
        ]);
        assert!(p.validate().is_err());
    }

    #[test]
    fn display_round_trips_readably() {
        let p = coin_program();
        let text = p.to_string();
        assert!(text.contains("Coin(Flip<0.5>)"));
        assert!(text.contains("not Aux1"));
    }

    #[test]
    fn schema_and_mutation() {
        let mut p = Program::new(vec![]);
        assert!(p.is_empty());
        p.push(Rule::fact(Head::make("A", vec![])));
        assert_eq!(p.len(), 1);
        assert!(p.schema().contains(&Predicate::new("A", 0)));
        assert!(!p.is_probabilistic());
        assert!(p.is_positive());
        assert_eq!(p.delta().len(), 5);
    }
}

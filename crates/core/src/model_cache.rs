//! Memoization of stable-model computations across chase outcomes.
//!
//! Distinct chase outcomes frequently induce the *same* ground program
//! `Σ ∪ G(Σ)` — in the coin-chain family every failing prefix grounds the
//! same constraint machinery, and repeated [`crate::Pipeline::solve`] calls
//! (Monte-Carlo refinement loops, report reruns) resolve identical programs
//! over and over. Since `sms(Σ ∪ G(Σ))` is a pure function of that program,
//! its event key can be cached.
//!
//! The cache key is a [`ProgramFingerprint`]: the canonical listing of the
//! outcome's choice set `Σ` plus the canonical listing of its grounder rules
//! `G(Σ)`. This encoding is *collision-free by construction* — it is not a
//! hash but the full, canonically ordered content of the program, so two
//! outcomes share a fingerprint exactly when they denote the same ground
//! program (set semantics). Equal programs have equal stable-model sets by
//! definition, so a cache hit can never change a result, at any thread
//! count.
//!
//! Hit/miss counters are kept for observability
//! ([`crate::Pipeline::stable_cache_stats`]) and are counted once per
//! outcome during the sequential keying pass of
//! [`crate::OutputSpace::from_chase_with`], so they are deterministic across
//! executors.

use crate::grounding::AtrRule;
use crate::outcome::ModelSetKey;
use gdlog_engine::GroundRule;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The canonical, collision-free identity of an outcome's ground program
/// `Σ ∪ G(Σ)`: its choice set and grounder rules in canonical order.
#[derive(Clone, Default, PartialEq, Eq, Hash, Debug)]
pub struct ProgramFingerprint {
    choices: Vec<AtrRule>,
    rules: Vec<GroundRule>,
}

impl ProgramFingerprint {
    /// Assemble a fingerprint from canonical listings (callers should use
    /// [`crate::PossibleOutcome::program_fingerprint`]).
    pub(crate) fn new(choices: Vec<AtrRule>, rules: Vec<GroundRule>) -> Self {
        ProgramFingerprint { choices, rules }
    }

    /// Number of choices plus ground rules covered by the fingerprint.
    pub fn len(&self) -> usize {
        self.choices.len() + self.rules.len()
    }

    /// Is the fingerprint of the empty program?
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty() && self.rules.is_empty()
    }
}

/// Cache hit/miss counters of a [`ModelSetCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ModelCacheStats {
    /// Outcomes whose event key was served without a stable-model search
    /// (present in the cache, or a duplicate within the same call).
    pub hits: usize,
    /// Outcomes whose program had to be solved.
    pub misses: usize,
}

impl ModelCacheStats {
    /// Hits as a fraction of all lookups (zero when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe memo table from [`ProgramFingerprint`]s to the induced
/// [`ModelSetKey`]s, shared by every [`crate::OutputSpace::from_chase_with`]
/// call that is handed the same cache (e.g. all solves of one
/// [`crate::Pipeline`]).
///
/// Only successful searches are cached; [`gdlog_engine::StableError`]s
/// propagate to the caller untouched so limit changes take effect on retry.
///
/// Storing the full canonical program as the key is a deliberate
/// space-for-certainty tradeoff: a 64-bit hash key could alias two distinct
/// programs and silently corrupt a probability. The footprint is bounded by
/// the distinct programs of the pipeline's outcome space (not by the number
/// of solves — repeated solves re-derive fingerprints but insert nothing
/// new), which is itself bounded by the chase budget's `max_outcomes`.
#[derive(Default)]
pub struct ModelSetCache {
    map: Mutex<HashMap<ProgramFingerprint, ModelSetKey>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl ModelSetCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached key for a fingerprint, if present (does not touch the
    /// hit/miss counters — callers account once per outcome).
    pub fn peek(&self, fingerprint: &ProgramFingerprint) -> Option<ModelSetKey> {
        self.map.lock().get(fingerprint).cloned()
    }

    /// Record a solved program.
    pub fn insert(&self, fingerprint: ProgramFingerprint, key: ModelSetKey) {
        self.map.lock().insert(fingerprint, key);
    }

    /// Number of distinct programs cached.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Add to the hit/miss counters (called once per `from_chase_with`).
    pub(crate) fn record(&self, hits: usize, misses: usize) {
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// The accumulated hit/miss counters.
    pub fn stats(&self) -> ModelCacheStats {
        ModelCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for ModelSetCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("ModelSetCache")
            .field("entries", &self.len())
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cache_and_stats() {
        let cache = ModelSetCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats(), ModelCacheStats::default());
        assert_eq!(cache.stats().hit_rate(), 0.0);
        assert!(cache.peek(&ProgramFingerprint::default()).is_none());
        assert!(ProgramFingerprint::default().is_empty());
        assert_eq!(ProgramFingerprint::default().len(), 0);
    }

    #[test]
    fn insert_peek_and_counters() {
        let cache = ModelSetCache::new();
        let fp = ProgramFingerprint::default();
        cache.insert(fp.clone(), ModelSetKey::empty());
        assert_eq!(cache.peek(&fp), Some(ModelSetKey::empty()));
        assert_eq!(cache.len(), 1);
        cache.record(3, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (3, 1));
        assert_eq!(stats.hit_rate(), 0.75);
        assert!(format!("{cache:?}").contains("hits"));
    }
}

//! Static program analysis (`gdlog lint`): safety, chase termination,
//! stratifiability, independence prediction and hygiene — all at the
//! rule/predicate level, before any grounding.
//!
//! The analyses:
//!
//! 1. **Safety / range restriction** ([`validate_all`]): every variable of
//!    the negative body and of the head (including Δ-term parameters and
//!    event signatures) must be bound by a positive body atom. Unlike
//!    [`Program::validate_rules`], *all* violations are collected, each with
//!    a [`RuleLocus`] naming the offending literal or variable so the CLI
//!    can place the caret on it.
//! 2. **Chase termination via weak acyclicity** ([`weak_cycles`]): the
//!    classical existential-rules criterion applied to `Σ_Π[D]`'s only
//!    existential rules — the AtR TGDs `Active → ∃y Result`. The position
//!    graph is built directly on the *surface* program: for a rule with a
//!    Δ-term at head position `j`, the fresh `∃y` value flows from the
//!    positions of the Δ-term's variables into `(head, j)` (a *special*
//!    edge); an ordinary head variable copies its body positions into its
//!    head position (a normal edge). Body→`Active`→`Result`→head paths in
//!    the translated program exist exactly for the variables of that
//!    Δ-term, and `Active`/`Result` positions are never rule-body sources,
//!    so a special edge inside a cycle at the surface level is equivalent
//!    to one in the translated graph. A cycle through a special edge means
//!    the chase may generate fresh values forever — reported as a "chase
//!    may not terminate" warning (the budgets then act as the safety net).
//! 3. **Non-stratifiability** ([`lint`]): a negative edge on a cycle of
//!    `dg(Π)` (the Tarjan kernel of [`gdlog_engine::depgraph`]), reported
//!    as a note — stable-model semantics still applies, but the perfect
//!    grounder is unavailable.
//! 4. **Static independence prediction** ([`StaticComponents`]): connected
//!    components of the predicate-level dependency graph of `Σ_Π[D]`,
//!    extended with `Active — Result` edges. Every ground star edge of the
//!    dynamic analysis (`factor::analyze`) projects onto a predicate-level
//!    edge of this graph, so every dynamic chase component lies inside one
//!    static component: the static partition *over-approximates*
//!    dependence. [`crate::Pipeline::solve_factored`] uses it two ways —
//!    [`certainly_single_trigger`] skips universe saturation outright when
//!    the program provably has at most one probabilistic trigger, and
//!    otherwise the saturation fixpoint is seeded per static component.
//! 5. **Hygiene** ([`lint`]): head predicates never read by any body
//!    (query-only outputs or dead code), rules that can never fire because
//!    a positive body predicate is underivable, always-true negative
//!    literals, variables mentioned exactly once, and all-constant
//!    distribution parameters that are statically out of range.

use crate::depgraph::stratification;
use crate::error::CoreError;
use crate::program::{Program, AUX_PREDICATE, FAIL_PREDICATE};
use crate::rule::{HeadTerm, Rule};
use crate::translate::SigmaPi;
use gdlog_data::{Atom, Database, Predicate, Schema, Term, Var};
use gdlog_engine::depgraph::{connected_components, sccs_of};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Severity of a lint [`Finding`]. Ordered `Note < Warning < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: intentional patterns worth knowing about.
    Note,
    /// Suspicious: very likely a mistake, but evaluation still works.
    Warning,
    /// The program is invalid and cannot be evaluated.
    Error,
}

impl Severity {
    /// The lowercase label used in rendered diagnostics (`error:`, …).
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Where inside a rule a finding points. The parser resolves a locus to a
/// source span (with graceful fallback to the rule's own span), so core
/// stays span-free while the CLI gets precise carets.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleLocus {
    /// The whole rule (its first token).
    Rule,
    /// The head atom.
    Head,
    /// Head argument `j` (0-based).
    HeadArg(usize),
    /// Positive body literal `i` (0-based).
    Pos(usize),
    /// Negative body literal `i` (0-based).
    Neg(usize),
    /// The named variable's occurrence in the head (including Δ-terms).
    HeadVar(String),
    /// The named variable's occurrence in negative literal `i`.
    NegVar(usize, String),
    /// The named variable's first occurrence anywhere in the rule.
    Var(String),
}

/// One validation problem: the rule index, the locus inside it, and the
/// error. [`Program::validate_rules`] reports the first of these;
/// [`validate_all`] collects them all.
#[derive(Clone, Debug)]
pub struct RuleIssue {
    /// Index into [`Program::rules`].
    pub rule: usize,
    /// Where inside the rule.
    pub locus: RuleLocus,
    /// The validation error.
    pub error: CoreError,
}

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Severity class.
    pub severity: Severity,
    /// Stable machine-readable code (kebab-case).
    pub code: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Index into [`Program::rules`] when the finding is rule-local.
    pub rule: Option<usize>,
    /// Where inside the rule (ignored when `rule` is `None`).
    pub locus: RuleLocus,
}

impl Finding {
    fn rule_local(
        severity: Severity,
        code: &'static str,
        message: String,
        rule: usize,
        locus: RuleLocus,
    ) -> Self {
        Finding {
            severity,
            code,
            message,
            rule: Some(rule),
            locus,
        }
    }
}

/// The full lint report of a program.
#[derive(Clone, Debug)]
pub struct LintReport {
    /// Findings, in deterministic (rule-order, analysis-order) sequence;
    /// the CLI re-sorts them by source span.
    pub findings: Vec<Finding>,
    /// Number of static predicate components of `Σ_Π[D]` (see
    /// [`StaticComponents`]); `None` when validation errors prevented
    /// translation.
    pub static_components: Option<usize>,
}

impl LintReport {
    /// Count findings of one severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Any error-severity findings?
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Any warning-severity findings?
    pub fn has_warnings(&self) -> bool {
        self.count(Severity::Warning) > 0
    }
}

/// Safety and well-formedness issues of a single rule, in the same order
/// [`Rule::validate`] checks them (so the first issue is the error that
/// function reports).
fn rule_issues(rule: &Rule) -> Vec<(RuleLocus, CoreError)> {
    let positive: BTreeSet<Var> = rule.positive_variables();
    let mut out = Vec::new();
    for (i, atom) in rule.neg.iter().enumerate() {
        for v in atom.variables() {
            if !positive.contains(&v) {
                out.push((
                    RuleLocus::NegVar(i, v.to_string()),
                    CoreError::Validation(format!(
                        "unsafe variable {v} in negative literal not {atom} of rule `{rule}`"
                    )),
                ));
            }
        }
    }
    for v in rule.head.variables() {
        if !positive.contains(&v) {
            out.push((
                RuleLocus::HeadVar(v.to_string()),
                CoreError::Validation(format!(
                    "unsafe variable {v} in head {} of rule `{rule}`",
                    rule.head
                )),
            ));
        }
    }
    for (j, d) in rule.head.delta_terms() {
        if d.params.is_empty() {
            out.push((
                RuleLocus::HeadArg(j),
                CoreError::Validation(format!(
                    "Δ-term {d} has an empty parameter tuple in rule `{rule}`"
                )),
            ));
        }
    }
    out
}

/// The locus of a predicate occurrence inside a rule: the first positive
/// literal using it, else the first negative literal, else the head.
fn predicate_locus(rule: &Rule, p: &Predicate) -> RuleLocus {
    if let Some(i) = rule.pos.iter().position(|a| a.predicate == *p) {
        return RuleLocus::Pos(i);
    }
    if let Some(i) = rule.neg.iter().position(|a| a.predicate == *p) {
        return RuleLocus::Neg(i);
    }
    RuleLocus::Head
}

/// Collect *every* validation issue of the program (safety, arity
/// consistency, Δ-term well-formedness), each with the rule index and the
/// locus of the offending literal/term. [`Program::validate_rules`] is the
/// first-issue view of this list.
pub fn validate_all(program: &Program) -> Vec<RuleIssue> {
    let mut issues = Vec::new();
    let mut schema = Schema::new();
    for (index, rule) in program.rules().iter().enumerate() {
        for (locus, error) in rule_issues(rule) {
            issues.push(RuleIssue {
                rule: index,
                locus,
                error,
            });
        }
        for p in rule.predicates() {
            if let Err(e) = schema.add(p) {
                issues.push(RuleIssue {
                    rule: index,
                    locus: predicate_locus(rule, &p),
                    error: e.into(),
                });
            }
        }
        for (j, d) in rule.head.delta_terms() {
            match program.delta().get(&d.distribution) {
                Err(e) => issues.push(RuleIssue {
                    rule: index,
                    locus: RuleLocus::HeadArg(j),
                    error: e.into(),
                }),
                Ok(dist) => {
                    if let Some(k) = dist.param_dim() {
                        if d.params.len() != k {
                            issues.push(RuleIssue {
                                rule: index,
                                locus: RuleLocus::HeadArg(j),
                                error: CoreError::Validation(format!(
                                    "Δ-term {d} supplies {} parameter(s) but {} expects {k}",
                                    d.params.len(),
                                    d.distribution
                                )),
                            });
                        }
                    } else if d.params.is_empty() {
                        issues.push(RuleIssue {
                            rule: index,
                            locus: RuleLocus::HeadArg(j),
                            error: CoreError::Validation(format!(
                                "Δ-term {d} must supply at least one parameter"
                            )),
                        });
                    }
                }
            }
        }
    }
    issues
}

/// A weak-acyclicity violation: the special (fresh-value) edge contributed
/// by the Δ-term at head position `head_arg` of rule `rule` lies on a cycle
/// of the position graph.
#[derive(Clone, Debug)]
pub struct WeakCycle {
    /// Index of the rule contributing the special edge.
    pub rule: usize,
    /// Head argument position (0-based) of the Δ-term.
    pub head_arg: usize,
    /// The cycle as a closed position walk `p₀ → p₁ → … → p₀`, starting at
    /// the special edge's target position. Positions are `(predicate,
    /// 0-based argument index)`.
    pub cycle: Vec<(Predicate, usize)>,
}

impl WeakCycle {
    /// Render the cycle as `P[1] -> Q[2] -> P[1]` (1-based positions).
    pub fn cycle_display(&self) -> String {
        self.cycle
            .iter()
            .map(|(p, i)| format!("{}[{}]", p.name(), i + 1))
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// Weak-acyclicity check over the surface position graph (see the module
/// docs for why the surface graph is equivalent to the translated one).
/// Returns one [`WeakCycle`] per Δ-term whose special edge sits inside a
/// strongly connected component, in (rule, head-argument) order.
pub fn weak_cycles(program: &Program) -> Vec<WeakCycle> {
    // Positions: (predicate, argument index) of every atom of every rule.
    let mut position_set: BTreeSet<(Predicate, usize)> = BTreeSet::new();
    let add_atom = |set: &mut BTreeSet<(Predicate, usize)>, a: &Atom| {
        for i in 0..a.args.len() {
            set.insert((a.predicate, i));
        }
    };
    for rule in program.rules() {
        for a in rule.pos.iter().chain(rule.neg.iter()) {
            add_atom(&mut position_set, a);
        }
        for j in 0..rule.head.args.len() {
            position_set.insert((rule.head.predicate, j));
        }
    }
    let positions: Vec<(Predicate, usize)> = position_set.into_iter().collect();
    let index: BTreeMap<(Predicate, usize), usize> =
        positions.iter().enumerate().map(|(i, p)| (*p, i)).collect();

    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); positions.len()];
    // (source, target, rule, head_arg) per special edge.
    let mut special: Vec<(usize, usize, usize, usize)> = Vec::new();
    for (r, rule) in program.rules().iter().enumerate() {
        // Positions at which each variable occurs in the positive body.
        let mut body_positions: BTreeMap<Var, Vec<usize>> = BTreeMap::new();
        for a in &rule.pos {
            for (i, t) in a.args.iter().enumerate() {
                if let Term::Var(v) = t {
                    body_positions
                        .entry(*v)
                        .or_default()
                        .push(index[&(a.predicate, i)]);
                }
            }
        }
        for (j, arg) in rule.head.args.iter().enumerate() {
            let target = index[&(rule.head.predicate, j)];
            match arg {
                HeadTerm::Term(Term::Var(v)) => {
                    for &src in body_positions.get(v).into_iter().flatten() {
                        succ[src].push(target);
                    }
                }
                HeadTerm::Term(_) => {}
                HeadTerm::Delta(d) => {
                    for v in d.variables() {
                        for &src in body_positions.get(&v).into_iter().flatten() {
                            succ[src].push(target);
                            special.push((src, target, r, j));
                        }
                    }
                }
            }
        }
    }
    for s in &mut succ {
        s.sort_unstable();
        s.dedup();
    }

    let sccs = sccs_of(positions.len(), &succ);
    let mut component_of = vec![usize::MAX; positions.len()];
    for (c, comp) in sccs.iter().enumerate() {
        for &v in comp {
            component_of[v] = c;
        }
    }

    let mut out: Vec<WeakCycle> = Vec::new();
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    special.sort_by_key(|&(_, _, r, j)| (r, j));
    for (src, target, r, j) in special {
        if component_of[src] != component_of[target] || !seen.insert((r, j)) {
            continue;
        }
        // Close the cycle: walk target →* src inside the component, then the
        // special edge src → target closes it.
        let walk = shortest_path_within(&succ, &component_of, target, src);
        let mut cycle: Vec<(Predicate, usize)> = walk.iter().map(|&v| positions[v]).collect();
        cycle.push(positions[target]);
        out.push(WeakCycle {
            rule: r,
            head_arg: j,
            cycle,
        });
    }
    out
}

/// Shortest directed path `from →* to` using only vertices of `from`'s
/// component (both endpoints are in one SCC, so a path always exists; when
/// `from == to` the path is the single vertex).
fn shortest_path_within(
    succ: &[Vec<usize>],
    component_of: &[usize],
    from: usize,
    to: usize,
) -> Vec<usize> {
    if from == to {
        return vec![from];
    }
    let comp = component_of[from];
    let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    queue.push_back(from);
    while let Some(v) = queue.pop_front() {
        for &w in &succ[v] {
            if component_of[w] != comp || w == from || prev.contains_key(&w) {
                continue;
            }
            prev.insert(w, v);
            if w == to {
                let mut path = vec![to];
                let mut cur = to;
                while cur != from {
                    cur = prev[&cur];
                    path.push(cur);
                }
                path.reverse();
                return path;
            }
            queue.push_back(w);
        }
    }
    // Unreachable for vertices of one SCC; degrade gracefully.
    vec![from, to]
}

/// The full static lint: validation errors, weak-acyclicity warnings, the
/// non-stratifiability note, hygiene lints, and the static component count
/// (when the program translates).
pub fn lint(program: &Program, facts: &Database) -> LintReport {
    let mut findings: Vec<Finding> = validate_all(program)
        .into_iter()
        .map(|issue| Finding {
            severity: Severity::Error,
            code: "validation",
            message: issue.error.to_string(),
            rule: Some(issue.rule),
            locus: issue.locus,
        })
        .collect();
    let valid = findings.is_empty();

    for cycle in weak_cycles(program) {
        let head = &program.rules()[cycle.rule].head;
        findings.push(Finding::rule_local(
            Severity::Warning,
            "chase-may-not-terminate",
            format!(
                "chase may not terminate: the Δ-term at argument {} of {} feeds a cycle through positions {}",
                cycle.head_arg + 1,
                head.predicate,
                cycle.cycle_display()
            ),
            cycle.rule,
            RuleLocus::HeadArg(cycle.head_arg),
        ));
    }

    if let Err(ns) = stratification(program) {
        let locus = program.rules().iter().enumerate().find_map(|(r, rule)| {
            if rule.head.predicate != ns.to {
                return None;
            }
            rule.neg
                .iter()
                .position(|a| a.predicate == ns.from)
                .map(|i| (r, RuleLocus::Neg(i)))
        });
        let (rule, locus) = locus.unwrap_or((0, RuleLocus::Rule));
        findings.push(Finding::rule_local(
            Severity::Note,
            "non-stratified",
            format!("{ns}; the perfect grounder is unavailable for this program"),
            rule,
            locus,
        ));
    }

    findings.extend(hygiene(program, facts));

    let static_components = if valid {
        SigmaPi::translate(program, facts)
            .ok()
            .map(|sigma| StaticComponents::of_sigma(&sigma).count())
    } else {
        None
    };

    LintReport {
        findings,
        static_components,
    }
}

/// Hygiene lints: unread head predicates, underivable body predicates
/// (unfirable rules and vacuous negations), singleton variables, and
/// statically invalid distribution parameters.
fn hygiene(program: &Program, facts: &Database) -> Vec<Finding> {
    let mut out = Vec::new();
    let idb = program.idb();
    let read: BTreeSet<Predicate> = program
        .rules()
        .iter()
        .flat_map(|r| r.pos.iter().chain(r.neg.iter()).map(|a| a.predicate))
        .collect();
    let reserved = |p: &Predicate| p.name() == FAIL_PREDICATE || p.name() == AUX_PREDICATE;
    let derivable = |p: &Predicate| idb.contains(p) || facts.atoms_of(p).next().is_some();

    // Head predicates no body ever reads.
    for p in &idb {
        if read.contains(p) || reserved(p) {
            continue;
        }
        let rule = program
            .rules()
            .iter()
            .position(|r| r.head.predicate == *p)
            .unwrap_or(0);
        out.push(Finding::rule_local(
            Severity::Note,
            "unused-predicate",
            format!("head predicate {p} is never read by any rule body (query-only output, or dead code)"),
            rule,
            RuleLocus::Head,
        ));
    }

    for (r, rule) in program.rules().iter().enumerate() {
        // Underivable body predicates.
        for (i, atom) in rule.pos.iter().enumerate() {
            if !derivable(&atom.predicate) {
                out.push(Finding::rule_local(
                    Severity::Warning,
                    "unfirable-rule",
                    format!(
                        "rule can never fire: no rule derives {} and the database has no {} facts",
                        atom.predicate,
                        atom.predicate.name()
                    ),
                    r,
                    RuleLocus::Pos(i),
                ));
            }
        }
        for (i, atom) in rule.neg.iter().enumerate() {
            if !derivable(&atom.predicate) {
                out.push(Finding::rule_local(
                    Severity::Note,
                    "vacuous-negation",
                    format!(
                        "negative literal not {atom} is always true: nothing derives {}",
                        atom.predicate
                    ),
                    r,
                    RuleLocus::Neg(i),
                ));
            }
        }

        // Singleton variables (only safe ones: unsafe variables already
        // carry a validation error).
        let positive = rule.positive_variables();
        let mut counts: Vec<(Var, usize)> = Vec::new();
        let bump = |v: Var, counts: &mut Vec<(Var, usize)>| {
            if let Some(entry) = counts.iter_mut().find(|(u, _)| *u == v) {
                entry.1 += 1;
            } else {
                counts.push((v, 1));
            }
        };
        for a in rule.pos.iter().chain(rule.neg.iter()) {
            for t in &a.args {
                if let Term::Var(v) = t {
                    bump(*v, &mut counts);
                }
            }
        }
        for arg in &rule.head.args {
            match arg {
                HeadTerm::Term(Term::Var(v)) => bump(*v, &mut counts),
                HeadTerm::Term(_) => {}
                HeadTerm::Delta(d) => {
                    for t in d.params.iter().chain(d.event.iter()) {
                        if let Term::Var(v) = t {
                            bump(*v, &mut counts);
                        }
                    }
                }
            }
        }
        for (v, n) in counts {
            if n == 1 && positive.contains(&v) {
                out.push(Finding::rule_local(
                    Severity::Note,
                    "singleton-variable",
                    format!("variable {v} occurs only once in rule `{rule}`"),
                    r,
                    RuleLocus::Var(v.to_string()),
                ));
            }
        }

        // Statically invalid distribution parameters (all-constant tuples
        // with the right dimension that the distribution itself rejects).
        for (j, d) in rule.head.delta_terms() {
            let consts: Option<Vec<gdlog_data::Const>> = d
                .params
                .iter()
                .map(|t| match t {
                    Term::Const(c) => Some(*c),
                    _ => None,
                })
                .collect();
            let Some(consts) = consts else { continue };
            let Ok(dist) = program.delta().get(&d.distribution) else {
                continue;
            };
            if dist.param_dim().is_some_and(|k| consts.len() != k) || consts.is_empty() {
                continue; // dimension problems are validation errors
            }
            if let Err(e) = dist.validate_params(&consts) {
                out.push(Finding::rule_local(
                    Severity::Warning,
                    "invalid-distribution-params",
                    format!("Δ-term {d} has statically invalid parameters: {e}"),
                    r,
                    RuleLocus::HeadArg(j),
                ));
            }
        }
    }
    out
}

/// The static independence prediction: connected components of the
/// predicate-level dependency graph of `Σ_Π[D]` (head — body edges per TGD¬
/// rule, `Active — Result` edges per AtR schema).
///
/// Soundness (over-approximation): every edge of the dynamic ground
/// dependency graph (`factor::partition`) connects two ground atoms whose
/// predicates are joined by an edge here — a star edge `head — body atom`
/// instantiates a rule with exactly those predicates, and an AtR pair edge
/// instantiates a schema's `Active — Result` pair. Connectivity is monotone
/// under graph projection, so every dynamic component's predicate set lies
/// inside one static component.
#[derive(Clone, Debug)]
pub struct StaticComponents {
    component_of: BTreeMap<Predicate, usize>,
    count: usize,
}

impl StaticComponents {
    /// Compute the static components of a translated program.
    pub fn of_sigma(sigma: &SigmaPi) -> Self {
        let mut vertex_set: BTreeSet<Predicate> = BTreeSet::new();
        for rule in &sigma.rules {
            vertex_set.insert(rule.head.predicate);
            for a in rule.pos.iter().chain(rule.neg.iter()) {
                vertex_set.insert(a.predicate);
            }
        }
        for schema in &sigma.atr_schemas {
            vertex_set.insert(schema.active);
            vertex_set.insert(schema.result);
        }
        let vertices: Vec<Predicate> = vertex_set.into_iter().collect();
        let index: BTreeMap<Predicate, usize> =
            vertices.iter().enumerate().map(|(i, p)| (*p, i)).collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); vertices.len()];
        for rule in &sigma.rules {
            let hub = index[&rule.head.predicate];
            for a in rule.pos.iter().chain(rule.neg.iter()) {
                adj[hub].push(index[&a.predicate]);
            }
        }
        for schema in &sigma.atr_schemas {
            adj[index[&schema.active]].push(index[&schema.result]);
        }
        let comps = connected_components(vertices.len(), &adj);
        let mut component_of = BTreeMap::new();
        for (c, comp) in comps.iter().enumerate() {
            for &v in comp {
                component_of.insert(vertices[v], c);
            }
        }
        StaticComponents {
            component_of,
            count: comps.len(),
        }
    }

    /// Number of static components.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The component index of a predicate, if it occurs in `Σ_Π[D]`.
    pub fn component_of(&self, p: &Predicate) -> Option<usize> {
        self.component_of.get(p).copied()
    }
}

/// Static certificate that the program has at most one probabilistic
/// trigger, i.e. the dynamic independence analysis would necessarily fall
/// back to the flat path (fewer than two trigger-bearing components) — so
/// [`crate::Pipeline::solve_factored`] can skip universe saturation
/// entirely.
///
/// The certificate holds when every rule deriving an `Active` atom has a
/// fully ground `Active` head (no variables in the Δ-term's parameters or
/// event signature) and at most one distinct ground `Active` atom exists
/// across all such rules: the chase can then see at most one trigger, and
/// one trigger always lands in one component.
pub fn certainly_single_trigger(sigma: &SigmaPi) -> bool {
    let mut actives: Vec<&Atom> = Vec::new();
    for rule in &sigma.rules {
        if !sigma.is_active_predicate(&rule.head.predicate) {
            continue;
        }
        if rule.head.args.iter().any(|t| matches!(t, Term::Var(_))) {
            return false;
        }
        if !actives.contains(&&rule.head) {
            actives.push(&rule.head);
        }
    }
    actives.len() <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{coin_program, dime_quarter_program, network_resilience_program};
    use gdlog_data::Const;

    fn parseless_rule(pos: Vec<Atom>, neg: Vec<Atom>, head: crate::rule::Head) -> Rule {
        Rule::new(pos, neg, head)
    }

    #[test]
    fn validate_all_collects_every_issue_with_loci() {
        use crate::rule::{Head, HeadTerm};
        // Two unsafe rules plus an arity conflict: three issues in order.
        let program = Program::new(vec![
            parseless_rule(
                vec![Atom::make("A", vec![Term::var("x")])],
                vec![Atom::make("B", vec![Term::var("w")])],
                Head::make("C", vec![HeadTerm::var("z")]),
            ),
            parseless_rule(
                vec![Atom::make("A", vec![Term::var("x"), Term::var("y")])],
                vec![],
                Head::make("D", vec![HeadTerm::var("x")]),
            ),
        ]);
        let issues = validate_all(&program);
        assert_eq!(issues.len(), 3);
        assert_eq!(issues[0].rule, 0);
        assert_eq!(issues[0].locus, RuleLocus::NegVar(0, "w".into()));
        assert_eq!(issues[1].rule, 0);
        assert_eq!(issues[1].locus, RuleLocus::HeadVar("z".into()));
        assert_eq!(issues[2].rule, 1);
        assert_eq!(issues[2].locus, RuleLocus::Pos(0));
        // validate_rules reports exactly the first issue.
        let (rule, err) = program.validate_rules().unwrap_err();
        assert_eq!(rule, 0);
        assert_eq!(err.to_string(), issues[0].error.to_string());
    }

    #[test]
    fn weak_acyclicity_flags_a_delta_self_feed() {
        use crate::delta::DeltaTerm;
        use crate::rule::{Head, HeadTerm};
        let half = Term::Const(Const::real(0.5).unwrap());
        // Val(v) → Val(Flip⟨0.5⟩[v]): the fresh value at Val[1] feeds itself.
        let program = Program::new(vec![
            parseless_rule(
                vec![Atom::make("Seed", vec![Term::var("x")])],
                vec![],
                Head::make(
                    "Val",
                    vec![HeadTerm::Delta(DeltaTerm::new(
                        "Flip",
                        vec![half],
                        vec![Term::var("x")],
                    ))],
                ),
            ),
            parseless_rule(
                vec![Atom::make("Val", vec![Term::var("v")])],
                vec![],
                Head::make(
                    "Val",
                    vec![HeadTerm::Delta(DeltaTerm::new(
                        "Flip",
                        vec![half],
                        vec![Term::var("v")],
                    ))],
                ),
            ),
        ]);
        let cycles = weak_cycles(&program);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].rule, 1);
        assert_eq!(cycles[0].head_arg, 0);
        assert_eq!(cycles[0].cycle_display(), "Val[1] -> Val[1]");
    }

    #[test]
    fn constant_guarded_recursion_is_weakly_acyclic() {
        // The corpus cascade/epidemic shape: recursion reads the Δ position
        // through a constant (`Reach(x, 1)`), so no position feeds itself.
        let program = network_resilience_program(0.1);
        assert!(weak_cycles(&program).is_empty());
        assert!(weak_cycles(&coin_program()).is_empty());
        assert!(weak_cycles(&dime_quarter_program()).is_empty());
    }

    #[test]
    fn lint_severity_classes_on_the_stock_programs() {
        // Dime/quarter: stratified, safe, but SomeDimeTail's projection
        // leaves x a singleton and nothing reads QuarterTail.
        let report = lint(&dime_quarter_program(), &Database::new());
        assert!(!report.has_errors());
        assert!(report.static_components.is_some());
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "singleton-variable"));
        assert!(report.findings.iter().any(|f| f.code == "unused-predicate"));
        // Dime and Quarter have no facts in an empty database.
        assert!(report.findings.iter().any(|f| f.code == "unfirable-rule"));

        // The coin program is intentionally non-stratified.
        let report = lint(&coin_program(), &Database::new());
        assert!(!report.has_errors());
        assert!(report.findings.iter().any(|f| f.code == "non-stratified"));
    }

    #[test]
    fn out_of_range_parameters_are_a_static_warning() {
        use crate::delta::DeltaTerm;
        use crate::rule::{Head, HeadTerm};
        let bad = Term::Const(Const::real(1.5).unwrap());
        let program = Program::new(vec![Rule::fact(Head::make(
            "Coin",
            vec![HeadTerm::Delta(DeltaTerm::simple("Flip", vec![bad]))],
        ))]);
        assert!(
            program.validate().is_ok(),
            "range is not a validation error"
        );
        let report = lint(&program, &Database::new());
        assert!(report.has_warnings());
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "invalid-distribution-params"
                && f.severity == Severity::Warning
                && f.locus == RuleLocus::HeadArg(0)));
    }

    #[test]
    fn static_components_and_single_trigger_certificates() {
        // Coin: one ground Δ-fact → certainly a single trigger.
        let sigma = SigmaPi::translate(&coin_program(), &Database::new()).unwrap();
        assert!(certainly_single_trigger(&sigma));

        // Dime/quarter: Δ-terms with event variables → no certificate.
        let mut db = Database::new();
        db.insert_fact("Dime", [Const::Int(1)]);
        let sigma = SigmaPi::translate(&dime_quarter_program(), &db).unwrap();
        assert!(!certainly_single_trigger(&sigma));
        let statics = StaticComponents::of_sigma(&sigma);
        // Everything is welded together through SomeDimeTail.
        assert_eq!(statics.count(), 1);
        assert_eq!(
            statics.component_of(&Predicate::new("DimeTail", 2)),
            statics.component_of(&Predicate::new("QuarterTail", 2))
        );
        assert_eq!(statics.component_of(&Predicate::new("Nope", 3)), None);
    }
}

//! GDatalog¬\[Δ\] rules.
//!
//! A rule (Section 3, "Syntax") has the form
//!
//! ```text
//! R₁(ū₁), …, Rₙ(ūₙ), ¬P₁(v̄₁), …, ¬Pₘ(v̄ₘ)  →  R₀(w̄)
//! ```
//!
//! where the head tuple `w̄` may mix ordinary terms and Δ-terms, and every
//! variable of the negative literals and of the head (including those inside
//! distribution parameters and event signatures) must occur in some positive
//! body atom (safety).

use crate::delta::DeltaTerm;
use crate::error::CoreError;
use gdlog_data::{Atom, Predicate, Term, Var};
use std::collections::BTreeSet;
use std::fmt;

/// A term of a rule head: an ordinary term or a Δ-term.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum HeadTerm {
    /// An ordinary term (constant or variable).
    Term(Term),
    /// A Δ-term `δ⟨p̄⟩[q̄]`.
    Delta(DeltaTerm),
}

impl HeadTerm {
    /// Shorthand for a variable head term.
    pub fn var(name: &str) -> Self {
        HeadTerm::Term(Term::var(name))
    }

    /// Shorthand for an integer-constant head term.
    pub fn int(value: i64) -> Self {
        HeadTerm::Term(Term::int(value))
    }

    /// The variables occurring in this head term.
    pub fn variables(&self) -> Vec<Var> {
        match self {
            HeadTerm::Term(Term::Var(v)) => vec![*v],
            HeadTerm::Term(_) => Vec::new(),
            HeadTerm::Delta(d) => d.variables(),
        }
    }

    /// Is this head term a Δ-term?
    pub fn is_delta(&self) -> bool {
        matches!(self, HeadTerm::Delta(_))
    }
}

impl fmt::Display for HeadTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeadTerm::Term(t) => write!(f, "{t}"),
            HeadTerm::Delta(d) => write!(f, "{d}"),
        }
    }
}

impl From<Term> for HeadTerm {
    fn from(t: Term) -> Self {
        HeadTerm::Term(t)
    }
}

impl From<DeltaTerm> for HeadTerm {
    fn from(d: DeltaTerm) -> Self {
        HeadTerm::Delta(d)
    }
}

/// The head of a rule: a predicate applied to head terms (a Δ-atom).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Head {
    /// The head predicate `R₀`.
    pub predicate: Predicate,
    /// The head tuple `w̄`.
    pub args: Vec<HeadTerm>,
}

impl Head {
    /// Build a head, deriving the predicate arity from the argument count.
    pub fn make(name: &str, args: Vec<HeadTerm>) -> Self {
        Head {
            predicate: Predicate::new(name, args.len()),
            args,
        }
    }

    /// The Δ-terms of the head, with their argument positions.
    pub fn delta_terms(&self) -> Vec<(usize, &DeltaTerm)> {
        self.args
            .iter()
            .enumerate()
            .filter_map(|(i, a)| match a {
                HeadTerm::Delta(d) => Some((i, d)),
                HeadTerm::Term(_) => None,
            })
            .collect()
    }

    /// Does the head mention any Δ-term?
    pub fn has_delta(&self) -> bool {
        self.args.iter().any(HeadTerm::is_delta)
    }

    /// All variables of the head (including inside Δ-terms).
    pub fn variables(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for a in &self.args {
            for v in a.variables() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// View the head as an ordinary atom if it has no Δ-terms.
    pub fn as_atom(&self) -> Option<Atom> {
        let mut args = Vec::with_capacity(self.args.len());
        for a in &self.args {
            match a {
                HeadTerm::Term(t) => args.push(*t),
                HeadTerm::Delta(_) => return None,
            }
        }
        Some(Atom {
            predicate: self.predicate,
            args,
        })
    }
}

impl fmt::Display for Head {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate.name())?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A GDatalog¬\[Δ\] rule.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Rule {
    /// Positive body atoms `B⁺(ρ)`.
    pub pos: Vec<Atom>,
    /// Atoms of the negative body literals `B⁻(ρ)`.
    pub neg: Vec<Atom>,
    /// The head Δ-atom `H(ρ)`.
    pub head: Head,
}

impl Rule {
    /// Build a rule.
    pub fn new(pos: Vec<Atom>, neg: Vec<Atom>, head: Head) -> Self {
        Rule { pos, neg, head }
    }

    /// A fact `→ head` (empty body).
    pub fn fact(head: Head) -> Self {
        Rule {
            pos: Vec::new(),
            neg: Vec::new(),
            head,
        }
    }

    /// Is the rule positive (no negative body literals)?
    pub fn is_positive(&self) -> bool {
        self.neg.is_empty()
    }

    /// Does the rule sample from a distribution (head mentions a Δ-term)?
    pub fn is_probabilistic(&self) -> bool {
        self.head.has_delta()
    }

    /// The variables of the positive body.
    pub fn positive_variables(&self) -> BTreeSet<Var> {
        self.pos.iter().flat_map(|a| a.variables()).collect()
    }

    /// Check the safety condition: every variable of the negative body and of
    /// the head occurs in some positive body atom.
    pub fn validate(&self) -> Result<(), CoreError> {
        let positive: BTreeSet<Var> = self.positive_variables();
        for atom in &self.neg {
            for v in atom.variables() {
                if !positive.contains(&v) {
                    return Err(CoreError::Validation(format!(
                        "unsafe variable {v} in negative literal not {atom} of rule `{self}`"
                    )));
                }
            }
        }
        for v in self.head.variables() {
            if !positive.contains(&v) {
                return Err(CoreError::Validation(format!(
                    "unsafe variable {v} in head {} of rule `{self}`",
                    self.head
                )));
            }
        }
        for (_, d) in self.head.delta_terms() {
            if d.params.is_empty() {
                return Err(CoreError::Validation(format!(
                    "Δ-term {d} has an empty parameter tuple in rule `{self}`"
                )));
            }
        }
        Ok(())
    }

    /// All predicates mentioned by the rule.
    pub fn predicates(&self) -> BTreeSet<Predicate> {
        let mut out: BTreeSet<Predicate> = self
            .pos
            .iter()
            .chain(self.neg.iter())
            .map(|a| a.predicate)
            .collect();
        out.insert(self.head.predicate);
        out
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for a in &self.pos {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        for a in &self.neg {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "not {a}")?;
            first = false;
        }
        if first {
            write!(f, "-> {}.", self.head)
        } else {
            write!(f, " -> {}.", self.head)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdlog_data::Const;

    fn infection_rule() -> Rule {
        // Infected(x, 1), Connected(x, y) → Infected(y, Flip⟨0.1⟩[x, y])
        Rule::new(
            vec![
                Atom::make("Infected", vec![Term::var("x"), Term::int(1)]),
                Atom::make("Connected", vec![Term::var("x"), Term::var("y")]),
            ],
            vec![],
            Head::make(
                "Infected",
                vec![
                    HeadTerm::var("y"),
                    HeadTerm::Delta(DeltaTerm::new(
                        "Flip",
                        vec![Term::Const(Const::real(0.1).unwrap())],
                        vec![Term::var("x"), Term::var("y")],
                    )),
                ],
            ),
        )
    }

    #[test]
    fn example_3_1_rule_is_valid_and_probabilistic() {
        let r = infection_rule();
        assert!(r.validate().is_ok());
        assert!(r.is_probabilistic());
        assert!(r.is_positive());
        assert_eq!(r.head.delta_terms().len(), 1);
        assert_eq!(r.predicates().len(), 2);
    }

    #[test]
    fn uninfected_rule_with_negation() {
        // Router(x), ¬Infected(x, 1) → Uninfected(x)
        let r = Rule::new(
            vec![Atom::make("Router", vec![Term::var("x")])],
            vec![Atom::make("Infected", vec![Term::var("x"), Term::int(1)])],
            Head::make("Uninfected", vec![HeadTerm::var("x")]),
        );
        assert!(r.validate().is_ok());
        assert!(!r.is_positive());
        assert!(!r.is_probabilistic());
    }

    #[test]
    fn safety_violations_are_caught() {
        // Head variable not in the positive body.
        let r = Rule::new(
            vec![Atom::make("Router", vec![Term::var("x")])],
            vec![],
            Head::make("Uninfected", vec![HeadTerm::var("z")]),
        );
        assert!(matches!(r.validate(), Err(CoreError::Validation(_))));

        // Negative-literal variable not in the positive body.
        let r = Rule::new(
            vec![Atom::make("Router", vec![Term::var("x")])],
            vec![Atom::make("Infected", vec![Term::var("w"), Term::int(1)])],
            Head::make("Uninfected", vec![HeadTerm::var("x")]),
        );
        assert!(r.validate().is_err());

        // Δ-term parameter variable not in the positive body.
        let r = Rule::new(
            vec![Atom::make("Router", vec![Term::var("x")])],
            vec![],
            Head::make(
                "Level",
                vec![HeadTerm::Delta(DeltaTerm::simple(
                    "Flip",
                    vec![Term::var("p")],
                ))],
            ),
        );
        assert!(r.validate().is_err());

        // Empty parameter tuple.
        let r = Rule::new(
            vec![Atom::make("Router", vec![Term::var("x")])],
            vec![],
            Head::make(
                "Level",
                vec![HeadTerm::Delta(DeltaTerm::simple("Flip", vec![]))],
            ),
        );
        assert!(r.validate().is_err());
    }

    #[test]
    fn facts_and_constants_are_safe() {
        let r = Rule::fact(Head::make("Router", vec![HeadTerm::int(1)]));
        assert!(r.validate().is_ok());
        assert!(r.pos.is_empty() && r.neg.is_empty());

        // A ground Δ-term in a fact head is fine (the coin program's first
        // rule: → Coin(Flip⟨0.5⟩)).
        let r = Rule::fact(Head::make(
            "Coin",
            vec![HeadTerm::Delta(DeltaTerm::simple(
                "Flip",
                vec![Term::Const(Const::real(0.5).unwrap())],
            ))],
        ));
        assert!(r.validate().is_ok());
        assert!(r.is_probabilistic());
    }

    #[test]
    fn head_accessors() {
        let r = infection_rule();
        assert!(r.head.as_atom().is_none());
        assert_eq!(r.head.variables(), vec![Var::new("y"), Var::new("x")]);

        let plain = Head::make("P", vec![HeadTerm::var("a"), HeadTerm::int(3)]);
        let atom = plain.as_atom().unwrap();
        assert_eq!(atom, Atom::make("P", vec![Term::var("a"), Term::int(3)]));
        assert!(!plain.has_delta());
    }

    #[test]
    fn display() {
        let r = infection_rule();
        assert_eq!(
            r.to_string(),
            "Infected(x, 1), Connected(x, y) -> Infected(y, Flip<0.1>[x, y])."
        );
        let neg = Rule::new(
            vec![Atom::make("Router", vec![Term::var("x")])],
            vec![Atom::make("Infected", vec![Term::var("x"), Term::int(1)])],
            Head::make("Uninfected", vec![HeadTerm::var("x")]),
        );
        assert_eq!(
            neg.to_string(),
            "Router(x), not Infected(x, 1) -> Uninfected(x)."
        );
        let f = Rule::fact(Head::make("Router", vec![HeadTerm::int(1)]));
        assert_eq!(f.to_string(), "-> Router(1).");
    }
}

//! The deterministic FNV-1a fingerprint scheme shared by the bench binaries,
//! the CLI and the scenario-corpus goldens.
//!
//! CI's thread-determinism job diffs fingerprint strings across
//! `GDLOG_THREADS` legs, and the scenario corpus pins them in golden files,
//! so every producer must hash with the same constants; they all share this
//! one helper to make that impossible to break in only one place.

/// FNV-1a over a sequence of byte chunks, rendered as 16 hex digits.
pub fn fnv1a_fingerprint<I, B>(chunks: I) -> String
where
    I: IntoIterator<Item = B>,
    B: AsRef<[u8]>,
{
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for chunk in chunks {
        for &b in chunk.as_ref() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
    }
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_does_not_matter_but_content_does() {
        assert_eq!(fnv1a_fingerprint(["ab", "c"]), fnv1a_fingerprint(["abc"]));
        assert_ne!(fnv1a_fingerprint(["abc"]), fnv1a_fingerprint(["abd"]));
        assert_eq!(fnv1a_fingerprint(["abc"]).len(), 16);
    }

    #[test]
    fn known_vector() {
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(
            fnv1a_fingerprint(std::iter::empty::<&[u8]>()),
            "cbf29ce484222325"
        );
    }
}

//! Monte-Carlo evaluation.
//!
//! For programs whose chase tree is too large to enumerate exhaustively, a
//! single chase path can be *sampled*: at every trigger one outcome is drawn
//! from `δ⟨p̄⟩` instead of branching over all of them. Repeating this yields
//! unbiased estimates of any event probability of the output space (the
//! sampling distribution over finite paths is exactly the chase-based
//! probability space of Section 4).
//!
//! Sampled walks are independent by construction, so [`MonteCarlo`] draws
//! walk `i` from its own RNG stream derived from the root seed
//! ([`walk_rng`]) rather than from one sequentially advancing generator.
//! This makes every estimate a pure function of `(seed, walk index)` — the
//! walks can be dispatched to an [`Executor`]'s thread pool in any order and
//! still reproduce the sequential estimates bit for bit.

use crate::error::CoreError;
use crate::exec::Executor;
use crate::grounding::{AtrRule, AtrSet, Grounder};
use crate::outcome::PossibleOutcome;
use gdlog_engine::CancelToken;
use gdlog_prob::sampler::{sample_distribution, Estimate};
use gdlog_prob::Prob;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, OnceLock};

/// The RNG for walk `index` of a run rooted at `seed`: the seed is combined
/// with the index through a SplitMix64-style finalizer (Steele, Lea &
/// Flood's mixer, the standard recommendation for splitting seeds), so
/// streams of different walks are statistically independent and a walk's
/// stream never depends on how many walks other threads have drawn.
pub fn walk_rng(seed: u64, index: u64) -> StdRng {
    let mut z = seed
        .rotate_left(17)
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// The result of sampling one chase path.
#[derive(Clone, Debug)]
pub enum SampledPath {
    /// The path reached a terminal configuration: a finite possible outcome
    /// (boxed: an outcome carries its whole grounding, an abandoned path
    /// only its choice set).
    Finite(Box<PossibleOutcome>),
    /// The path was abandoned after the trigger budget was exhausted — it
    /// belongs (statistically) to the error event or to a deeper finite
    /// outcome.
    Abandoned {
        /// The configuration reached when the budget ran out.
        partial: AtrSet,
        /// Number of triggers applied.
        depth: usize,
    },
}

impl SampledPath {
    /// Is this a finite outcome?
    pub fn is_finite(&self) -> bool {
        matches!(self, SampledPath::Finite(_))
    }

    /// The finite outcome, if any.
    pub fn outcome(&self) -> Option<&PossibleOutcome> {
        match self {
            SampledPath::Finite(o) => Some(o),
            SampledPath::Abandoned { .. } => None,
        }
    }
}

/// Sample a single chase path with at most `max_triggers` trigger
/// applications.
pub fn sample_outcome<R: Rng + ?Sized>(
    grounder: &dyn Grounder,
    max_triggers: usize,
    rng: &mut R,
) -> Result<SampledPath, CoreError> {
    let mut atr = AtrSet::new();
    let mut probability = Prob::ONE;
    // Each trigger application extends the configuration by one choice, so
    // the previous grounding seeds an incremental saturation over an O(1)
    // structural snapshot (no per-step deep clone of the rule set).
    let mut previous: Option<(AtrSet, crate::grounding::Grounding)> = None;
    for depth in 0..=max_triggers {
        let grounding = match &mut previous {
            Some((parent_atr, parent_grounding)) => {
                grounder.ground_from(&atr, parent_atr, parent_grounding)
            }
            None => grounder.ground_node(&atr),
        };
        let triggers = grounder.triggers(&atr, grounding.rules());
        if triggers.is_empty() {
            return Ok(SampledPath::Finite(Box::new(PossibleOutcome::new(
                atr,
                grounding.into_rules(),
                probability,
            ))));
        }
        if depth == max_triggers {
            break;
        }
        // Apply the first trigger (the order does not matter, Lemma 4.4).
        let trigger = triggers[0].clone();
        let schema = grounder
            .sigma()
            .schema_for_active(&trigger.predicate)
            .ok_or_else(|| {
                CoreError::Validation(format!("trigger {trigger} has no Active schema"))
            })?;
        let (params, _) = schema.split_active(&trigger);
        let value = sample_distribution(schema.distribution, params, rng)?;
        let mass = schema.outcome_probability(&trigger, &value)?;
        probability = probability.mul(&mass);
        // Keep the pre-extension configuration alongside its grounding.
        previous = Some((atr.clone(), grounding));
        atr.insert(AtrRule::new(grounder.sigma(), trigger, value)?)?;
    }
    Ok(SampledPath::Abandoned {
        depth: max_triggers,
        partial: atr,
    })
}

/// Summary statistics of a Monte-Carlo run.
#[derive(Clone, Debug)]
pub struct SampleStats {
    /// Estimate of the probability of the queried event.
    pub estimate: Estimate,
    /// Number of sampled paths that were abandoned (budget exhausted).
    pub abandoned: usize,
    /// Number of samples drawn in total.
    pub samples: usize,
}

/// A Monte-Carlo estimator bound to a grounder.
///
/// Walk `i` of the estimator's lifetime is drawn from [`walk_rng`]`(seed,
/// i)`, so the sampled paths depend only on the seed and the walk index —
/// never on the executor. [`MonteCarlo::estimate`] therefore produces
/// bit-identical statistics whether it runs sequentially or fans the walks
/// out to a thread pool ([`MonteCarlo::with_executor`]).
pub struct MonteCarlo<'a> {
    grounder: &'a dyn Grounder,
    max_triggers: usize,
    seed: u64,
    next_walk: u64,
    executor: Option<&'a Executor>,
    cancel: CancelToken,
}

impl<'a> MonteCarlo<'a> {
    /// Create an estimator with a deterministic seed.
    pub fn new(grounder: &'a dyn Grounder, max_triggers: usize, seed: u64) -> Self {
        MonteCarlo {
            grounder,
            max_triggers,
            seed,
            next_walk: 0,
            executor: None,
            cancel: CancelToken::never(),
        }
    }

    /// Fan [`MonteCarlo::estimate`]'s walks out to `executor`'s pool. The
    /// estimates are bit-identical to the sequential ones for every thread
    /// count; only wall-clock time changes.
    pub fn with_executor(mut self, executor: &'a Executor) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Observe `cancel` at every walk boundary. A cancelled estimate returns
    /// [`CoreError::Interrupted`] — a partial tally would not be an unbiased
    /// estimate of anything the caller asked for, so Monte-Carlo is
    /// exact-sample-count-or-nothing.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Draw one path (the next walk of this estimator's stream).
    pub fn sample(&mut self) -> Result<SampledPath, CoreError> {
        let mut rng = walk_rng(self.seed, self.next_walk);
        self.next_walk += 1;
        sample_outcome(self.grounder, self.max_triggers, &mut rng)
    }

    /// Estimate the probability of an event specified as a predicate over
    /// finite outcomes. Abandoned paths count as "event false" — estimates of
    /// events over finite outcomes are therefore lower bounds when abandoned
    /// paths occur (report `abandoned` to judge their impact).
    pub fn estimate<F>(&mut self, samples: usize, event: F) -> Result<SampleStats, CoreError>
    where
        F: Fn(&PossibleOutcome) -> bool + Sync,
    {
        let first_walk = self.next_walk;
        self.next_walk += samples as u64;
        let pool = self.executor.and_then(Executor::pool);
        let (hits, abandoned) = match pool {
            None => {
                let mut hits = 0usize;
                let mut abandoned = 0usize;
                for walk in first_walk..first_walk + samples as u64 {
                    if self.cancel.is_cancelled() {
                        return Err(CoreError::Interrupted("monte-carlo estimation".into()));
                    }
                    match self.run_walk(walk, &event)? {
                        Some(true) => hits += 1,
                        Some(false) => {}
                        None => abandoned += 1,
                    }
                }
                (hits, abandoned)
            }
            Some(pool) => {
                // Contiguous chunks of the walk range, several per worker so
                // the pool balances uneven walk lengths by stealing. Chunk
                // tallies are integers, so the merge is order-insensitive —
                // except for errors, which are surfaced in walk order (each
                // chunk stops at its first failing walk, and chunks are
                // merged lowest-first), exactly as the sequential loop does.
                let threads = pool.current_num_threads().max(1);
                let chunk = samples.div_ceil(threads * 4).max(1);
                let ranges: Vec<(u64, u64)> = (0..samples)
                    .step_by(chunk)
                    .map(|start| {
                        (
                            first_walk + start as u64,
                            first_walk + (start + chunk).min(samples) as u64,
                        )
                    })
                    .collect();
                /// Hit/abandon counts of one chunk, or its first walk error.
                type Tally = OnceLock<Result<(usize, usize), CoreError>>;
                let tallies: Vec<Arc<Tally>> =
                    ranges.iter().map(|_| Arc::new(OnceLock::new())).collect();
                pool.scope(|scope| {
                    for (&(start, end), tally) in ranges.iter().zip(&tallies) {
                        let tally = Arc::clone(tally);
                        let this = &*self;
                        let event = &event;
                        scope.spawn(move |_| {
                            let mut hits = 0usize;
                            let mut abandoned = 0usize;
                            let mut outcome = Ok(());
                            for walk in start..end {
                                if this.cancel.is_cancelled() {
                                    outcome = Err(CoreError::Interrupted(
                                        "monte-carlo estimation".into(),
                                    ));
                                    break;
                                }
                                match this.run_walk(walk, event) {
                                    Ok(Some(true)) => hits += 1,
                                    Ok(Some(false)) => {}
                                    Ok(None) => abandoned += 1,
                                    Err(e) => {
                                        outcome = Err(e);
                                        break;
                                    }
                                }
                            }
                            let _ = tally.set(outcome.map(|()| (hits, abandoned)));
                        });
                    }
                });
                let mut hits = 0usize;
                let mut abandoned = 0usize;
                for tally in tallies {
                    let (h, a) = Arc::try_unwrap(tally)
                        .unwrap_or_else(|_| unreachable!("tally still shared after the scope"))
                        .into_inner()
                        .expect("every chunk task reports")?;
                    hits += h;
                    abandoned += a;
                }
                (hits, abandoned)
            }
        };
        Ok(SampleStats {
            estimate: Estimate::from_bernoulli(hits, samples),
            abandoned,
            samples,
        })
    }

    /// Run one walk: `Some(event result)` for finite paths, `None` for
    /// abandoned ones.
    fn run_walk<F>(&self, walk: u64, event: &F) -> Result<Option<bool>, CoreError>
    where
        F: Fn(&PossibleOutcome) -> bool,
    {
        let mut rng = walk_rng(self.seed, walk);
        match sample_outcome(self.grounder, self.max_triggers, &mut rng)? {
            SampledPath::Finite(outcome) => Ok(Some(event(&outcome))),
            SampledPath::Abandoned { .. } => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{coin_program, network_resilience_program};
    use crate::simple_grounder::SimpleGrounder;
    use crate::translate::SigmaPi;
    use gdlog_data::{Const, Database};
    use gdlog_engine::StableModelLimits;
    use std::sync::Arc;

    fn network_grounder(n: i64) -> SimpleGrounder {
        let mut db = Database::new();
        for i in 1..=n {
            db.insert_fact("Router", [Const::Int(i)]);
            for j in 1..=n {
                if i != j {
                    db.insert_fact("Connected", [Const::Int(i), Const::Int(j)]);
                }
            }
        }
        db.insert_fact("Infected", [Const::Int(1), Const::Int(1)]);
        SimpleGrounder::new(Arc::new(
            SigmaPi::translate(&network_resilience_program(0.1), &db).unwrap(),
        ))
    }

    #[test]
    fn sampled_paths_terminate_and_have_consistent_probability() {
        let grounder = network_grounder(3);
        let mut mc = MonteCarlo::new(&grounder, 100, 7);
        for _ in 0..20 {
            let path = mc.sample().unwrap();
            assert!(path.is_finite());
            let outcome = path.outcome().unwrap();
            // The path probability equals the product of its choices.
            assert_eq!(
                outcome.probability,
                outcome.atr.probability(grounder.sigma()).unwrap()
            );
        }
    }

    #[test]
    fn domination_probability_estimate_converges_to_0_19() {
        let grounder = network_grounder(3);
        let mut mc = MonteCarlo::new(&grounder, 100, 42);
        let limits = StableModelLimits::default();
        let stats = mc
            .estimate(4000, |outcome| {
                !outcome.stable_models(&limits).unwrap().is_empty()
            })
            .unwrap();
        assert_eq!(stats.abandoned, 0);
        assert_eq!(stats.samples, 4000);
        assert!(
            stats.estimate.consistent_with(0.19, 4.0),
            "estimate {:?} not consistent with 0.19",
            stats.estimate
        );
    }

    #[test]
    fn coin_sampling_hits_both_outcomes() {
        let sigma = SigmaPi::translate(&coin_program(), &Database::new()).unwrap();
        let grounder = SimpleGrounder::new(Arc::new(sigma));
        let mut mc = MonteCarlo::new(&grounder, 10, 3);
        let mut tails = 0;
        let mut heads = 0;
        for _ in 0..200 {
            let path = mc.sample().unwrap();
            let outcome = path.outcome().unwrap();
            let coin1 = gdlog_data::GroundAtom::make("Coin", vec![Const::Int(1)]);
            if outcome.rules.heads().contains(&coin1) {
                tails += 1;
            } else {
                heads += 1;
            }
        }
        assert!(tails > 50 && heads > 50, "tails {tails}, heads {heads}");
    }

    #[test]
    fn deep_paths_survive_snapshot_flattening() {
        // 24 independent coins: one sampled path takes 24 trigger steps, so
        // the grounding snapshot chain exceeds the flattening threshold and
        // the collapsed frames must still carry the full rule log.
        use gdlog_data::Term;
        let n = 24i64;
        let mut db = Database::new();
        for i in 1..=n {
            db.insert_fact("Coin", [Const::Int(i)]);
        }
        let program = crate::ProgramBuilder::new()
            .rule(|r| {
                r.body("Coin", vec![Term::var("x")]).head_with_delta(
                    "Toss",
                    vec![Term::var("x")],
                    "Flip",
                    vec![Term::Const(Const::real(0.5).unwrap())],
                    vec![Term::var("x")],
                )
            })
            .build()
            .unwrap();
        let sigma = SigmaPi::translate(&program, &db).unwrap();
        let grounder = SimpleGrounder::new(Arc::new(sigma));
        let mut mc = MonteCarlo::new(&grounder, 64, 9);
        let path = mc.sample().unwrap();
        let outcome = path.outcome().expect("path terminates");
        assert_eq!(outcome.choice_count(), n as usize);
        assert_eq!(outcome.probability, Prob::ratio(1, 1 << n));
        // The accumulated grounding saw every coin: n Coin facts, n Active
        // rules, n Result→Toss rules.
        assert_eq!(outcome.rule_count(), 3 * n as usize);
        assert_eq!(
            outcome.rules.canonical_rules(),
            grounder.ground(&outcome.atr).canonical_rules()
        );
    }

    #[test]
    fn walk_streams_are_independent_of_draw_order() {
        // Walk i's path is a pure function of (seed, i): drawing walks
        // 0..n one by one gives the same paths as any other schedule.
        let grounder = network_grounder(3);
        let paths: Vec<String> = (0..8u64)
            .map(|walk| {
                let mut rng = walk_rng(42, walk);
                match sample_outcome(&grounder, 100, &mut rng).unwrap() {
                    SampledPath::Finite(o) => format!("{}@{}", o.atr, o.probability),
                    SampledPath::Abandoned { .. } => "abandoned".to_owned(),
                }
            })
            .collect();
        let mut mc = MonteCarlo::new(&grounder, 100, 42);
        for expected in &paths {
            let got = match mc.sample().unwrap() {
                SampledPath::Finite(o) => format!("{}@{}", o.atr, o.probability),
                SampledPath::Abandoned { .. } => "abandoned".to_owned(),
            };
            assert_eq!(&got, expected);
        }
        // Distinct walks explore distinct paths with overwhelming
        // probability on this workload; a constant stream would betray a
        // broken splitter.
        assert!(
            paths
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len()
                > 1
        );
    }

    #[test]
    fn parallel_estimates_are_bit_identical_to_sequential() {
        let grounder = network_grounder(3);
        let limits = StableModelLimits::default();
        let event = |outcome: &PossibleOutcome| !outcome.stable_models(&limits).unwrap().is_empty();
        let mut sequential = MonteCarlo::new(&grounder, 100, 11);
        let base = sequential.estimate(500, event).unwrap();
        for threads in [2, 3, 8] {
            let executor = crate::exec::Executor::new(threads);
            let mut parallel = MonteCarlo::new(&grounder, 100, 11).with_executor(&executor);
            let stats = parallel.estimate(500, event).unwrap();
            assert_eq!(stats.estimate.mean, base.estimate.mean, "x{threads}");
            assert_eq!(stats.abandoned, base.abandoned);
            assert_eq!(stats.samples, base.samples);
            // A second estimate continues the walk stream identically too.
            let base2 = sequential.estimate(250, event).unwrap();
            let stats2 = parallel.estimate(250, event).unwrap();
            assert_eq!(stats2.estimate.mean, base2.estimate.mean, "x{threads} cont");
            // Rewind the sequential estimator so every thread count sees the
            // same continuation window.
            sequential = MonteCarlo::new(&grounder, 100, 11);
            let _ = sequential.estimate(500, event).unwrap();
        }
    }

    #[test]
    fn trigger_budget_abandons_paths() {
        // With a zero trigger budget every probabilistic path is abandoned.
        let grounder = network_grounder(3);
        let mut mc = MonteCarlo::new(&grounder, 0, 1);
        let path = mc.sample().unwrap();
        assert!(!path.is_finite());
        match path {
            SampledPath::Abandoned { depth, partial } => {
                assert_eq!(depth, 0);
                assert!(partial.is_empty());
            }
            SampledPath::Finite(_) => unreachable!(),
        }
        let stats = mc.estimate(10, |_| true).unwrap();
        assert_eq!(stats.abandoned, 10);
        assert_eq!(stats.estimate.mean, 0.0);
    }
}

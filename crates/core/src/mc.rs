//! Monte-Carlo evaluation.
//!
//! For programs whose chase tree is too large to enumerate exhaustively, a
//! single chase path can be *sampled*: at every trigger one outcome is drawn
//! from `δ⟨p̄⟩` instead of branching over all of them. Repeating this yields
//! unbiased estimates of any event probability of the output space (the
//! sampling distribution over finite paths is exactly the chase-based
//! probability space of Section 4).

use crate::error::CoreError;
use crate::grounding::{AtrRule, AtrSet, Grounder};
use crate::outcome::PossibleOutcome;
use gdlog_prob::sampler::{sample_distribution, Estimate};
use gdlog_prob::Prob;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The result of sampling one chase path.
#[derive(Clone, Debug)]
pub enum SampledPath {
    /// The path reached a terminal configuration: a finite possible outcome
    /// (boxed: an outcome carries its whole grounding, an abandoned path
    /// only its choice set).
    Finite(Box<PossibleOutcome>),
    /// The path was abandoned after the trigger budget was exhausted — it
    /// belongs (statistically) to the error event or to a deeper finite
    /// outcome.
    Abandoned {
        /// The configuration reached when the budget ran out.
        partial: AtrSet,
        /// Number of triggers applied.
        depth: usize,
    },
}

impl SampledPath {
    /// Is this a finite outcome?
    pub fn is_finite(&self) -> bool {
        matches!(self, SampledPath::Finite(_))
    }

    /// The finite outcome, if any.
    pub fn outcome(&self) -> Option<&PossibleOutcome> {
        match self {
            SampledPath::Finite(o) => Some(o),
            SampledPath::Abandoned { .. } => None,
        }
    }
}

/// Sample a single chase path with at most `max_triggers` trigger
/// applications.
pub fn sample_outcome<R: Rng + ?Sized>(
    grounder: &dyn Grounder,
    max_triggers: usize,
    rng: &mut R,
) -> Result<SampledPath, CoreError> {
    let mut atr = AtrSet::new();
    let mut probability = Prob::ONE;
    // Each trigger application extends the configuration by one choice, so
    // the previous grounding seeds an incremental saturation over an O(1)
    // structural snapshot (no per-step deep clone of the rule set).
    let mut previous: Option<(AtrSet, crate::grounding::Grounding)> = None;
    for depth in 0..=max_triggers {
        let grounding = match &mut previous {
            Some((parent_atr, parent_grounding)) => {
                grounder.ground_from(&atr, parent_atr, parent_grounding)
            }
            None => grounder.ground_node(&atr),
        };
        let triggers = grounder.triggers(&atr, grounding.rules());
        if triggers.is_empty() {
            return Ok(SampledPath::Finite(Box::new(PossibleOutcome::new(
                atr,
                grounding.into_rules(),
                probability,
            ))));
        }
        if depth == max_triggers {
            break;
        }
        // Apply the first trigger (the order does not matter, Lemma 4.4).
        let trigger = triggers[0].clone();
        let schema = grounder
            .sigma()
            .schema_for_active(&trigger.predicate)
            .ok_or_else(|| {
                CoreError::Validation(format!("trigger {trigger} has no Active schema"))
            })?;
        let (params, _) = schema.split_active(&trigger);
        let value = sample_distribution(schema.distribution, params, rng)?;
        let mass = schema.outcome_probability(&trigger, &value)?;
        probability = probability.mul(&mass);
        // Keep the pre-extension configuration alongside its grounding.
        previous = Some((atr.clone(), grounding));
        atr.insert(AtrRule::new(grounder.sigma(), trigger, value)?)?;
    }
    Ok(SampledPath::Abandoned {
        depth: max_triggers,
        partial: atr,
    })
}

/// Summary statistics of a Monte-Carlo run.
#[derive(Clone, Debug)]
pub struct SampleStats {
    /// Estimate of the probability of the queried event.
    pub estimate: Estimate,
    /// Number of sampled paths that were abandoned (budget exhausted).
    pub abandoned: usize,
    /// Number of samples drawn in total.
    pub samples: usize,
}

/// A Monte-Carlo estimator bound to a grounder.
pub struct MonteCarlo<'a> {
    grounder: &'a dyn Grounder,
    max_triggers: usize,
    rng: StdRng,
}

impl<'a> MonteCarlo<'a> {
    /// Create an estimator with a deterministic seed.
    pub fn new(grounder: &'a dyn Grounder, max_triggers: usize, seed: u64) -> Self {
        MonteCarlo {
            grounder,
            max_triggers,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draw one path.
    pub fn sample(&mut self) -> Result<SampledPath, CoreError> {
        sample_outcome(self.grounder, self.max_triggers, &mut self.rng)
    }

    /// Estimate the probability of an event specified as a predicate over
    /// finite outcomes. Abandoned paths count as "event false" — estimates of
    /// events over finite outcomes are therefore lower bounds when abandoned
    /// paths occur (report `abandoned` to judge their impact).
    pub fn estimate<F>(&mut self, samples: usize, event: F) -> Result<SampleStats, CoreError>
    where
        F: Fn(&PossibleOutcome) -> bool,
    {
        let mut hits = 0usize;
        let mut abandoned = 0usize;
        for _ in 0..samples {
            match self.sample()? {
                SampledPath::Finite(outcome) => {
                    if event(&outcome) {
                        hits += 1;
                    }
                }
                SampledPath::Abandoned { .. } => abandoned += 1,
            }
        }
        Ok(SampleStats {
            estimate: Estimate::from_bernoulli(hits, samples),
            abandoned,
            samples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{coin_program, network_resilience_program};
    use crate::simple_grounder::SimpleGrounder;
    use crate::translate::SigmaPi;
    use gdlog_data::{Const, Database};
    use gdlog_engine::StableModelLimits;
    use std::sync::Arc;

    fn network_grounder(n: i64) -> SimpleGrounder {
        let mut db = Database::new();
        for i in 1..=n {
            db.insert_fact("Router", [Const::Int(i)]);
            for j in 1..=n {
                if i != j {
                    db.insert_fact("Connected", [Const::Int(i), Const::Int(j)]);
                }
            }
        }
        db.insert_fact("Infected", [Const::Int(1), Const::Int(1)]);
        SimpleGrounder::new(Arc::new(
            SigmaPi::translate(&network_resilience_program(0.1), &db).unwrap(),
        ))
    }

    #[test]
    fn sampled_paths_terminate_and_have_consistent_probability() {
        let grounder = network_grounder(3);
        let mut mc = MonteCarlo::new(&grounder, 100, 7);
        for _ in 0..20 {
            let path = mc.sample().unwrap();
            assert!(path.is_finite());
            let outcome = path.outcome().unwrap();
            // The path probability equals the product of its choices.
            assert_eq!(
                outcome.probability,
                outcome.atr.probability(grounder.sigma()).unwrap()
            );
        }
    }

    #[test]
    fn domination_probability_estimate_converges_to_0_19() {
        let grounder = network_grounder(3);
        let mut mc = MonteCarlo::new(&grounder, 100, 42);
        let limits = StableModelLimits::default();
        let stats = mc
            .estimate(4000, |outcome| {
                !outcome.stable_models(&limits).unwrap().is_empty()
            })
            .unwrap();
        assert_eq!(stats.abandoned, 0);
        assert_eq!(stats.samples, 4000);
        assert!(
            stats.estimate.consistent_with(0.19, 4.0),
            "estimate {:?} not consistent with 0.19",
            stats.estimate
        );
    }

    #[test]
    fn coin_sampling_hits_both_outcomes() {
        let sigma = SigmaPi::translate(&coin_program(), &Database::new()).unwrap();
        let grounder = SimpleGrounder::new(Arc::new(sigma));
        let mut mc = MonteCarlo::new(&grounder, 10, 3);
        let mut tails = 0;
        let mut heads = 0;
        for _ in 0..200 {
            let path = mc.sample().unwrap();
            let outcome = path.outcome().unwrap();
            let coin1 = gdlog_data::GroundAtom::make("Coin", vec![Const::Int(1)]);
            if outcome.rules.heads().contains(&coin1) {
                tails += 1;
            } else {
                heads += 1;
            }
        }
        assert!(tails > 50 && heads > 50, "tails {tails}, heads {heads}");
    }

    #[test]
    fn deep_paths_survive_snapshot_flattening() {
        // 24 independent coins: one sampled path takes 24 trigger steps, so
        // the grounding snapshot chain exceeds the flattening threshold and
        // the collapsed frames must still carry the full rule log.
        use gdlog_data::Term;
        let n = 24i64;
        let mut db = Database::new();
        for i in 1..=n {
            db.insert_fact("Coin", [Const::Int(i)]);
        }
        let program = crate::ProgramBuilder::new()
            .rule(|r| {
                r.body("Coin", vec![Term::var("x")]).head_with_delta(
                    "Toss",
                    vec![Term::var("x")],
                    "Flip",
                    vec![Term::Const(Const::real(0.5).unwrap())],
                    vec![Term::var("x")],
                )
            })
            .build()
            .unwrap();
        let sigma = SigmaPi::translate(&program, &db).unwrap();
        let grounder = SimpleGrounder::new(Arc::new(sigma));
        let mut mc = MonteCarlo::new(&grounder, 64, 9);
        let path = mc.sample().unwrap();
        let outcome = path.outcome().expect("path terminates");
        assert_eq!(outcome.choice_count(), n as usize);
        assert_eq!(outcome.probability, Prob::ratio(1, 1 << n));
        // The accumulated grounding saw every coin: n Coin facts, n Active
        // rules, n Result→Toss rules.
        assert_eq!(outcome.rule_count(), 3 * n as usize);
        assert_eq!(
            outcome.rules.canonical_rules(),
            grounder.ground(&outcome.atr).canonical_rules()
        );
    }

    #[test]
    fn trigger_budget_abandons_paths() {
        // With a zero trigger budget every probabilistic path is abandoned.
        let grounder = network_grounder(3);
        let mut mc = MonteCarlo::new(&grounder, 0, 1);
        let path = mc.sample().unwrap();
        assert!(!path.is_finite());
        match path {
            SampledPath::Abandoned { depth, partial } => {
                assert_eq!(depth, 0);
                assert!(partial.is_empty());
            }
            SampledPath::Finite(_) => unreachable!(),
        }
        let stats = mc.estimate(10, |_| true).unwrap();
        assert_eq!(stats.abandoned, 10);
        assert_eq!(stats.estimate.mean, 0.0);
    }
}

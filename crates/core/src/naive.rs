//! The retained **naive** saturation — the paper-literal reference oracle.
//!
//! Before the semi-naive refactor, the shared saturation loop of
//! `simple_grounder` executed Definition 3.4 verbatim: every round re-matched *all* rules
//! against the *entire* head set. That formulation is kept here, unchanged,
//! for two purposes:
//!
//! * **test oracle** — property tests assert that the semi-naive grounders
//!   produce exactly the same [`GroundRuleSet`] on random programs and AtR
//!   sets (see `tests/properties.rs` and the tests below), and
//! * **baseline** — the `grounding_seminaive` criterion target and the
//!   `bench_grounding` binary measure the speedup of the delta-driven loop
//!   against it.
//!
//! [`NaiveSimpleGrounder`] and [`NaivePerfectGrounder`] wrap the existing
//! grounders but route `ground` through the naive loop, so the whole chase /
//! output-space pipeline can be replayed against the oracle.

use crate::grounding::{AtrSet, GroundRuleSet, Grounder};
use crate::perfect_grounder::PerfectGrounder;
use crate::simple_grounder::SimpleGrounder;
use crate::translate::{SigmaPi, TgdRule};
use gdlog_data::{match_atoms, Database, GroundAtom};
use gdlog_engine::GroundRule;
use std::collections::HashSet;

/// The pre-refactor saturation loop: each round re-matches every rule
/// against the full head set, with candidate atoms filtered by predicate
/// only. Semantically identical to the semi-naive loop in
/// `simple_grounder`, asymptotically slower.
pub(crate) fn saturate_naive(
    rules: &[&TgdRule],
    atr: &AtrSet,
    initial: GroundRuleSet,
    neg_reference: Option<&Database>,
) -> GroundRuleSet {
    let mut derived = initial;
    let mut heads = derived.heads().clone();
    let mut included_atr: HashSet<GroundAtom> = HashSet::new();

    loop {
        let mut changed = false;

        // Activate AtR rules whose body is available.
        for atr_rule in atr.iter() {
            if !included_atr.contains(&atr_rule.active) && heads.contains(&atr_rule.active) {
                included_atr.insert(atr_rule.active.clone());
                if heads.insert(atr_rule.result.clone()) {
                    changed = true;
                }
            }
        }

        // One pass over the non-ground rules, against all heads.
        let mut new_rules: Vec<GroundRule> = Vec::new();
        for rule in rules {
            let homs = match_atoms(&rule.pos, |pattern| heads.candidates(pattern));
            for h in homs {
                let head = rule
                    .head
                    .apply_ground(&h)
                    .expect("safety guarantees the head grounds");
                let pos: Vec<GroundAtom> = rule
                    .pos
                    .iter()
                    .map(|a| a.apply_ground(&h).expect("matched atoms are ground"))
                    .collect();
                let neg: Vec<GroundAtom> = rule
                    .neg
                    .iter()
                    .map(|a| {
                        a.apply_ground(&h)
                            .expect("safety grounds negative literals")
                    })
                    .collect();
                if let Some(reference) = neg_reference {
                    if neg.iter().any(|a| reference.contains(a)) {
                        continue;
                    }
                }
                new_rules.push(GroundRule::new(head, pos, neg));
            }
        }
        for rule in new_rules {
            let head = rule.head.clone();
            if derived.push(rule) {
                heads.insert(head);
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }
    derived
}

/// [`SimpleGrounder`] with grounding routed through the naive loop.
#[derive(Clone)]
pub struct NaiveSimpleGrounder(pub SimpleGrounder);

impl Grounder for NaiveSimpleGrounder {
    fn sigma(&self) -> &SigmaPi {
        self.0.sigma()
    }

    fn name(&self) -> &'static str {
        "naive-simple"
    }

    fn ground(&self, atr: &AtrSet) -> GroundRuleSet {
        self.0.ground_naive(atr)
    }
}

/// [`PerfectGrounder`] with every stratum saturated by the naive loop.
#[derive(Clone)]
pub struct NaivePerfectGrounder(pub PerfectGrounder);

impl Grounder for NaivePerfectGrounder {
    fn sigma(&self) -> &SigmaPi {
        self.0.sigma()
    }

    fn name(&self) -> &'static str {
        "naive-perfect"
    }

    fn ground(&self, atr: &AtrSet) -> GroundRuleSet {
        self.0.ground_naive(atr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grounding::AtrRule;
    use crate::program::{dime_quarter_program, network_resilience_program};
    use crate::simple_grounder::saturate_cancellable;
    use crate::translate::SigmaPi;
    use gdlog_data::{Atom, Const, Predicate, Term};
    use gdlog_engine::CancelToken;
    use std::sync::Arc;

    fn network_db(n: i64) -> Database {
        let mut db = Database::new();
        for i in 1..=n {
            db.insert_fact("Router", [Const::Int(i)]);
            for j in 1..=n {
                if i != j {
                    db.insert_fact("Connected", [Const::Int(i), Const::Int(j)]);
                }
            }
        }
        db.insert_fact("Infected", [Const::Int(1), Const::Int(1)]);
        db
    }

    #[test]
    fn seminaive_equals_naive_on_the_network_example() {
        let sigma =
            Arc::new(SigmaPi::translate(&network_resilience_program(0.1), &network_db(3)).unwrap());
        let grounder = SimpleGrounder::new(sigma.clone());

        // Empty choice set and a cascading one.
        let mut atr = AtrSet::new();
        assert_eq!(grounder.ground(&atr), grounder.ground_naive(&atr));
        let schema = &sigma.atr_schemas[0];
        let p = Const::real(0.1).unwrap();
        for i in [2i64, 3] {
            let active = GroundAtom {
                predicate: schema.active,
                args: vec![p, Const::Int(1), Const::Int(i)],
            };
            atr.insert(AtrRule::new(&sigma, active, Const::Int(1)).unwrap())
                .unwrap();
        }
        assert_eq!(grounder.ground(&atr), grounder.ground_naive(&atr));
    }

    #[test]
    fn seminaive_equals_naive_on_the_stratified_example() {
        let mut db = Database::new();
        db.insert_fact("Dime", [Const::Int(1)]);
        db.insert_fact("Dime", [Const::Int(2)]);
        db.insert_fact("Quarter", [Const::Int(3)]);
        let sigma = Arc::new(SigmaPi::translate(&dime_quarter_program(), &db).unwrap());
        let grounder = PerfectGrounder::new(sigma.clone()).unwrap();

        let schema = &sigma.atr_schemas[0];
        let mut atr = AtrSet::new();
        for (d, o) in [(1i64, 1i64), (2, 0)] {
            let active = GroundAtom {
                predicate: schema.active,
                args: vec![Const::real(0.5).unwrap(), Const::Int(d)],
            };
            atr.insert(AtrRule::new(&sigma, active, Const::Int(o)).unwrap())
                .unwrap();
        }
        assert_eq!(grounder.ground(&atr), grounder.ground_naive(&atr));
        assert_eq!(
            grounder.ground(&AtrSet::new()),
            grounder.ground_naive(&AtrSet::new())
        );
    }

    #[test]
    fn raw_saturation_loops_agree_on_handwritten_rules() {
        // A transitive-closure-style rule set exercised directly, including a
        // rule whose head feeds another rule (multi-round derivation).
        let fact = |a: i64, b: i64| TgdRule {
            pos: vec![],
            neg: vec![],
            head: Atom::make("E", vec![Term::int(a), Term::int(b)]),
            origin_head: Predicate::new("E", 2),
        };
        let rules_owned = [
            fact(1, 2),
            fact(2, 3),
            fact(3, 4),
            TgdRule {
                pos: vec![Atom::make("E", vec![Term::var("x"), Term::var("y")])],
                neg: vec![],
                head: Atom::make("T", vec![Term::var("x"), Term::var("y")]),
                origin_head: Predicate::new("T", 2),
            },
            TgdRule {
                pos: vec![
                    Atom::make("T", vec![Term::var("x"), Term::var("y")]),
                    Atom::make("E", vec![Term::var("y"), Term::var("z")]),
                ],
                neg: vec![],
                head: Atom::make("T", vec![Term::var("x"), Term::var("z")]),
                origin_head: Predicate::new("T", 2),
            },
        ];
        let rules: Vec<&TgdRule> = rules_owned.iter().collect();
        let atr = AtrSet::new();
        let seminaive = saturate_cancellable(
            &rules,
            &atr,
            GroundRuleSet::new(),
            None,
            &CancelToken::never(),
        );
        let naive = saturate_naive(&rules, &atr, GroundRuleSet::new(), None);
        assert_eq!(seminaive, naive);
        // 3 E facts, 3 direct T rules, 2 + 1 transitive T rules.
        assert_eq!(seminaive.len(), 9);
    }
}

//! Grounders for generative Datalog¬ (Definition 3.3).
//!
//! A *configuration of probabilistic choices* is a functionally consistent
//! set of ground active-to-result TGDs ([`AtrSet`]): for every ground
//! `Active` atom at most one outcome. A [`Grounder`] maps each such set `Σ`
//! to a set of ground, existential-free TGD¬ rules `G(Σ) ⊆ ground(Σ∄_Π)`
//! such that, whenever `AtR_Σ` is compatible with `G(Σ)` (defined on every
//! `Active` atom occurring in `heads(G(Σ))`), the stable models of
//! `G(Σ) ∪ Σ` are exactly those of `Σ∄_Π ∪ Σ′` for every totalizer `Σ′` of
//! `AtR_Σ`.

use crate::error::CoreError;
use crate::translate::SigmaPi;
use gdlog_data::{Const, Database, GroundAtom};
use gdlog_engine::{GroundProgram, GroundRule};
use gdlog_prob::Prob;
use std::collections::BTreeMap;
use std::fmt;

/// The ground rules produced by a grounder: a subset of `ground(Σ∄_Π)`.
pub type GroundRuleSet = GroundProgram;

/// The grounding of one chase node: the rule set `G(Σ)` together with the
/// grounder-specific resumption state that makes descending to a child node
/// incremental.
///
/// For the perfect grounder the cursor is the number of strata whose
/// saturation completed; a child resumes at the stratum the parent was stuck
/// in (triggers are always derived in the last processed stratum, so a new
/// choice can only activate rules from that stratum upward — completed lower
/// strata are final by stratification). The simple grounder has a single
/// saturation and ignores the cursor.
#[derive(Clone, Debug)]
pub struct Grounding {
    rules: GroundRuleSet,
    cursor: usize,
}

impl Grounding {
    /// Wrap a rule set with no resumption state.
    pub fn new(rules: GroundRuleSet) -> Self {
        Grounding { rules, cursor: 0 }
    }

    /// Wrap a rule set with an explicit resumption cursor.
    pub fn with_cursor(rules: GroundRuleSet, cursor: usize) -> Self {
        Grounding { rules, cursor }
    }

    /// The ground rules `G(Σ)`.
    pub fn rules(&self) -> &GroundRuleSet {
        &self.rules
    }

    /// Mutable access to the rule set (used by grounders to freeze snapshot
    /// frames; the rule *contents* never change once produced).
    pub fn rules_mut(&mut self) -> &mut GroundRuleSet {
        &mut self.rules
    }

    /// The grounder-specific resumption cursor.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Unwrap into the plain rule set.
    pub fn into_rules(self) -> GroundRuleSet {
        self.rules
    }

    /// An O(1) structurally shared copy: the rule log and head set are
    /// frozen into `Arc`-shared frames (see [`GroundProgram::snapshot`]) and
    /// the cursor is carried over. Every chase sibling extends such a
    /// snapshot instead of a deep clone of the parent's grounding.
    pub fn snapshot(&mut self) -> Grounding {
        Grounding {
            rules: self.rules.snapshot(),
            cursor: self.cursor,
        }
    }
}

/// A ground active-to-result TGD `Active(p̄, q̄) → Result(p̄, q̄, o)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct AtrRule {
    /// The ground `Active` atom (the trigger).
    pub active: GroundAtom,
    /// The chosen outcome `o`.
    pub outcome: Const,
    /// The ground `Result` atom (`active`'s arguments followed by `outcome`).
    pub result: GroundAtom,
}

impl AtrRule {
    /// Build an AtR rule from an `Active` atom and an outcome, using the
    /// schema registry to produce the `Result` atom.
    pub fn new(sigma: &SigmaPi, active: GroundAtom, outcome: Const) -> Result<Self, CoreError> {
        let schema = sigma.schema_for_active(&active.predicate).ok_or_else(|| {
            CoreError::Validation(format!(
                "{} is not an Active predicate of this program",
                active.predicate
            ))
        })?;
        let result = schema.result_atom(&active, outcome);
        Ok(AtrRule {
            active,
            outcome,
            result,
        })
    }

    /// View the AtR rule as a ground rule `active → result` (used when
    /// assembling the full program `G(Σ) ∪ Σ` whose stable models are
    /// computed).
    pub fn to_ground_rule(&self) -> GroundRule {
        GroundRule::new(self.result.clone(), vec![self.active.clone()], vec![])
    }

    /// The probability `δ⟨p̄⟩(o)` of this choice.
    pub fn probability(&self, sigma: &SigmaPi) -> Result<Prob, CoreError> {
        let schema = sigma
            .schema_for_active(&self.active.predicate)
            .ok_or_else(|| {
                CoreError::Validation(format!(
                    "unknown Active predicate {}",
                    self.active.predicate
                ))
            })?;
        Ok(schema.outcome_probability(&self.active, &self.outcome)?)
    }
}

impl fmt::Display for AtrRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}.", self.active, self.result)
    }
}

/// A functionally consistent set of ground AtR TGDs — an element of
/// `[2^ground(Σ∃_Π)]^=` in the paper's notation.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct AtrSet {
    rules: BTreeMap<GroundAtom, AtrRule>,
}

impl AtrSet {
    /// The empty choice set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a choice. Returns `Ok(true)` if it was new, `Ok(false)` if the
    /// identical choice was already present, and an error if a *different*
    /// outcome was already chosen for the same `Active` atom (which would
    /// violate functional consistency).
    pub fn insert(&mut self, rule: AtrRule) -> Result<bool, CoreError> {
        match self.rules.get(&rule.active) {
            Some(existing) if existing.outcome == rule.outcome => Ok(false),
            Some(existing) => Err(CoreError::Validation(format!(
                "inconsistent choices for {}: {} vs {}",
                rule.active, existing.outcome, rule.outcome
            ))),
            None => {
                self.rules.insert(rule.active.clone(), rule);
                Ok(true)
            }
        }
    }

    /// A copy of this set extended with one more choice.
    pub fn extended(&self, rule: AtrRule) -> Result<AtrSet, CoreError> {
        let mut next = self.clone();
        next.insert(rule)?;
        Ok(next)
    }

    /// Is the partial function `AtR_Σ` defined on this `Active` atom?
    pub fn is_defined_on(&self, active: &GroundAtom) -> bool {
        self.rules.contains_key(active)
    }

    /// The outcome chosen for an `Active` atom, if any.
    pub fn outcome_of(&self, active: &GroundAtom) -> Option<&Const> {
        self.rules.get(active).map(|r| &r.outcome)
    }

    /// Number of choices.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterate over the AtR rules in a canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &AtrRule> {
        self.rules.values()
    }

    /// The `Result` atoms of the set (its head atoms).
    pub fn result_atoms(&self) -> Database {
        Database::from_atoms(self.rules.values().map(|r| r.result.clone()))
    }

    /// The set as ground rules `active → result`.
    pub fn to_ground_rules(&self) -> Vec<GroundRule> {
        self.rules.values().map(AtrRule::to_ground_rule).collect()
    }

    /// Is `self ⊆ other`?
    pub fn is_subset_of(&self, other: &AtrSet) -> bool {
        self.rules.values().all(|r| {
            other
                .outcome_of(&r.active)
                .map(|o| *o == r.outcome)
                .unwrap_or(false)
        })
    }

    /// The probability `Pr(Σ)` of the configuration: the product of the
    /// probabilities of its choices (Definition 3.7 / the probability measure
    /// of Definition 3.8).
    pub fn probability(&self, sigma: &SigmaPi) -> Result<Prob, CoreError> {
        let mut p = Prob::ONE;
        for r in self.rules.values() {
            p = p.mul(&r.probability(sigma)?);
        }
        Ok(p)
    }

    /// A canonical listing of the choices, usable as a hash/ordering key.
    pub fn canonical(&self) -> Vec<AtrRule> {
        self.rules.values().cloned().collect()
    }
}

impl fmt::Display for AtrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.rules.values().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

/// A grounder of a program `Π[D]` (Definition 3.3).
///
/// `Send + Sync` is a supertrait: the parallel chase shares one grounder
/// across worker threads (grounders are immutable views of an
/// `Arc<SigmaPi>`; all per-node state lives in the [`Grounding`] values they
/// return, which are owned by exactly one chase subtree each).
pub trait Grounder: Send + Sync {
    /// The translated program this grounder was built for.
    fn sigma(&self) -> &SigmaPi;

    /// A short human-readable name ("simple", "perfect").
    fn name(&self) -> &'static str;

    /// Install a cooperative [`gdlog_engine::CancelToken`] polled at
    /// saturation-round boundaries. A cancelled grounder may return
    /// *partial* rule sets from then on, so callers must re-check the token
    /// before trusting any grounding produced after installation. The
    /// default ignores the token (grounding stays uninterruptible).
    fn set_cancel(&mut self, cancel: gdlog_engine::CancelToken) {
        let _ = cancel;
    }

    /// Compute `G(Σ)`: the ground existential-free rules induced by the
    /// choice set `Σ`.
    fn ground(&self, atr: &AtrSet) -> GroundRuleSet;

    /// Compute `G(Σ)` as a chase node: the rules plus whatever resumption
    /// state the grounder needs to descend incrementally. The default wraps
    /// [`Grounder::ground`] with no state.
    fn ground_node(&self, atr: &AtrSet) -> Grounding {
        Grounding::new(self.ground(atr))
    }

    /// Compute `G(Σ)` given the grounding of a sub-configuration
    /// `parent_atr ⊆ Σ` (the chase descends by extending configurations one
    /// choice at a time, so the parent grounding is always at hand). The
    /// parent is borrowed mutably so implementations can take an O(1)
    /// structural snapshot ([`Grounding::snapshot`]) to extend — the
    /// parent's *contents* are never changed. The default recomputes from
    /// scratch; grounders with an incremental saturation override this.
    fn ground_from(&self, atr: &AtrSet, parent_atr: &AtrSet, parent: &mut Grounding) -> Grounding {
        let _ = (parent_atr, parent);
        self.ground_node(atr)
    }

    /// Is `AtR_Σ` compatible with `rules` (`AtR_Σ ↩→ rules`): defined on every
    /// `Active` atom occurring in `heads(rules)`?
    fn is_compatible(&self, atr: &AtrSet, rules: &GroundRuleSet) -> bool {
        self.active_heads(rules)
            .iter()
            .all(|a| atr.is_defined_on(a))
    }

    /// Is `Σ` a terminal of this grounder (`Σ ∈ terminals(G)`)?
    fn is_terminal(&self, atr: &AtrSet) -> bool {
        let rules = self.ground(atr);
        self.is_compatible(atr, &rules)
    }

    /// The `Active` atoms occurring in `heads(rules)`. Reads the head set's
    /// per-predicate relations directly instead of scanning every head atom.
    fn active_heads(&self, rules: &GroundRuleSet) -> Vec<GroundAtom> {
        let heads = rules.heads();
        self.sigma()
            .atr_schemas
            .iter()
            .flat_map(|schema| heads.atoms_of(&schema.active))
            .cloned()
            .collect()
    }

    /// The triggers for `rules` on `Σ` (Definition 4.1): `Active` atoms in
    /// `heads(rules)` on which `AtR_Σ` is not yet defined, in a canonical
    /// order.
    fn triggers(&self, atr: &AtrSet, rules: &GroundRuleSet) -> Vec<GroundAtom> {
        let mut out: Vec<GroundAtom> = self
            .active_heads(rules)
            .into_iter()
            .filter(|a| !atr.is_defined_on(a))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// The full ground program `G(Σ) ∪ Σ` whose stable models define the
    /// outcome's semantics.
    fn full_program(&self, atr: &AtrSet) -> GroundProgram {
        let mut program = self.ground(atr);
        program.extend(atr.to_ground_rules());
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::coin_program;
    use crate::translate::SigmaPi;

    fn coin_sigma() -> SigmaPi {
        SigmaPi::translate(&coin_program(), &Database::new()).unwrap()
    }

    fn coin_active(sigma: &SigmaPi) -> GroundAtom {
        let schema = &sigma.atr_schemas[0];
        GroundAtom {
            predicate: schema.active,
            args: vec![Const::real(0.5).unwrap()],
        }
    }

    #[test]
    fn atr_rule_construction_and_probability() {
        let sigma = coin_sigma();
        let active = coin_active(&sigma);
        let rule = AtrRule::new(&sigma, active.clone(), Const::Int(1)).unwrap();
        assert_eq!(rule.result.args.len(), 2);
        assert_eq!(rule.probability(&sigma).unwrap(), Prob::ratio(1, 2));
        let ground = rule.to_ground_rule();
        assert_eq!(ground.pos, vec![active]);
        assert!(ground.neg.is_empty());

        // Unknown active predicate is rejected.
        let bogus = GroundAtom::make("NotActive", vec![Const::Int(1)]);
        assert!(AtrRule::new(&sigma, bogus, Const::Int(1)).is_err());
    }

    #[test]
    fn atr_set_functional_consistency() {
        let sigma = coin_sigma();
        let active = coin_active(&sigma);
        let heads = AtrRule::new(&sigma, active.clone(), Const::Int(0)).unwrap();
        let tails = AtrRule::new(&sigma, active.clone(), Const::Int(1)).unwrap();

        let mut set = AtrSet::new();
        assert!(set.is_empty());
        assert!(set.insert(heads.clone()).unwrap());
        assert!(!set.insert(heads.clone()).unwrap());
        assert!(set.insert(tails.clone()).is_err());
        assert_eq!(set.len(), 1);
        assert!(set.is_defined_on(&active));
        assert_eq!(set.outcome_of(&active), Some(&Const::Int(0)));
        assert_eq!(set.result_atoms().len(), 1);
        assert_eq!(set.to_ground_rules().len(), 1);
        assert_eq!(set.probability(&sigma).unwrap(), Prob::ratio(1, 2));
        assert_eq!(set.canonical().len(), 1);
        assert!(set.to_string().contains("Active_Flip_1_0"));
    }

    #[test]
    fn subset_and_extension() {
        let sigma = coin_sigma();
        let active = coin_active(&sigma);
        let heads = AtrRule::new(&sigma, active.clone(), Const::Int(0)).unwrap();
        let tails = AtrRule::new(&sigma, active, Const::Int(1)).unwrap();

        let empty = AtrSet::new();
        let with_heads = empty.extended(heads.clone()).unwrap();
        assert!(empty.is_subset_of(&with_heads));
        assert!(!with_heads.is_subset_of(&empty));
        assert!(with_heads.is_subset_of(&with_heads));
        // A set choosing tails is not a superset of one choosing heads.
        let with_tails = empty.extended(tails).unwrap();
        assert!(!with_heads.is_subset_of(&with_tails));
        // Extending with a conflicting choice fails.
        assert!(with_heads
            .extended(AtrRule::new(&coin_sigma(), coin_active(&sigma), Const::Int(1)).unwrap())
            .is_err());
    }

    #[test]
    fn empty_set_probability_is_one() {
        let sigma = coin_sigma();
        assert_eq!(AtrSet::new().probability(&sigma).unwrap(), Prob::ONE);
    }
}

//! Convenience queries over an [`OutputSpace`].
//!
//! These are thin wrappers used by the examples and the experiment harness;
//! anything more elaborate can be expressed directly with
//! [`OutputSpace::probability_where`].

use crate::semantics::OutputSpace;
use gdlog_data::{Const, GroundAtom};
use gdlog_prob::Prob;

/// Probability that the program has at least one stable model — e.g. the
/// probability that the malware dominates the network in Example 3.10.
pub fn has_stable_model_probability(space: &OutputSpace) -> Prob {
    space.has_stable_model_probability()
}

/// Probability that `atom` holds in *every* stable model (and at least one
/// stable model exists).
pub fn cautious_probability(space: &OutputSpace, atom: &GroundAtom) -> Prob {
    space.cautious_probability(atom)
}

/// Probability that `atom` holds in *some* stable model.
pub fn brave_probability(space: &OutputSpace, atom: &GroundAtom) -> Prob {
    space.brave_probability(atom)
}

/// Probability that the fact `name(args…)` holds bravely.
pub fn brave_fact_probability<I, C>(space: &OutputSpace, name: &str, args: I) -> Prob
where
    I: IntoIterator<Item = C>,
    C: Into<Const>,
{
    let atom = GroundAtom::make(name, args.into_iter().map(Into::into).collect());
    brave_probability(space, &atom)
}

/// Probability that the fact `name(args…)` holds cautiously.
pub fn cautious_fact_probability<I, C>(space: &OutputSpace, name: &str, args: I) -> Prob
where
    I: IntoIterator<Item = C>,
    C: Into<Const>,
{
    let atom = GroundAtom::make(name, args.into_iter().map(Into::into).collect());
    cautious_probability(space, &atom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::{enumerate_outcomes, ChaseBudget, TriggerOrder};
    use crate::program::network_resilience_program;
    use crate::simple_grounder::SimpleGrounder;
    use crate::translate::SigmaPi;
    use gdlog_data::Database;
    use gdlog_engine::StableModelLimits;
    use std::sync::Arc;

    fn space() -> OutputSpace {
        let mut db = Database::new();
        for i in 1..=3i64 {
            db.insert_fact("Router", [Const::Int(i)]);
            for j in 1..=3i64 {
                if i != j {
                    db.insert_fact("Connected", [Const::Int(i), Const::Int(j)]);
                }
            }
        }
        db.insert_fact("Infected", [Const::Int(1), Const::Int(1)]);
        let grounder = SimpleGrounder::new(Arc::new(
            SigmaPi::translate(&network_resilience_program(0.1), &db).unwrap(),
        ));
        let chase =
            enumerate_outcomes(&grounder, &ChaseBudget::default(), TriggerOrder::First).unwrap();
        OutputSpace::from_chase(&chase, &StableModelLimits::default()).unwrap()
    }

    #[test]
    fn wrappers_agree_with_the_space() {
        let s = space();
        assert_eq!(has_stable_model_probability(&s), Prob::ratio(19, 100));
        // Infected(1,1) is a database fact: it holds in every stable model,
        // so its cautious probability equals the domination probability.
        assert_eq!(
            cautious_fact_probability(&s, "Infected", [Const::Int(1), Const::Int(1)]),
            Prob::ratio(19, 100)
        );
        assert_eq!(
            brave_fact_probability(&s, "Infected", [Const::Int(1), Const::Int(1)]),
            Prob::ratio(19, 100)
        );
        // A nonsense fact has probability zero.
        assert_eq!(
            brave_fact_probability(&s, "Infected", [Const::Int(9), Const::Int(1)]),
            Prob::ZERO
        );
        // Router 2 is infected in some dominated worlds but not all of them.
        let brave2 = brave_fact_probability(&s, "Infected", [Const::Int(2), Const::Int(1)]);
        let cautious2 = cautious_fact_probability(&s, "Infected", [Const::Int(2), Const::Int(1)]);
        assert!(brave2.to_f64() > 0.0);
        assert!(cautious2.to_f64() <= brave2.to_f64());
    }
}

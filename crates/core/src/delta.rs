//! Δ-terms: samples from parameterized distributions.
//!
//! A Δ-term `δ⟨p̄⟩[q̄]` (Section 3, "Syntax") denotes a sample from the
//! distribution `δ⟨p̄⟩`; different event signatures `q̄` denote *different*
//! (independent) samples, identical ones denote the same sample. The event
//! signature may be empty, written `δ⟨p̄⟩`.

use gdlog_data::{Term, Var};
use std::fmt;

/// A Δ-term `δ⟨p̄⟩[q̄]`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct DeltaTerm {
    /// Name of the distribution `δ` (resolved against the program's
    /// [`gdlog_prob::DeltaRegistry`]).
    pub distribution: String,
    /// The distribution parameters `p̄` (a non-empty tuple of terms).
    pub params: Vec<Term>,
    /// The optional event signature `q̄`.
    pub event: Vec<Term>,
}

impl DeltaTerm {
    /// Create a Δ-term.
    pub fn new(distribution: &str, params: Vec<Term>, event: Vec<Term>) -> Self {
        DeltaTerm {
            distribution: distribution.to_owned(),
            params,
            event,
        }
    }

    /// Create a Δ-term with an empty event signature.
    pub fn simple(distribution: &str, params: Vec<Term>) -> Self {
        Self::new(distribution, params, Vec::new())
    }

    /// All variables occurring in the parameters or the event signature.
    pub fn variables(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for t in self.params.iter().chain(self.event.iter()) {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        }
        out
    }

    /// Is the Δ-term ground (no variables)?
    pub fn is_ground(&self) -> bool {
        self.variables().is_empty()
    }
}

impl fmt::Display for DeltaTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}<", self.distribution)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ">")?;
        if !self.event.is_empty() {
            write!(f, "[")?;
            for (i, q) in self.event.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{q}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdlog_data::Const;

    #[test]
    fn construction_and_variables() {
        let t = DeltaTerm::new(
            "Flip",
            vec![Term::Const(Const::real(0.1).unwrap())],
            vec![Term::var("x"), Term::var("y")],
        );
        assert_eq!(t.distribution, "Flip");
        assert_eq!(t.variables(), vec![Var::new("x"), Var::new("y")]);
        assert!(!t.is_ground());

        let g = DeltaTerm::simple("Flip", vec![Term::Const(Const::real(0.5).unwrap())]);
        assert!(g.is_ground());
        assert!(g.event.is_empty());
    }

    #[test]
    fn duplicate_variables_are_reported_once() {
        let t = DeltaTerm::new(
            "UniformInt",
            vec![Term::var("x"), Term::var("x")],
            vec![Term::var("x")],
        );
        assert_eq!(t.variables(), vec![Var::new("x")]);
    }

    #[test]
    fn display_matches_surface_syntax() {
        let t = DeltaTerm::new(
            "Flip",
            vec![Term::Const(Const::real(0.1).unwrap())],
            vec![Term::var("x"), Term::var("y")],
        );
        assert_eq!(t.to_string(), "Flip<0.1>[x, y]");
        let s = DeltaTerm::simple("Flip", vec![Term::Const(Const::real(0.5).unwrap())]);
        assert_eq!(s.to_string(), "Flip<0.5>");
    }
}

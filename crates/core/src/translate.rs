//! Translation from GDatalog¬\[Δ\] to TGD¬ (Section 3).
//!
//! A rule `R₁(ū₁), …, ¬P₁(v̄₁), … → R₀(w̄)` whose head contains Δ-terms
//! `δⱼ⟨p̄ⱼ⟩[q̄ⱼ]` is translated into
//!
//! * one rule `body → Activeᵟʲ(p̄ⱼ, q̄ⱼ)` per Δ-term,
//! * one *active-to-result* (AtR) TGD
//!   `Activeᵟʲ(p̄ⱼ, q̄ⱼ) → ∃yⱼ Resultᵟʲ(p̄ⱼ, q̄ⱼ, yⱼ)` per Δ-term, and
//! * one rule `Resultᵟ¹(…, y₁), …, body → R₀(w̄′)` where `w̄′` replaces every
//!   Δ-term by its fresh variable.
//!
//! The AtR TGDs — the only existential rules — encode the probabilistic
//! choices; everything else is an existential-free TGD¬ ([`TgdRule`]). The
//! program `Σ_Π[D]` additionally contains a fact rule `→ α` for every `α ∈ D`.
//!
//! Naming: the paper writes `Active^δ_{|q̄|}`; because a distribution such as
//! `Categorical` may be used with several parameter dimensions we refine the
//! name to `Active_<dist>_<|p̄|>_<|q̄|>` (and likewise for `Result`). These
//! generated predicate names are considered reserved.

use crate::error::CoreError;
use crate::program::Program;
use crate::rule::{HeadTerm, Rule};
use gdlog_data::{Atom, Const, Database, GroundAtom, Predicate, Term, Var};
use gdlog_prob::{DeltaRegistry, DistError, Distribution, Prob};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// An existential-free TGD¬ of `Σ∄_Π[D]`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TgdRule {
    /// Positive body atoms.
    pub pos: Vec<Atom>,
    /// Atoms of the negative body literals.
    pub neg: Vec<Atom>,
    /// The head atom.
    pub head: Atom,
    /// The head predicate of the originating GDatalog¬\[Δ\] rule (for facts,
    /// the fact's predicate). The perfect grounder groups rules by the
    /// stratum of this predicate.
    pub origin_head: Predicate,
}

impl fmt::Display for TgdRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for a in &self.pos {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        for a in &self.neg {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "not {a}")?;
            first = false;
        }
        if first {
            write!(f, "-> {}.", self.head)
        } else {
            write!(f, " -> {}.", self.head)
        }
    }
}

/// The schema of one family of active-to-result TGDs
/// `Active_δ_k_l(p̄, q̄) → ∃y Result_δ_k_l(p̄, q̄, y)`.
#[derive(Clone, Debug, PartialEq)]
pub struct AtrSchema {
    /// The distribution name as written in the program.
    pub distribution_name: String,
    /// The resolved distribution.
    pub distribution: Distribution,
    /// The `Active` predicate (arity `|p̄| + |q̄|`).
    pub active: Predicate,
    /// The `Result` predicate (arity `|p̄| + |q̄| + 1`).
    pub result: Predicate,
    /// `|p̄|`.
    pub param_len: usize,
    /// `|q̄|`.
    pub event_len: usize,
}

impl AtrSchema {
    /// Split a ground `Active` atom into its distribution parameters and
    /// event signature.
    pub fn split_active<'a>(&self, active: &'a GroundAtom) -> (&'a [Const], &'a [Const]) {
        debug_assert_eq!(active.predicate, self.active);
        active.args.split_at(self.param_len)
    }

    /// Build the ground `Result` atom for an `Active` atom and an outcome.
    pub fn result_atom(&self, active: &GroundAtom, outcome: Const) -> GroundAtom {
        debug_assert_eq!(active.predicate, self.active);
        let mut args = active.args.clone();
        args.push(outcome);
        GroundAtom {
            predicate: self.result,
            args,
        }
    }

    /// The probability `δ⟨p̄⟩(o)` of `outcome` for the given `Active` atom.
    pub fn outcome_probability(
        &self,
        active: &GroundAtom,
        outcome: &Const,
    ) -> Result<Prob, DistError> {
        let (params, _) = self.split_active(active);
        self.distribution.pmf(params, outcome)
    }

    /// Enumerate up to `max` outcomes with positive probability for the given
    /// `Active` atom.
    pub fn outcomes(
        &self,
        active: &GroundAtom,
        max: usize,
    ) -> Result<Vec<(Const, Prob)>, DistError> {
        let (params, _) = self.split_active(active);
        self.distribution.enumerate(params, max)
    }

    /// Does `δ⟨p̄⟩` have finite support?
    pub fn has_finite_support(&self) -> bool {
        self.distribution.has_finite_support()
    }
}

/// The translated program `Σ_Π[D]`, split into its existential-free part
/// `Σ∄` ([`SigmaPi::rules`]) and the schemas of its AtR TGDs `Σ∃`
/// ([`SigmaPi::atr_schemas`]).
#[derive(Clone, Debug)]
pub struct SigmaPi {
    /// The existential-free TGD¬ rules (including one fact rule per database
    /// atom).
    pub rules: Vec<TgdRule>,
    /// The AtR TGD schemas, one per distinct `(δ, |p̄|, |q̄|)` combination.
    pub atr_schemas: Vec<AtrSchema>,
    /// The distribution registry Δ of the program.
    pub delta: DeltaRegistry,
    active_index: HashMap<Predicate, usize>,
    original_schema: BTreeSet<Predicate>,
}

impl SigmaPi {
    /// Translate `Π[D]` into `Σ_Π[D]`.
    ///
    /// The program is validated first; the database must only use predicates
    /// of `edb(Π)` or predicates not mentioned by the program at all (extra
    /// relations are allowed and simply become facts).
    pub fn translate(program: &Program, database: &Database) -> Result<SigmaPi, CoreError> {
        program.validate()?;
        let mut sigma = SigmaPi {
            rules: Vec::new(),
            atr_schemas: Vec::new(),
            delta: program.delta().clone(),
            active_index: HashMap::new(),
            original_schema: program.schema().iter().copied().collect(),
        };
        for p in database.predicates() {
            sigma.original_schema.insert(*p);
        }

        // Σ[D]: one fact rule per database atom.
        for fact in database.canonical_atoms() {
            sigma.rules.push(TgdRule {
                pos: Vec::new(),
                neg: Vec::new(),
                head: fact.to_atom(),
                origin_head: fact.predicate,
            });
        }

        for rule in program.rules() {
            sigma.translate_rule(rule)?;
        }
        Ok(sigma)
    }

    fn translate_rule(&mut self, rule: &Rule) -> Result<(), CoreError> {
        let deltas = rule.head.delta_terms();
        let origin_head = rule.head.predicate;
        if deltas.is_empty() {
            let head = rule
                .head
                .as_atom()
                .expect("head without Δ-terms converts to an atom");
            self.rules.push(TgdRule {
                pos: rule.pos.clone(),
                neg: rule.neg.clone(),
                head,
                origin_head,
            });
            return Ok(());
        }

        let used_vars: BTreeSet<Var> = rule
            .positive_variables()
            .into_iter()
            .chain(rule.head.variables())
            .collect();

        let mut result_atoms: Vec<Atom> = Vec::new();
        let mut fresh_vars: Vec<Var> = Vec::new();
        for (j, (_, delta)) in deltas.iter().enumerate() {
            let distribution = self.delta.get(&delta.distribution)?;
            let schema_idx = self.ensure_schema(
                &delta.distribution,
                distribution,
                delta.params.len(),
                delta.event.len(),
            );
            let schema = &self.atr_schemas[schema_idx];

            // body → Active(p̄, q̄)
            let mut active_args: Vec<Term> = delta.params.clone();
            active_args.extend(delta.event.iter().copied());
            let active_atom = Atom {
                predicate: schema.active,
                args: active_args.clone(),
            };
            self.rules.push(TgdRule {
                pos: rule.pos.clone(),
                neg: rule.neg.clone(),
                head: active_atom,
                origin_head,
            });

            // Fresh variable yⱼ for the Result atom / new head.
            let fresh = fresh_variable(&used_vars, j);
            fresh_vars.push(fresh);
            let mut result_args = active_args;
            result_args.push(Term::Var(fresh));
            result_atoms.push(Atom {
                predicate: schema.result,
                args: result_args,
            });
        }

        // Result atoms + original body → head with Δ-terms replaced by yⱼ.
        let mut new_head_args: Vec<Term> = Vec::with_capacity(rule.head.args.len());
        let mut delta_counter = 0usize;
        for arg in &rule.head.args {
            match arg {
                HeadTerm::Term(t) => new_head_args.push(*t),
                HeadTerm::Delta(_) => {
                    new_head_args.push(Term::Var(fresh_vars[delta_counter]));
                    delta_counter += 1;
                }
            }
        }
        let mut pos = result_atoms;
        pos.extend(rule.pos.iter().cloned());
        self.rules.push(TgdRule {
            pos,
            neg: rule.neg.clone(),
            head: Atom {
                predicate: rule.head.predicate,
                args: new_head_args,
            },
            origin_head,
        });
        Ok(())
    }

    fn ensure_schema(
        &mut self,
        name: &str,
        distribution: Distribution,
        param_len: usize,
        event_len: usize,
    ) -> usize {
        let active_name = format!("Active_{name}_{param_len}_{event_len}");
        let active = Predicate::new(&active_name, param_len + event_len);
        if let Some(&idx) = self.active_index.get(&active) {
            return idx;
        }
        let result_name = format!("Result_{name}_{param_len}_{event_len}");
        let schema = AtrSchema {
            distribution_name: name.to_owned(),
            distribution,
            active,
            result: Predicate::new(&result_name, param_len + event_len + 1),
            param_len,
            event_len,
        };
        self.atr_schemas.push(schema);
        let idx = self.atr_schemas.len() - 1;
        self.active_index.insert(active, idx);
        idx
    }

    /// Is `p` one of the generated `Active` predicates?
    pub fn is_active_predicate(&self, p: &Predicate) -> bool {
        self.active_index.contains_key(p)
    }

    /// The AtR schema whose `Active` predicate is `p`.
    pub fn schema_for_active(&self, p: &Predicate) -> Option<&AtrSchema> {
        self.active_index.get(p).map(|&i| &self.atr_schemas[i])
    }

    /// The AtR schema whose `Result` predicate is `p`.
    pub fn schema_for_result(&self, p: &Predicate) -> Option<&AtrSchema> {
        self.atr_schemas.iter().find(|s| s.result == *p)
    }

    /// The predicates of the original program and database (everything except
    /// the generated `Active`/`Result` predicates).
    pub fn original_schema(&self) -> &BTreeSet<Predicate> {
        &self.original_schema
    }

    /// Strip the generated `Active` and `Result` atoms from an instance —
    /// "modulo active" in the terminology of Appendix C (we also drop Result
    /// atoms, which Appendix C keeps, via [`SigmaPi::strip_active_only`] if
    /// needed).
    pub fn strip_generated(&self, instance: &Database) -> Database {
        Database::from_atoms(
            instance
                .iter()
                .filter(|a| self.original_schema.contains(&a.predicate))
                .cloned(),
        )
    }

    /// Drop only the `Active` atoms from an instance, keeping `Result` atoms
    /// (the "modulo active" view used by Theorem C.4).
    pub fn strip_active_only(&self, instance: &Database) -> Database {
        Database::from_atoms(
            instance
                .iter()
                .filter(|a| !self.is_active_predicate(&a.predicate))
                .cloned(),
        )
    }
}

fn fresh_variable(used: &BTreeSet<Var>, index: usize) -> Var {
    let mut name = format!("__y{index}");
    while used.contains(&Var::new(&name)) {
        name.push('_');
    }
    Var::new(&name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{coin_program, dime_quarter_program, network_resilience_program};
    use gdlog_data::Const;

    fn network_db() -> Database {
        let mut db = Database::new();
        for i in 1..=3i64 {
            db.insert_fact("Router", [Const::Int(i)]);
            for j in 1..=3i64 {
                if i != j {
                    db.insert_fact("Connected", [Const::Int(i), Const::Int(j)]);
                }
            }
        }
        db.insert_fact("Infected", [Const::Int(1), Const::Int(1)]);
        db
    }

    #[test]
    fn example_3_2_translation_shape() {
        let program = network_resilience_program(0.1);
        let db = network_db();
        let sigma = SigmaPi::translate(&program, &db).unwrap();

        // Exactly one AtR schema: Flip with one parameter and a two-place
        // event signature.
        assert_eq!(sigma.atr_schemas.len(), 1);
        let schema = &sigma.atr_schemas[0];
        assert_eq!(schema.distribution_name, "Flip");
        assert_eq!(schema.param_len, 1);
        assert_eq!(schema.event_len, 2);
        assert_eq!(schema.active.arity(), 3);
        assert_eq!(schema.result.arity(), 4);
        assert!(sigma.is_active_predicate(&schema.active));
        assert!(sigma.schema_for_result(&schema.result).is_some());

        // Rules: 10 facts + (infection rule → 2 rules) + uninfected rule +
        // constraint rule + fail/aux rule = 15.
        assert_eq!(sigma.rules.len(), 15);

        // The probabilistic rule produced a body → Active rule and a
        // Result + body → Infected rule (Example 3.2).
        let active_rules: Vec<_> = sigma
            .rules
            .iter()
            .filter(|r| r.head.predicate == schema.active)
            .collect();
        assert_eq!(active_rules.len(), 1);
        assert_eq!(active_rules[0].pos.len(), 2);

        let head_rules: Vec<_> = sigma
            .rules
            .iter()
            .filter(|r| {
                r.head.predicate == Predicate::new("Infected", 2)
                    && r.pos.iter().any(|a| a.predicate == schema.result)
            })
            .collect();
        assert_eq!(head_rules.len(), 1);
        assert_eq!(head_rules[0].pos.len(), 3);
    }

    #[test]
    fn coin_translation_creates_zero_event_schema() {
        let program = coin_program();
        let sigma = SigmaPi::translate(&program, &Database::new()).unwrap();
        assert_eq!(sigma.atr_schemas.len(), 1);
        let schema = &sigma.atr_schemas[0];
        assert_eq!(schema.event_len, 0);
        assert_eq!(schema.active.arity(), 1);
        // → Coin(Flip⟨0.5⟩) becomes a bodyless rule deriving the Active atom.
        assert!(sigma
            .rules
            .iter()
            .any(|r| r.head.predicate == schema.active && r.pos.is_empty()));
    }

    #[test]
    fn deduplication_of_schemas_across_rules() {
        // The dime/quarter program uses Flip⟨0.5⟩[x] in two different rules:
        // one schema, shared.
        let program = dime_quarter_program();
        let sigma = SigmaPi::translate(&program, &Database::new()).unwrap();
        assert_eq!(sigma.atr_schemas.len(), 1);
        // Σ∄ rules: 2 per probabilistic rule + 1 plain rule = 5.
        assert_eq!(sigma.rules.len(), 5);
    }

    #[test]
    fn atr_schema_helpers() {
        let program = network_resilience_program(0.1);
        let sigma = SigmaPi::translate(&program, &network_db()).unwrap();
        let schema = &sigma.atr_schemas[0];
        let active = GroundAtom {
            predicate: schema.active,
            args: vec![Const::real(0.1).unwrap(), Const::Int(1), Const::Int(2)],
        };
        let (params, event) = schema.split_active(&active);
        assert_eq!(params.len(), 1);
        assert_eq!(event, &[Const::Int(1), Const::Int(2)]);
        let result = schema.result_atom(&active, Const::Int(1));
        assert_eq!(result.predicate, schema.result);
        assert_eq!(result.args.len(), 4);
        assert_eq!(
            schema.outcome_probability(&active, &Const::Int(1)).unwrap(),
            Prob::ratio(1, 10)
        );
        assert_eq!(schema.outcomes(&active, 10).unwrap().len(), 2);
        assert!(schema.has_finite_support());
    }

    #[test]
    fn strip_generated_and_active_only() {
        let program = coin_program();
        let sigma = SigmaPi::translate(&program, &Database::new()).unwrap();
        let schema = &sigma.atr_schemas[0];
        let active = GroundAtom {
            predicate: schema.active,
            args: vec![Const::real(0.5).unwrap()],
        };
        let result = schema.result_atom(&active, Const::Int(1));
        let mut instance = Database::new();
        instance.insert(active.clone());
        instance.insert(result.clone());
        instance.insert_fact("Coin", [Const::Int(1)]);

        let stripped = sigma.strip_generated(&instance);
        assert_eq!(stripped.len(), 1);
        let modulo_active = sigma.strip_active_only(&instance);
        assert_eq!(modulo_active.len(), 2);
        assert!(modulo_active.contains(&result));
    }

    #[test]
    fn fresh_variables_avoid_collisions() {
        let used: BTreeSet<Var> = vec![Var::new("__y0")].into_iter().collect();
        let v = fresh_variable(&used, 0);
        assert_ne!(v, Var::new("__y0"));
    }

    #[test]
    fn fact_rules_carry_their_predicate_as_origin() {
        let program = network_resilience_program(0.1);
        let sigma = SigmaPi::translate(&program, &network_db()).unwrap();
        let fact_rules: Vec<_> = sigma
            .rules
            .iter()
            .filter(|r| r.pos.is_empty() && r.neg.is_empty())
            .collect();
        assert_eq!(fact_rules.len(), 10);
        assert!(fact_rules.iter().all(|r| r.origin_head == r.head.predicate));
    }

    #[test]
    fn display_of_translated_rules() {
        let program = network_resilience_program(0.1);
        let sigma = SigmaPi::translate(&program, &Database::new()).unwrap();
        let text: Vec<String> = sigma.rules.iter().map(|r| r.to_string()).collect();
        assert!(text.iter().any(|t| t.contains("Active_Flip_1_2")));
        assert!(text.iter().any(|t| t.contains("Result_Flip_1_2")));
    }
}

//! # gdlog-core — Generative Datalog with Stable Negation
//!
//! The paper's primary contribution: GDatalog¬\[Δ\] programs — Datalog rules
//! with stable negation whose heads may *sample* from parameterized discrete
//! probability distributions — and their probabilistic semantics.
//!
//! The pipeline mirrors the paper:
//!
//! 1. **Syntax** ([`rule`], [`program`], [`delta`]): rules
//!    `R₁(ū₁), …, ¬P₁(v̄₁), … → R₀(w̄)` whose head tuples may contain Δ-terms
//!    `δ⟨p̄⟩[q̄]` (Section 3, "Syntax").
//! 2. **Translation** ([`translate`]): each rule becomes existential-free
//!    TGD¬ rules plus *active-to-result* (AtR) rules
//!    `Activeᵟ(p̄,q̄) → ∃y Resultᵟ(p̄,q̄,y)` that encode the probabilistic
//!    choices (Section 3, "From GDatalog¬\[Δ\] to TGD¬").
//! 3. **Grounding** ([`grounding`], [`simple_grounder`], [`perfect_grounder`]):
//!    a [`Grounder`] maps every functionally consistent set of ground AtR
//!    rules to the ground rules consistent with those choices
//!    (Definition 3.3); the simple grounder (Definition 3.4) and, for
//!    stratified programs, the perfect grounder (Definition 5.1) are provided.
//! 4. **Chase** ([`chase`]): the fixpoint procedure of Section 4 — triggers,
//!    trigger applications and chase trees — which enumerates the possible
//!    outcomes together with their probabilities, or samples a single
//!    outcome ([`mc`]).
//! 5. **Semantics** ([`outcome`], [`semantics`]): possible outcomes, the
//!    error event, the event partition by induced sets of stable models, and
//!    the output probability space `Π_G(D)` (Definitions 3.7–3.8,
//!    Theorem 3.9).
//! 6. **Comparison** ([`compare`], [`bckov`]): the "as good as" relation of
//!    Definition 3.11, and the BCKOV semantics of positive generative Datalog
//!    from Appendix C used as the baseline (Theorem C.4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod api;
pub mod bckov;
pub mod builder;
pub mod chase;
pub mod compare;
pub mod delta;
pub mod depgraph;
pub mod error;
pub mod exec;
pub mod factor;
pub mod fingerprint;
pub mod grounding;
pub mod mc;
pub mod model_cache;
pub mod naive;
pub mod outcome;
pub mod perfect_grounder;
pub mod pipeline;
pub mod program;
pub mod query;
pub mod rule;
pub mod semantics;
pub mod simple_grounder;
pub mod translate;

pub use analyze::{
    certainly_single_trigger, lint, validate_all, weak_cycles, Finding, LintReport, RuleIssue,
    RuleLocus, Severity, StaticComponents, WeakCycle,
};
pub use api::{
    EventReport, Json, McReport, McRequest, QueryReport, QueryRequest, QueryResponse, SolveKey,
    SolveStrategy, Solver,
};
pub use bckov::{bckov_output, isomorphic_to_bckov, BckovOutcome, BckovOutput};
pub use builder::{ProgramBuilder, RuleBuilder};
pub use chase::{
    enumerate_outcomes, enumerate_outcomes_cancellable, enumerate_outcomes_with, ChaseBudget,
    ChaseResult, TriggerOrder,
};
pub use compare::{as_good_as, compare_outputs, SemanticsComparison};
pub use delta::DeltaTerm;
pub use depgraph::{dependency_graph, stratification, DependencyGraph, Stratification};
pub use error::CoreError;
pub use exec::{Executor, THREADS_ENV};
pub use factor::{
    ChaseComponent, ComponentGrounder, Factor, FactorAnalysis, FactoredOutputSpace, FactoredSolve,
};
pub use fingerprint::fnv1a_fingerprint;
pub use gdlog_engine::{CancelToken, DeadlineGuard};
pub use grounding::{AtrRule, AtrSet, GroundRuleSet, Grounder, Grounding};
pub use mc::{sample_outcome, walk_rng, MonteCarlo, SampleStats, SampledPath};
pub use model_cache::{ModelCacheStats, ModelSetCache, ProgramFingerprint};
pub use naive::{NaivePerfectGrounder, NaiveSimpleGrounder};
pub use outcome::{ModelSetKey, PossibleOutcome};
pub use perfect_grounder::PerfectGrounder;
pub use pipeline::{GrounderChoice, McParams, Pipeline};
pub use program::{
    coin_program, dime_quarter_program, network_resilience_program, Program, AUX_PREDICATE,
    FAIL_PREDICATE,
};
pub use query::{
    brave_fact_probability, brave_probability, cautious_fact_probability, cautious_probability,
    has_stable_model_probability,
};
pub use rule::{Head, HeadTerm, Rule};
pub use semantics::OutputSpace;
pub use simple_grounder::SimpleGrounder;
pub use translate::{AtrSchema, SigmaPi, TgdRule};

#[cfg(test)]
mod send_sync_audit {
    //! The parallel chase hands a shared `&dyn Grounder` plus owned
    //! `Grounding` snapshots to pool workers and collects `PossibleOutcome`s
    //! from them; this is the compile-time audit that the whole surface is
    //! (and stays) `Send + Sync`. `Grounder` itself has `Send + Sync` as a
    //! supertrait, so every implementor is covered by construction.
    use super::*;

    fn assert_send_sync<T: Send + Sync + ?Sized>() {}

    #[test]
    fn chase_surface_is_send_and_sync() {
        assert_send_sync::<SigmaPi>();
        assert_send_sync::<SimpleGrounder>();
        assert_send_sync::<PerfectGrounder>();
        assert_send_sync::<NaiveSimpleGrounder>();
        assert_send_sync::<NaivePerfectGrounder>();
        assert_send_sync::<dyn Grounder>();
        assert_send_sync::<Grounding>();
        assert_send_sync::<AtrRule>();
        assert_send_sync::<AtrSet>();
        assert_send_sync::<PossibleOutcome>();
        assert_send_sync::<ChaseResult>();
        assert_send_sync::<CoreError>();
        assert_send_sync::<Executor>();
        assert_send_sync::<Pipeline>();
        // The resident server shares one `Solver` across session threads.
        assert_send_sync::<Solver>();
        assert_send_sync::<QueryRequest>();
        assert_send_sync::<QueryResponse>();
    }
}

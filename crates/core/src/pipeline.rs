//! End-to-end pipeline: program + database → output probability space.
//!
//! [`Pipeline`] wires together the translation (Section 3), a grounder
//! (Definitions 3.4 / 5.1), the chase (Section 4) and the output space
//! (Definition 3.8) behind a small builder-style API. It is the entry point
//! used by the examples and the experiment harness.
//!
//! Evaluation is semi-naive throughout: the grounders saturate delta-by-delta
//! over the indexed relations of `gdlog-data`, and the chase descent reuses
//! each node's grounding as the seed of its children's
//! ([`Grounder::ground_from`]). See `ARCHITECTURE.md` at the repository root
//! for the invariants.

use crate::chase::{enumerate_outcomes_cancellable, ChaseBudget, ChaseResult, TriggerOrder};
use crate::error::CoreError;
use crate::exec::Executor;
use crate::factor::{
    self, ChaseComponent, ComponentGrounder, Factor, FactorAnalysis, FactoredOutputSpace,
    FactoredSolve,
};
use crate::grounding::Grounder;
use crate::mc::MonteCarlo;
use crate::model_cache::{ModelCacheStats, ModelSetCache};
use crate::perfect_grounder::PerfectGrounder;
use crate::program::Program;
use crate::semantics::OutputSpace;
use crate::simple_grounder::SimpleGrounder;
use crate::translate::SigmaPi;
use gdlog_data::Database;
use gdlog_engine::{CancelToken, StableModelLimits};
use std::sync::Arc;

/// Which grounder the pipeline should use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GrounderChoice {
    /// The simple grounder (Definition 3.4) — correct for every program.
    #[default]
    Simple,
    /// The perfect grounder (Definition 5.1) — requires stratified negation.
    Perfect,
    /// Use the perfect grounder when the program is stratified, otherwise
    /// fall back to the simple grounder.
    Auto,
}

impl GrounderChoice {
    /// Lowercase label (`simple` / `perfect` / `auto`) for flags and reports.
    pub fn label(&self) -> &'static str {
        match self {
            GrounderChoice::Simple => "simple",
            GrounderChoice::Perfect => "perfect",
            GrounderChoice::Auto => "auto",
        }
    }
}

/// Monte-Carlo sampling parameters for [`Pipeline::sampler_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct McParams {
    /// Per-walk trigger budget (walks beyond it count as abandoned).
    pub max_triggers: usize,
    /// Root seed; per-walk RNG streams are split from it, so estimates are
    /// bit-identical across executors.
    pub seed: u64,
}

impl McParams {
    /// The default parameters: 64 triggers per walk, seed 0.
    pub fn new() -> Self {
        McParams {
            max_triggers: 64,
            seed: 0,
        }
    }

    /// Override the per-walk trigger budget.
    pub fn with_max_triggers(mut self, max_triggers: usize) -> Self {
        self.max_triggers = max_triggers;
        self
    }

    /// Override the root seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for McParams {
    fn default() -> Self {
        Self::new()
    }
}

/// A configured evaluation pipeline.
pub struct Pipeline {
    sigma: Arc<SigmaPi>,
    grounder: Box<dyn Grounder>,
    budget: ChaseBudget,
    order: TriggerOrder,
    limits: StableModelLimits,
    /// Shared so a resident [`crate::api::Solver`] can run many pipelines
    /// (one per solve configuration) on one pool.
    executor: Arc<Executor>,
    /// Memo table for `sms(Σ ∪ G(Σ))` across outcomes and across repeated
    /// [`Pipeline::solve`] calls, keyed by the outcomes' canonical program
    /// fingerprints (hits can never change a result — equal fingerprints
    /// mean equal programs).
    stable_cache: ModelSetCache,
    /// Cooperative cancellation token observed at every chase node, every
    /// grounding saturation round, every stable-model branch decision and
    /// every Monte-Carlo walk boundary. Defaults to a token that never fires.
    cancel: CancelToken,
}

impl Pipeline {
    /// Build a pipeline for `program` on `database` with the default
    /// (simple) grounder and default budgets.
    pub fn new(program: &Program, database: &Database) -> Result<Self, CoreError> {
        Self::with_grounder(program, database, GrounderChoice::Simple)
    }

    /// Build a pipeline choosing the grounder explicitly.
    pub fn with_grounder(
        program: &Program,
        database: &Database,
        choice: GrounderChoice,
    ) -> Result<Self, CoreError> {
        let sigma = Arc::new(SigmaPi::translate(program, database)?);
        Self::from_sigma(sigma, program.has_stratified_negation(), choice)
    }

    /// Build a pipeline over an **already translated** program. This is the
    /// "translate once, solve many" entry point of the resident
    /// [`crate::api::Solver`]: the translation is shared, only grounding and
    /// solving run per pipeline. `stratified` is the source program's
    /// stratification verdict (it drives [`GrounderChoice::Auto`]).
    pub fn from_sigma(
        sigma: Arc<SigmaPi>,
        stratified: bool,
        choice: GrounderChoice,
    ) -> Result<Self, CoreError> {
        let grounder: Box<dyn Grounder> = match choice {
            GrounderChoice::Simple => Box::new(SimpleGrounder::new(sigma.clone())),
            GrounderChoice::Perfect => Box::new(PerfectGrounder::new(sigma.clone())?),
            GrounderChoice::Auto => {
                if stratified {
                    Box::new(PerfectGrounder::new(sigma.clone())?)
                } else {
                    Box::new(SimpleGrounder::new(sigma.clone()))
                }
            }
        };
        Ok(Pipeline {
            sigma,
            grounder,
            budget: ChaseBudget::default(),
            order: TriggerOrder::First,
            limits: StableModelLimits::default(),
            // Sequential unless GDLOG_THREADS says otherwise; results are
            // bit-identical either way, so the env knob (and the CI thread
            // matrix built on it) can parallelize every pipeline consumer
            // without touching call sites.
            executor: Arc::new(Executor::from_env()),
            stable_cache: ModelSetCache::new(),
            cancel: CancelToken::never(),
        })
    }

    /// Override the chase budget.
    pub fn budget(mut self, budget: ChaseBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Override the trigger-selection order.
    pub fn trigger_order(mut self, order: TriggerOrder) -> Self {
        self.order = order;
        self
    }

    /// Override the stable-model search limits.
    pub fn stable_limits(mut self, limits: StableModelLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Explore the chase tree (and fan Monte-Carlo walks out) with this many
    /// worker threads. `1` is sequential, `0` means one thread per available
    /// CPU. Results are bit-identical for every value — the thread count
    /// only changes wall-clock time.
    pub fn threads(mut self, threads: usize) -> Self {
        self.executor = Arc::new(Executor::new(threads));
        self
    }

    /// Run on a shared executor (the server multiplexes every session's
    /// pipelines onto one pool this way).
    pub fn with_executor(mut self, executor: Arc<Executor>) -> Self {
        self.executor = executor;
        self
    }

    /// Observe `cancel` throughout the pipeline: the chase cuts cancelled
    /// subtrees to residual mass (a graceful, exact partial result), while
    /// grounding, factor analysis, stable-model search and Monte-Carlo — all
    /// exact-or-nothing — surface [`CoreError::Interrupted`]. The token is
    /// also installed into the grounder, so in-flight saturations stop at
    /// their next round.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.grounder.set_cancel(cancel.clone());
        self.cancel = cancel;
        self
    }

    /// The pipeline's cancellation token.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The execution policy in use.
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// The translated program.
    pub fn sigma(&self) -> &SigmaPi {
        &self.sigma
    }

    /// The grounder in use.
    pub fn grounder(&self) -> &dyn Grounder {
        self.grounder.as_ref()
    }

    /// Run the chase enumeration only.
    pub fn chase(&self) -> Result<ChaseResult, CoreError> {
        enumerate_outcomes_cancellable(
            self.grounder.as_ref(),
            &self.budget,
            self.order,
            &self.executor,
            &self.cancel,
        )
    }

    /// Run the full pipeline: chase, stable models, output space.
    ///
    /// The stable-model back-end fans one task per distinct outcome program
    /// out to the pipeline's executor and memoizes solved programs in the
    /// pipeline's cache (so repeated solves, and outcome families inducing
    /// the same ground program, solve once). Results are bit-identical at
    /// every thread count and with a warm or cold cache.
    pub fn solve(&self) -> Result<OutputSpace, CoreError> {
        let chase = self.chase()?;
        self.space_from_chase(chase)
    }

    /// Turn an already-enumerated chase into the output space (the second
    /// half of [`Pipeline::solve`], split out so callers that need the
    /// chase's own statistics — `nodes_visited` — can run the halves
    /// separately without re-chasing).
    pub fn space_from_chase(&self, chase: ChaseResult) -> Result<OutputSpace, CoreError> {
        OutputSpace::from_chase_cancellable(
            chase,
            &self.limits,
            &self.executor,
            Some(&self.stable_cache),
            &self.cancel,
        )
    }

    /// Hit/miss counters of the stable-model memo table, accumulated over
    /// every [`Pipeline::solve`] call on this pipeline.
    pub fn stable_cache_stats(&self) -> ModelCacheStats {
        self.stable_cache.stats()
    }

    /// The stable-model memo table itself (shared across flat and factored
    /// solves on this pipeline).
    pub fn stable_cache(&self) -> &ModelSetCache {
        &self.stable_cache
    }

    /// The chase-independence analysis for this pipeline's program and
    /// budget: the components an independent per-component chase would run,
    /// or `None` when the program should take the flat path.
    pub fn factor_components(&self) -> Result<Option<Vec<ChaseComponent>>, CoreError> {
        factor::analyze(&self.sigma, &self.budget)
    }

    /// [`Pipeline::factor_components`] plus the [`FactorAnalysis`] verdict:
    /// `Static` when the predicate-level analysis alone decided (no universe
    /// saturation ran), `Dynamic` when the saturation-based analysis ran,
    /// seeded by the static components.
    pub fn factor_analysis(
        &self,
    ) -> Result<(Option<Vec<ChaseComponent>>, FactorAnalysis), CoreError> {
        factor::analyze_cancellable(&self.sigma, &self.budget, &self.cancel)
    }

    /// How many independent factors [`Pipeline::solve_factored`] would use
    /// (one on the flat path).
    pub fn factor_count(&self) -> Result<usize, CoreError> {
        Ok(self.factor_components()?.map_or(1, |c| c.len()))
    }

    /// Run the full pipeline with front-of-pipeline factorization: when the
    /// ground program splits into chase-independent components, chase and
    /// solve each component separately and answer queries from the *product*
    /// of the per-component output spaces — exact inference past the `2^n`
    /// wall of the flat enumeration. Programs with a single component fall
    /// back to [`Pipeline::solve`] byte-for-byte.
    ///
    /// Component chases always run on a fresh simple grounder regardless of
    /// the pipeline's configured grounder: the perfect grounder's
    /// stratum-cursor saturation intentionally stalls at the stratum of an
    /// undefined trigger, and in a component chase every *other* component's
    /// `Active` atoms stay undefined forever by design. Stable-model solving
    /// per factor reuses the pipeline's executor, limits and memo table.
    pub fn solve_factored(&self) -> Result<FactoredSolve, CoreError> {
        self.solve_factored_with_analysis().map(|(solve, _)| solve)
    }

    /// [`Pipeline::solve_factored`] plus the [`FactorAnalysis`] verdict
    /// (reported by the CLI as `analysis: static|dynamic`). The solve result
    /// is identical either way; the verdict only records whether universe
    /// saturation could be skipped.
    pub fn solve_factored_with_analysis(
        &self,
    ) -> Result<(FactoredSolve, FactorAnalysis), CoreError> {
        let (components, analysis) = self.factor_analysis()?;
        let Some(components) = components else {
            return Ok((FactoredSolve::Flat(self.solve()?), analysis));
        };
        let mut simple = SimpleGrounder::new(self.sigma.clone());
        simple.set_cancel(self.cancel.clone());
        let mut factors = Vec::with_capacity(components.len());
        for component in components {
            let grounder = ComponentGrounder::new(&simple, &component.triggers);
            let chase = enumerate_outcomes_cancellable(
                &grounder,
                &self.budget,
                self.order,
                &self.executor,
                &self.cancel,
            )?;
            let chase = factor::restrict_outcomes(chase, &component.atoms);
            let space = OutputSpace::from_chase_cancellable(
                chase,
                &self.limits,
                &self.executor,
                Some(&self.stable_cache),
                &self.cancel,
            )?;
            factors.push(Factor {
                atoms: component.atoms,
                space,
            });
        }
        Ok((
            FactoredSolve::Product(FactoredOutputSpace::new(factors)),
            analysis,
        ))
    }

    /// A Monte-Carlo estimator over the same grounder (sharing the
    /// pipeline's executor) with the default [`McParams`].
    pub fn sampler(&self) -> MonteCarlo<'_> {
        self.sampler_with(McParams::new())
    }

    /// A Monte-Carlo estimator with explicit [`McParams`].
    pub fn sampler_with(&self, params: McParams) -> MonteCarlo<'_> {
        MonteCarlo::new(self.grounder.as_ref(), params.max_triggers, params.seed)
            .with_executor(&self.executor)
            .with_cancel(self.cancel.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{coin_program, dime_quarter_program, network_resilience_program};
    use gdlog_data::Const;
    use gdlog_prob::Prob;

    fn network_db() -> Database {
        let mut db = Database::new();
        for i in 1..=3i64 {
            db.insert_fact("Router", [Const::Int(i)]);
            for j in 1..=3i64 {
                if i != j {
                    db.insert_fact("Connected", [Const::Int(i), Const::Int(j)]);
                }
            }
        }
        db.insert_fact("Infected", [Const::Int(1), Const::Int(1)]);
        db
    }

    #[test]
    fn end_to_end_example_3_10() {
        let pipeline = Pipeline::new(&network_resilience_program(0.1), &network_db()).unwrap();
        let space = pipeline.solve().unwrap();
        assert_eq!(space.has_stable_model_probability(), Prob::ratio(19, 100));
        assert_eq!(space.residual_mass(), Prob::ZERO);
    }

    #[test]
    fn auto_grounder_selection() {
        // Stratified → perfect.
        let p = Pipeline::with_grounder(
            &dime_quarter_program(),
            &Database::new(),
            GrounderChoice::Auto,
        )
        .unwrap();
        assert_eq!(p.grounder().name(), "perfect");
        // Non-stratified → simple.
        let p = Pipeline::with_grounder(&coin_program(), &Database::new(), GrounderChoice::Auto)
            .unwrap();
        assert_eq!(p.grounder().name(), "simple");
        // Forcing the perfect grounder on a non-stratified program fails.
        assert!(Pipeline::with_grounder(
            &coin_program(),
            &Database::new(),
            GrounderChoice::Perfect
        )
        .is_err());
    }

    #[test]
    fn builder_style_configuration() {
        let pipeline = Pipeline::new(&coin_program(), &Database::new())
            .unwrap()
            .budget(ChaseBudget::small())
            .trigger_order(TriggerOrder::Last)
            .stable_limits(StableModelLimits::default());
        let chase = pipeline.chase().unwrap();
        assert_eq!(chase.outcomes.len(), 2);
        let space = pipeline.solve().unwrap();
        assert_eq!(space.has_stable_model_probability(), Prob::ratio(1, 2));
        assert!(pipeline.sigma().atr_schemas.len() == 1);
    }

    #[test]
    fn solve_memoizes_across_calls_and_thread_counts() {
        let pipeline = Pipeline::new(&network_resilience_program(0.1), &network_db()).unwrap();
        let first = pipeline.solve().unwrap();
        let after_first = pipeline.stable_cache_stats();
        assert!(after_first.misses > 0);
        let second = pipeline.solve().unwrap();
        let after_second = pipeline.stable_cache_stats();
        assert_eq!(
            after_second.misses, after_first.misses,
            "a repeated solve must be served entirely from the memo table"
        );
        assert!(after_second.hits > after_first.hits);
        assert_eq!(first.events_by_mass(), second.events_by_mass());

        // A parallel pipeline produces a bit-identical output space.
        let par = Pipeline::new(&network_resilience_program(0.1), &network_db())
            .unwrap()
            .threads(4);
        assert_eq!(
            par.solve().unwrap().events_by_mass(),
            first.events_by_mass()
        );
    }

    #[test]
    fn monte_carlo_from_pipeline() {
        let pipeline = Pipeline::new(&coin_program(), &Database::new()).unwrap();
        let params = McParams::new().with_max_triggers(16).with_seed(11);
        assert_eq!((params.max_triggers, params.seed), (16, 11));
        let heads_coin = |outcome: &crate::outcome::PossibleOutcome| {
            outcome
                .rules
                .heads()
                .contains(&gdlog_data::GroundAtom::make("Coin", vec![Const::Int(1)]))
        };
        let stats = pipeline
            .sampler_with(params)
            .estimate(500, heads_coin)
            .unwrap();
        assert!(stats.estimate.consistent_with(0.5, 4.0));
        // The walk RNG is seed-split, so a second estimator with the same
        // params reproduces the estimates bit for bit.
        let again = pipeline
            .sampler_with(params)
            .estimate(500, heads_coin)
            .unwrap();
        assert_eq!(again.estimate.mean, stats.estimate.mean);
        assert_eq!(again.abandoned, stats.abandoned);
        // Default params are a plain sampler.
        assert_eq!(McParams::default(), McParams::new());
        let _ = pipeline.sampler();
    }
}

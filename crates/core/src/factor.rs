//! Chase-independence analysis and factored output spaces.
//!
//! The flat pipeline enumerates every joint configuration of probabilistic
//! choices — `2^n` outcomes for `n` independent coins. But when the ground
//! program splits into sub-programs with disjoint atom dependencies, the
//! chase itself factorizes: choices in one component can never influence
//! rule firings, constraints or stable models in another, so the output
//! space is exactly the *product* of the per-component output spaces
//! (the chase analogue of the SCC split the stable-model search already
//! performs per outcome).
//!
//! The analysis proceeds in three steps:
//!
//! 1. **Universe saturation** (`saturate_universe`): a least fixpoint over
//!    `Σ∄_Π[D]` that over-approximates every ground atom derivable in *any*
//!    chase branch. Negative literals are ignored (deriving more atoms only
//!    merges components — always sound) and every reachable `Active` atom is
//!    expanded to all of its budget-capped outcomes, exactly the branches
//!    the real chase would explore.
//! 2. **Component partition** ([`analyze`]): every ground rule instance
//!    contributes star edges `head — body atom` (negative atoms only when
//!    they are derivable, i.e. in the universe; underivable negative
//!    literals are vacuously true everywhere and carry no dependency), and
//!    every AtR pair contributes `active — result` edges. Connected
//!    components of this graph are chase-independent sub-programs.
//! 3. **Per-component chase** ([`ComponentGrounder`]): each component is
//!    chased independently — the grounder's triggers are filtered to the
//!    component's `Active` atoms, so the chase branches only over this
//!    component's choices — and the resulting outcomes are restricted to
//!    rules whose heads live in the component.
//!
//! Soundness of the product measure: every ground rule instance has its full
//! footprint (head, positive body, derivable negative body) inside one
//! component, so each flat outcome's program is the disjoint union of the
//! per-component programs, its probability is the product of the component
//! probabilities (choices are independent), and by the splitting theorem
//! its stable models are exactly the unions of per-component stable models.
//! Budget interaction: each component is explored under the full
//! [`ChaseBudget`], so the joint explored mass is the *product* of the
//! per-component explored masses and the joint residual is
//! `1 − ∏ exploredᵢ` — a factored run can be exact (residual zero) where
//! the flat enumeration would blow `max_outcomes` long before finishing.
//! `min_path_probability` cuts are *joint*-mass cuts and do not factorize;
//! the analysis falls back to the flat path when one is set.

use crate::analyze::{certainly_single_trigger, StaticComponents};
use crate::chase::ChaseBudget;
use crate::error::CoreError;
use crate::grounding::{AtrSet, GroundRuleSet, Grounder, Grounding};
use crate::outcome::ModelSetKey;
use crate::semantics::OutputSpace;
use crate::translate::{AtrSchema, SigmaPi, TgdRule};
use gdlog_data::{match_atoms, Database, GroundAtom};
use gdlog_engine::{connected_components, CancelToken, GroundProgram, GroundRule};
use gdlog_prob::{DiscreteSpace, FactoredSpace, Prob};
use std::collections::{BTreeMap, BTreeSet};

/// Safety valve for the universe fixpoint: programs whose over-approximated
/// atom universe exceeds this bound fall back to the flat path rather than
/// spend unbounded analysis time.
const UNIVERSE_ATOM_CAP: usize = 200_000;

/// Extra joint events fetched beyond `k` by [`FactoredOutputSpace::events_by_mass_top`]
/// so equal-mass ties at the cut can be re-sorted into the flat
/// (mass-descending, key-ascending) order.
const TOP_K_TIE_SLACK: usize = 64;

/// One chase-independent component: the ground atoms that can only be
/// derived inside it, and the `Active` atoms (triggers) among them.
#[derive(Clone, Debug)]
pub struct ChaseComponent {
    /// Every universe atom of the component.
    pub atoms: BTreeSet<GroundAtom>,
    /// The component's `Active` atoms — the only triggers its chase applies.
    pub triggers: BTreeSet<GroundAtom>,
}

/// The over-approximated derivable universe: all atoms, all deduplicated
/// ground rule instances, and all `active → results` expansions.
struct Universe {
    heads: Database,
    instances: Vec<GroundRule>,
    atr_pairs: Vec<(GroundAtom, Vec<GroundAtom>)>,
}

/// Least fixpoint over a group of `sigma.rules` (facts are bodyless rules,
/// so they are covered), ignoring negative bodies and expanding every
/// reachable `Active` atom to its first `budget.max_branching` outcomes —
/// the same truncation the chase applies, so the universe covers every
/// explored branch.
///
/// The caller passes the rules and AtR schemas of one *static* predicate
/// component (see [`StaticComponents`]); a rule can only match and derive
/// atoms whose predicates lie in its own component, so per-group fixpoints
/// produce exactly the same universe as one global fixpoint — the static
/// analysis *seeds* the dynamic one.
///
/// Returns `Ok(None)` (flat fallback) when a distribution errors (the flat
/// path will surface it) or the universe exceeds `cap` atoms.
fn saturate_group(
    rules: &[&TgdRule],
    schemas: &[&AtrSchema],
    budget: &ChaseBudget,
    cap: usize,
    cancel: &CancelToken,
) -> Result<Option<Universe>, CoreError> {
    let mut derived = GroundProgram::new();
    let mut heads = Database::new();
    let mut expanded: BTreeSet<GroundAtom> = BTreeSet::new();
    let mut atr_pairs: Vec<(GroundAtom, Vec<GroundAtom>)> = Vec::new();

    loop {
        // Factor saturation rounds are cancellation checkpoints; a cancelled
        // analysis cannot fall back to the flat path (the flat chase would
        // just burn the rest of the deadline), so it surfaces as a typed
        // interruption.
        if cancel.is_cancelled() {
            return Err(CoreError::Interrupted("factor analysis".into()));
        }
        let mut changed = false;

        // Expand every newly derived Active atom to all its outcomes.
        for schema in schemas {
            let actives: Vec<GroundAtom> = heads
                .atoms_of(&schema.active)
                .filter(|a| !expanded.contains(*a))
                .cloned()
                .collect();
            for active in actives {
                let outcomes = match schema.outcomes(&active, budget.max_branching) {
                    Ok(o) => o,
                    Err(_) => return Ok(None),
                };
                let mut results = Vec::with_capacity(outcomes.len());
                for (outcome, _) in outcomes {
                    let result = schema.result_atom(&active, outcome);
                    heads.insert(result.clone());
                    results.push(result);
                }
                expanded.insert(active.clone());
                atr_pairs.push((active, results));
                changed = true;
            }
        }

        // One naive pass of every rule against all heads; negative literals
        // are ignored (over-approximation).
        let mut new_rules: Vec<GroundRule> = Vec::new();
        for rule in rules {
            for h in match_atoms(&rule.pos, |pattern| heads.candidates(pattern)) {
                let head = rule
                    .head
                    .apply_ground(&h)
                    .expect("safety guarantees the head grounds");
                let pos: Vec<GroundAtom> = rule
                    .pos
                    .iter()
                    .map(|a| a.apply_ground(&h).expect("matched atoms are ground"))
                    .collect();
                let neg: Vec<GroundAtom> = rule
                    .neg
                    .iter()
                    .map(|a| {
                        a.apply_ground(&h)
                            .expect("safety grounds negative literals")
                    })
                    .collect();
                new_rules.push(GroundRule::new(head, pos, neg));
            }
        }
        for rule in new_rules {
            let head = rule.head.clone();
            if derived.push(rule) {
                heads.insert(head);
                changed = true;
            }
        }

        if heads.len() > cap {
            return Ok(None);
        }
        if !changed {
            break;
        }
    }

    Ok(Some(Universe {
        instances: derived.iter().cloned().collect(),
        heads,
        atr_pairs,
    }))
}

/// Partition the universe into connected components of the dependency
/// graph: star edges `head — footprint atom` per rule instance plus
/// `active — result` edges per AtR expansion.
fn partition(sigma: &SigmaPi, universe: &Universe) -> Vec<ChaseComponent> {
    let atoms: Vec<GroundAtom> = universe.heads.canonical_atoms();
    let index: BTreeMap<&GroundAtom, usize> =
        atoms.iter().enumerate().map(|(i, a)| (a, i)).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); atoms.len()];
    for rule in &universe.instances {
        let hub = index[&rule.head];
        for atom in rule.pos.iter().chain(rule.neg.iter()) {
            // Negative atoms outside the universe can never be derived: the
            // literal is vacuously true in every component, no dependency.
            if let Some(&i) = index.get(atom) {
                adj[hub].push(i);
            }
        }
    }
    for (active, results) in &universe.atr_pairs {
        let hub = index[active];
        for result in results {
            adj[hub].push(index[result]);
        }
    }
    connected_components(atoms.len(), &adj)
        .into_iter()
        .map(|vs| {
            let set: BTreeSet<GroundAtom> = vs.iter().map(|&v| atoms[v].clone()).collect();
            let triggers = set
                .iter()
                .filter(|a| sigma.is_active_predicate(&a.predicate))
                .cloned()
                .collect();
            ChaseComponent {
                atoms: set,
                triggers,
            }
        })
        .collect()
}

/// How [`analyze_with`] reached its verdict: `Static` means the static
/// predicate-level analysis alone decided (no universe saturation ran at
/// all), `Dynamic` means saturation ran (seeded per static component).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FactorAnalysis {
    /// Decided without any saturation: a `min_path_probability` cut is set,
    /// or [`certainly_single_trigger`] proved the flat fallback.
    Static,
    /// The saturation-based analysis ran, seeded by the static components.
    Dynamic,
}

impl FactorAnalysis {
    /// Lowercase label for reports (`static` / `dynamic`).
    pub fn label(&self) -> &'static str {
        match self {
            FactorAnalysis::Static => "static",
            FactorAnalysis::Dynamic => "dynamic",
        }
    }
}

/// The chase-independence analysis: the components an independent
/// per-component chase would run, or `None` when the program should take
/// the flat path — fewer than two trigger-bearing components, a positive
/// `min_path_probability` (joint-mass cuts do not factorize), a
/// distribution error, or a universe beyond the analysis cap.
///
/// Trigger-free components (the deterministic skeleton: facts and atoms
/// derivable without any choice) are merged into one final factor so that
/// every rule of every outcome lands in exactly one factor.
pub fn analyze(
    sigma: &SigmaPi,
    budget: &ChaseBudget,
) -> Result<Option<Vec<ChaseComponent>>, CoreError> {
    analyze_cancellable(sigma, budget, &CancelToken::never()).map(|(components, _)| components)
}

/// [`analyze`] plus the [`FactorAnalysis`] verdict describing how it was
/// reached.
///
/// Static short-circuits (no saturation): a positive `min_path_probability`
/// (joint-mass cuts never factorize) or the [`certainly_single_trigger`]
/// certificate (at most one trigger means at most one trigger-bearing
/// component, which is exactly the dynamic analysis's flat-fallback
/// condition — skipping saturation cannot change the outcome).
///
/// Otherwise the saturation fixpoint runs once per *static* component
/// (rules and AtR schemas grouped by [`StaticComponents`]; every rule's
/// predicates share one static component by construction, so the grouped
/// fixpoints reproduce the global universe exactly), the per-group ground
/// partitions are concatenated and re-sorted into the canonical
/// smallest-atom order, and the usual trigger-bearing/base split applies —
/// byte-identical components to the unseeded global analysis.
pub fn analyze_with(
    sigma: &SigmaPi,
    budget: &ChaseBudget,
) -> Result<(Option<Vec<ChaseComponent>>, FactorAnalysis), CoreError> {
    analyze_cancellable(sigma, budget, &CancelToken::never())
}

/// [`analyze_with`] with a cooperative cancellation token checked once per
/// universe-saturation round. A cancelled analysis returns
/// [`CoreError::Interrupted`] rather than silently taking the flat fallback
/// (which would start a full flat chase against an already-expired deadline).
pub fn analyze_cancellable(
    sigma: &SigmaPi,
    budget: &ChaseBudget,
    cancel: &CancelToken,
) -> Result<(Option<Vec<ChaseComponent>>, FactorAnalysis), CoreError> {
    if budget.min_path_probability > 0.0 {
        return Ok((None, FactorAnalysis::Static));
    }
    if certainly_single_trigger(sigma) {
        return Ok((None, FactorAnalysis::Static));
    }

    // Seed the dynamic analysis: group Σ∄ rules and AtR schemas by static
    // predicate component and saturate each group independently.
    let statics = StaticComponents::of_sigma(sigma);
    let mut groups: BTreeMap<usize, (Vec<&TgdRule>, Vec<&AtrSchema>)> = BTreeMap::new();
    for rule in &sigma.rules {
        let c = statics
            .component_of(&rule.head.predicate)
            .expect("every rule head is a static-graph vertex");
        groups.entry(c).or_default().0.push(rule);
    }
    for schema in &sigma.atr_schemas {
        let c = statics
            .component_of(&schema.active)
            .expect("every Active predicate is a static-graph vertex");
        groups.entry(c).or_default().1.push(schema);
    }

    let mut raw: Vec<ChaseComponent> = Vec::new();
    let mut cap = UNIVERSE_ATOM_CAP;
    for (rules, schemas) in groups.values() {
        let Some(universe) = saturate_group(rules, schemas, budget, cap, cancel)? else {
            return Ok((None, FactorAnalysis::Dynamic));
        };
        cap = cap.saturating_sub(universe.heads.len());
        raw.extend(partition(sigma, &universe));
    }
    // Canonical order: by smallest atom, as the global partition produces.
    raw.sort_by(|a, b| a.atoms.first().cmp(&b.atoms.first()));

    let (with_triggers, without): (Vec<_>, Vec<_>) =
        raw.into_iter().partition(|c| !c.triggers.is_empty());
    if with_triggers.len() <= 1 {
        return Ok((None, FactorAnalysis::Dynamic));
    }
    let mut components = with_triggers;
    if !without.is_empty() {
        let mut base = ChaseComponent {
            atoms: BTreeSet::new(),
            triggers: BTreeSet::new(),
        };
        for c in without {
            base.atoms.extend(c.atoms);
        }
        components.push(base);
    }
    Ok((Some(components), FactorAnalysis::Dynamic))
}

/// A grounder restricted to one chase component: grounding delegates to the
/// inner grounder unchanged, but only the component's own `Active` atoms
/// count as triggers — the chase branches over this component's choices and
/// terminates with every other component's `Active` atoms left undefined.
pub struct ComponentGrounder<'a> {
    inner: &'a dyn Grounder,
    triggers: &'a BTreeSet<GroundAtom>,
}

impl<'a> ComponentGrounder<'a> {
    /// Restrict `inner` to the given trigger set.
    ///
    /// `inner` must saturate past undefined triggers (the simple grounder
    /// does; the perfect grounder intentionally stalls at the stratum of an
    /// undefined trigger and would never derive later strata of this
    /// component).
    pub fn new(inner: &'a dyn Grounder, triggers: &'a BTreeSet<GroundAtom>) -> Self {
        ComponentGrounder { inner, triggers }
    }
}

impl Grounder for ComponentGrounder<'_> {
    fn sigma(&self) -> &SigmaPi {
        self.inner.sigma()
    }

    fn name(&self) -> &'static str {
        "component"
    }

    fn ground(&self, atr: &AtrSet) -> GroundRuleSet {
        self.inner.ground(atr)
    }

    fn ground_node(&self, atr: &AtrSet) -> Grounding {
        self.inner.ground_node(atr)
    }

    fn ground_from(&self, atr: &AtrSet, parent_atr: &AtrSet, parent: &mut Grounding) -> Grounding {
        self.inner.ground_from(atr, parent_atr, parent)
    }

    fn triggers(&self, atr: &AtrSet, rules: &GroundRuleSet) -> Vec<GroundAtom> {
        self.inner
            .triggers(atr, rules)
            .into_iter()
            .filter(|a| self.triggers.contains(a))
            .collect()
    }
}

/// Restrict every outcome of a per-component chase to the rules whose heads
/// live in the component. Rule footprints never cross components, so this
/// keeps exactly the component's share of each flat outcome's program.
pub(crate) fn restrict_outcomes(
    mut chase: crate::chase::ChaseResult,
    atoms: &BTreeSet<GroundAtom>,
) -> crate::chase::ChaseResult {
    for outcome in &mut chase.outcomes {
        outcome.rules = GroundRuleSet::from_rules(
            outcome
                .rules
                .iter()
                .filter(|r| atoms.contains(&r.head))
                .cloned(),
        );
    }
    chase
}

/// One solved factor: the component's atoms and its output space.
pub struct Factor {
    /// The component's universe atoms (for routing query atoms to factors).
    pub atoms: BTreeSet<GroundAtom>,
    /// The component's own output probability space.
    pub space: OutputSpace,
}

/// The product of per-component output spaces — never materialized into a
/// flat cross product. All queries answer by per-factor lookup and exact
/// [`Prob`] factor multiplication.
pub struct FactoredOutputSpace {
    factors: Vec<Factor>,
    /// Per factor: `P(sms ≠ ∅)` within the explored mass.
    nonempty: Vec<Prob>,
    /// Per factor: explored mass.
    explored: Vec<Prob>,
}

impl FactoredOutputSpace {
    /// Assemble the product space, caching the per-factor nonempty and
    /// explored masses every query multiplies with.
    pub fn new(factors: Vec<Factor>) -> Self {
        let nonempty = factors
            .iter()
            .map(|f| f.space.has_stable_model_probability())
            .collect();
        let explored = factors.iter().map(|f| f.space.explored_mass()).collect();
        FactoredOutputSpace {
            factors,
            nonempty,
            explored,
        }
    }

    /// Number of factors.
    pub fn factor_count(&self) -> usize {
        self.factors.len()
    }

    /// The factors.
    pub fn factors(&self) -> &[Factor] {
        &self.factors
    }

    /// Joint outcomes the flat chase would have enumerated: the product of
    /// the per-factor outcome counts, saturating at `u128::MAX`.
    pub fn combined_outcomes(&self) -> u128 {
        self.factors.iter().fold(1u128, |acc, f| {
            acc.saturating_mul(f.space.outcome_count() as u128)
        })
    }

    /// Outcomes actually stored: the *sum* of the per-factor counts.
    pub fn stored_outcomes(&self) -> usize {
        self.factors.iter().map(|f| f.space.outcome_count()).sum()
    }

    /// Distinct joint events. Nonempty joint keys are in bijection with
    /// tuples of nonempty per-factor keys (projecting onto the disjoint atom
    /// sets recovers the tuple); every tuple with at least one empty key
    /// collapses into the single "no stable model" event.
    pub fn combined_events(&self) -> u128 {
        let mut nonempty_product = 1u128;
        let mut any_empty = false;
        for f in &self.factors {
            let events = f.space.event_count();
            let has_empty = f.space.events_by_mass().iter().any(|(k, _)| k.is_empty());
            any_empty |= has_empty;
            nonempty_product =
                nonempty_product.saturating_mul((events - usize::from(has_empty)) as u128);
        }
        nonempty_product.saturating_add(u128::from(any_empty))
    }

    /// Explored joint mass: the product of the per-factor explored masses.
    pub fn explored_mass(&self) -> Prob {
        Prob::product(self.explored.iter().copied())
    }

    /// Joint residual: `1 − ∏ exploredᵢ`, clamped at zero against float dust.
    pub fn residual_mass(&self) -> Prob {
        let r = Prob::ONE.sub(&self.explored_mass());
        if r.to_f64() < 0.0 {
            Prob::ZERO
        } else {
            r
        }
    }

    /// Did any factor's chase hit its budget?
    pub fn is_truncated(&self) -> bool {
        self.factors.iter().any(|f| f.space.is_truncated())
    }

    /// Was any factor's chase cut short by cancellation? Interrupted results
    /// are timing-dependent and must never be treated as golden.
    pub fn is_interrupted(&self) -> bool {
        self.factors.iter().any(|f| f.space.is_interrupted())
    }

    /// `P(sms ≠ ∅)` of the joint program: a union of disjoint programs has a
    /// stable model iff every part does, so the per-factor probabilities
    /// multiply.
    pub fn has_stable_model_probability(&self) -> Prob {
        Prob::product(self.nonempty.iter().copied())
    }

    /// The factor whose atom set contains `atom`, if any.
    fn factor_of(&self, atom: &GroundAtom) -> Option<usize> {
        self.factors.iter().position(|f| f.atoms.contains(atom))
    }

    /// `P(every listed atom is brave in the joint key)`: a joint model is a
    /// union of per-factor models, so atom `a` of factor `j` is in some
    /// joint model iff it is in some factor-`j` model *and* every other
    /// factor is nonempty. Atoms sharing a factor must be witnessed jointly
    /// within it; an atom in no factor is underivable and the probability is
    /// zero.
    pub fn probability_brave_all(&self, atoms: &[GroundAtom]) -> Prob {
        self.probability_grouped(atoms, |key, group| group.iter().all(|a| key.brave(a)))
    }

    /// `P(every listed atom is cautious in the joint key)` — the same
    /// factor-wise decomposition with the cautious test per factor.
    pub fn probability_cautious_all(&self, atoms: &[GroundAtom]) -> Prob {
        self.probability_grouped(atoms, |key, group| group.iter().all(|a| key.cautious(a)))
    }

    fn probability_grouped<F>(&self, atoms: &[GroundAtom], test: F) -> Prob
    where
        F: Fn(&ModelSetKey, &[&GroundAtom]) -> bool,
    {
        let mut by_factor: BTreeMap<usize, Vec<&GroundAtom>> = BTreeMap::new();
        for atom in atoms {
            match self.factor_of(atom) {
                Some(j) => by_factor.entry(j).or_default().push(atom),
                None => return Prob::ZERO,
            }
        }
        let mut p = Prob::ONE;
        for (i, f) in self.factors.iter().enumerate() {
            let factor_mass = match by_factor.get(&i) {
                Some(group) => f.space.probability_where(|k| test(k, group)),
                None => self.nonempty[i],
            };
            p = p.mul(&factor_mass);
        }
        p
    }

    /// `P(atom ∈ some joint stable model)`.
    pub fn brave_probability(&self, atom: &GroundAtom) -> Prob {
        self.probability_brave_all(std::slice::from_ref(atom))
    }

    /// `P(atom ∈ every joint stable model, and one exists)`.
    pub fn cautious_probability(&self, atom: &GroundAtom) -> Prob {
        self.probability_cautious_all(std::slice::from_ref(atom))
    }

    /// Probability mass of one joint event. The empty key is the union of
    /// every tuple with at least one empty factor: `∏ exploredᵢ − ∏ nonemptyᵢ`.
    /// A nonempty key is a product event iff the product of its per-factor
    /// projections reconstructs it, with mass the product of the projection
    /// masses; any other key has mass zero.
    pub fn event_probability(&self, key: &ModelSetKey) -> Prob {
        if key.is_empty() {
            let r = self
                .explored_mass()
                .sub(&self.has_stable_model_probability());
            return if r.to_f64() < 0.0 { Prob::ZERO } else { r };
        }
        let mut mass = Prob::ONE;
        let mut projections: Vec<ModelSetKey> = Vec::with_capacity(self.factors.len());
        for f in &self.factors {
            let projection = key.filter_atoms(|a| f.atoms.contains(a));
            mass = mass.mul(&f.space.event_probability(&projection));
            projections.push(projection);
        }
        let refs: Vec<&ModelSetKey> = projections.iter().collect();
        if ModelSetKey::product(&refs) != *key {
            return Prob::ZERO;
        }
        mass
    }

    /// The `k` heaviest joint events in the flat (mass-descending,
    /// key-ascending) order, computed by the lazy k-way product merge of
    /// [`FactoredSpace`] over the per-factor *nonempty* events — plus the
    /// single collapsed "no stable model" event with its closed-form mass.
    ///
    /// Equal-mass ties are normalized by fetching `TOP_K_TIE_SLACK` extra
    /// candidates and re-sorting; the listing matches the flat
    /// `events_by_mass` prefix exactly whenever the tie class crossing the
    /// cut fits in the slack (always true when `k` covers all events).
    pub fn events_by_mass_top(&self, k: usize) -> Vec<(ModelSetKey, Prob)> {
        if k == 0 {
            return Vec::new();
        }
        let spaces: Vec<DiscreteSpace<ModelSetKey>> = self
            .factors
            .iter()
            .map(|f| {
                let mut s = DiscreteSpace::new();
                for (key, mass) in f.space.events_by_mass() {
                    if !key.is_empty() {
                        s.push(key, mass);
                    }
                }
                s
            })
            .collect();
        let product = FactoredSpace::from_factors(spaces);
        let mut out: Vec<(ModelSetKey, Prob)> = product
            .top_k(k.saturating_add(TOP_K_TIE_SLACK))
            .into_iter()
            .map(|(parts, mass)| (ModelSetKey::product(&parts), mass))
            .collect();
        let empty_mass = self.event_probability(&ModelSetKey::empty());
        if empty_mass.is_positive() {
            out.push((ModelSetKey::empty(), empty_mass));
        }
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    /// Every atom with the given predicate name occurring in any factor's
    /// stable models (for marginal reports).
    pub fn atoms_with_predicate(&self, name: &str) -> BTreeSet<GroundAtom> {
        let mut atoms = BTreeSet::new();
        for f in &self.factors {
            for (key, _) in f.space.events_by_mass() {
                for model in key.models() {
                    for atom in model {
                        if atom.predicate.name() == name {
                            atoms.insert(atom.clone());
                        }
                    }
                }
            }
        }
        atoms
    }

    /// A deterministic fingerprint of the product space: FNV-1a over the
    /// per-factor [`OutputSpace::fingerprint`]s plus the factor count.
    pub fn fingerprint(&self) -> String {
        crate::fingerprint::fnv1a_fingerprint(
            self.factors
                .iter()
                .map(|f| format!("factor={};", f.space.fingerprint()))
                .chain(std::iter::once(format!("factors={};", self.factors.len()))),
        )
    }
}

/// The result of [`crate::Pipeline::solve_factored`]: the flat space when
/// the program has at most one trigger-bearing component (byte-for-byte
/// today's path), the factored product otherwise. Queries delegate so
/// callers need not branch.
pub enum FactoredSolve {
    /// The program did not factor; this is exactly [`crate::Pipeline::solve`]'s
    /// output.
    Flat(OutputSpace),
    /// The product of per-component output spaces.
    Product(FactoredOutputSpace),
}

impl FactoredSolve {
    /// Number of factors (one on the flat path).
    pub fn factor_count(&self) -> usize {
        match self {
            FactoredSolve::Flat(_) => 1,
            FactoredSolve::Product(p) => p.factor_count(),
        }
    }

    /// Did the factored path run?
    pub fn is_factored(&self) -> bool {
        matches!(self, FactoredSolve::Product(_))
    }

    /// The flat space, when the program did not factor.
    pub fn as_flat(&self) -> Option<&OutputSpace> {
        match self {
            FactoredSolve::Flat(s) => Some(s),
            FactoredSolve::Product(_) => None,
        }
    }

    /// The product space, when the program factored.
    pub fn as_product(&self) -> Option<&FactoredOutputSpace> {
        match self {
            FactoredSolve::Flat(_) => None,
            FactoredSolve::Product(p) => Some(p),
        }
    }

    /// Joint outcomes described (flat: enumerated; factored: the product of
    /// per-factor counts, saturating at `u128::MAX`).
    pub fn combined_outcomes(&self) -> u128 {
        match self {
            FactoredSolve::Flat(s) => s.outcome_count() as u128,
            FactoredSolve::Product(p) => p.combined_outcomes(),
        }
    }

    /// Distinct joint events described.
    pub fn combined_events(&self) -> u128 {
        match self {
            FactoredSolve::Flat(s) => s.event_count() as u128,
            FactoredSolve::Product(p) => p.combined_events(),
        }
    }

    /// `P(sms ≠ ∅)` of the joint program.
    pub fn has_stable_model_probability(&self) -> Prob {
        match self {
            FactoredSolve::Flat(s) => s.has_stable_model_probability(),
            FactoredSolve::Product(p) => p.has_stable_model_probability(),
        }
    }

    /// Explored joint mass.
    pub fn explored_mass(&self) -> Prob {
        match self {
            FactoredSolve::Flat(s) => s.explored_mass(),
            FactoredSolve::Product(p) => p.explored_mass(),
        }
    }

    /// Unexplored joint mass.
    pub fn residual_mass(&self) -> Prob {
        match self {
            FactoredSolve::Flat(s) => s.residual_mass(),
            FactoredSolve::Product(p) => p.residual_mass(),
        }
    }

    /// Did any chase hit its budget?
    pub fn is_truncated(&self) -> bool {
        match self {
            FactoredSolve::Flat(s) => s.is_truncated(),
            FactoredSolve::Product(p) => p.is_truncated(),
        }
    }

    /// Was any chase cut short by cancellation (a deadline) rather than by
    /// its budget?
    pub fn is_interrupted(&self) -> bool {
        match self {
            FactoredSolve::Flat(s) => s.is_interrupted(),
            FactoredSolve::Product(p) => p.is_interrupted(),
        }
    }

    /// `P(atom ∈ some joint stable model)`.
    pub fn brave_probability(&self, atom: &GroundAtom) -> Prob {
        match self {
            FactoredSolve::Flat(s) => s.brave_probability(atom),
            FactoredSolve::Product(p) => p.brave_probability(atom),
        }
    }

    /// `P(atom ∈ every joint stable model, and one exists)`.
    pub fn cautious_probability(&self, atom: &GroundAtom) -> Prob {
        match self {
            FactoredSolve::Flat(s) => s.cautious_probability(atom),
            FactoredSolve::Product(p) => p.cautious_probability(atom),
        }
    }

    /// `P(every listed atom is brave)`.
    pub fn probability_brave_all(&self, atoms: &[GroundAtom]) -> Prob {
        match self {
            FactoredSolve::Flat(s) => s.probability_where(|k| atoms.iter().all(|a| k.brave(a))),
            FactoredSolve::Product(p) => p.probability_brave_all(atoms),
        }
    }

    /// `P(every listed atom is cautious)`.
    pub fn probability_cautious_all(&self, atoms: &[GroundAtom]) -> Prob {
        match self {
            FactoredSolve::Flat(s) => s.probability_where(|k| atoms.iter().all(|a| k.cautious(a))),
            FactoredSolve::Product(p) => p.probability_cautious_all(atoms),
        }
    }

    /// Probability mass of one joint event.
    pub fn event_probability(&self, key: &ModelSetKey) -> Prob {
        match self {
            FactoredSolve::Flat(s) => s.event_probability(key),
            FactoredSolve::Product(p) => p.event_probability(key),
        }
    }

    /// The `k` heaviest joint events in (mass-descending, key-ascending)
    /// order.
    pub fn events_by_mass_top(&self, k: usize) -> Vec<(ModelSetKey, Prob)> {
        match self {
            FactoredSolve::Flat(s) => s.events_by_mass().into_iter().take(k).collect(),
            FactoredSolve::Product(p) => p.events_by_mass_top(k),
        }
    }

    /// Every atom with the given predicate name occurring in any stable
    /// model.
    pub fn atoms_with_predicate(&self, name: &str) -> BTreeSet<GroundAtom> {
        match self {
            FactoredSolve::Flat(s) => {
                let mut atoms = BTreeSet::new();
                for (key, _) in s.events_by_mass() {
                    for model in key.models() {
                        for atom in model {
                            if atom.predicate.name() == name {
                                atoms.insert(atom.clone());
                            }
                        }
                    }
                }
                atoms
            }
            FactoredSolve::Product(p) => p.atoms_with_predicate(name),
        }
    }

    /// A deterministic fingerprint (flat: the flat scheme, unchanged).
    pub fn fingerprint(&self) -> String {
        match self {
            FactoredSolve::Flat(s) => s.fingerprint(),
            FactoredSolve::Product(p) => p.fingerprint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::chase::ChaseBudget;
    use crate::pipeline::Pipeline;
    use crate::program::{coin_program, Program};
    use gdlog_data::{Const, Database, Term};
    use gdlog_prob::Prob;

    /// `n` independent coins: `Coin(i)` facts, `Coin(x) → Toss(x, Flip⟨p⟩[x])`,
    /// `Toss(x, 1) → Tails(x)`. With `gadget`, an even-loop on tails gives
    /// each tails factor two stable models — use only at small `n`: a joint
    /// outcome with `k` tails genuinely has `2^k` stable models, so *flat*
    /// solving (and materializing joint keys) is exponential in `k`.
    fn coin_farm(n: i64, gadget: bool) -> (Program, Database) {
        let half = Term::Const(Const::real(0.5).expect("finite"));
        let mut builder = ProgramBuilder::new()
            .rule(|r| {
                r.body("Coin", vec![Term::var("x")]).head_with_delta(
                    "Toss",
                    vec![Term::var("x")],
                    "Flip",
                    vec![half],
                    vec![Term::var("x")],
                )
            })
            .rule(|r| {
                r.body("Toss", vec![Term::var("x"), Term::int(1)])
                    .head("Tails", vec![Term::var("x")])
            });
        if gadget {
            builder = builder
                .rule(|r| {
                    r.body("Tails", vec![Term::var("x")])
                        .not_body("Odd", vec![Term::var("x")])
                        .head("Even", vec![Term::var("x")])
                })
                .rule(|r| {
                    r.body("Tails", vec![Term::var("x")])
                        .not_body("Even", vec![Term::var("x")])
                        .head("Odd", vec![Term::var("x")])
                });
        }
        let program = builder.build().expect("valid program");
        let mut db = Database::new();
        for i in 1..=n {
            db.insert_fact("Coin", [Const::Int(i)]);
        }
        (program, db)
    }

    fn atom(name: &str, args: &[i64]) -> GroundAtom {
        GroundAtom::make(name, args.iter().map(|&i| Const::Int(i)).collect())
    }

    #[test]
    fn independent_coins_split_into_one_component_each() {
        let (program, db) = coin_farm(4, true);
        let pipeline = Pipeline::new(&program, &db).unwrap();
        let components = analyze(pipeline.sigma(), &ChaseBudget::default())
            .unwrap()
            .expect("four independent coins must factor");
        assert_eq!(components.len(), 4);
        for c in &components {
            assert_eq!(c.triggers.len(), 1, "one Flip choice per coin");
            assert!(c.atoms.len() >= 5, "Coin, Active, Results, Tosses, Tails");
        }
        // Component atoms partition the universe.
        let mut seen: BTreeSet<GroundAtom> = BTreeSet::new();
        for c in &components {
            for a in &c.atoms {
                assert!(seen.insert(a.clone()), "components must be disjoint");
            }
        }
    }

    #[test]
    fn coupled_programs_fall_back_to_flat() {
        // The coin program has a single choice: nothing to factor.
        let pipeline = Pipeline::new(&coin_program(), &Database::new()).unwrap();
        assert!(analyze(pipeline.sigma(), &ChaseBudget::default())
            .unwrap()
            .is_none());

        // A zero-arity coupler welds all coins into one component.
        let half = Term::Const(Const::real(0.5).expect("finite"));
        let program = ProgramBuilder::new()
            .rule(|r| {
                r.body("Coin", vec![Term::var("x")]).head_with_delta(
                    "Toss",
                    vec![Term::var("x")],
                    "Flip",
                    vec![half],
                    vec![Term::var("x")],
                )
            })
            .rule(|r| {
                r.body("Toss", vec![Term::var("x"), Term::int(1)])
                    .head("SomeTails", vec![])
            })
            .build()
            .unwrap();
        let mut db = Database::new();
        for i in 1..=3 {
            db.insert_fact("Coin", [Const::Int(i)]);
        }
        let pipeline = Pipeline::new(&program, &db).unwrap();
        assert!(analyze(pipeline.sigma(), &ChaseBudget::default())
            .unwrap()
            .is_none());

        // Joint-mass cuts do not factorize.
        let (program, db) = coin_farm(3, true);
        let pipeline = Pipeline::new(&program, &db).unwrap();
        let budget = ChaseBudget {
            min_path_probability: 0.01,
            ..ChaseBudget::default()
        };
        assert!(analyze(pipeline.sigma(), &budget).unwrap().is_none());
    }

    #[test]
    fn analysis_verdicts_static_vs_dynamic() {
        // Coin program: one ground Δ-fact, so the static certificate decides
        // without any saturation.
        let pipeline = Pipeline::new(&coin_program(), &Database::new()).unwrap();
        let (components, verdict) =
            analyze_with(pipeline.sigma(), &ChaseBudget::default()).unwrap();
        assert!(components.is_none());
        assert_eq!(verdict, FactorAnalysis::Static);
        assert_eq!(verdict.label(), "static");

        // Coin farm: per-coin event variables defeat the certificate; the
        // seeded dynamic analysis finds the four components.
        let (program, db) = coin_farm(4, true);
        let pipeline = Pipeline::new(&program, &db).unwrap();
        let (components, verdict) =
            analyze_with(pipeline.sigma(), &ChaseBudget::default()).unwrap();
        assert_eq!(verdict, FactorAnalysis::Dynamic);
        assert_eq!(verdict.label(), "dynamic");
        assert_eq!(components.expect("factors").len(), 4);

        // A joint-mass cut is decided statically too.
        let budget = ChaseBudget {
            min_path_probability: 0.01,
            ..ChaseBudget::default()
        };
        let (components, verdict) = analyze_with(pipeline.sigma(), &budget).unwrap();
        assert!(components.is_none());
        assert_eq!(verdict, FactorAnalysis::Static);
    }

    #[test]
    fn factored_solve_matches_flat_exactly() {
        let (program, db) = coin_farm(4, true);
        let pipeline = Pipeline::new(&program, &db).unwrap();
        let flat = pipeline.solve().unwrap();
        let factored = pipeline.solve_factored().unwrap();
        assert!(factored.is_factored());
        assert_eq!(factored.factor_count(), 4);
        assert_eq!(factored.combined_outcomes(), 16);
        assert_eq!(
            factored.has_stable_model_probability(),
            flat.has_stable_model_probability()
        );
        assert_eq!(factored.explored_mass(), flat.explored_mass());
        assert_eq!(factored.residual_mass(), flat.residual_mass());
        assert_eq!(factored.is_truncated(), flat.is_truncated());
        assert_eq!(factored.combined_events() as usize, flat.event_count());

        for i in 1..=4 {
            for name in ["Coin", "Tails", "Even", "Odd"] {
                let a = atom(name, &[i]);
                assert_eq!(
                    factored.brave_probability(&a),
                    flat.brave_probability(&a),
                    "brave({name}({i}))"
                );
                assert_eq!(
                    factored.cautious_probability(&a),
                    flat.cautious_probability(&a),
                    "cautious({name}({i}))"
                );
            }
        }

        // Joint (conditional-style) queries decompose across factors.
        let t1 = atom("Tails", &[1]);
        let t2 = atom("Tails", &[2]);
        assert_eq!(
            factored.probability_brave_all(&[t1.clone(), t2.clone()]),
            flat.probability_where(|k| k.brave(&t1) && k.brave(&t2))
        );

        // Full event listings agree (k covers all events, so the tie
        // normalization is total).
        let flat_events = flat.events_by_mass();
        let factored_events = factored.events_by_mass_top(flat_events.len() + 8);
        assert_eq!(factored_events, flat_events);
        // Per-event masses agree through the product projection.
        for (key, mass) in &flat_events {
            assert_eq!(factored.event_probability(key), *mass, "mass of {key}");
        }
        // An unrelated key has zero joint mass.
        let bogus = ModelSetKey::from_models(&[Database::from_atoms([atom("Nope", &[1])])]);
        assert_eq!(factored.event_probability(&bogus), Prob::ZERO);
        // An underivable atom is never brave.
        assert_eq!(factored.brave_probability(&atom("Nope", &[9])), Prob::ZERO);
    }

    #[test]
    fn single_component_is_byte_for_byte_flat() {
        let pipeline = Pipeline::new(&coin_program(), &Database::new()).unwrap();
        let flat = pipeline.solve().unwrap();
        let solved = pipeline.solve_factored().unwrap();
        assert!(!solved.is_factored());
        assert_eq!(solved.factor_count(), 1);
        let space = solved.as_flat().expect("flat fallback");
        assert_eq!(space.events_by_mass(), flat.events_by_mass());
        assert_eq!(space.fingerprint(), flat.fingerprint());
        assert_eq!(solved.fingerprint(), flat.fingerprint());
    }

    #[test]
    fn factored_beats_the_flat_budget_wall() {
        // 20 coins: 2^20 joint outcomes — far beyond a 10k-outcome budget
        // flat, exactly solved factored (40 stored outcomes).
        let (program, db) = coin_farm(20, false);
        let budget = ChaseBudget {
            max_outcomes: 10_000,
            ..ChaseBudget::default()
        };
        let pipeline = Pipeline::new(&program, &db).unwrap().budget(budget);
        let flat = pipeline.solve().unwrap();
        assert!(flat.is_truncated(), "flat must hit the budget");
        assert!(flat.residual_mass().is_positive());

        let factored = pipeline.solve_factored().unwrap();
        assert!(factored.is_factored());
        assert_eq!(factored.factor_count(), 20);
        assert_eq!(factored.combined_outcomes(), 1u128 << 20);
        assert!(!factored.is_truncated(), "factored is exact");
        assert_eq!(factored.explored_mass(), Prob::ONE);
        assert_eq!(factored.residual_mass(), Prob::ZERO);
        assert_eq!(factored.has_stable_model_probability(), Prob::ONE);
        let p = factored.as_product().expect("factored");
        assert_eq!(p.stored_outcomes(), 40);
        // Exact per-coin marginals at full depth.
        assert_eq!(
            factored.brave_probability(&atom("Tails", &[20])),
            Prob::ratio(1, 2)
        );
        // Top events of 2^20 equally heavy outcomes: each joint event has
        // mass 1/2^20 exactly.
        let top = factored.events_by_mass_top(3);
        assert_eq!(top.len(), 3);
        for (_, mass) in &top {
            assert_eq!(*mass, Prob::ratio(1, 1 << 20));
        }
    }

    #[test]
    fn deterministic_skeleton_lands_in_a_base_factor() {
        // Facts plus a deterministic rule chain with no choices attached,
        // alongside two independent coins.
        let half = Term::Const(Const::real(0.5).expect("finite"));
        let program = ProgramBuilder::new()
            .rule(|r| {
                r.body("Coin", vec![Term::var("x")]).head_with_delta(
                    "Toss",
                    vec![Term::var("x")],
                    "Flip",
                    vec![half],
                    vec![Term::var("x")],
                )
            })
            .rule(|r| {
                r.body("Edge", vec![Term::var("x"), Term::var("y")])
                    .head("Reach", vec![Term::var("y")])
            })
            .build()
            .unwrap();
        let mut db = Database::new();
        db.insert_fact("Coin", [Const::Int(1)]);
        db.insert_fact("Coin", [Const::Int(2)]);
        db.insert_fact("Edge", [Const::Int(7), Const::Int(8)]);
        let pipeline = Pipeline::new(&program, &db).unwrap();
        let factored = pipeline.solve_factored().unwrap();
        // Two coin factors plus the deterministic base factor.
        assert_eq!(factored.factor_count(), 3);
        assert_eq!(factored.has_stable_model_probability(), Prob::ONE);
        // The deterministic atom is certain — witnessed through the base
        // factor times the other factors' nonempty mass (all one).
        assert_eq!(factored.brave_probability(&atom("Reach", &[8])), Prob::ONE);
        assert_eq!(
            factored.cautious_probability(&atom("Reach", &[8])),
            Prob::ONE
        );
        // And it matches the flat answer.
        let flat = pipeline.solve().unwrap();
        assert_eq!(flat.brave_probability(&atom("Reach", &[8])), Prob::ONE);
        assert_eq!(factored.events_by_mass_top(16), flat.events_by_mass());
    }
}

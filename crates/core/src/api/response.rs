//! The unified query response: everything a [`crate::api::Solver`] learned
//! about a program for one [`crate::api::QueryRequest`], renderable as human
//! text or deterministic JSON.
//!
//! There is exactly **one** schema: the CLI's `--json` report, the scenario
//! corpus goldens and the wire responses of `gdlog serve` are all renderings
//! of this type, so a corpus replay over the wire protocol is byte-identical
//! to the committed goldens. The JSON form is diffed byte-for-byte across
//! CI's `GDLOG_THREADS` matrix legs, so it must not contain anything
//! environment-dependent — in particular the worker thread count appears
//! only in the *text* rendering. Every run emits the same key set
//! (`analysis` and `nodes_visited` included), whether it solved flat or
//! factored.

use super::json::Json;
use crate::model_cache::ModelCacheStats;
use gdlog_prob::Prob;
use std::fmt::Write as _;

/// Brave/cautious probabilities of one queried ground atom.
#[derive(Clone, Debug)]
pub struct QueryReport {
    /// The queried atom, in display form.
    pub atom: String,
    /// Probability the atom holds in some stable model.
    pub brave: Prob,
    /// Probability the atom holds in every stable model (of a nonempty set).
    pub cautious: Prob,
    /// Conditional brave probability given the `--given` atom (brave-brave).
    pub brave_given: Option<Prob>,
    /// Conditional cautious probability given the `--given` atom.
    pub cautious_given: Option<Prob>,
}

/// One event (set of stable models) and its probability mass.
#[derive(Clone, Debug)]
pub struct EventReport {
    /// The event key, in display form.
    pub key: String,
    /// The event's probability mass.
    pub mass: Prob,
    /// Number of stable models in the set.
    pub models: usize,
}

/// Monte-Carlo estimate for one queried atom.
#[derive(Clone, Debug)]
pub struct McReport {
    /// The queried atom, in display form.
    pub atom: String,
    /// Sample mean.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Number of samples drawn.
    pub samples: usize,
    /// Number of abandoned walks (trigger budget exhausted).
    pub abandoned: usize,
}

/// The full response to one query against a compiled program.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// Scenario source label (the path given on the command line, or the
    /// label registered when the server session was opened).
    pub source: String,
    /// Program rules after constraint desugaring.
    pub rules: usize,
    /// Ground facts (the input database).
    pub facts: usize,
    /// Grounder actually requested (`simple` / `perfect` / `auto`).
    pub grounder: &'static str,
    /// Worker threads used (text rendering only; see module docs).
    pub threads: usize,
    /// Independent chase components solved (1 on the flat path).
    pub factors: usize,
    /// How the solve was decomposed: `flat` on the flat path, otherwise the
    /// factored verdict — `static` when the grounding-free independence
    /// analysis alone settled it, `dynamic` when the Δ-analysis saturated.
    pub analysis: &'static str,
    /// Finite outcomes covered — the *product* across factors on the
    /// factored path, which can dwarf anything the flat chase could ever
    /// materialize, hence the wide integer.
    pub outcomes: u128,
    /// Chase-tree nodes visited (0 on the factored path, where each factor
    /// runs its own chase). Deterministic across thread counts.
    pub nodes_visited: usize,
    /// Distinct events (sets of stable models); combined count across
    /// factors on the factored path.
    pub events: u128,
    /// Total mass of the explored events.
    pub explored_mass: Prob,
    /// Mass not explored (error event + beyond-budget paths).
    pub residual_mass: Prob,
    /// Did the chase hit its budget?
    pub truncated: bool,
    /// Was the chase cut short by a deadline? The response is still an exact
    /// partial result (the residual accounts for every cut subtree), but it
    /// depends on when the deadline fired: interrupted responses are never
    /// golden, so the JSON key is emitted only when the flag is set.
    pub interrupted: bool,
    /// Probability that at least one stable model exists.
    pub p_stable: Prob,
    /// Stable-model memo-table counters of the solve that produced this
    /// response's output space. The counters are a property of the *solve*,
    /// not of the serving process: a warm response replays the stats of the
    /// original cold solve, so warm and cold responses are byte-identical.
    pub stable_cache: ModelCacheStats,
    /// FNV-1a fingerprint of the event listing (the bench scheme).
    pub fingerprint: String,
    /// Per-query probabilities.
    pub queries: Vec<QueryReport>,
    /// The conditioning atom, if `--given` was passed.
    pub given: Option<String>,
    /// Marginals (per-atom brave/cautious) of `--marginal` predicates.
    pub marginals: Vec<QueryReport>,
    /// The `--top` K events by mass.
    pub top_events: Vec<EventReport>,
    /// Monte-Carlo estimates (`--mc`).
    pub mc: Vec<McReport>,
}

/// JSON encoding of a probability: always carries the display text and the
/// float value; exact rationals additionally carry numerator and denominator.
fn prob_json(p: &Prob) -> Json {
    match p.as_exact() {
        Some(r) => Json::obj([
            ("text", Json::str(p.to_string())),
            ("num", Json::Int(r.numer())),
            ("den", Json::Int(r.denom())),
            ("value", Json::Float(p.to_f64())),
        ]),
        None => Json::obj([
            ("text", Json::str(p.to_string())),
            ("value", Json::Float(p.to_f64())),
        ]),
    }
}

/// Clamp a (possibly astronomically large) factored count into the JSON
/// integer range; `i128::MAX` marks saturation, which no real count reaches.
fn wide_count(n: u128) -> i128 {
    n.min(i128::MAX as u128) as i128
}

fn opt_prob_json(p: &Option<Prob>) -> Json {
    match p {
        Some(p) => prob_json(p),
        None => Json::Null,
    }
}

fn query_json(q: &QueryReport) -> Json {
    let mut pairs = vec![
        ("atom", Json::str(&q.atom)),
        ("brave", prob_json(&q.brave)),
        ("cautious", prob_json(&q.cautious)),
    ];
    if q.brave_given.is_some() || q.cautious_given.is_some() {
        pairs.push(("brave_given", opt_prob_json(&q.brave_given)));
        pairs.push(("cautious_given", opt_prob_json(&q.cautious_given)));
    }
    Json::obj(pairs)
}

impl QueryResponse {
    /// Render the machine-readable JSON report (golden-file format). Every
    /// response carries the same key set regardless of solve strategy.
    pub fn render_json(&self) -> String {
        let mut pairs = vec![
            ("source", Json::str(&self.source)),
            ("rules", Json::Int(self.rules as i128)),
            ("facts", Json::Int(self.facts as i128)),
            ("grounder", Json::str(self.grounder)),
            ("factors", Json::Int(self.factors as i128)),
            ("analysis", Json::str(self.analysis)),
            ("outcomes", Json::Int(wide_count(self.outcomes))),
            ("nodes_visited", Json::Int(self.nodes_visited as i128)),
            ("events", Json::Int(wide_count(self.events))),
            ("explored_mass", prob_json(&self.explored_mass)),
            ("residual_mass", prob_json(&self.residual_mass)),
            ("truncated", Json::Bool(self.truncated)),
            ("p_stable", prob_json(&self.p_stable)),
        ];
        // Interrupted responses can never be goldens, so the key's presence
        // cannot perturb committed golden files (same pattern as `given`).
        if self.interrupted {
            pairs.push(("interrupted", Json::Bool(true)));
        }
        pairs.extend([
            (
                "stable_cache",
                Json::obj([
                    ("hits", Json::Int(self.stable_cache.hits as i128)),
                    ("misses", Json::Int(self.stable_cache.misses as i128)),
                    ("hit_rate", Json::Float(self.stable_cache.hit_rate())),
                ]),
            ),
            ("fingerprint", Json::str(&self.fingerprint)),
        ]);
        if let Some(g) = &self.given {
            pairs.push(("given", Json::str(g)));
        }
        pairs.push((
            "queries",
            Json::Arr(self.queries.iter().map(query_json).collect()),
        ));
        pairs.push((
            "marginals",
            Json::Arr(self.marginals.iter().map(query_json).collect()),
        ));
        pairs.push((
            "top_events",
            Json::Arr(
                self.top_events
                    .iter()
                    .map(|e| {
                        Json::obj([
                            ("key", Json::str(&e.key)),
                            ("mass", prob_json(&e.mass)),
                            ("models", Json::Int(e.models as i128)),
                        ])
                    })
                    .collect(),
            ),
        ));
        pairs.push((
            "mc",
            Json::Arr(
                self.mc
                    .iter()
                    .map(|m| {
                        Json::obj([
                            ("atom", Json::str(&m.atom)),
                            ("mean", Json::Float(m.mean)),
                            ("std_error", Json::Float(m.std_error)),
                            ("samples", Json::Int(m.samples as i128)),
                            ("abandoned", Json::Int(m.abandoned as i128)),
                        ])
                    })
                    .collect(),
            ),
        ));
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect()).render()
    }

    /// Render the human-readable text report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "source: {} ({} rules, {} facts)",
            self.source, self.rules, self.facts
        );
        let _ = writeln!(
            out,
            "grounder: {}, threads: {}, factors: {}, analysis: {}",
            self.grounder, self.threads, self.factors, self.analysis
        );
        if self.nodes_visited > 0 {
            let _ = writeln!(
                out,
                "outcomes: {} (nodes visited: {}), events: {}",
                self.outcomes, self.nodes_visited, self.events
            );
        } else {
            let _ = writeln!(out, "outcomes: {}, events: {}", self.outcomes, self.events);
        }
        let _ = writeln!(
            out,
            "explored mass: {}, residual mass: {}, truncated: {}",
            self.explored_mass,
            self.residual_mass,
            if self.truncated { "yes" } else { "no" }
        );
        if self.interrupted {
            let _ = writeln!(
                out,
                "interrupted: yes (deadline hit; residual mass is exact, result is partial)"
            );
        }
        let _ = writeln!(out, "P(stable model exists) = {}", self.p_stable);
        let _ = writeln!(
            out,
            "stable cache: {} hits, {} misses (hit rate {:.2})",
            self.stable_cache.hits,
            self.stable_cache.misses,
            self.stable_cache.hit_rate()
        );
        let _ = writeln!(out, "fingerprint: {}", self.fingerprint);
        for q in &self.queries {
            let _ = write!(
                out,
                "query {}: brave {}, cautious {}",
                q.atom, q.brave, q.cautious
            );
            if let (Some(g), Some(bg), Some(cg)) = (&self.given, &q.brave_given, &q.cautious_given)
            {
                let _ = write!(out, "; given {g}: brave {bg}, cautious {cg}");
            }
            out.push('\n');
        }
        for m in &self.marginals {
            let _ = writeln!(
                out,
                "marginal {}: brave {}, cautious {}",
                m.atom, m.brave, m.cautious
            );
        }
        if !self.top_events.is_empty() {
            let _ = writeln!(out, "top events by mass:");
            for e in &self.top_events {
                let _ = writeln!(out, "  {}  {} ({} models)", e.mass, e.key, e.models);
            }
        }
        for m in &self.mc {
            let _ = writeln!(
                out,
                "mc {}: mean {} ± {} ({} samples, {} abandoned)",
                m.atom, m.mean, m.std_error, m.samples, m.abandoned
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryResponse {
        QueryResponse {
            source: "scenarios/coin.gdl".into(),
            rules: 5,
            facts: 0,
            grounder: "simple",
            threads: 1,
            factors: 1,
            analysis: "flat",
            outcomes: 2,
            nodes_visited: 5,
            events: 2,
            explored_mass: Prob::ONE,
            residual_mass: Prob::ZERO,
            truncated: false,
            interrupted: false,
            p_stable: Prob::ratio(1, 2),
            stable_cache: ModelCacheStats { hits: 1, misses: 1 },
            fingerprint: "cbf29ce484222325".into(),
            queries: vec![QueryReport {
                atom: "Coin(1)".into(),
                brave: Prob::ratio(1, 2),
                cautious: Prob::ratio(1, 2),
                brave_given: None,
                cautious_given: None,
            }],
            given: None,
            marginals: vec![],
            top_events: vec![EventReport {
                key: "{}".into(),
                mass: Prob::ratio(1, 2),
                models: 0,
            }],
            mc: vec![McReport {
                atom: "Coin(1)".into(),
                mean: 0.5,
                std_error: 0.025,
                samples: 400,
                abandoned: 0,
            }],
        }
    }

    #[test]
    fn text_report_mentions_the_essentials() {
        let text = sample().render_text();
        assert!(text.contains("P(stable model exists) = 1/2"));
        assert!(text.contains("query Coin(1): brave 1/2, cautious 1/2"));
        assert!(text.contains("fingerprint: cbf29ce484222325"));
        assert!(text.contains("mc Coin(1): mean 0.5"));
        assert!(text.contains("factors: 1, analysis: flat"));
        assert!(text.contains("stable cache: 1 hits, 1 misses (hit rate 0.50)"));
    }

    #[test]
    fn factored_report_drops_the_nodes_visited_parenthetical() {
        let mut r = sample();
        r.factors = 20;
        r.analysis = "dynamic";
        r.nodes_visited = 0;
        r.outcomes = 1u128 << 100;
        let text = r.render_text();
        assert!(text.contains("factors: 20"));
        assert!(text.contains(&format!("outcomes: {}, events: 2", 1u128 << 100)));
        assert!(!text.contains("nodes visited"));
        let json = r.render_json();
        assert!(json.contains(&format!("\"outcomes\": {}", 1u128 << 100)));
        assert!(json.contains("\"factors\": 20"));
    }

    #[test]
    fn every_response_carries_the_same_schema() {
        // Flat and factored responses emit the identical key set — the
        // strategy only changes *values* (`analysis`, `nodes_visited`),
        // never the shape.
        let flat = sample();
        let mut factored = sample();
        factored.factors = 4;
        factored.analysis = "static";
        factored.nodes_visited = 0;
        let keys = |text: &str| -> Vec<String> {
            text.lines()
                .filter_map(|l| {
                    let t = l.trim_start();
                    t.starts_with('"')
                        .then(|| t.split(':').next().unwrap().to_owned())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(keys(&flat.render_json()), keys(&factored.render_json()));
        assert!(flat.render_json().contains("\"analysis\": \"flat\""));
        assert!(flat.render_json().contains("\"nodes_visited\": 5"));
        assert!(factored.render_json().contains("\"analysis\": \"static\""));
    }

    #[test]
    fn interrupted_key_is_emitted_only_when_set() {
        // Goldens are recorded from uninterrupted runs; the key must be
        // wholly absent there so its introduction cannot perturb them.
        let clean = sample();
        assert!(!clean.render_json().contains("interrupted"));
        assert!(!clean.render_text().contains("interrupted"));
        let mut cut = sample();
        cut.interrupted = true;
        assert!(cut.render_json().contains("\"interrupted\": true"));
        assert!(cut.render_text().contains("interrupted: yes"));
    }

    #[test]
    fn json_report_is_exact_and_thread_free() {
        let json = sample().render_json();
        assert!(json.contains("\"num\": 1"));
        assert!(json.contains("\"den\": 2"));
        assert!(json.contains("\"text\": \"1/2\""));
        assert!(json.contains("\"fingerprint\": \"cbf29ce484222325\""));
        assert!(json.contains("\"factors\": 1"));
        assert!(json.contains("\"hits\": 1"));
        assert!(json.contains("\"hit_rate\": 0.5"));
        // Thread counts must never reach the golden format.
        assert!(!json.contains("thread"));
    }
}

//! The unified query API: one request, one response, one solver.
//!
//! Every front-end — `gdlog run`, the resident `gdlog serve` server, the
//! examples and the bench harness — asks questions of a program through the
//! same three types:
//!
//! * [`QueryRequest`] describes *everything one asks*: the solve
//!   configuration (grounder, [`SolveStrategy`], budget, order, limits) plus
//!   the question list (brave/cautious queries, `--given` conditionals,
//!   marginals, top-K events, [`McRequest`] Monte-Carlo estimates).
//! * [`Solver`] is a warm compiled program: translation runs once at
//!   [`Solver::compile`], each distinct solve configuration runs once, and
//!   every further request with the same configuration answers from the
//!   cached output space — with responses **byte-identical** to a cold run.
//! * [`QueryResponse`] is the single report schema, rendered as human text
//!   or deterministic JSON ([`Json`]); the CLI's `--json` output, the
//!   scenario-corpus goldens and the server's wire responses are all this
//!   one rendering.

pub mod json;
pub mod request;
pub mod response;
pub mod solver;

pub use json::Json;
pub use request::{McRequest, QueryRequest, SolveKey, SolveStrategy};
pub use response::{EventReport, McReport, QueryReport, QueryResponse};
pub use solver::Solver;

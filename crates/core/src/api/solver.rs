//! The [`Solver`]: a warm compiled program answering unified queries.
//!
//! A `Solver` is what "parse / stratify / ground once, query many" compiles
//! down to: the program is translated to `Σ_Π[D]` exactly once
//! ([`SigmaPi::translate`]), and every [`QueryRequest`] dispatched at it is
//! served from a **solve-entry cache** keyed by the request's
//! [`SolveKey`] — the first query with a given solve configuration runs the
//! chase and the stable-model search; every later query with the same
//! configuration (same grounder, strategy, budget, order, limits) answers
//! from the already-solved output space in microseconds. This is the warm
//! path the resident server multiplexes sessions onto.
//!
//! Determinism contract: a warm response is **byte-identical** to the cold
//! one. Each solve entry runs on a pipeline with a *fresh* stable-model memo
//! table, and the response's `stable_cache` counters are the snapshot taken
//! when the entry was solved — exactly what a one-shot CLI process reports —
//! so replaying a query against a warm solver cannot observe the serving
//! process's history. (Sharing one memo table across entries or programs
//! would leak observable hit-rate differences into responses; the
//! solve-entry cache strictly subsumes the warmth it would buy.)
//!
//! Strategy dispatch: [`SolveStrategy::Auto`] picks flat vs factored via the
//! PR-8 *static* analysis alone — a positive `min_path_probability` or the
//! [`certainly_single_trigger`] certificate proves the flat path; otherwise
//! the factored path runs, whose own dynamic analysis still falls back to
//! flat byte-for-byte when the program does not factor.

use crate::analyze::certainly_single_trigger;
use crate::api::request::{McRequest, QueryRequest, SolveKey, SolveStrategy};
use crate::api::response::{EventReport, McReport, QueryReport, QueryResponse};
use crate::chase::ChaseBudget;
use crate::error::CoreError;
use crate::exec::Executor;
use crate::factor::FactoredSolve;
use crate::model_cache::ModelCacheStats;
use crate::pipeline::{McParams, Pipeline};
use crate::program::Program;
use crate::translate::SigmaPi;
use gdlog_data::Database;
use gdlog_engine::CancelToken;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// One solved output space plus the bookkeeping a response reports about
/// its solve. Shared by every query whose [`SolveKey`] matches.
struct SolveEntry {
    /// The pipeline that ran the solve, kept warm for Monte-Carlo requests
    /// (sampling reuses its grounder and executor; walks are seed-split, so
    /// results are independent of the pipeline's history).
    pipeline: Pipeline,
    solve: FactoredSolve,
    nodes_visited: usize,
    analysis: &'static str,
    stats: ModelCacheStats,
}

/// A compiled program serving [`QueryRequest`]s warm. See the module docs.
pub struct Solver {
    source: String,
    rules: usize,
    facts: usize,
    sigma: Arc<SigmaPi>,
    stratified: bool,
    executor: Arc<Executor>,
    /// Solve-entry cache. A `Vec` scanned linearly: [`ChaseBudget`] carries
    /// an `f64`, so [`SolveKey`] is `PartialEq`-only, and the distinct solve
    /// configurations per program are few. The lock is held across a solve
    /// on purpose — two sessions racing the same configuration must produce
    /// one entry (one set of stats), not two.
    solves: Mutex<Vec<(SolveKey, Arc<SolveEntry>)>>,
}

impl Solver {
    /// Compile `program` on `facts` under a source label (reported verbatim
    /// in responses). Translation runs here, once; grounding and solving run
    /// lazily per solve configuration.
    pub fn compile(
        source: impl Into<String>,
        program: &Program,
        facts: &Database,
        executor: Arc<Executor>,
    ) -> Result<Self, CoreError> {
        let sigma = Arc::new(SigmaPi::translate(program, facts)?);
        Ok(Solver {
            source: source.into(),
            rules: program.len(),
            facts: facts.len(),
            stratified: program.has_stratified_negation(),
            sigma,
            executor,
            solves: Mutex::new(Vec::new()),
        })
    }

    /// The source label given at compile time.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Number of program rules (after constraint desugaring).
    pub fn rules(&self) -> usize {
        self.rules
    }

    /// Number of ground facts in the input database.
    pub fn facts(&self) -> usize {
        self.facts
    }

    /// The translated program (shared by every solve entry).
    pub fn sigma(&self) -> &SigmaPi {
        &self.sigma
    }

    /// Number of cached solve entries (distinct solve configurations run).
    pub fn warm_solves(&self) -> usize {
        self.solves.lock().len()
    }

    /// Answer one request. The solve is served from the entry cache when a
    /// query with the same solve configuration ran before; the answers
    /// (queries, marginals, top-K, Monte-Carlo) are computed per call.
    ///
    /// When `request.timeout_ms` is set, a deadline is armed around the call:
    /// a chase cut by it returns a graceful partial response (marked
    /// `interrupted`, with exact residual mass); exact-or-nothing phases
    /// surface [`CoreError::Interrupted`].
    pub fn query(&self, request: &QueryRequest) -> Result<QueryResponse, CoreError> {
        match request.timeout_ms {
            None => self.query_with_cancel(request, &CancelToken::never()),
            Some(ms) => {
                let cancel = CancelToken::new();
                let _guard = cancel.cancel_after(Duration::from_millis(ms));
                self.query_with_cancel(request, &cancel)
            }
        }
    }

    /// [`Solver::query`] against a caller-owned cancellation token (the
    /// server's watchdog arms deadlines this way). `request.timeout_ms` is
    /// ignored here — whoever owns the token owns the deadline.
    pub fn query_with_cancel(
        &self,
        request: &QueryRequest,
        cancel: &CancelToken,
    ) -> Result<QueryResponse, CoreError> {
        if request.mc.is_some() && request.queries.is_empty() {
            return Err(CoreError::Request(
                "`--mc` requires at least one `--query` atom".into(),
            ));
        }
        let entry = self.entry(request, cancel)?;
        self.answer(&entry, request, cancel)
    }

    /// Get or compute the solve entry for a request's configuration.
    fn entry(
        &self,
        request: &QueryRequest,
        cancel: &CancelToken,
    ) -> Result<Arc<SolveEntry>, CoreError> {
        let key = request.solve_key();
        let mut solves = self.solves.lock();
        if let Some((_, entry)) = solves.iter().find(|(k, _)| *k == key) {
            return Ok(Arc::clone(entry));
        }
        // Fresh stable-model memo table per entry: see the determinism
        // contract in the module docs.
        let pipeline =
            Pipeline::from_sigma(Arc::clone(&self.sigma), self.stratified, key.grounder)?
                .budget(key.budget)
                .trigger_order(key.order)
                .stable_limits(key.limits)
                .with_executor(Arc::clone(&self.executor))
                .with_cancel(cancel.clone());
        let (solve, nodes_visited, analysis) =
            match resolve_strategy(key.strategy, &self.sigma, &key.budget) {
                SolveStrategy::Factored => {
                    let (solve, verdict) = pipeline.solve_factored_with_analysis()?;
                    (solve, 0, verdict.label())
                }
                _ => {
                    let chase = pipeline.chase()?;
                    let nodes_visited = chase.nodes_visited;
                    let space = pipeline.space_from_chase(chase)?;
                    (FactoredSolve::Flat(space), nodes_visited, "flat")
                }
            };
        let entry = Arc::new(SolveEntry {
            stats: pipeline.stable_cache_stats(),
            pipeline,
            solve,
            nodes_visited,
            analysis,
        });
        // Interrupted solves are timing-dependent partial results; caching
        // one would serve a deadline-shaped answer to later queries with no
        // deadline at all (and break warm == cold byte-identity).
        if !entry.solve.is_interrupted() {
            solves.push((key, Arc::clone(&entry)));
        }
        Ok(entry)
    }

    /// Build the response for a request from a solve entry.
    fn answer(
        &self,
        entry: &SolveEntry,
        request: &QueryRequest,
        cancel: &CancelToken,
    ) -> Result<QueryResponse, CoreError> {
        let solve = &entry.solve;
        let mut queries = Vec::with_capacity(request.queries.len());
        for atom in &request.queries {
            let brave = solve.brave_probability(atom);
            let cautious = solve.cautious_probability(atom);
            let (brave_given, cautious_given) = match &request.given {
                Some(g) => {
                    let pair = [atom.clone(), g.clone()];
                    let joint_brave = solve.probability_brave_all(&pair);
                    let p_brave_g = solve.probability_brave_all(std::slice::from_ref(g));
                    let joint_cautious = solve.probability_cautious_all(&pair);
                    let p_cautious_g = solve.probability_cautious_all(std::slice::from_ref(g));
                    (
                        joint_brave.div(&p_brave_g),
                        joint_cautious.div(&p_cautious_g),
                    )
                }
                None => (None, None),
            };
            queries.push(QueryReport {
                atom: atom.to_string(),
                brave,
                cautious,
                brave_given,
                cautious_given,
            });
        }

        let mut marginals = Vec::new();
        for pred in &request.marginals {
            for atom in solve.atoms_with_predicate(pred) {
                marginals.push(QueryReport {
                    atom: atom.to_string(),
                    brave: solve.brave_probability(&atom),
                    cautious: solve.cautious_probability(&atom),
                    brave_given: None,
                    cautious_given: None,
                });
            }
        }

        let top_events = match request.top {
            Some(k) => solve
                .events_by_mass_top(k)
                .into_iter()
                .map(|(key, mass)| EventReport {
                    models: key.model_count(),
                    key: key.to_string(),
                    mass,
                })
                .collect(),
            None => Vec::new(),
        };

        let mut mc_reports = Vec::new();
        if let Some(mc) = &request.mc {
            for atom in &request.queries {
                // The entry's pipeline carries the token of the query that
                // solved it; a warm-served MC must observe *this* call's
                // deadline, so the fresh token is attached explicitly.
                let mut estimator = entry
                    .pipeline
                    .sampler_with(
                        McParams::new()
                            .with_max_triggers(mc.max_triggers)
                            .with_seed(mc.seed),
                    )
                    .with_cancel(cancel.clone());
                let stats = estimator.estimate(mc.samples, |outcome| {
                    outcome.full_program().heads().contains(atom)
                })?;
                mc_reports.push(McReport {
                    atom: atom.to_string(),
                    mean: stats.estimate.mean,
                    std_error: stats.estimate.std_error,
                    samples: stats.samples,
                    abandoned: stats.abandoned,
                });
            }
        }

        Ok(QueryResponse {
            source: self.source.clone(),
            rules: self.rules,
            facts: self.facts,
            grounder: request.grounder.label(),
            threads: self.executor.threads(),
            factors: solve.factor_count(),
            analysis: entry.analysis,
            outcomes: solve.combined_outcomes(),
            nodes_visited: entry.nodes_visited,
            events: solve.combined_events(),
            explored_mass: solve.explored_mass(),
            residual_mass: solve.residual_mass(),
            truncated: solve.is_truncated(),
            interrupted: solve.is_interrupted(),
            p_stable: solve.has_stable_model_probability(),
            stable_cache: entry.stats,
            fingerprint: solve.fingerprint(),
            queries,
            given: request.given.as_ref().map(|a| a.to_string()),
            marginals,
            top_events,
            mc: mc_reports,
        })
    }
}

impl std::fmt::Debug for Solver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Solver")
            .field("source", &self.source)
            .field("rules", &self.rules)
            .field("facts", &self.facts)
            .field("warm_solves", &self.warm_solves())
            .finish()
    }
}

/// Resolve [`SolveStrategy::Auto`] to a concrete path via the static
/// analysis alone (no saturation): flat when a `min_path_probability` cut is
/// set (joint-mass cuts never factorize) or when
/// [`certainly_single_trigger`] certifies at most one trigger; factored
/// otherwise (the factored path's dynamic analysis still falls back to flat
/// when the program turns out not to factor).
fn resolve_strategy(
    strategy: SolveStrategy,
    sigma: &SigmaPi,
    budget: &ChaseBudget,
) -> SolveStrategy {
    match strategy {
        SolveStrategy::Auto => {
            if budget.min_path_probability > 0.0 || certainly_single_trigger(sigma) {
                SolveStrategy::Flat
            } else {
                SolveStrategy::Factored
            }
        }
        concrete => concrete,
    }
}

/// Convenience: lift the request's Monte-Carlo parameters into the
/// pipeline's [`McParams`].
impl From<McRequest> for McParams {
    fn from(mc: McRequest) -> Self {
        McParams::new()
            .with_max_triggers(mc.max_triggers)
            .with_seed(mc.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::request::{McRequest, QueryRequest};
    use crate::pipeline::GrounderChoice;
    use crate::program::{coin_program, network_resilience_program};
    use gdlog_data::{Const, GroundAtom};

    fn network_db() -> Database {
        let mut db = Database::new();
        for i in 1..=3i64 {
            db.insert_fact("Router", [Const::Int(i)]);
            for j in 1..=3i64 {
                if i != j {
                    db.insert_fact("Connected", [Const::Int(i), Const::Int(j)]);
                }
            }
        }
        db.insert_fact("Infected", [Const::Int(1), Const::Int(1)]);
        db
    }

    fn network_solver() -> Solver {
        Solver::compile(
            "network",
            &network_resilience_program(0.1),
            &network_db(),
            Arc::new(Executor::sequential()),
        )
        .expect("compile")
    }

    #[test]
    fn warm_responses_are_byte_identical_to_cold() {
        let solver = network_solver();
        let request = QueryRequest::new()
            .query(GroundAtom::make(
                "Uninfected",
                vec![gdlog_data::Const::Int(2)],
            ))
            .top(4);
        let cold = solver.query(&request).expect("cold query");
        assert_eq!(solver.warm_solves(), 1);
        let warm = solver.query(&request).expect("warm query");
        assert_eq!(solver.warm_solves(), 1, "same config must share one solve");
        assert_eq!(cold.render_json(), warm.render_json());
        assert_eq!(cold.render_text(), warm.render_text());
        assert!(cold.stable_cache.misses > 0, "cold stats snapshot kept");
    }

    #[test]
    fn distinct_solve_configurations_get_distinct_entries() {
        let solver = network_solver();
        let flat = QueryRequest::new();
        let small = QueryRequest::new().with_budget(ChaseBudget::small());
        solver.query(&flat).expect("flat");
        solver.query(&small).expect("small budget");
        assert_eq!(solver.warm_solves(), 2);
        // Re-issuing either stays warm.
        solver.query(&flat).expect("flat again");
        assert_eq!(solver.warm_solves(), 2);
    }

    #[test]
    fn auto_strategy_resolves_statically() {
        // The coin program's only Δ-rule is ground → single-trigger
        // certificate → flat.
        let sigma =
            Arc::new(SigmaPi::translate(&coin_program(), &Database::new()).expect("translate"));
        assert_eq!(
            resolve_strategy(SolveStrategy::Auto, &sigma, &ChaseBudget::default()),
            SolveStrategy::Flat
        );
        let cut = ChaseBudget {
            min_path_probability: 0.25,
            ..ChaseBudget::default()
        };
        assert_eq!(
            resolve_strategy(SolveStrategy::Auto, &sigma, &cut),
            SolveStrategy::Flat
        );
        // Concrete strategies pass through untouched.
        assert_eq!(
            resolve_strategy(SolveStrategy::Factored, &sigma, &ChaseBudget::default()),
            SolveStrategy::Factored
        );
    }

    #[test]
    fn auto_matches_flat_on_single_trigger_programs() {
        let solver = Solver::compile(
            "coin",
            &coin_program(),
            &Database::new(),
            Arc::new(Executor::sequential()),
        )
        .expect("compile");
        let auto = solver
            .query(&QueryRequest::new().with_strategy(SolveStrategy::Auto))
            .expect("auto");
        let flat = solver.query(&QueryRequest::new()).expect("flat");
        assert_eq!(auto.analysis, "flat");
        assert_eq!(auto.fingerprint, flat.fingerprint);
        assert_eq!(auto.p_stable.to_string(), flat.p_stable.to_string());
    }

    #[test]
    fn mc_without_queries_is_a_request_error() {
        let solver = network_solver();
        let err = solver
            .query(&QueryRequest::new().monte_carlo(McRequest::samples(10)))
            .expect_err("mc without queries");
        assert!(matches!(err, CoreError::Request(_)));
        assert!(err.to_string().contains("--query"));
    }

    #[test]
    fn cancelled_queries_degrade_gracefully_and_never_pollute_the_cache() {
        let solver = network_solver();
        let cancel = CancelToken::new();
        cancel.cancel();
        let request = QueryRequest::new();
        let cut = solver
            .query_with_cancel(&request, &cancel)
            .expect("a cancelled chase degrades to a partial response");
        assert!(cut.interrupted);
        assert!(cut.truncated);
        // The residual accounts for every cut subtree exactly.
        assert_eq!(
            cut.explored_mass.add(&cut.residual_mass),
            gdlog_prob::Prob::ONE
        );
        assert_eq!(cut.residual_mass, gdlog_prob::Prob::ONE);
        // Interrupted solves must never be served to later queries.
        assert_eq!(solver.warm_solves(), 0);
        let clean = solver.query(&request).expect("uncancelled query");
        assert!(!clean.interrupted);
        assert_eq!(clean.residual_mass, gdlog_prob::Prob::ZERO);
        assert_eq!(solver.warm_solves(), 1);
        // The interrupted JSON key never appears on the clean path.
        assert!(!clean.render_json().contains("interrupted"));
        assert!(cut.render_json().contains("\"interrupted\": true"));
    }

    #[test]
    fn cancelled_monte_carlo_is_a_typed_interruption() {
        let solver = network_solver();
        // Solve warm first so only the MC phase sees the fired token.
        let atom = GroundAtom::make("Uninfected", vec![Const::Int(2)]);
        let request = QueryRequest::new()
            .query(atom)
            .monte_carlo(McRequest::samples(1000));
        solver.query(&request).expect("warm-up");
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = solver
            .query_with_cancel(&request, &cancel)
            .expect_err("mc is exact-sample-count-or-nothing");
        assert!(matches!(err, CoreError::Interrupted(_)));
        assert!(err.to_string().contains("monte-carlo"));
    }

    #[test]
    fn self_armed_timeout_interrupts_long_queries() {
        // 18 chained coins: 2^18 outcomes, far more than a 1ms deadline
        // allows. The response must come back promptly, marked interrupted,
        // with the explored/residual split still exact.
        use crate::builder::ProgramBuilder;
        use gdlog_data::Term;
        let mut db = Database::new();
        for i in 1..=18i64 {
            db.insert_fact("Coin", [Const::Int(i)]);
        }
        let program = ProgramBuilder::new()
            .rule(|r| {
                r.body("Coin", vec![Term::var("x")]).head_with_delta(
                    "Toss",
                    vec![Term::var("x")],
                    "Flip",
                    vec![Term::Const(Const::real(0.5).unwrap())],
                    vec![Term::var("x")],
                )
            })
            .build()
            .unwrap();
        let solver = Solver::compile("coins", &program, &db, Arc::new(Executor::sequential()))
            .expect("compile");
        let request = QueryRequest::new().with_timeout_ms(1);
        let response = solver.query(&request).expect("graceful degradation");
        assert!(response.interrupted, "1ms cannot enumerate 2^18 outcomes");
        assert!(response.residual_mass.is_positive());
        assert_eq!(
            response.explored_mass.add(&response.residual_mass),
            gdlog_prob::Prob::ONE
        );
        assert_eq!(solver.warm_solves(), 0);
    }

    #[test]
    fn grounder_choice_reaches_the_response() {
        let solver = network_solver();
        let resp = solver
            .query(&QueryRequest::new().with_grounder(GrounderChoice::Auto))
            .expect("auto grounder");
        assert_eq!(resp.grounder, "auto");
        assert_eq!(resp.source, "network");
    }
}

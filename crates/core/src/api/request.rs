//! The unified query request.
//!
//! A [`QueryRequest`] is the single description of "everything one asks of a
//! program": solve configuration (grounder, flat/factored/auto strategy,
//! chase budget, trigger order, stable-model limits) plus the question list
//! (brave/cautious queries, a `--given` conditional, marginals, top-K events,
//! Monte-Carlo estimates). The CLI `run` path, `Pipeline` consumers and the
//! resident server all build this one type and dispatch it through
//! [`crate::api::Solver`], so there is exactly one query surface — and one
//! response schema ([`crate::api::QueryResponse`]) — across every front-end.

use crate::chase::{ChaseBudget, TriggerOrder};
use crate::pipeline::GrounderChoice;
use gdlog_data::GroundAtom;
use gdlog_engine::StableModelLimits;

/// How the solver should decompose the outcome space.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SolveStrategy {
    /// Enumerate the flat chase tree (the classic `Pipeline::solve` path).
    #[default]
    Flat,
    /// Chase independent components separately and answer from the product
    /// of their outcome spaces (`Pipeline::solve_factored`); falls back to
    /// the flat path when the program does not factor.
    Factored,
    /// Let the solver pick: the grounding-free static independence analysis
    /// of `gdlog lint` (PR 8) chooses the factored path exactly when it
    /// predicts more than one trigger-bearing component.
    Auto,
}

impl SolveStrategy {
    /// Lowercase label (`flat` / `factored` / `auto`) for flags and reports.
    pub fn label(&self) -> &'static str {
        match self {
            SolveStrategy::Flat => "flat",
            SolveStrategy::Factored => "factored",
            SolveStrategy::Auto => "auto",
        }
    }
}

/// Monte-Carlo estimation parameters, folded into the unified request
/// (backed by [`crate::pipeline::McParams`] on the pipeline).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct McRequest {
    /// Number of sampled walks per queried atom.
    pub samples: usize,
    /// Root seed of the per-walk RNG streams.
    pub seed: u64,
    /// Per-walk trigger budget (walks beyond it count as abandoned).
    pub max_triggers: usize,
}

impl McRequest {
    /// An estimate with `samples` walks and the default seed/trigger budget.
    pub fn samples(samples: usize) -> Self {
        McRequest {
            samples,
            seed: 0,
            max_triggers: 64,
        }
    }

    /// Override the root seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the per-walk trigger budget.
    pub fn with_max_triggers(mut self, max_triggers: usize) -> Self {
        self.max_triggers = max_triggers;
        self
    }
}

/// One complete query against a compiled program.
///
/// Defaults mirror a bare `gdlog run file.gdl`: simple grounder, flat
/// strategy, default budgets, no questions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryRequest {
    /// Grounder selection.
    pub grounder: GrounderChoice,
    /// Flat, factored, or solver-chosen decomposition.
    pub strategy: SolveStrategy,
    /// Chase budget for this query (per-query budgets are what lets the
    /// server bound each admitted query independently).
    pub budget: ChaseBudget,
    /// Trigger exploration order.
    pub order: TriggerOrder,
    /// Stable-model search limits.
    pub limits: StableModelLimits,
    /// Ground atoms to report brave/cautious probabilities for.
    pub queries: Vec<GroundAtom>,
    /// Condition every query on this ground atom.
    pub given: Option<GroundAtom>,
    /// Predicates to report full marginals for.
    pub marginals: Vec<String>,
    /// Report the top-K events by probability mass.
    pub top: Option<usize>,
    /// Monte-Carlo estimate each queried atom.
    pub mc: Option<McRequest>,
    /// Cooperative per-query deadline in milliseconds. When it fires, the
    /// chase degrades gracefully (truncated enumeration with exact residual
    /// mass, marked `interrupted`); phases that are exact-or-nothing surface
    /// [`crate::CoreError::Interrupted`]. Deliberately *not* part of
    /// [`SolveKey`]: a timeout shapes when a solve is abandoned, never what a
    /// completed solve contains, and interrupted solves are never cached.
    pub timeout_ms: Option<u64>,
}

impl QueryRequest {
    /// A request with every default (equivalent to `QueryRequest::default()`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the grounder.
    pub fn with_grounder(mut self, grounder: GrounderChoice) -> Self {
        self.grounder = grounder;
        self
    }

    /// Set the solve strategy.
    pub fn with_strategy(mut self, strategy: SolveStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Set the chase budget.
    pub fn with_budget(mut self, budget: ChaseBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Set the trigger order.
    pub fn with_order(mut self, order: TriggerOrder) -> Self {
        self.order = order;
        self
    }

    /// Set the stable-model limits.
    pub fn with_limits(mut self, limits: StableModelLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Add a brave/cautious query atom.
    pub fn query(mut self, atom: GroundAtom) -> Self {
        self.queries.push(atom);
        self
    }

    /// Condition every query on `atom`.
    pub fn given(mut self, atom: GroundAtom) -> Self {
        self.given = Some(atom);
        self
    }

    /// Report marginals for `predicate`.
    pub fn marginal(mut self, predicate: impl Into<String>) -> Self {
        self.marginals.push(predicate.into());
        self
    }

    /// Report the top `k` events by mass.
    pub fn top(mut self, k: usize) -> Self {
        self.top = Some(k);
        self
    }

    /// Monte-Carlo estimate each queried atom.
    pub fn monte_carlo(mut self, mc: McRequest) -> Self {
        self.mc = Some(mc);
        self
    }

    /// Give up on the query after `timeout_ms` milliseconds.
    pub fn with_timeout_ms(mut self, timeout_ms: u64) -> Self {
        self.timeout_ms = Some(timeout_ms);
        self
    }

    /// The solve configuration of this request — everything that determines
    /// the solved output space (and therefore the warm-cache key), nothing
    /// that only shapes the answers.
    pub fn solve_key(&self) -> SolveKey {
        SolveKey {
            grounder: self.grounder,
            strategy: self.strategy,
            budget: self.budget,
            order: self.order,
            limits: self.limits,
        }
    }
}

/// The portion of a [`QueryRequest`] that determines the solved output
/// space. Two requests with equal keys can share one solve; the question
/// lists (queries, marginals, top-K, MC) are answered per request from the
/// shared space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolveKey {
    /// Grounder selection.
    pub grounder: GrounderChoice,
    /// Requested decomposition strategy (`Auto` resolves deterministically
    /// per program, so keying by the request is stable).
    pub strategy: SolveStrategy,
    /// Chase budget.
    pub budget: ChaseBudget,
    /// Trigger order.
    pub order: TriggerOrder,
    /// Stable-model limits.
    pub limits: StableModelLimits,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdlog_data::Const;

    #[test]
    fn builder_and_defaults() {
        let atom = GroundAtom::make("Coin", vec![Const::Int(1)]);
        let req = QueryRequest::new()
            .with_grounder(GrounderChoice::Auto)
            .with_strategy(SolveStrategy::Factored)
            .query(atom.clone())
            .given(atom.clone())
            .marginal("Coin")
            .top(4)
            .monte_carlo(McRequest::samples(100).with_seed(7).with_max_triggers(32));
        assert_eq!(req.grounder, GrounderChoice::Auto);
        assert_eq!(req.strategy, SolveStrategy::Factored);
        assert_eq!(req.queries, vec![atom.clone()]);
        assert_eq!(req.given, Some(atom));
        assert_eq!(req.marginals, vec!["Coin".to_owned()]);
        assert_eq!(req.top, Some(4));
        let mc = req.mc.expect("mc set");
        assert_eq!((mc.samples, mc.seed, mc.max_triggers), (100, 7, 32));

        let default = QueryRequest::default();
        assert_eq!(default.strategy, SolveStrategy::Flat);
        assert!(default.queries.is_empty() && default.mc.is_none());
    }

    #[test]
    fn solve_keys_ignore_the_question_list() {
        // The timeout shapes when a solve is abandoned, not what a completed
        // solve contains — it must not split the warm-solve cache.
        let a = QueryRequest::new()
            .top(4)
            .marginal("Coin")
            .with_timeout_ms(500);
        let b = QueryRequest::new();
        assert_eq!(a.solve_key(), b.solve_key());
        let c = QueryRequest::new().with_strategy(SolveStrategy::Auto);
        assert_ne!(a.solve_key(), c.solve_key());
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(SolveStrategy::Flat.label(), "flat");
        assert_eq!(SolveStrategy::Factored.label(), "factored");
        assert_eq!(SolveStrategy::Auto.label(), "auto");
    }
}

//! A tiny deterministic JSON value tree and renderer.
//!
//! The `--json` report of the CLI and the wire responses of `gdlog serve`
//! are rendered through this tree, consumed by the scenario-corpus golden
//! tests, and diffed byte-for-byte across CI's thread-matrix legs *and*
//! across the CLI/server surfaces, so rendering must be fully deterministic:
//! object keys keep insertion order, floats render through Rust's `Display`
//! (shortest round-trip form, never scientific notation), and nothing
//! environment-dependent (timestamps, thread counts, hostnames) is ever
//! emitted.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (covers every count and exact-rational component we emit).
    Int(i128),
    /// A float; non-finite values render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Render as pretty-printed JSON with two-space indentation and a
    /// trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let s = v.to_string();
                    out.push_str(&s);
                    // `Display` omits the decimal point for integral floats;
                    // keep the value typed as a float on the wire.
                    if !s.contains('.') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_nesting() {
        let v = Json::obj([
            ("name", Json::str("coin")),
            ("n", Json::Int(2)),
            ("mass", Json::Float(0.5)),
            ("whole", Json::Float(3.0)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("empty", Json::Arr(vec![])),
            ("items", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        let text = v.render();
        assert!(text.contains("\"name\": \"coin\""));
        assert!(text.contains("\"mass\": 0.5"));
        assert!(text.contains("\"whole\": 3.0"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with("}\n"));
        assert!(text.contains("  \"items\": [\n    1,\n    2\n  ]"));
    }

    #[test]
    fn escapes_strings_and_maps_nonfinite_to_null() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"\n");
        assert_eq!(Json::Float(f64::NAN).render(), "null\n");
        // Unicode (the ≈ of approximate probabilities) passes through raw.
        assert_eq!(Json::str("≈0.3").render(), "\"≈0.3\"\n");
    }
}

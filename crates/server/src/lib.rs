//! # gdlog-server — the resident query daemon
//!
//! `gdlog serve` keeps compiled programs **warm**: parse → lint → ground →
//! solve runs once per `(program, solve configuration)`, and every further
//! query answers from the cached output space, with responses byte-identical
//! to a cold one-shot `gdlog run --json`. The pieces:
//!
//! * [`flags`] — the run/query flag grammar shared verbatim with the CLI
//!   (one parser, so the two front-ends cannot drift).
//! * [`compile`] — parse + validate + compile into a
//!   [`gdlog_core::api::Solver`], with caret diagnostics.
//! * [`session`] — per-connection sessions over a global compiled-program
//!   cache keyed by `(label, source text)`; admission-controlled query
//!   dispatch.
//! * [`admission`] — bounded in-flight queries with a bounded wait queue;
//!   overload is a prompt typed rejection, never a hang.
//! * [`protocol`] — the framed line protocol (`OPEN`/`QUERY`/`CLOSE`/
//!   `STATS`/`RESET`/`PING`) over [`netline`].
//! * [`client`] — a typed blocking client for tests, benches and CI replay.
//!
//! The transport is the first-party `netline` crate under `vendor/`
//! (std-only blocking TCP; the build environment has no crates.io access).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod compile;
pub mod flags;
pub mod protocol;
pub mod session;

pub use admission::{AcquireError, Admission, Overloaded, Permit};
pub use client::{ClientError, RetryPolicy, ServeClient};
pub use compile::{compile_source, load_source, render_core_error, Loaded};
pub use flags::{parse_ground_atom, parse_query_flags, QueryFlags};
pub use protocol::Protocol;
pub use session::{ErrorCode, OpenInfo, ServeError, SessionManager};

use gdlog_core::Executor;
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;

/// Configuration of a resident server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:7171` by default; port `0` for ephemeral).
    pub addr: String,
    /// Worker threads of the shared executor (`None` defers to
    /// `GDLOG_THREADS`, like the CLI).
    pub threads: Option<usize>,
    /// Maximum concurrently solving queries.
    pub max_inflight: usize,
    /// Maximum queries waiting for a solve slot before rejection.
    pub max_queued: usize,
    /// Default per-query deadline in milliseconds; a request's own
    /// `--timeout-ms` wins. `None` leaves queries unbounded.
    pub timeout_ms: Option<u64>,
    /// Socket read/write timeout in milliseconds per connection; stalled
    /// or idle-past-this connections are torn down. `None` (the default)
    /// keeps long-lived interactive sessions fully blocking.
    pub io_timeout_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7171".to_owned(),
            threads: None,
            // Defaults sized for a small resident daemon: a handful of
            // concurrent solves, a short queue, prompt rejection beyond.
            max_inflight: 4,
            max_queued: 16,
            timeout_ms: None,
            io_timeout_ms: None,
        }
    }
}

/// A running server; stop it (or drop it) to shut down.
pub struct RunningServer {
    addr: SocketAddr,
    handle: netline::ServerHandle,
    protocol: Arc<Protocol>,
}

impl RunningServer {
    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The session manager behind the protocol (for in-process inspection
    /// and tests — e.g. pinning an admission permit deterministically).
    pub fn sessions(&self) -> &SessionManager {
        self.protocol.sessions()
    }

    /// Stop accepting and join the accept loop.
    pub fn stop(&mut self) {
        self.handle.stop();
    }
}

/// Bind and start serving in background threads. Returns once the socket is
/// bound (clients may connect immediately).
pub fn start(config: &ServeConfig) -> io::Result<RunningServer> {
    let executor = Arc::new(match config.threads {
        Some(n) => Executor::new(n),
        None => Executor::from_env(),
    });
    let sessions = SessionManager::new(executor, config.max_inflight, config.max_queued)
        .with_default_timeout_ms(config.timeout_ms);
    let server = netline::Server::bind(&config.addr)?;
    let addr = server.local_addr();
    let protocol = Arc::new(Protocol::new(sessions));
    // Chaos (fault injection) arms only via the GDLOG_CHAOS environment
    // variable — a malformed spec is a loud startup error.
    let mut options = netline::ServerOptions::from_env()?;
    options.io_timeout = config.io_timeout_ms.map(std::time::Duration::from_millis);
    let handle = server.spawn_with(protocol.clone(), options);
    Ok(RunningServer {
        addr,
        handle,
        protocol,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_serves_and_stops() {
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: Some(1),
            ..ServeConfig::default()
        };
        let mut server = start(&config).unwrap();
        let mut client = ServeClient::connect(server.local_addr()).unwrap();
        assert_eq!(client.ping().unwrap(), "pong");
        client
            .open("coin.gdl", "-> Coin(Flip<0.5>).\nCoin(0) -> false.\n")
            .unwrap();
        let json = client.query("coin.gdl", &["--query", "Coin(1)"]).unwrap();
        assert!(json.contains("\"p_stable\""), "{json}");
        // Typed errors cross the wire.
        let err = client.query("nope.gdl", &[]).unwrap_err();
        match err {
            ClientError::Serve(e) => assert_eq!(e.code, ErrorCode::NoSession),
            other => panic!("expected protocol error, got {other}"),
        }
        drop(client);
        server.stop();
    }
}

//! The wire protocol: netline frames in, netline frames out.
//!
//! Every request is one frame (`<head tokens> <body-len>\n<body>`); every
//! response frame has head `OK` or `ERR <code>`. Commands:
//!
//! | request head      | body                        | OK body                                |
//! |-------------------|-----------------------------|----------------------------------------|
//! | `PING`            | empty                       | `pong`                                 |
//! | `OPEN <label>`    | scenario source text        | `{label, rules, facts, cached}`        |
//! | `QUERY <label>`   | one run-flag per line       | the response JSON (`run --json` bytes) |
//! | `CLOSE <label>`   | empty                       | `{closed}`                             |
//! | `STATS`           | empty                       | cache/admission counters JSON          |
//! | `RESET`           | empty                       | `{dropped}`                            |
//!
//! `ERR` bodies are always `{"error": <code>, "message": <text>}` — in
//! particular an admission-control rejection is a prompt, well-formed
//! `ERR overloaded` response, never a hang. Labels are single tokens (no
//! whitespace); query arguments travel in the body, one per line, so ground
//! atoms containing spaces (`Likes(#alice, 2)`) survive verbatim.

use crate::session::{ErrorCode, ServeError, SessionManager};
use gdlog_core::api::Json;
use netline::{ConnProbe, Frame, Handler};

/// The netline handler: dispatches frames onto a [`SessionManager`].
pub struct Protocol {
    sessions: SessionManager,
}

impl Protocol {
    /// Wrap a session manager.
    pub fn new(sessions: SessionManager) -> Self {
        Protocol { sessions }
    }

    /// The session manager (for in-process tests).
    pub fn sessions(&self) -> &SessionManager {
        &self.sessions
    }

    fn dispatch(&self, conn_id: u64, request: &Frame) -> Result<Frame, ServeError> {
        let mut tokens = request.head.split_whitespace();
        let command = tokens.next().unwrap_or("");
        let label = tokens.next();
        if let Some(extra) = tokens.next() {
            return Err(ServeError {
                code: ErrorCode::BadRequest,
                message: format!("unexpected token `{extra}` in `{command}`"),
            });
        }
        let no_label = |command: &str| ServeError {
            code: ErrorCode::BadRequest,
            message: format!("`{command}` requires a session label"),
        };
        match (command, label) {
            ("PING", None) => Ok(Frame::new("OK", b"pong".to_vec())),
            ("OPEN", Some(label)) => {
                let info = self.sessions.open(conn_id, label, &request.body_text())?;
                Ok(Frame::new("OK", info.body(label)))
            }
            ("OPEN", None) => Err(no_label("OPEN")),
            ("QUERY", Some(label)) => {
                let body = request.body_text();
                let argv: Vec<String> = body
                    .lines()
                    .filter(|l| !l.is_empty())
                    .map(str::to_owned)
                    .collect();
                let json = self.sessions.query(conn_id, label, &argv)?;
                Ok(Frame::new("OK", json))
            }
            ("QUERY", None) => Err(no_label("QUERY")),
            ("CLOSE", Some(label)) => {
                let closed = self.sessions.close(conn_id, label);
                Ok(Frame::new(
                    "OK",
                    Json::obj([("closed", Json::Bool(closed))]).render(),
                ))
            }
            ("CLOSE", None) => Err(no_label("CLOSE")),
            ("STATS", None) => Ok(Frame::new("OK", self.sessions.stats_body())),
            ("RESET", None) => {
                let dropped = self.sessions.reset();
                Ok(Frame::new(
                    "OK",
                    Json::obj([("dropped", Json::Int(dropped as i128))]).render(),
                ))
            }
            (other, _) => Err(ServeError {
                code: ErrorCode::BadRequest,
                message: format!("unknown command `{other}`"),
            }),
        }
    }
}

impl Handler for Protocol {
    fn handle(&self, request: Frame) -> Frame {
        self.handle_on(u64::MAX, request)
    }

    fn handle_on(&self, conn_id: u64, request: Frame) -> Frame {
        match self.dispatch(conn_id, &request) {
            Ok(response) => response,
            Err(e) => Frame::new(format!("ERR {}", e.code.token()), e.body()),
        }
    }

    fn attached(&self, conn_id: u64, probe: ConnProbe) {
        self.sessions.attach_probe(conn_id, probe);
    }

    fn disconnected(&self, conn_id: u64) {
        self.sessions.disconnect(conn_id);
    }

    /// A panicking query worker costs its connection, not the server: the
    /// client gets this typed error (same JSON shape as every `ERR`), then
    /// netline tears the connection down and `disconnected` cleans up.
    fn panic_response(&self, _conn_id: u64) -> Frame {
        let e = ServeError {
            code: ErrorCode::Internal,
            message: "the query worker panicked; this connection is being closed".to_owned(),
        };
        Frame::new(format!("ERR {}", e.code.token()), e.body())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdlog_core::Executor;
    use std::sync::Arc;

    const COIN: &str = "-> Coin(Flip<0.5>).\nCoin(0) -> false.\n";

    fn protocol() -> Protocol {
        Protocol::new(SessionManager::new(Arc::new(Executor::sequential()), 2, 0))
    }

    #[test]
    fn dispatches_the_full_command_set() {
        let p = protocol();
        let pong = p.handle_on(0, Frame::new("PING", Vec::new()));
        assert_eq!(
            (pong.head.as_str(), pong.body_text().as_str()),
            ("OK", "pong")
        );

        let opened = p.handle_on(0, Frame::new("OPEN coin.gdl", COIN.as_bytes().to_vec()));
        assert_eq!(opened.head, "OK");
        assert!(opened.body_text().contains("\"rules\": 3"));

        let queried = p.handle_on(
            0,
            Frame::new("QUERY coin.gdl", "--query\nCoin(1)\n".as_bytes().to_vec()),
        );
        assert_eq!(queried.head, "OK", "{}", queried.body_text());
        assert!(queried.body_text().contains("\"p_stable\""));

        let stats = p.handle_on(0, Frame::new("STATS", Vec::new()));
        assert!(stats.body_text().contains("\"queries\": 1"));

        let closed = p.handle_on(0, Frame::new("CLOSE coin.gdl", Vec::new()));
        assert!(closed.body_text().contains("\"closed\": true"));

        let reset = p.handle_on(0, Frame::new("RESET", Vec::new()));
        assert!(reset.body_text().contains("\"dropped\": 1"));
    }

    #[test]
    fn errors_are_err_frames_with_json_bodies() {
        let p = protocol();
        let e = p.handle_on(0, Frame::new("FROB", Vec::new()));
        assert_eq!(e.head, "ERR bad-request");
        assert!(e.body_text().contains("unknown command"));

        let e = p.handle_on(0, Frame::new("QUERY", Vec::new()));
        assert_eq!(e.head, "ERR bad-request");

        let e = p.handle_on(0, Frame::new("QUERY nope.gdl", Vec::new()));
        assert_eq!(e.head, "ERR no-session");

        let e = p.handle_on(0, Frame::new("OPEN bad.gdl", b"A(x) -> B(x)\n".to_vec()));
        assert_eq!(e.head, "ERR compile-failed");
        assert!(e.body_text().contains("\"message\""));

        let e = p.handle_on(0, Frame::new("PING extra tokens", Vec::new()));
        assert_eq!(e.head, "ERR bad-request");
    }

    #[test]
    fn sessions_are_connection_scoped() {
        let p = protocol();
        p.handle_on(1, Frame::new("OPEN coin.gdl", COIN.as_bytes().to_vec()));
        // Another connection has no such session...
        let e = p.handle_on(2, Frame::new("QUERY coin.gdl", Vec::new()));
        assert_eq!(e.head, "ERR no-session");
        // ...and a disconnect drops it.
        p.disconnected(1);
        let e = p.handle_on(1, Frame::new("QUERY coin.gdl", Vec::new()));
        assert_eq!(e.head, "ERR no-session");
    }
}

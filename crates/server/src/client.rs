//! A typed client for the wire protocol — used by the integration tests,
//! `bench_serve`, and CI's corpus replay.
//!
//! With a [`RetryPolicy`] armed, transient failures — `overloaded`
//! rejections and transport errors (the server dropped, truncated or
//! garbled a response) — are retried with jittered exponential backoff on
//! a fresh connection, and previously opened sessions are re-opened first,
//! so a corrupted connection costs latency, not correctness. Every command
//! here is idempotent (queries are pure; `OPEN` hits the compiled-program
//! cache), which is what makes blind retry sound.

use crate::session::{ErrorCode, ServeError};
use std::collections::BTreeMap;
use std::io;
use std::net::SocketAddr;
use std::time::Duration;

/// Errors a client call can produce: transport failures or typed protocol
/// errors.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed mid-call.
    Io(io::Error),
    /// The server answered `ERR <code>` with a JSON body.
    Serve(ServeError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Serve(e) => write!(f, "{}: {}", e.code.token(), e.message),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

fn parse_error_code(token: &str) -> ErrorCode {
    match token {
        "no-session" => ErrorCode::NoSession,
        "compile-failed" => ErrorCode::CompileFailed,
        "query-failed" => ErrorCode::QueryFailed,
        "overloaded" => ErrorCode::Overloaded,
        "deadline-exceeded" => ErrorCode::DeadlineExceeded,
        "internal-error" => ErrorCode::Internal,
        _ => ErrorCode::BadRequest,
    }
}

/// Bounded, jittered exponential backoff for transient failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` disables retrying).
    pub attempts: u32,
    /// Backoff before retry `n` is `base_delay * 2^n`, capped below.
    pub base_delay: Duration,
    /// Cap on a single backoff sleep.
    pub max_delay: Duration,
    /// Seed of the deterministic jitter stream (tests replay exactly).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(400),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry `attempt` (0-based): exponential, capped,
    /// then jittered to 50–150% so synchronized clients don't re-dogpile
    /// an overloaded server in lockstep.
    fn backoff(&self, attempt: u32, rng: &mut u64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX));
        let capped = exp.min(self.max_delay);
        let mut x = *rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *rng = x;
        capped * (50 + (x % 101) as u32) / 100
    }
}

/// Pull the `"message"` string out of an error body without a JSON parser —
/// the body shape is fixed (our own renderer), so a split suffices.
fn error_message(body: &str) -> String {
    body.split_once("\"message\": \"")
        .map(|(_, rest)| {
            let mut out = String::new();
            let mut chars = rest.chars();
            while let Some(c) = chars.next() {
                match c {
                    '"' => break,
                    '\\' => match chars.next() {
                        Some('n') => out.push('\n'),
                        Some('t') => out.push('\t'),
                        Some(other) => out.push(other),
                        None => break,
                    },
                    c => out.push(c),
                }
            }
            out
        })
        .unwrap_or_else(|| body.to_owned())
}

/// One blocking connection to a `gdlog serve` instance.
pub struct ServeClient {
    inner: netline::Client,
    addr: SocketAddr,
    retry: Option<RetryPolicy>,
    rng: u64,
    /// Sessions opened through this client (`label → source`), replayed
    /// after a retry reconnect — sessions are connection-scoped on the
    /// server, so a fresh connection starts with none.
    opened: BTreeMap<String, String>,
}

impl ServeClient {
    /// Connect.
    pub fn connect(addr: SocketAddr) -> io::Result<ServeClient> {
        Ok(ServeClient {
            inner: netline::Client::connect(addr)?,
            addr,
            retry: None,
            rng: 0,
            opened: BTreeMap::new(),
        })
    }

    /// Arm (or disarm) retry-with-backoff for `overloaded` and transport
    /// errors.
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>) {
        // Displace the jitter seed off xorshift's zero fixpoint.
        self.rng = policy.map_or(0, |p| p.seed ^ 0x9e37_79b9_7f4a_7c15);
        self.retry = policy;
    }

    /// Arm (or disarm) a socket read/write timeout so calls against a
    /// stalled server fail (and, with a retry policy, reconnect) instead of
    /// blocking forever.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_io_timeout(timeout)
    }

    fn call_once(&mut self, head: &str, body: &[u8]) -> Result<String, ClientError> {
        let response = self.inner.call(head, body.to_vec())?;
        let body = response.body_text();
        if let Some(code) = response.head.strip_prefix("ERR ") {
            return Err(ClientError::Serve(ServeError {
                code: parse_error_code(code.trim()),
                message: error_message(&body),
            }));
        }
        Ok(body)
    }

    /// Reconnect and re-open every session this client had opened, so a
    /// retried `QUERY` does not land on a session-less fresh connection.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        self.inner = netline::Client::connect(self.addr)?;
        for (label, source) in self.opened.clone() {
            self.call_once(&format!("OPEN {label}"), source.as_bytes())?;
        }
        Ok(())
    }

    fn call(&mut self, head: &str, body: Vec<u8>) -> Result<String, ClientError> {
        let Some(policy) = self.retry else {
            return self.call_once(head, &body);
        };
        let mut last = None;
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(policy.backoff(attempt - 1, &mut self.rng));
            }
            let transport_failed = matches!(last, Some(ClientError::Io(_)));
            if transport_failed {
                if let Err(e) = self.reconnect() {
                    last = Some(e);
                    continue;
                }
            }
            match self.call_once(head, &body) {
                Ok(response) => return Ok(response),
                // Transient: the server shed load, or the transport died
                // (dropped/truncated/garbled response, stalled socket).
                Err(e @ ClientError::Io(_)) => last = Some(e),
                Err(ClientError::Serve(e)) if e.code == ErrorCode::Overloaded => {
                    last = Some(ClientError::Serve(e))
                }
                // Typed, non-transient protocol errors never retry.
                Err(other) => return Err(other),
            }
        }
        Err(last.expect("at least one attempt"))
    }

    /// `PING` → `pong`.
    pub fn ping(&mut self) -> Result<String, ClientError> {
        self.call("PING", Vec::new())
    }

    /// Open a session: compile `source` under `label` (label must be a
    /// single token; scenario paths are).
    pub fn open(&mut self, label: &str, source: &str) -> Result<String, ClientError> {
        let response = self.call(&format!("OPEN {label}"), source.as_bytes().to_vec())?;
        self.opened.insert(label.to_owned(), source.to_owned());
        Ok(response)
    }

    /// Query an open session with `gdlog run`-style flags, one argument per
    /// element. Returns the response JSON.
    pub fn query(&mut self, label: &str, argv: &[&str]) -> Result<String, ClientError> {
        let body = argv.join("\n").into_bytes();
        self.call(&format!("QUERY {label}"), body)
    }

    /// Close a session.
    pub fn close(&mut self, label: &str) -> Result<String, ClientError> {
        self.opened.remove(label);
        self.call(&format!("CLOSE {label}"), Vec::new())
    }

    /// Server statistics JSON.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        self.call("STATS", Vec::new())
    }

    /// Drop the server's compiled-program cache (cold-path measurements).
    pub fn reset(&mut self) -> Result<String, ClientError> {
        self.call("RESET", Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bodies_round_trip_through_the_scraper() {
        let e = ServeError {
            code: ErrorCode::CompileFailed,
            message: "error: boom\n  --> x.gdl:1:9\n".into(),
        };
        let body = e.body();
        assert_eq!(error_message(&body), e.message);
        assert_eq!(parse_error_code("compile-failed"), ErrorCode::CompileFailed);
        assert_eq!(parse_error_code("???"), ErrorCode::BadRequest);
    }
}

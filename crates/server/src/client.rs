//! A typed client for the wire protocol — used by the integration tests,
//! `bench_serve`, and CI's corpus replay.

use crate::session::{ErrorCode, ServeError};
use std::io;
use std::net::SocketAddr;

/// Errors a client call can produce: transport failures or typed protocol
/// errors.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed mid-call.
    Io(io::Error),
    /// The server answered `ERR <code>` with a JSON body.
    Serve(ServeError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Serve(e) => write!(f, "{}: {}", e.code.token(), e.message),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

fn parse_error_code(token: &str) -> ErrorCode {
    match token {
        "no-session" => ErrorCode::NoSession,
        "compile-failed" => ErrorCode::CompileFailed,
        "query-failed" => ErrorCode::QueryFailed,
        "overloaded" => ErrorCode::Overloaded,
        _ => ErrorCode::BadRequest,
    }
}

/// Pull the `"message"` string out of an error body without a JSON parser —
/// the body shape is fixed (our own renderer), so a split suffices.
fn error_message(body: &str) -> String {
    body.split_once("\"message\": \"")
        .map(|(_, rest)| {
            let mut out = String::new();
            let mut chars = rest.chars();
            while let Some(c) = chars.next() {
                match c {
                    '"' => break,
                    '\\' => match chars.next() {
                        Some('n') => out.push('\n'),
                        Some('t') => out.push('\t'),
                        Some(other) => out.push(other),
                        None => break,
                    },
                    c => out.push(c),
                }
            }
            out
        })
        .unwrap_or_else(|| body.to_owned())
}

/// One blocking connection to a `gdlog serve` instance.
pub struct ServeClient {
    inner: netline::Client,
}

impl ServeClient {
    /// Connect.
    pub fn connect(addr: SocketAddr) -> io::Result<ServeClient> {
        Ok(ServeClient {
            inner: netline::Client::connect(addr)?,
        })
    }

    fn call(&mut self, head: &str, body: Vec<u8>) -> Result<String, ClientError> {
        let response = self.inner.call(head, body)?;
        let body = response.body_text();
        if let Some(code) = response.head.strip_prefix("ERR ") {
            return Err(ClientError::Serve(ServeError {
                code: parse_error_code(code.trim()),
                message: error_message(&body),
            }));
        }
        Ok(body)
    }

    /// `PING` → `pong`.
    pub fn ping(&mut self) -> Result<String, ClientError> {
        self.call("PING", Vec::new())
    }

    /// Open a session: compile `source` under `label` (label must be a
    /// single token; scenario paths are).
    pub fn open(&mut self, label: &str, source: &str) -> Result<String, ClientError> {
        self.call(&format!("OPEN {label}"), source.as_bytes().to_vec())
    }

    /// Query an open session with `gdlog run`-style flags, one argument per
    /// element. Returns the response JSON.
    pub fn query(&mut self, label: &str, argv: &[&str]) -> Result<String, ClientError> {
        let body = argv.join("\n").into_bytes();
        self.call(&format!("QUERY {label}"), body)
    }

    /// Close a session.
    pub fn close(&mut self, label: &str) -> Result<String, ClientError> {
        self.call(&format!("CLOSE {label}"), Vec::new())
    }

    /// Server statistics JSON.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        self.call("STATS", Vec::new())
    }

    /// Drop the server's compiled-program cache (cold-path measurements).
    pub fn reset(&mut self) -> Result<String, ClientError> {
        self.call("RESET", Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bodies_round_trip_through_the_scraper() {
        let e = ServeError {
            code: ErrorCode::CompileFailed,
            message: "error: boom\n  --> x.gdl:1:9\n".into(),
        };
        let body = e.body();
        assert_eq!(error_message(&body), e.message);
        assert_eq!(parse_error_code("compile-failed"), ErrorCode::CompileFailed);
        assert_eq!(parse_error_code("???"), ErrorCode::BadRequest);
    }
}

//! Admission control: bounded in-flight queries with a bounded wait queue.
//!
//! Every `QUERY` acquires a [`Permit`] before solving. At most
//! `max_inflight` permits are out at once; up to `max_queued` further
//! acquisitions block until a permit frees; beyond that, acquisition fails
//! **immediately** with [`Overloaded`] — the caller turns that into a
//! well-formed wire rejection rather than letting clients hang on an
//! unbounded queue. Built on `std::sync`'s `Mutex`/`Condvar` (the vendored
//! `parking_lot` stand-in has no condition variables).

use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Returned when both the in-flight slots and the wait queue are full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Overloaded {
    /// Configured in-flight cap.
    pub max_inflight: usize,
    /// Configured queue cap.
    pub max_queued: usize,
}

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "server overloaded: {} queries in flight and {} queued",
            self.max_inflight, self.max_queued
        )
    }
}

/// Why a watched acquisition ([`Admission::acquire_watched`]) ended
/// without a permit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcquireError {
    /// Both the in-flight slots and the wait queue were full.
    Overloaded(Overloaded),
    /// The watcher reported the requester gone while it was queued; its
    /// queue entry has been released.
    Abandoned,
}

struct State {
    inflight: usize,
    queued: usize,
}

/// The admission gate. Shared by every connection of one server.
pub struct Admission {
    state: Mutex<State>,
    freed: Condvar,
    max_inflight: usize,
    max_queued: usize,
}

impl Admission {
    /// A gate with the given caps. `max_inflight` is clamped to ≥ 1 (a gate
    /// that can never admit would deadlock every client).
    pub fn new(max_inflight: usize, max_queued: usize) -> Self {
        Admission {
            state: Mutex::new(State {
                inflight: 0,
                queued: 0,
            }),
            freed: Condvar::new(),
            max_inflight: max_inflight.max(1),
            max_queued,
        }
    }

    /// Acquire a permit: immediate when a slot is free, blocking while the
    /// queue has room, `Err(Overloaded)` when both are full.
    pub fn acquire(&self) -> Result<Permit<'_>, Overloaded> {
        let mut state = self.state.lock().expect("admission lock");
        if state.inflight < self.max_inflight {
            state.inflight += 1;
            return Ok(Permit { gate: self });
        }
        if state.queued >= self.max_queued {
            return Err(Overloaded {
                max_inflight: self.max_inflight,
                max_queued: self.max_queued,
            });
        }
        state.queued += 1;
        while state.inflight >= self.max_inflight {
            state = self.freed.wait(state).expect("admission wait");
        }
        state.queued -= 1;
        state.inflight += 1;
        Ok(Permit { gate: self })
    }

    /// Like [`Admission::acquire`], but while queued, poll `abandoned`
    /// every `poll` interval and give the queue entry back the moment it
    /// returns true — a client that hangs up while waiting must not hold a
    /// scarce queue slot until a permit happens to free.
    pub fn acquire_watched(
        &self,
        abandoned: &dyn Fn() -> bool,
        poll: Duration,
    ) -> Result<Permit<'_>, AcquireError> {
        let mut state = self.state.lock().expect("admission lock");
        if state.inflight < self.max_inflight {
            state.inflight += 1;
            return Ok(Permit { gate: self });
        }
        if state.queued >= self.max_queued {
            return Err(AcquireError::Overloaded(Overloaded {
                max_inflight: self.max_inflight,
                max_queued: self.max_queued,
            }));
        }
        state.queued += 1;
        while state.inflight >= self.max_inflight {
            let (s, _timed_out) = self
                .freed
                .wait_timeout(state, poll)
                .expect("admission wait");
            state = s;
            if state.inflight < self.max_inflight {
                break;
            }
            // Check liveness outside the lock: the probe peeks a socket,
            // and a wedged peek must never stall every other waiter.
            drop(state);
            let gone = abandoned();
            state = self.state.lock().expect("admission lock");
            if gone {
                state.queued -= 1;
                drop(state);
                // The wait may have consumed a wakeup meant for a live
                // waiter; pass it on.
                self.freed.notify_one();
                return Err(AcquireError::Abandoned);
            }
        }
        state.queued -= 1;
        state.inflight += 1;
        Ok(Permit { gate: self })
    }

    /// Current (inflight, queued) counts — for `STATS`.
    pub fn load(&self) -> (usize, usize) {
        let state = self.state.lock().expect("admission lock");
        (state.inflight, state.queued)
    }

    /// The configured caps.
    pub fn caps(&self) -> (usize, usize) {
        (self.max_inflight, self.max_queued)
    }
}

/// An admitted query slot; releasing is dropping.
pub struct Permit<'a> {
    gate: &'a Admission,
}

impl std::fmt::Debug for Permit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (inflight, queued) = self.gate.load();
        f.debug_struct("Permit")
            .field("inflight", &inflight)
            .field("queued", &queued)
            .finish()
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().expect("admission lock");
        state.inflight -= 1;
        drop(state);
        self.gate.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admits_up_to_the_cap_then_rejects_past_the_queue() {
        let gate = Admission::new(2, 0);
        let a = gate.acquire().unwrap();
        let _b = gate.acquire().unwrap();
        assert_eq!(gate.load(), (2, 0));
        // Queue of zero: the third acquisition rejects immediately.
        let err = gate.acquire().unwrap_err();
        assert_eq!((err.max_inflight, err.max_queued), (2, 0));
        assert!(err.to_string().contains("overloaded"));
        drop(a);
        let _c = gate.acquire().unwrap();
        assert_eq!(gate.load(), (2, 0));
    }

    #[test]
    fn queued_acquisitions_block_until_a_permit_frees() {
        let gate = Arc::new(Admission::new(1, 4));
        let first = gate.acquire().unwrap();
        let mut waiters = Vec::new();
        for _ in 0..4 {
            let gate = Arc::clone(&gate);
            waiters.push(std::thread::spawn(move || {
                let permit = gate.acquire();
                assert!(permit.is_ok());
            }));
        }
        // Wait until all four are parked in the queue, then a fifth rejects.
        for _ in 0..400 {
            if gate.load().1 == 4 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(gate.load(), (1, 4));
        assert!(gate.acquire().is_err());
        drop(first);
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(gate.load(), (0, 0));
    }

    #[test]
    fn abandoned_waiters_release_their_queue_entry_promptly() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::time::Instant;

        let gate = Arc::new(Admission::new(1, 1));
        // Wedge the only solve slot so watched waiters genuinely queue.
        let wedge = gate.acquire().unwrap();
        let hung_up = Arc::new(AtomicBool::new(false));
        let (g, flag) = (Arc::clone(&gate), Arc::clone(&hung_up));
        let waiter = std::thread::spawn(move || {
            g.acquire_watched(&|| flag.load(Ordering::Relaxed), Duration::from_millis(2))
                .err()
        });
        for _ in 0..400 {
            if gate.load().1 == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(gate.load(), (1, 1), "waiter parked in the queue");

        // With the slot wedged AND the queue full, further acquisitions of
        // both flavors reject promptly — overload never degrades to a hang.
        let start = Instant::now();
        assert!(gate.acquire().is_err());
        assert!(matches!(
            gate.acquire_watched(&|| false, Duration::from_millis(2)),
            Err(AcquireError::Overloaded(_))
        ));
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "overload rejection must not wait on the wedged slot"
        );

        // The queued client hangs up: its queue entry must come back even
        // though no permit ever freed.
        hung_up.store(true, Ordering::Relaxed);
        assert_eq!(waiter.join().unwrap(), Some(AcquireError::Abandoned));
        assert_eq!(gate.load(), (1, 0), "queue entry released, no slot leaked");

        // And the slot itself was never consumed by the abandoned waiter.
        drop(wedge);
        let p = gate.acquire().unwrap();
        drop(p);
        assert_eq!(gate.load(), (0, 0));
    }

    #[test]
    fn watched_acquisition_proceeds_for_live_clients() {
        let gate = Arc::new(Admission::new(1, 2));
        let first = gate.acquire().unwrap();
        let g = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || {
            g.acquire_watched(&|| false, Duration::from_millis(2))
                .is_ok()
        });
        for _ in 0..400 {
            if gate.load().1 == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(first);
        assert!(waiter.join().unwrap(), "live waiter gets the freed permit");
        assert_eq!(gate.load(), (0, 0));
    }

    #[test]
    fn zero_inflight_clamps_to_one() {
        let gate = Admission::new(0, 0);
        assert_eq!(gate.caps(), (1, 0));
        let _p = gate.acquire().unwrap();
        assert!(gate.acquire().is_err());
    }
}

//! Admission control: bounded in-flight queries with a bounded wait queue.
//!
//! Every `QUERY` acquires a [`Permit`] before solving. At most
//! `max_inflight` permits are out at once; up to `max_queued` further
//! acquisitions block until a permit frees; beyond that, acquisition fails
//! **immediately** with [`Overloaded`] — the caller turns that into a
//! well-formed wire rejection rather than letting clients hang on an
//! unbounded queue. Built on `std::sync`'s `Mutex`/`Condvar` (the vendored
//! `parking_lot` stand-in has no condition variables).

use std::sync::{Condvar, Mutex};

/// Returned when both the in-flight slots and the wait queue are full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Overloaded {
    /// Configured in-flight cap.
    pub max_inflight: usize,
    /// Configured queue cap.
    pub max_queued: usize,
}

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "server overloaded: {} queries in flight and {} queued",
            self.max_inflight, self.max_queued
        )
    }
}

struct State {
    inflight: usize,
    queued: usize,
}

/// The admission gate. Shared by every connection of one server.
pub struct Admission {
    state: Mutex<State>,
    freed: Condvar,
    max_inflight: usize,
    max_queued: usize,
}

impl Admission {
    /// A gate with the given caps. `max_inflight` is clamped to ≥ 1 (a gate
    /// that can never admit would deadlock every client).
    pub fn new(max_inflight: usize, max_queued: usize) -> Self {
        Admission {
            state: Mutex::new(State {
                inflight: 0,
                queued: 0,
            }),
            freed: Condvar::new(),
            max_inflight: max_inflight.max(1),
            max_queued,
        }
    }

    /// Acquire a permit: immediate when a slot is free, blocking while the
    /// queue has room, `Err(Overloaded)` when both are full.
    pub fn acquire(&self) -> Result<Permit<'_>, Overloaded> {
        let mut state = self.state.lock().expect("admission lock");
        if state.inflight < self.max_inflight {
            state.inflight += 1;
            return Ok(Permit { gate: self });
        }
        if state.queued >= self.max_queued {
            return Err(Overloaded {
                max_inflight: self.max_inflight,
                max_queued: self.max_queued,
            });
        }
        state.queued += 1;
        while state.inflight >= self.max_inflight {
            state = self.freed.wait(state).expect("admission wait");
        }
        state.queued -= 1;
        state.inflight += 1;
        Ok(Permit { gate: self })
    }

    /// Current (inflight, queued) counts — for `STATS`.
    pub fn load(&self) -> (usize, usize) {
        let state = self.state.lock().expect("admission lock");
        (state.inflight, state.queued)
    }

    /// The configured caps.
    pub fn caps(&self) -> (usize, usize) {
        (self.max_inflight, self.max_queued)
    }
}

/// An admitted query slot; releasing is dropping.
pub struct Permit<'a> {
    gate: &'a Admission,
}

impl std::fmt::Debug for Permit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (inflight, queued) = self.gate.load();
        f.debug_struct("Permit")
            .field("inflight", &inflight)
            .field("queued", &queued)
            .finish()
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().expect("admission lock");
        state.inflight -= 1;
        drop(state);
        self.gate.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admits_up_to_the_cap_then_rejects_past_the_queue() {
        let gate = Admission::new(2, 0);
        let a = gate.acquire().unwrap();
        let _b = gate.acquire().unwrap();
        assert_eq!(gate.load(), (2, 0));
        // Queue of zero: the third acquisition rejects immediately.
        let err = gate.acquire().unwrap_err();
        assert_eq!((err.max_inflight, err.max_queued), (2, 0));
        assert!(err.to_string().contains("overloaded"));
        drop(a);
        let _c = gate.acquire().unwrap();
        assert_eq!(gate.load(), (2, 0));
    }

    #[test]
    fn queued_acquisitions_block_until_a_permit_frees() {
        let gate = Arc::new(Admission::new(1, 4));
        let first = gate.acquire().unwrap();
        let mut waiters = Vec::new();
        for _ in 0..4 {
            let gate = Arc::clone(&gate);
            waiters.push(std::thread::spawn(move || {
                let permit = gate.acquire();
                assert!(permit.is_ok());
            }));
        }
        // Wait until all four are parked in the queue, then a fifth rejects.
        for _ in 0..400 {
            if gate.load().1 == 4 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(gate.load(), (1, 4));
        assert!(gate.acquire().is_err());
        drop(first);
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(gate.load(), (0, 0));
    }

    #[test]
    fn zero_inflight_clamps_to_one() {
        let gate = Admission::new(0, 0);
        assert_eq!(gate.caps(), (1, 0));
        let _p = gate.acquire().unwrap();
        assert!(gate.acquire().is_err());
    }
}

//! Parse, validate and compile scenario sources into warm [`Solver`]s.
//!
//! This is the front half of `gdlog run`, factored out so the CLI and the
//! resident server load programs identically: every validation error is
//! rendered as a caret diagnostic at its precise locus, span-ordered, and a
//! successful load carries the parsed program plus its per-rule spans so
//! later pipeline errors (e.g. stratification) can be rendered with carets
//! too.

use gdlog_core::api::Solver;
use gdlog_core::{CoreError, Executor, Program, RuleLocus};
use gdlog_data::Database;
use gdlog_parser::ast::RuleSpans;
use gdlog_parser::{parse_source, ParseError};
use std::sync::Arc;

/// A parsed and validated scenario, ready to compile or to render errors
/// against.
#[derive(Debug)]
pub struct Loaded {
    /// The validated program.
    pub program: Program,
    /// Its ground facts.
    pub facts: Database,
    /// Per-rule literal spans, for caret diagnostics.
    pub spans: Vec<RuleSpans>,
}

/// Parse and validate a scenario source, rendering **every** validation
/// error as a caret diagnostic at its precise locus (offending variable,
/// literal or head argument), span-ordered. `path` labels the diagnostics.
pub fn load_source(path: &str, source: &str) -> Result<Loaded, String> {
    let parsed = parse_source(source).map_err(|e| e.render(path, source))?;
    let (program, facts, spans) = parsed.into_spanned_parts();
    let issues = program.validate_all();
    if !issues.is_empty() {
        let mut diagnostics: Vec<(usize, usize, String)> = issues
            .into_iter()
            .map(|issue| {
                let span = spans
                    .get(issue.rule)
                    .map(|rs| rs.locus_span(&issue.locus))
                    .unwrap_or_default();
                (
                    if span.line == 0 {
                        usize::MAX
                    } else {
                        span.line
                    },
                    span.column,
                    ParseError {
                        message: issue.error.to_string(),
                        line: span.line,
                        column: span.column,
                    }
                    .render(path, source),
                )
            })
            .collect();
        diagnostics.sort();
        return Err(diagnostics
            .into_iter()
            .map(|(_, _, rendered)| rendered)
            .collect::<Vec<_>>()
            .join(""));
    }
    Ok(Loaded {
        program,
        facts,
        spans,
    })
}

/// Render a core error against the loaded source; stratification failures
/// point a caret at the offending negative literal (head `to`, `from` in the
/// negative body). Everything else renders as a plain `error:` line.
pub fn render_core_error(e: &CoreError, path: &str, source: &str, loaded: &Loaded) -> String {
    if let CoreError::NotStratified(ns) = e {
        let offending = loaded
            .program
            .rules()
            .iter()
            .enumerate()
            .find_map(|(i, r)| {
                if r.head.predicate != ns.to {
                    return None;
                }
                r.neg
                    .iter()
                    .position(|a| a.predicate == ns.from)
                    .map(|neg_index| (i, neg_index))
            });
        if let Some((index, neg_index)) = offending {
            let span = loaded
                .spans
                .get(index)
                .map(|rs| rs.locus_span(&RuleLocus::Neg(neg_index)))
                .unwrap_or_default();
            let error = ParseError {
                message: e.to_string(),
                line: span.line,
                column: span.column,
            };
            return error.render(path, source);
        }
    }
    format!("error: {e}\n")
}

/// Load and compile a scenario source into a warm [`Solver`] labelled
/// `label` (the label appears verbatim in every response's `source` field).
/// Errors come back fully rendered, diagnostics included.
pub fn compile_source(
    label: &str,
    source: &str,
    executor: Arc<Executor>,
) -> Result<(Arc<Solver>, Loaded), String> {
    let loaded = load_source(label, source)?;
    let solver = Solver::compile(label, &loaded.program, &loaded.facts, executor)
        .map_err(|e| render_core_error(&e, label, source, &loaded))?;
    Ok((Arc::new(solver), loaded))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_and_compiles_a_valid_scenario() {
        let source = "-> Coin(Flip<0.5>).\nCoin(0) -> false.\n";
        let (solver, loaded) =
            compile_source("coin.gdl", source, Arc::new(Executor::sequential())).unwrap();
        assert_eq!(
            loaded.program.len(),
            3,
            "constraint desugars to extra rules"
        );
        assert_eq!(solver.source(), "coin.gdl");
    }

    #[test]
    fn diagnostics_are_rendered_with_carets() {
        let err = load_source("bad.gdl", "A(x) -> B(x)\n").unwrap_err();
        assert!(err.starts_with("error: "), "{err}");
        assert!(err.contains("-->"), "{err}");
        assert!(err.contains('^'), "{err}");

        // Validation errors (unsafe head variable) render with carets too.
        let err = load_source("unsafe.gdl", "A(x) -> B(y).\n").unwrap_err();
        assert!(err.contains('^'), "{err}");
    }
}

//! The shared run/query flag grammar.
//!
//! `gdlog run <file> [flags]` on the command line and `QUERY <label>` over
//! the wire accept the **same** flag list, parsed here into [`QueryFlags`]
//! and lowered to a [`QueryRequest`] — so a scenario replayed against a
//! running server takes exactly the flags of its `%! args:` directive, and
//! the two front-ends cannot drift. The CLI layers its file-path positional
//! and output-format concerns on top; the server passes each body line of a
//! `QUERY` frame as one argument.

use gdlog_core::api::{McRequest, QueryRequest, SolveStrategy};
use gdlog_core::{ChaseBudget, GrounderChoice, TriggerOrder};
use gdlog_data::GroundAtom;
use gdlog_engine::StableModelLimits;
use gdlog_parser::parse_database;

/// Every flag `gdlog run` and the wire `QUERY` command accept, parsed but
/// not yet lowered (atoms still in surface syntax).
#[derive(Clone, Debug, PartialEq)]
pub struct QueryFlags {
    /// Emit the machine-readable JSON report (`--json`; CLI-only concern —
    /// wire responses are always JSON).
    pub json: bool,
    /// Solve strategy (`--strategy flat|factored|auto`; `--factored` is the
    /// historical alias of `--strategy factored`).
    pub strategy: SolveStrategy,
    /// Grounder selection (`--grounder simple|perfect|auto`).
    pub grounder: GrounderChoice,
    /// Worker threads (`--threads N`); `None` defers to `GDLOG_THREADS`.
    /// CLI-only: the server runs every query on its shared executor.
    pub threads: Option<usize>,
    /// Trigger exploration order (`--trigger-order first|last|scrambled`).
    pub trigger_order: TriggerOrder,
    /// Chase budget: maximum outcomes to enumerate.
    pub max_outcomes: Option<usize>,
    /// Chase budget: maximum Δ-depth per path.
    pub max_depth: Option<usize>,
    /// Chase budget: maximum branching per Δ-term.
    pub max_branching: Option<usize>,
    /// Chase budget: drop paths below this probability.
    pub min_path_prob: Option<f64>,
    /// Stable-model search: cap on returned models.
    pub max_models: Option<usize>,
    /// Stable-model search: cap on branching atoms per component.
    pub max_branch_atoms: Option<usize>,
    /// Ground atoms to query (brave and cautious probability each).
    pub queries: Vec<String>,
    /// Condition every query on this ground atom.
    pub given: Option<String>,
    /// Predicates to report full marginals for.
    pub marginals: Vec<String>,
    /// Report the top-K events by probability mass.
    pub top: Option<usize>,
    /// Monte-Carlo sample count (estimates each `--query` by sampling).
    pub mc: Option<usize>,
    /// Monte-Carlo seed.
    pub seed: u64,
    /// Monte-Carlo per-walk trigger budget.
    pub max_triggers: usize,
    /// Per-query deadline in milliseconds (`--timeout-ms`); the query
    /// degrades gracefully or returns a typed `deadline-exceeded` error.
    pub timeout_ms: Option<u64>,
}

impl Default for QueryFlags {
    fn default() -> Self {
        QueryFlags {
            json: false,
            strategy: SolveStrategy::Flat,
            grounder: GrounderChoice::Simple,
            threads: None,
            trigger_order: TriggerOrder::First,
            max_outcomes: None,
            max_depth: None,
            max_branching: None,
            min_path_prob: None,
            max_models: None,
            max_branch_atoms: None,
            queries: Vec::new(),
            given: None,
            marginals: Vec::new(),
            top: None,
            mc: None,
            seed: 0,
            max_triggers: 64,
            timeout_ms: None,
        }
    }
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<&str>) -> Result<T, String> {
    let raw = value.ok_or_else(|| format!("flag `{flag}` expects a value"))?;
    raw.parse::<T>()
        .map_err(|_| format!("invalid value `{raw}` for flag `{flag}`"))
}

/// Parse an argument list into flags plus the non-flag positionals (the CLI
/// expects exactly one — the scenario path; the wire `QUERY` command expects
/// none). Unknown flags are errors, as on the command line.
pub fn parse_query_flags<S: AsRef<str>>(args: &[S]) -> Result<(QueryFlags, Vec<String>), String> {
    let mut flags = QueryFlags::default();
    let mut positionals = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_ref();
        if !a.starts_with("--") {
            positionals.push(a.to_owned());
            i += 1;
            continue;
        }
        let value = args.get(i + 1).map(|v| v.as_ref());
        match a {
            "--json" => {
                flags.json = true;
                i += 1;
            }
            "--factored" => {
                flags.strategy = SolveStrategy::Factored;
                i += 1;
            }
            "--strategy" => {
                flags.strategy = match value {
                    Some("flat") => SolveStrategy::Flat,
                    Some("factored") => SolveStrategy::Factored,
                    Some("auto") => SolveStrategy::Auto,
                    Some(other) => {
                        return Err(format!(
                            "invalid strategy `{other}` (expected flat, factored or auto)"
                        ))
                    }
                    None => return Err("flag `--strategy` expects a value".to_owned()),
                };
                i += 2;
            }
            "--grounder" => {
                flags.grounder = match value {
                    Some("simple") => GrounderChoice::Simple,
                    Some("perfect") => GrounderChoice::Perfect,
                    Some("auto") => GrounderChoice::Auto,
                    Some(other) => {
                        return Err(format!(
                            "invalid grounder `{other}` (expected simple, perfect or auto)"
                        ))
                    }
                    None => return Err("flag `--grounder` expects a value".to_owned()),
                };
                i += 2;
            }
            "--trigger-order" => {
                flags.trigger_order = match value {
                    Some("first") => TriggerOrder::First,
                    Some("last") => TriggerOrder::Last,
                    Some("scrambled") => TriggerOrder::Scrambled,
                    Some(other) => {
                        return Err(format!(
                            "invalid trigger order `{other}` (expected first, last or scrambled)"
                        ))
                    }
                    None => return Err("flag `--trigger-order` expects a value".to_owned()),
                };
                i += 2;
            }
            "--threads" => {
                flags.threads = Some(parse_value(a, value)?);
                i += 2;
            }
            "--max-outcomes" => {
                flags.max_outcomes = Some(parse_value(a, value)?);
                i += 2;
            }
            "--max-depth" => {
                flags.max_depth = Some(parse_value(a, value)?);
                i += 2;
            }
            "--max-branching" => {
                flags.max_branching = Some(parse_value(a, value)?);
                i += 2;
            }
            "--min-path-prob" => {
                flags.min_path_prob = Some(parse_value(a, value)?);
                i += 2;
            }
            "--max-models" => {
                flags.max_models = Some(parse_value(a, value)?);
                i += 2;
            }
            "--max-branch-atoms" => {
                flags.max_branch_atoms = Some(parse_value(a, value)?);
                i += 2;
            }
            "--query" => {
                flags.queries.push(
                    value
                        .ok_or("flag `--query` expects a ground atom")?
                        .to_owned(),
                );
                i += 2;
            }
            "--given" => {
                flags.given = Some(
                    value
                        .ok_or("flag `--given` expects a ground atom")?
                        .to_owned(),
                );
                i += 2;
            }
            "--marginal" => {
                flags.marginals.push(
                    value
                        .ok_or("flag `--marginal` expects a predicate name")?
                        .to_owned(),
                );
                i += 2;
            }
            "--top" => {
                flags.top = Some(parse_value(a, value)?);
                i += 2;
            }
            "--mc" => {
                flags.mc = Some(parse_value(a, value)?);
                i += 2;
            }
            "--seed" => {
                flags.seed = parse_value(a, value)?;
                i += 2;
            }
            "--max-triggers" => {
                flags.max_triggers = parse_value(a, value)?;
                i += 2;
            }
            "--timeout-ms" => {
                flags.timeout_ms = Some(parse_value(a, value)?);
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok((flags, positionals))
}

/// Parse a ground atom written in surface syntax (e.g. `Coin(1)`,
/// `SomeDimeTail`, `Likes(#alice, 2)`).
pub fn parse_ground_atom(text: &str) -> Result<GroundAtom, String> {
    let db = parse_database(&format!("{text}."))
        .map_err(|e| format!("invalid ground atom `{text}`: {}", e.message))?;
    let mut atoms = db.canonical_atoms();
    if atoms.len() != 1 {
        return Err(format!("invalid ground atom `{text}`"));
    }
    Ok(atoms.pop().expect("one atom"))
}

impl QueryFlags {
    /// The chase budget implied by the flags (defaults from
    /// [`ChaseBudget::default`]).
    pub fn budget(&self) -> ChaseBudget {
        let mut b = ChaseBudget::default();
        if let Some(v) = self.max_outcomes {
            b.max_outcomes = v;
        }
        if let Some(v) = self.max_depth {
            b.max_depth = v;
        }
        if let Some(v) = self.max_branching {
            b.max_branching = v;
        }
        if let Some(v) = self.min_path_prob {
            b.min_path_probability = v;
        }
        b
    }

    /// The stable-model limits implied by the flags.
    pub fn limits(&self) -> StableModelLimits {
        let mut l = StableModelLimits::default();
        if let Some(v) = self.max_models {
            l.max_models = v;
        }
        if let Some(v) = self.max_branch_atoms {
            l.max_branch_atoms = v;
        }
        l
    }

    /// Lower the flags to the unified [`QueryRequest`], parsing the atom
    /// arguments. Errors are bare messages (no `error: ` prefix), ready for
    /// either CLI rendering or a wire error body.
    pub fn to_request(&self) -> Result<QueryRequest, String> {
        let mut request = QueryRequest::new()
            .with_grounder(self.grounder)
            .with_strategy(self.strategy)
            .with_budget(self.budget())
            .with_order(self.trigger_order)
            .with_limits(self.limits());
        for q in &self.queries {
            request = request.query(parse_ground_atom(q)?);
        }
        if let Some(g) = &self.given {
            request = request.given(parse_ground_atom(g)?);
        }
        for m in &self.marginals {
            request = request.marginal(m.clone());
        }
        if let Some(k) = self.top {
            request = request.top(k);
        }
        if let Some(samples) = self.mc {
            request = request.monte_carlo(
                McRequest::samples(samples)
                    .with_seed(self.seed)
                    .with_max_triggers(self.max_triggers),
            );
        }
        if let Some(ms) = self.timeout_ms {
            request = request.with_timeout_ms(ms);
        }
        Ok(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(list: &[&str]) -> Result<(QueryFlags, Vec<String>), String> {
        parse_query_flags(list)
    }

    #[test]
    fn parses_the_full_flag_surface() {
        let (flags, positionals) = parse(&[
            "coin.gdl",
            "--json",
            "--strategy",
            "auto",
            "--grounder",
            "auto",
            "--trigger-order",
            "last",
            "--max-outcomes",
            "10",
            "--min-path-prob",
            "0.001",
            "--query",
            "Coin(1)",
            "--given",
            "Coin(1)",
            "--marginal",
            "Coin",
            "--top",
            "4",
            "--mc",
            "100",
            "--seed",
            "7",
            "--max-triggers",
            "32",
            "--timeout-ms",
            "2500",
        ])
        .unwrap();
        assert_eq!(positionals, vec!["coin.gdl".to_owned()]);
        assert!(flags.json);
        assert_eq!(flags.strategy, SolveStrategy::Auto);
        assert_eq!(flags.grounder, GrounderChoice::Auto);
        assert_eq!(flags.trigger_order, TriggerOrder::Last);
        assert_eq!(flags.budget().max_outcomes, 10);
        assert!((flags.budget().min_path_probability - 0.001).abs() < 1e-12);
        let request = flags.to_request().unwrap();
        assert_eq!(request.queries.len(), 1);
        assert!(request.given.is_some());
        assert_eq!(request.marginals, vec!["Coin".to_owned()]);
        assert_eq!(request.top, Some(4));
        let mc = request.mc.unwrap();
        assert_eq!((mc.samples, mc.seed, mc.max_triggers), (100, 7, 32));
        assert_eq!(request.timeout_ms, Some(2500));
    }

    #[test]
    fn factored_is_an_alias_for_strategy_factored() {
        let (a, _) = parse(&["--factored"]).unwrap();
        let (b, _) = parse(&["--strategy", "factored"]).unwrap();
        assert_eq!(a.strategy, SolveStrategy::Factored);
        assert_eq!(a.strategy, b.strategy);
    }

    #[test]
    fn errors_are_bare_messages() {
        assert_eq!(
            parse(&["--strategy", "quantum"]).unwrap_err(),
            "invalid strategy `quantum` (expected flat, factored or auto)"
        );
        assert!(parse(&["--top"]).unwrap_err().contains("expects a value"));
        assert!(parse(&["--frobnicate"])
            .unwrap_err()
            .contains("unknown flag"));
        let (flags, _) = parse(&["--query", "lower(1)"]).unwrap();
        assert!(flags
            .to_request()
            .unwrap_err()
            .contains("invalid ground atom `lower(1)`"));
    }

    #[test]
    fn atoms_with_spaces_parse() {
        let atom = parse_ground_atom("Likes(#alice, 2)").unwrap();
        // Symbol display drops the `#` sigil of the surface syntax.
        assert_eq!(atom.to_string(), "Likes(alice, 2)");
    }
}

//! Sessions, the compiled-program cache, and query dispatch.
//!
//! A **session** binds a label to a warm [`Solver`] on one connection. The
//! [`SessionManager`] multiplexes every connection's sessions onto one
//! shared executor and one global **compiled-program cache** keyed by
//! `(label, source text)` — the label is part of the key because it appears
//! verbatim in response bytes (`source` field), and the source text keeps
//! two programs opened under the same label from cross-contaminating each
//! other's caches. Opening a scenario a second time (any connection) reuses
//! the compiled solver and everything it has already solved; `RESET` drops
//! the cache for cold-path measurements.

use crate::admission::{AcquireError, Admission, Overloaded};
use crate::compile::compile_source;
use crate::flags::parse_query_flags;
use gdlog_core::api::{Json, Solver};
use gdlog_core::{CoreError, Executor};
use netline::ConnProbe;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Machine-readable error codes of the wire protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The command or its arguments were malformed.
    BadRequest,
    /// `QUERY`/`CLOSE` named a label with no open session on the connection.
    NoSession,
    /// The program failed to compile (body carries rendered diagnostics).
    CompileFailed,
    /// The solve or answer assembly failed (body carries the rendered error).
    QueryFailed,
    /// Admission control rejected the query; retry later.
    Overloaded,
    /// The query hit its deadline in a phase that is exact-or-nothing (a
    /// gracefully-degradable phase returns an `OK` response marked
    /// `interrupted` instead).
    DeadlineExceeded,
    /// The query worker panicked; the connection is torn down after this
    /// response, but the server keeps serving.
    Internal,
}

impl ErrorCode {
    /// The wire token of the code.
    pub fn token(&self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::NoSession => "no-session",
            ErrorCode::CompileFailed => "compile-failed",
            ErrorCode::QueryFailed => "query-failed",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::Internal => "internal-error",
        }
    }
}

/// A typed protocol error: a code plus a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeError {
    /// The machine-readable code.
    pub code: ErrorCode,
    /// The rendered message (may span lines for caret diagnostics).
    pub message: String,
}

impl ServeError {
    fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ServeError {
            code,
            message: message.into(),
        }
    }

    /// The JSON error body: `{"error": <code>, "message": <message>}`.
    pub fn body(&self) -> String {
        Json::obj([
            ("error", Json::str(self.code.token())),
            ("message", Json::str(&self.message)),
        ])
        .render()
    }
}

impl From<Overloaded> for ServeError {
    fn from(o: Overloaded) -> Self {
        ServeError::new(ErrorCode::Overloaded, o.to_string())
    }
}

/// What `OPEN` reports about a session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpenInfo {
    /// Program rules (after constraint desugaring).
    pub rules: usize,
    /// Ground facts.
    pub facts: usize,
    /// Did the compiled-program cache already hold this `(label, source)`?
    pub cached: bool,
}

impl OpenInfo {
    /// The JSON body of a successful `OPEN`.
    pub fn body(&self, label: &str) -> String {
        Json::obj([
            ("label", Json::str(label)),
            ("rules", Json::Int(self.rules as i128)),
            ("facts", Json::Int(self.facts as i128)),
            ("cached", Json::Bool(self.cached)),
        ])
        .render()
    }
}

#[derive(Default)]
struct Counters {
    opens: AtomicUsize,
    compile_hits: AtomicUsize,
    compile_misses: AtomicUsize,
    queries: AtomicUsize,
    rejected: AtomicUsize,
    abandoned: AtomicUsize,
}

/// How often a queued query re-checks whether its peer is still connected.
const ABANDON_POLL: Duration = Duration::from_millis(10);

/// The resident state of one server: shared executor, admission gate,
/// compiled-program cache, and per-connection sessions.
pub struct SessionManager {
    executor: Arc<Executor>,
    admission: Admission,
    programs: Mutex<HashMap<(String, String), Arc<Solver>>>,
    sessions: Mutex<HashMap<u64, HashMap<String, Arc<Solver>>>>,
    probes: Mutex<HashMap<u64, Arc<ConnProbe>>>,
    default_timeout_ms: Option<u64>,
    counters: Counters,
}

impl SessionManager {
    /// A manager running queries on `executor`, admitting at most
    /// `max_inflight` concurrent solves with `max_queued` waiters.
    pub fn new(executor: Arc<Executor>, max_inflight: usize, max_queued: usize) -> Self {
        SessionManager {
            executor,
            admission: Admission::new(max_inflight, max_queued),
            programs: Mutex::new(HashMap::new()),
            sessions: Mutex::new(HashMap::new()),
            probes: Mutex::new(HashMap::new()),
            default_timeout_ms: None,
            counters: Counters::default(),
        }
    }

    /// Give every query without its own `--timeout-ms` this deadline (the
    /// server's `--timeout-ms` flag). `None` leaves queries unbounded.
    pub fn with_default_timeout_ms(mut self, timeout_ms: Option<u64>) -> Self {
        self.default_timeout_ms = timeout_ms;
        self
    }

    /// The admission gate (exposed so tests can pin permits
    /// deterministically instead of racing slow queries).
    pub fn admission(&self) -> &Admission {
        &self.admission
    }

    /// Register the connection's liveness probe (wired from
    /// [`netline::Handler::attached`]). Queued queries poll it so a peer
    /// that disconnects while waiting for a slot does not hold its queue
    /// entry to the bitter end.
    pub fn attach_probe(&self, conn: u64, probe: ConnProbe) {
        self.probes.lock().insert(conn, Arc::new(probe));
    }

    /// Open (or re-open) a session: compile `source` under `label` on
    /// `conn`, serving from the compiled-program cache when the same
    /// `(label, source)` was compiled before — by any connection.
    pub fn open(&self, conn: u64, label: &str, source: &str) -> Result<OpenInfo, ServeError> {
        self.counters.opens.fetch_add(1, Ordering::Relaxed);
        let key = (label.to_owned(), source.to_owned());
        let cached_solver = self.programs.lock().get(&key).cloned();
        let (solver, cached) = match cached_solver {
            Some(solver) => {
                self.counters.compile_hits.fetch_add(1, Ordering::Relaxed);
                (solver, true)
            }
            None => {
                // Compile outside the cache lock (compilation can be slow);
                // a racing open of the same program keeps the first insert.
                let (solver, _loaded) =
                    compile_source(label, source, Arc::clone(&self.executor))
                        .map_err(|rendered| ServeError::new(ErrorCode::CompileFailed, rendered))?;
                let mut programs = self.programs.lock();
                let solver = programs.entry(key).or_insert(solver).clone();
                self.counters.compile_misses.fetch_add(1, Ordering::Relaxed);
                (solver, false)
            }
        };
        let info = OpenInfo {
            rules: solver.rules(),
            facts: solver.facts(),
            cached,
        };
        self.sessions
            .lock()
            .entry(conn)
            .or_default()
            .insert(label.to_owned(), solver);
        Ok(info)
    }

    /// Answer one `QUERY`: parse the argument list (one argument per body
    /// line, same grammar as `gdlog run`), acquire an admission permit, and
    /// solve on the session's warm solver. The success body is the response
    /// JSON — byte-identical to `gdlog run --json` with the same flags.
    pub fn query(&self, conn: u64, label: &str, argv: &[String]) -> Result<String, ServeError> {
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        let solver = self
            .sessions
            .lock()
            .get(&conn)
            .and_then(|sessions| sessions.get(label))
            .cloned()
            .ok_or_else(|| {
                ServeError::new(
                    ErrorCode::NoSession,
                    format!("no open session `{label}` on this connection (send OPEN first)"),
                )
            })?;
        let (flags, positionals) =
            parse_query_flags(argv).map_err(|msg| ServeError::new(ErrorCode::BadRequest, msg))?;
        if let Some(extra) = positionals.first() {
            return Err(ServeError::new(
                ErrorCode::BadRequest,
                format!("unexpected argument `{extra}`"),
            ));
        }
        let mut request = flags
            .to_request()
            .map_err(|msg| ServeError::new(ErrorCode::BadRequest, msg))?;
        // A per-request `--timeout-ms` wins; otherwise the server's default
        // deadline (if any) applies. The solver arms the watchdog itself.
        request.timeout_ms = request.timeout_ms.or(self.default_timeout_ms);
        let probe = self.probes.lock().get(&conn).cloned();
        let admitted = match &probe {
            // Watched acquisition runs on the connection's own handler
            // thread, which is the one place netline documents the probe as
            // safe to poll (no reader is parked on the socket meanwhile).
            Some(probe) => self
                .admission
                .acquire_watched(&|| probe.is_closed(), ABANDON_POLL),
            None => self.admission.acquire().map_err(AcquireError::Overloaded),
        };
        let _permit = admitted.map_err(|e| match e {
            AcquireError::Overloaded(overloaded) => {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                ServeError::from(overloaded)
            }
            AcquireError::Abandoned => {
                // The peer is gone; this error body is undeliverable, but
                // returning promptly frees the queue entry and lets the
                // connection thread observe the hangup and clean up.
                self.counters.abandoned.fetch_add(1, Ordering::Relaxed);
                ServeError::new(
                    ErrorCode::QueryFailed,
                    "client disconnected while queued for admission",
                )
            }
        })?;
        let response = solver.query(&request).map_err(|e| match &e {
            // Exact-or-nothing phase hit the deadline: a typed, retryable
            // wire error. (Gracefully-degradable phases return Ok with the
            // response marked `interrupted` instead and flow through below.)
            CoreError::Interrupted(_) => {
                ServeError::new(ErrorCode::DeadlineExceeded, format!("error: {e}\n"))
            }
            _ => ServeError::new(ErrorCode::QueryFailed, format!("error: {e}\n")),
        })?;
        Ok(response.render_json())
    }

    /// Close a session. Returns whether it existed. The compiled program
    /// stays cached for future opens.
    pub fn close(&self, conn: u64, label: &str) -> bool {
        self.sessions
            .lock()
            .get_mut(&conn)
            .is_some_and(|sessions| sessions.remove(label).is_some())
    }

    /// Drop every session of a connection (connection closed).
    pub fn disconnect(&self, conn: u64) {
        self.sessions.lock().remove(&conn);
        self.probes.lock().remove(&conn);
    }

    /// Drop the compiled-program cache (cold-path measurements). Open
    /// sessions keep their solvers; new opens recompile. Returns the number
    /// of cached programs dropped.
    pub fn reset(&self) -> usize {
        let mut programs = self.programs.lock();
        let dropped = programs.len();
        programs.clear();
        dropped
    }

    /// The `STATS` body: cache and admission counters as deterministic-order
    /// JSON.
    pub fn stats_body(&self) -> String {
        let (inflight, queued) = self.admission.load();
        let (max_inflight, max_queued) = self.admission.caps();
        let open_sessions: usize = self.sessions.lock().values().map(|s| s.len()).sum();
        Json::obj([
            ("programs", Json::Int(self.programs.lock().len() as i128)),
            ("sessions", Json::Int(open_sessions as i128)),
            (
                "opens",
                Json::Int(self.counters.opens.load(Ordering::Relaxed) as i128),
            ),
            (
                "compile_hits",
                Json::Int(self.counters.compile_hits.load(Ordering::Relaxed) as i128),
            ),
            (
                "compile_misses",
                Json::Int(self.counters.compile_misses.load(Ordering::Relaxed) as i128),
            ),
            (
                "queries",
                Json::Int(self.counters.queries.load(Ordering::Relaxed) as i128),
            ),
            (
                "rejected",
                Json::Int(self.counters.rejected.load(Ordering::Relaxed) as i128),
            ),
            (
                "abandoned",
                Json::Int(self.counters.abandoned.load(Ordering::Relaxed) as i128),
            ),
            ("inflight", Json::Int(inflight as i128)),
            ("queued", Json::Int(queued as i128)),
            ("max_inflight", Json::Int(max_inflight as i128)),
            ("max_queued", Json::Int(max_queued as i128)),
        ])
        .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COIN: &str = "-> Coin(Flip<0.5>).\nCoin(0) -> false.\n";

    fn manager() -> SessionManager {
        SessionManager::new(Arc::new(Executor::sequential()), 2, 0)
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn open_query_close_round_trip() {
        let m = manager();
        let info = m.open(1, "coin.gdl", COIN).unwrap();
        assert_eq!((info.rules, info.facts, info.cached), (3, 0, false));
        assert!(info.body("coin.gdl").contains("\"cached\": false"));

        let body = m
            .query(1, "coin.gdl", &args(&["--query", "Coin(1)"]))
            .unwrap();
        assert!(body.contains("\"source\": \"coin.gdl\""), "{body}");
        assert!(body.contains("\"atom\": \"Coin(1)\""), "{body}");

        assert!(m.close(1, "coin.gdl"));
        assert!(!m.close(1, "coin.gdl"));
        let err = m.query(1, "coin.gdl", &args(&[])).unwrap_err();
        assert_eq!(err.code, ErrorCode::NoSession);
        assert!(err.body().contains("\"error\": \"no-session\""));
    }

    #[test]
    fn compiled_programs_are_shared_across_connections() {
        let m = manager();
        assert!(!m.open(1, "coin.gdl", COIN).unwrap().cached);
        assert!(m.open(2, "coin.gdl", COIN).unwrap().cached);
        // Same label, different source: a distinct compilation.
        let other = "-> Coin(Flip<0.25>).\n";
        assert!(!m.open(2, "coin.gdl", other).unwrap().cached);
        assert!(m.stats_body().contains("\"compile_hits\": 1"));
        assert_eq!(m.reset(), 2);
        assert!(!m.open(1, "coin.gdl", COIN).unwrap().cached);
    }

    #[test]
    fn sessions_die_with_their_connection() {
        let m = manager();
        m.open(7, "coin.gdl", COIN).unwrap();
        m.disconnect(7);
        assert_eq!(
            m.query(7, "coin.gdl", &args(&[])).unwrap_err().code,
            ErrorCode::NoSession
        );
    }

    #[test]
    fn bad_flags_and_compile_errors_are_typed() {
        let m = manager();
        let err = m.open(1, "bad.gdl", "A(x) -> B(x)\n").unwrap_err();
        assert_eq!(err.code, ErrorCode::CompileFailed);
        assert!(
            err.message.contains('^'),
            "caret diagnostics: {}",
            err.message
        );

        m.open(1, "coin.gdl", COIN).unwrap();
        let err = m
            .query(1, "coin.gdl", &args(&["--frobnicate"]))
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        let err = m.query(1, "coin.gdl", &args(&["stray"])).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        // `--mc` without `--query` surfaces the core request error.
        let err = m.query(1, "coin.gdl", &args(&["--mc", "10"])).unwrap_err();
        assert_eq!(err.code, ErrorCode::QueryFailed);
        assert!(err.message.contains("--query"));
    }

    #[test]
    fn admission_rejection_is_a_typed_overload_error() {
        let m = SessionManager::new(Arc::new(Executor::sequential()), 1, 0);
        m.open(1, "coin.gdl", COIN).unwrap();
        // Pin the only permit so the next query rejects deterministically.
        let _pinned = m.admission().acquire().unwrap();
        let err = m.query(1, "coin.gdl", &args(&[])).unwrap_err();
        assert_eq!(err.code, ErrorCode::Overloaded);
        assert!(err.body().contains("\"error\": \"overloaded\""));
        assert!(m.stats_body().contains("\"rejected\": 1"));
        drop(_pinned);
        assert!(m.query(1, "coin.gdl", &args(&[])).is_ok());
    }

    #[test]
    fn warm_queries_are_byte_identical_to_cold() {
        let m = manager();
        m.open(1, "coin.gdl", COIN).unwrap();
        let argv = args(&["--query", "Coin(1)", "--top", "4"]);
        let cold = m.query(1, "coin.gdl", &argv).unwrap();
        let warm = m.query(1, "coin.gdl", &argv).unwrap();
        // A second session on the same cached program is warm too.
        m.open(2, "coin.gdl", COIN).unwrap();
        let other_conn = m.query(2, "coin.gdl", &argv).unwrap();
        assert_eq!(cold, warm);
        assert_eq!(cold, other_conn);
    }
}

//! Constants.
//!
//! The paper assumes a countably infinite set **C** of constants that are
//! "translatable into real numbers". [`Const`] keeps the concrete flavours we
//! need in practice — 64-bit integers, finite 64-bit floats, booleans and
//! interned symbols — together with a total order and a hash so constants can
//! be used as keys in databases and probability tables.

use crate::symbol::Symbol;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A constant of the universe **C**.
///
/// All constants are comparable and hashable. Floats are required to be
/// finite (`NaN` and infinities are rejected on construction), which makes
/// the ordering total.
#[derive(Clone, Copy, Debug)]
pub enum Const {
    /// A 64-bit signed integer. The paper's examples (`0`, `1`, router ids,
    /// die faces) are integers.
    Int(i64),
    /// A finite 64-bit float, used for numeric distribution parameters such
    /// as `0.1`.
    Real(f64),
    /// A boolean constant (`true` / `false`).
    Bool(bool),
    /// An interned symbolic constant (e.g. `"alice"`).
    Sym(Symbol),
}

impl Const {
    /// Construct a real constant, rejecting non-finite values.
    pub fn real(value: f64) -> Result<Self, crate::DataError> {
        if value.is_finite() {
            Ok(Const::Real(value))
        } else {
            Err(crate::DataError::NonFiniteReal(value))
        }
    }

    /// Construct a symbolic constant.
    pub fn sym(name: &str) -> Self {
        Const::Sym(Symbol::new(name))
    }

    /// The paper treats every constant as a real number; this is that
    /// translation. Symbols map to their interner index so the translation is
    /// injective per process.
    pub fn as_real(&self) -> f64 {
        match self {
            Const::Int(i) => *i as f64,
            Const::Real(r) => *r,
            Const::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Const::Sym(s) => s.index() as f64,
        }
    }

    /// Return the integer value if this constant is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Const::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Return the boolean value if this constant is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Const::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True if two constants denote the same number under [`Const::as_real`],
    /// even if their flavours differ (`Int(1)` vs `Real(1.0)` vs `Bool(true)`).
    pub fn numerically_equal(&self, other: &Const) -> bool {
        self.as_real() == other.as_real()
    }

    /// A discriminant used for cross-flavour ordering.
    fn flavour(&self) -> u8 {
        match self {
            Const::Bool(_) => 0,
            Const::Int(_) => 1,
            Const::Real(_) => 2,
            Const::Sym(_) => 3,
        }
    }
}

impl PartialEq for Const {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Const::Int(a), Const::Int(b)) => a == b,
            (Const::Real(a), Const::Real(b)) => a.to_bits() == b.to_bits(),
            (Const::Bool(a), Const::Bool(b)) => a == b,
            (Const::Sym(a), Const::Sym(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Const {}

impl Hash for Const {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.flavour().hash(state);
        match self {
            Const::Int(i) => i.hash(state),
            Const::Real(r) => r.to_bits().hash(state),
            Const::Bool(b) => b.hash(state),
            Const::Sym(s) => s.hash(state),
        }
    }
}

impl PartialOrd for Const {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Const {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Const::Int(a), Const::Int(b)) => a.cmp(b),
            (Const::Real(a), Const::Real(b)) => {
                // Finite floats: partial_cmp never fails.
                a.partial_cmp(b).unwrap_or(Ordering::Equal)
            }
            (Const::Bool(a), Const::Bool(b)) => a.cmp(b),
            (Const::Sym(a), Const::Sym(b)) => a.cmp(b),
            _ => self.flavour().cmp(&other.flavour()),
        }
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int(i) => write!(f, "{i}"),
            Const::Real(r) => {
                if r.fract() == 0.0 && r.abs() < 1e15 {
                    write!(f, "{r:.1}")
                } else {
                    write!(f, "{r}")
                }
            }
            Const::Bool(b) => write!(f, "{b}"),
            Const::Sym(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Const {
    fn from(v: i64) -> Self {
        Const::Int(v)
    }
}

impl From<i32> for Const {
    fn from(v: i32) -> Self {
        Const::Int(v as i64)
    }
}

impl From<usize> for Const {
    fn from(v: usize) -> Self {
        Const::Int(v as i64)
    }
}

impl From<bool> for Const {
    fn from(v: bool) -> Self {
        Const::Bool(v)
    }
}

impl From<Symbol> for Const {
    fn from(v: Symbol) -> Self {
        Const::Sym(v)
    }
}

impl From<&str> for Const {
    fn from(v: &str) -> Self {
        Const::sym(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn integer_constants_compare_numerically() {
        assert!(Const::Int(1) < Const::Int(2));
        assert_eq!(Const::Int(3), Const::from(3i64));
    }

    #[test]
    fn real_construction_rejects_non_finite() {
        assert!(Const::real(0.1).is_ok());
        assert!(Const::real(f64::NAN).is_err());
        assert!(Const::real(f64::INFINITY).is_err());
    }

    #[test]
    fn as_real_translation() {
        assert_eq!(Const::Int(7).as_real(), 7.0);
        assert_eq!(Const::Bool(true).as_real(), 1.0);
        assert_eq!(Const::Bool(false).as_real(), 0.0);
        assert_eq!(Const::real(2.5).unwrap().as_real(), 2.5);
    }

    #[test]
    fn numerically_equal_crosses_flavours() {
        assert!(Const::Int(1).numerically_equal(&Const::Bool(true)));
        assert!(Const::Int(0).numerically_equal(&Const::real(0.0).unwrap()));
        assert!(!Const::Int(1).numerically_equal(&Const::Int(2)));
    }

    #[test]
    fn constants_are_usable_as_hash_keys() {
        let mut set = HashSet::new();
        set.insert(Const::Int(1));
        set.insert(Const::Int(1));
        set.insert(Const::Bool(true));
        set.insert(Const::sym("a"));
        set.insert(Const::sym("a"));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn ordering_is_total_across_flavours() {
        let mut values = vec![
            Const::sym("b"),
            Const::Int(10),
            Const::Bool(false),
            Const::real(3.25).unwrap(),
            Const::Int(-2),
        ];
        values.sort();
        // sort() would panic on a broken Ord; additionally check idempotence.
        let again = {
            let mut v = values.clone();
            v.sort();
            v
        };
        assert_eq!(values, again);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Const::Int(5).to_string(), "5");
        assert_eq!(Const::Bool(true).to_string(), "true");
        assert_eq!(Const::real(0.5).unwrap().to_string(), "0.5");
        assert_eq!(Const::real(2.0).unwrap().to_string(), "2.0");
        assert_eq!(Const::sym("alice").to_string(), "alice");
    }

    #[test]
    fn conversions() {
        assert_eq!(Const::from(3usize), Const::Int(3));
        assert_eq!(Const::from(3i32), Const::Int(3));
        assert_eq!(Const::from("x"), Const::sym("x"));
        assert_eq!(Const::from(true), Const::Bool(true));
    }
}

//! # gdlog-data — relational substrate
//!
//! This crate provides the relational machinery required by the rest of the
//! `gdlog` workspace, mirroring Section 2 ("Relational Databases") of
//! *Generative Datalog with Stable Negation*:
//!
//! * [`Symbol`] / [`Interner`] — cheap interned identifiers for predicate and
//!   constant names,
//! * [`Const`] — constants (the paper assumes constants are translatable into
//!   real numbers; we additionally keep integers, booleans and symbols),
//! * [`Term`] — constants or variables,
//! * [`Predicate`] — relation names with an associated arity,
//! * [`Atom`], [`GroundAtom`], [`Literal`] — (possibly negated) relational
//!   atoms,
//! * [`Substitution`] — assignments of constants to variables, including the
//!   homomorphism-style matching used by the grounders of the paper,
//! * [`Database`] / instances — finite and growable sets of ground atoms with
//!   per-predicate indexes,
//! * [`Schema`] — finite sets of predicates.
//!
//! Everything is deliberately engine-agnostic: `gdlog-engine` layers the
//! stable-model machinery on top and `gdlog-core` layers the generative
//! (probabilistic) constructs on top of that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atom;
pub mod database;
pub mod error;
pub mod predicate;
pub mod relation;
pub mod schema;
pub mod substitution;
pub mod symbol;
pub mod term;
pub mod value;

pub use atom::{Atom, GroundAtom, GroundLiteral, Literal, Polarity};
pub use database::{Database, Instance};
pub use error::DataError;
pub use predicate::Predicate;
pub use relation::{Candidates, Relation};
pub use schema::Schema;
pub use substitution::{match_atoms, match_atoms_delta, match_atoms_indexed, Substitution};
pub use symbol::{Interner, Symbol};
pub use term::{Term, Var};
pub use value::Const;

#[cfg(test)]
mod send_sync_audit {
    //! The parallel chase shares snapshots of these types across worker
    //! threads; this module is the compile-time audit that they are (and
    //! stay) `Send + Sync`. `Symbol` resolution goes through the global
    //! `RwLock`ed interner; `Database`/`Relation` snapshots share frozen
    //! layers behind `Arc`s and mutate only their owned tails.
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn relational_substrate_is_send_and_sync() {
        assert_send_sync::<Symbol>();
        assert_send_sync::<Interner>();
        assert_send_sync::<Predicate>();
        assert_send_sync::<Const>();
        assert_send_sync::<Term>();
        assert_send_sync::<Atom>();
        assert_send_sync::<GroundAtom>();
        assert_send_sync::<Relation>();
        assert_send_sync::<Database>();
        assert_send_sync::<Substitution>();
        assert_send_sync::<Candidates<'static>>();
    }
}

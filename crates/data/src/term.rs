//! Terms: variables and constants.

use crate::symbol::Symbol;
use crate::value::Const;
use std::fmt;

/// A variable of the set **V**.
///
/// Variables are identified by an interned name. Within a rule, equality of
/// names means equality of variables (standard Datalog convention).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var(pub Symbol);

impl Var {
    /// Create a variable from its name.
    pub fn new(name: &str) -> Self {
        Var(Symbol::new(name))
    }

    /// The variable's name.
    pub fn name(&self) -> &'static str {
        self.0.as_str()
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

/// A term: either a constant of **C** or a variable of **V**.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A constant.
    Const(Const),
    /// A variable.
    Var(Var),
}

impl Term {
    /// Shorthand for a variable term.
    pub fn var(name: &str) -> Self {
        Term::Var(Var::new(name))
    }

    /// Shorthand for an integer constant term.
    pub fn int(value: i64) -> Self {
        Term::Const(Const::Int(value))
    }

    /// Shorthand for a symbolic constant term.
    pub fn sym(name: &str) -> Self {
        Term::Const(Const::sym(name))
    }

    /// Is this term a constant?
    pub fn is_ground(&self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// View the constant, if this term is ground.
    pub fn as_const(&self) -> Option<&Const> {
        match self {
            Term::Const(c) => Some(c),
            Term::Var(_) => None,
        }
    }

    /// View the variable, if this term is one.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(c) => write!(f, "{c}"),
            Term::Var(v) => write!(f, "{v}"),
        }
    }
}

impl From<Const> for Term {
    fn from(c: Const) -> Self {
        Term::Const(c)
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

impl From<i64> for Term {
    fn from(v: i64) -> Self {
        Term::Const(Const::Int(v))
    }
}

impl From<bool> for Term {
    fn from(v: bool) -> Self {
        Term::Const(Const::Bool(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variables_with_same_name_are_equal() {
        assert_eq!(Var::new("x"), Var::new("x"));
        assert_ne!(Var::new("x"), Var::new("y"));
        assert_eq!(Var::new("x").name(), "x");
    }

    #[test]
    fn groundness() {
        assert!(Term::int(3).is_ground());
        assert!(!Term::var("x").is_ground());
        assert_eq!(Term::int(3).as_const(), Some(&Const::Int(3)));
        assert_eq!(Term::var("x").as_const(), None);
        assert_eq!(Term::var("x").as_var(), Some(Var::new("x")));
        assert_eq!(Term::int(3).as_var(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Term::var("y").to_string(), "y");
        assert_eq!(Term::int(42).to_string(), "42");
        assert_eq!(Term::sym("alice").to_string(), "alice");
    }

    #[test]
    fn conversions() {
        let t: Term = Const::Int(1).into();
        assert_eq!(t, Term::int(1));
        let t: Term = Var::new("z").into();
        assert_eq!(t, Term::var("z"));
        let t: Term = 5i64.into();
        assert_eq!(t, Term::int(5));
        let t: Term = true.into();
        assert_eq!(t, Term::Const(Const::Bool(true)));
        let v: Var = "w".into();
        assert_eq!(v, Var::new("w"));
    }
}

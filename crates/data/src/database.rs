//! Databases and instances.
//!
//! A *database* of a schema **S** is a finite set of ground atoms over **S**
//! (§2 of the paper); an *instance* may be infinite in the paper but is, of
//! course, always finite in memory — [`Instance`] is simply a growable
//! database used for fixpoint computations.
//!
//! Storage is one [`Relation`] per predicate: each atom is kept exactly once
//! (the old layout cloned every atom into both a `HashSet` and a
//! per-predicate `Vec`, doubling resident memory), and every argument
//! position carries a hash index from constants to rows. The index powers
//! [`Database::candidates_bound`], the lookup the grounders use to join rule
//! bodies without scanning whole relations.

use crate::atom::{Atom, GroundAtom};
use crate::predicate::Predicate;
use crate::relation::{Candidates, Relation};
use crate::schema::Schema;
use crate::substitution::Substitution;
use crate::value::Const;
use std::collections::{hash_map, BTreeSet, HashMap};
use std::fmt;

/// A finite set of ground atoms stored as per-predicate indexed relations.
#[derive(Clone, Default, Debug)]
pub struct Database {
    relations: HashMap<Predicate, Relation>,
    len: usize,
}

/// An instance is a database that is conventionally used as the *output* of a
/// fixpoint computation; structurally the two are identical.
pub type Instance = Database;

impl Database {
    /// The empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a database from an iterator of ground atoms.
    pub fn from_atoms<I: IntoIterator<Item = GroundAtom>>(atoms: I) -> Self {
        let mut db = Database::new();
        for a in atoms {
            db.insert(a);
        }
        db
    }

    /// Insert a ground atom. Returns `true` if the atom was not already
    /// present.
    pub fn insert(&mut self, atom: GroundAtom) -> bool {
        let relation = self
            .relations
            .entry(atom.predicate)
            .or_insert_with(|| Relation::new(atom.predicate.arity()));
        if relation.insert(atom) {
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Insert the fact `name(args...)`.
    pub fn insert_fact<I, C>(&mut self, name: &str, args: I) -> bool
    where
        I: IntoIterator<Item = C>,
        C: Into<Const>,
    {
        let atom = GroundAtom::make(name, args.into_iter().map(Into::into).collect());
        self.insert(atom)
    }

    /// Does the database contain `atom`?
    pub fn contains(&self, atom: &GroundAtom) -> bool {
        self.relations
            .get(&atom.predicate)
            .is_some_and(|r| r.contains(atom))
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over all atoms (in unspecified order).
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            relations: self.relations.values(),
            current: [].iter(),
        }
    }

    /// The relation of a predicate, if any atoms of it are present.
    pub fn relation(&self, predicate: &Predicate) -> Option<&Relation> {
        self.relations.get(predicate)
    }

    /// Iterate over the atoms of a given predicate.
    pub fn atoms_of(&self, predicate: &Predicate) -> impl Iterator<Item = &GroundAtom> {
        self.relations.get(predicate).into_iter().flatten()
    }

    /// The candidate atoms an [`Atom`] pattern can match: the atoms of the
    /// pattern's predicate. Designed to plug into
    /// [`crate::substitution::match_atoms`]. Prefer
    /// [`Database::candidates_bound`] when a partial substitution is at hand.
    pub fn candidates(&self, pattern: &Atom) -> impl Iterator<Item = &GroundAtom> {
        self.atoms_of(&pattern.predicate)
    }

    /// The candidate atoms `pattern` can match given the bindings already
    /// made by `subst`: the per-position hash index is consulted for every
    /// argument that is a constant or a bound variable, and the smallest
    /// applicable posting list is returned (the whole relation when nothing
    /// is determined).
    pub fn candidates_bound<'a>(&'a self, pattern: &Atom, subst: &Substitution) -> Candidates<'a> {
        match self.relations.get(&pattern.predicate) {
            Some(relation) => relation.select(pattern, subst),
            None => Candidates::Empty,
        }
    }

    /// The predicates occurring in the database.
    pub fn predicates(&self) -> impl Iterator<Item = &Predicate> {
        self.relations.keys()
    }

    /// The schema induced by the database (all predicates occurring in it).
    pub fn schema(&self) -> Schema {
        Schema::from_predicates(self.relations.keys().copied())
    }

    /// The active domain: all constants occurring in the database
    /// (`dom(I)` in the paper).
    pub fn domain(&self) -> BTreeSet<Const> {
        self.iter().flat_map(|a| a.args.iter().copied()).collect()
    }

    /// Union with another database (set union of atoms).
    pub fn union(&self, other: &Database) -> Database {
        let mut out = self.clone();
        for a in other.iter() {
            out.insert(a.clone());
        }
        out
    }

    /// Set-difference: the atoms of `self` that are not in `other`.
    pub fn difference(&self, other: &Database) -> Database {
        Database::from_atoms(self.iter().filter(|a| !other.contains(a)).cloned())
    }

    /// Is `self` a subset of `other`?
    pub fn is_subset_of(&self, other: &Database) -> bool {
        self.iter().all(|a| other.contains(a))
    }

    /// A canonical, deterministic listing of the atoms (sorted), useful for
    /// hashing/keying sets of stable models.
    pub fn canonical_atoms(&self) -> Vec<GroundAtom> {
        let mut v: Vec<GroundAtom> = self.iter().cloned().collect();
        v.sort();
        v
    }
}

/// Iterator over all atoms of a [`Database`].
pub struct Iter<'a> {
    relations: hash_map::Values<'a, Predicate, Relation>,
    current: std::slice::Iter<'a, GroundAtom>,
}

impl<'a> Iterator for Iter<'a> {
    type Item = &'a GroundAtom;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(atom) = self.current.next() {
                return Some(atom);
            }
            self.current = self.relations.next()?.iter();
        }
    }
}

impl PartialEq for Database {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().all(|a| other.contains(a))
    }
}

impl Eq for Database {}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.canonical_atoms().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<GroundAtom> for Database {
    fn from_iter<I: IntoIterator<Item = GroundAtom>>(iter: I) -> Self {
        Database::from_atoms(iter)
    }
}

impl<'a> IntoIterator for &'a Database {
    type Item = &'a GroundAtom;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn router(i: i64) -> GroundAtom {
        GroundAtom::make("Router", vec![Const::Int(i)])
    }

    fn connected(i: i64, j: i64) -> GroundAtom {
        GroundAtom::make("Connected", vec![Const::Int(i), Const::Int(j)])
    }

    fn example_db() -> Database {
        // The database of Example 3.6: three routers, fully connected, the
        // first initially infected.
        let mut db = Database::new();
        for i in 1..=3i64 {
            db.insert(router(i));
        }
        for i in 1..=3i64 {
            for j in 1..=3i64 {
                if i != j {
                    db.insert(connected(i, j));
                }
            }
        }
        db.insert_fact("Infected", [Const::Int(1), Const::Int(1)]);
        db
    }

    #[test]
    fn insertion_and_membership() {
        let mut db = Database::new();
        assert!(db.is_empty());
        assert!(db.insert(router(1)));
        assert!(!db.insert(router(1)));
        assert!(db.contains(&router(1)));
        assert!(!db.contains(&router(2)));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn len_and_iteration_agree_with_duplicates_dropped() {
        // Regression for the old double-storage layout: each atom is stored
        // once, so `len()`, full iteration and the per-predicate sums must
        // all agree — also after duplicate insertions.
        let mut db = example_db();
        for a in example_db().canonical_atoms() {
            assert!(!db.insert(a), "re-inserting must report a duplicate");
        }
        assert_eq!(db.len(), 10);
        assert_eq!(db.iter().count(), db.len());
        let per_predicate: usize = db
            .predicates()
            .copied()
            .collect::<Vec<_>>()
            .iter()
            .map(|p| db.atoms_of(p).count())
            .sum();
        assert_eq!(per_predicate, db.len());
        assert_eq!(db.canonical_atoms().len(), db.len());
    }

    #[test]
    fn example_3_6_database_has_expected_size() {
        let db = example_db();
        // 3 routers + 6 connections + 1 infected fact.
        assert_eq!(db.len(), 10);
        assert_eq!(db.atoms_of(&Predicate::new("Connected", 2)).count(), 6);
        assert_eq!(db.atoms_of(&Predicate::new("Router", 1)).count(), 3);
    }

    #[test]
    fn domain_collects_all_constants() {
        let db = example_db();
        let dom = db.domain();
        assert!(dom.contains(&Const::Int(1)));
        assert!(dom.contains(&Const::Int(2)));
        assert!(dom.contains(&Const::Int(3)));
        assert_eq!(dom.len(), 3);
    }

    #[test]
    fn union_difference_subset() {
        let db = example_db();
        let small = Database::from_atoms(vec![router(1), router(2)]);
        assert!(small.is_subset_of(&db));
        assert!(!db.is_subset_of(&small));
        let u = small.union(&db);
        assert_eq!(u, db);
        let d = db.difference(&small);
        assert_eq!(d.len(), db.len() - 2);
        assert!(!d.contains(&router(1)));
    }

    #[test]
    fn candidates_are_indexed_by_predicate() {
        let db = example_db();
        let pattern = Atom::make("Connected", vec![Term::var("x"), Term::var("y")]);
        assert_eq!(db.candidates(&pattern).count(), 6);
        let pattern = Atom::make("Missing", vec![Term::var("x")]);
        assert_eq!(db.candidates(&pattern).count(), 0);
    }

    #[test]
    fn candidates_bound_consults_the_positional_index() {
        let db = example_db();
        let pattern = Atom::make("Connected", vec![Term::int(1), Term::var("y")]);
        let hits: Vec<_> = db
            .candidates_bound(&pattern, &Substitution::new())
            .collect();
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|a| a.args[0] == Const::Int(1)));

        // A bound variable narrows the same way.
        let pattern = Atom::make("Connected", vec![Term::var("x"), Term::var("y")]);
        let mut subst = Substitution::new();
        subst.bind(crate::term::Var::new("y"), Const::Int(3));
        assert_eq!(db.candidates_bound(&pattern, &subst).count(), 2);

        // Unknown predicate or absent constant: empty without scanning.
        let pattern = Atom::make("Missing", vec![Term::var("x")]);
        assert_eq!(
            db.candidates_bound(&pattern, &Substitution::new()).count(),
            0
        );
        let pattern = Atom::make("Connected", vec![Term::int(99), Term::var("y")]);
        assert_eq!(
            db.candidates_bound(&pattern, &Substitution::new()).count(),
            0
        );
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let a = Database::from_atoms(vec![router(1), router(2)]);
        let b = Database::from_atoms(vec![router(2), router(1)]);
        assert_eq!(a, b);
        // Differing contents with equal sizes are unequal.
        let c = Database::from_atoms(vec![router(1), router(3)]);
        assert_ne!(a, c);
    }

    #[test]
    fn canonical_atoms_are_sorted_and_stable() {
        let db = example_db();
        let c1 = db.canonical_atoms();
        let c2 = db.canonical_atoms();
        assert_eq!(c1, c2);
        assert_eq!(c1.len(), db.len());
        let mut sorted = c1.clone();
        sorted.sort();
        assert_eq!(c1, sorted);
    }

    #[test]
    fn schema_and_predicates() {
        let db = example_db();
        let schema = db.schema();
        assert!(schema.contains(&Predicate::new("Router", 1)));
        assert!(schema.contains(&Predicate::new("Connected", 2)));
        assert!(schema.contains(&Predicate::new("Infected", 2)));
        assert_eq!(db.predicates().count(), 3);
    }

    #[test]
    fn display_lists_atoms() {
        let db = Database::from_atoms(vec![router(1)]);
        assert_eq!(db.to_string(), "{Router(1)}");
    }

    #[test]
    fn from_iterator_collects() {
        let db: Database = vec![router(1), router(2)].into_iter().collect();
        assert_eq!(db.len(), 2);
        assert_eq!((&db).into_iter().count(), 2);
    }
}

//! Databases and instances.
//!
//! A *database* of a schema **S** is a finite set of ground atoms over **S**
//! (§2 of the paper); an *instance* may be infinite in the paper but is, of
//! course, always finite in memory — [`Instance`] is simply a growable
//! database used for fixpoint computations.
//!
//! Storage is one [`Relation`] per predicate: each atom is kept exactly once
//! (the old layout cloned every atom into both a `HashSet` and a
//! per-predicate `Vec`, doubling resident memory), and every argument
//! position carries a hash index from constants to rows. The index powers
//! [`Database::candidates_bound`], the lookup the grounders use to join rule
//! bodies without scanning whole relations.
//!
//! # Snapshots
//!
//! [`Database::snapshot`] freezes the current contents into an `Arc`-shared
//! immutable *base layer* and returns a new database that shares it; both the
//! original and the snapshot can keep growing independently, each in its own
//! mutable tail layer. This is what lets chase siblings share their parent's
//! head set structurally instead of deep-cloning it (see `ARCHITECTURE.md`).
//! All lookups (`contains`, `candidates_bound`, iteration) see the union of
//! every layer; an atom is stored in exactly one layer. Long chains are
//! flattened transparently so lookup cost stays bounded.

use crate::atom::{Atom, GroundAtom};
use crate::predicate::Predicate;
use crate::relation::{Candidates, Relation};
use crate::schema::Schema;
use crate::substitution::Substitution;
use crate::value::Const;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// Snapshot chains longer than this are flattened into a single layer on the
/// next [`Database::snapshot`] call, bounding per-lookup layer walks while
/// keeping the amortized snapshot cost O(tail).
const MAX_SNAPSHOT_DEPTH: usize = 16;

/// A finite set of ground atoms stored as per-predicate indexed relations,
/// with O(1) structural-sharing snapshots.
#[derive(Clone, Default, Debug)]
pub struct Database {
    /// Frozen shared prefix (itself possibly layered), never mutated again.
    base: Option<Arc<Database>>,
    /// Number of frozen layers below this one.
    depth: usize,
    /// The mutable tail layer: atoms inserted since the last snapshot.
    relations: HashMap<Predicate, Relation>,
    /// Total number of atoms across all layers.
    len: usize,
}

/// An instance is a database that is conventionally used as the *output* of a
/// fixpoint computation; structurally the two are identical.
pub type Instance = Database;

impl Database {
    /// The empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a database from an iterator of ground atoms.
    pub fn from_atoms<I: IntoIterator<Item = GroundAtom>>(atoms: I) -> Self {
        let mut db = Database::new();
        for a in atoms {
            db.insert(a);
        }
        db
    }

    /// Insert a ground atom. Returns `true` if the atom was not already
    /// present (in any snapshot layer).
    pub fn insert(&mut self, atom: GroundAtom) -> bool {
        if let Some(base) = &self.base {
            if base.contains(&atom) {
                return false;
            }
        }
        let relation = self
            .relations
            .entry(atom.predicate)
            .or_insert_with(|| Relation::new(atom.predicate.arity()));
        if relation.insert(atom) {
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Freeze the current contents into an immutable shared base layer and
    /// return a new database sharing it. O(1) apart from amortized
    /// flattening: no atom is copied; both `self` and the returned snapshot
    /// keep growing independently in fresh tail layers.
    pub fn snapshot(&mut self) -> Database {
        // Flatten *before* freezing: the collapsed layer is then frozen and
        // shared like any other, so the returned snapshot always has the
        // full contents behind its base pointer.
        if self.depth >= MAX_SNAPSHOT_DEPTH {
            self.flatten();
        }
        if !self.relations.is_empty() {
            let frozen = Database {
                base: self.base.take(),
                depth: self.depth,
                relations: std::mem::take(&mut self.relations),
                len: self.len,
            };
            self.depth += 1;
            self.base = Some(Arc::new(frozen));
        }
        Database {
            base: self.base.clone(),
            depth: self.depth,
            relations: HashMap::new(),
            len: self.len,
        }
    }

    /// Collapse all snapshot layers into a single owned layer (invalidates no
    /// snapshot: they keep their own view of the shared prefix).
    fn flatten(&mut self) {
        let atoms: Vec<GroundAtom> = self.iter().cloned().collect();
        *self = Database::from_atoms(atoms);
    }

    /// Number of snapshot layers below the mutable tail (0 for a database
    /// that was never snapshot).
    pub fn snapshot_depth(&self) -> usize {
        self.depth
    }

    /// Insert the fact `name(args...)`.
    pub fn insert_fact<I, C>(&mut self, name: &str, args: I) -> bool
    where
        I: IntoIterator<Item = C>,
        C: Into<Const>,
    {
        let atom = GroundAtom::make(name, args.into_iter().map(Into::into).collect());
        self.insert(atom)
    }

    /// All snapshot layers, newest first (the mutable tail layer included).
    fn layers(&self) -> impl Iterator<Item = &Database> {
        std::iter::successors(Some(self), |layer| layer.base.as_deref())
    }

    /// Does the database contain `atom` (in any snapshot layer)?
    pub fn contains(&self, atom: &GroundAtom) -> bool {
        self.layers().any(|layer| {
            layer
                .relations
                .get(&atom.predicate)
                .is_some_and(|r| r.contains(atom))
        })
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over all atoms (in unspecified order), across all snapshot
    /// layers.
    pub fn iter(&self) -> Iter<'_> {
        // Newest base layer first in the vec; `Iter` pops from the back, so
        // older layers drain before newer ones (after the mutable tail).
        Iter {
            layers: self.layers().skip(1).collect(),
            relations: self.relations.values(),
            current: [].iter(),
        }
    }

    /// Iterate over the atoms of a given predicate, across all snapshot
    /// layers.
    pub fn atoms_of(&self, predicate: &Predicate) -> impl Iterator<Item = &GroundAtom> {
        let layers: Vec<&Database> = self.layers().collect();
        let predicate = *predicate;
        layers
            .into_iter()
            .rev()
            .flat_map(move |l| l.relations.get(&predicate).into_iter().flatten())
    }

    /// The candidate atoms an [`Atom`] pattern can match: the atoms of the
    /// pattern's predicate. Designed to plug into
    /// [`crate::substitution::match_atoms`]. Prefer
    /// [`Database::candidates_bound`] when a partial substitution is at hand.
    pub fn candidates(&self, pattern: &Atom) -> impl Iterator<Item = &GroundAtom> {
        self.atoms_of(&pattern.predicate)
    }

    /// The candidate atoms `pattern` can match given the bindings already
    /// made by `subst`: in every snapshot layer, the per-position hash index
    /// is consulted for every argument that is a constant or a bound
    /// variable, and the smallest applicable posting list of that layer is
    /// returned (the layer's whole relation when nothing is determined).
    pub fn candidates_bound<'a>(&'a self, pattern: &Atom, subst: &Substitution) -> Candidates<'a> {
        let own = match self.relations.get(&pattern.predicate) {
            Some(relation) => relation.select(pattern, subst),
            None => Candidates::Empty,
        };
        if self.base.is_none() {
            return own;
        }
        // Newest layer first in the vec: `Chain` consumes its parts back to
        // front, so the oldest layer's candidates are yielded first.
        let mut parts = Vec::new();
        if !matches!(own, Candidates::Empty) {
            parts.push(own);
        }
        for layer in self.layers().skip(1) {
            if let Some(relation) = layer.relations.get(&pattern.predicate) {
                let selected = relation.select(pattern, subst);
                if !matches!(selected, Candidates::Empty) {
                    parts.push(selected);
                }
            }
        }
        match parts.len() {
            0 => Candidates::Empty,
            1 => parts.pop().expect("one part"),
            _ => Candidates::Chain(parts),
        }
    }

    /// The predicates occurring in the database (across all snapshot layers,
    /// in sorted order).
    pub fn predicates(&self) -> impl Iterator<Item = &Predicate> {
        let mut seen: BTreeSet<&Predicate> = BTreeSet::new();
        for layer in self.layers() {
            seen.extend(layer.relations.keys());
        }
        seen.into_iter()
    }

    /// The schema induced by the database (all predicates occurring in it).
    pub fn schema(&self) -> Schema {
        Schema::from_predicates(self.predicates().copied())
    }

    /// The active domain: all constants occurring in the database
    /// (`dom(I)` in the paper).
    pub fn domain(&self) -> BTreeSet<Const> {
        self.iter().flat_map(|a| a.args.iter().copied()).collect()
    }

    /// Union with another database (set union of atoms).
    pub fn union(&self, other: &Database) -> Database {
        let mut out = self.clone();
        for a in other.iter() {
            out.insert(a.clone());
        }
        out
    }

    /// Set-difference: the atoms of `self` that are not in `other`.
    pub fn difference(&self, other: &Database) -> Database {
        Database::from_atoms(self.iter().filter(|a| !other.contains(a)).cloned())
    }

    /// Is `self` a subset of `other`?
    pub fn is_subset_of(&self, other: &Database) -> bool {
        self.iter().all(|a| other.contains(a))
    }

    /// A canonical, deterministic listing of the atoms (sorted), useful for
    /// hashing/keying sets of stable models.
    pub fn canonical_atoms(&self) -> Vec<GroundAtom> {
        let mut v: Vec<GroundAtom> = self.iter().cloned().collect();
        v.sort();
        v
    }
}

/// Iterator over all atoms of a [`Database`], across all snapshot layers.
pub struct Iter<'a> {
    /// Base layers still to visit, newest first (popped from the back, so
    /// older layers drain before newer ones).
    layers: Vec<&'a Database>,
    relations: std::collections::hash_map::Values<'a, Predicate, Relation>,
    current: std::slice::Iter<'a, GroundAtom>,
}

impl<'a> Iterator for Iter<'a> {
    type Item = &'a GroundAtom;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(atom) = self.current.next() {
                return Some(atom);
            }
            match self.relations.next() {
                Some(relation) => self.current = relation.iter(),
                None => {
                    let layer = self.layers.pop()?;
                    self.relations = layer.relations.values();
                }
            }
        }
    }
}

impl PartialEq for Database {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().all(|a| other.contains(a))
    }
}

impl Eq for Database {}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.canonical_atoms().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<GroundAtom> for Database {
    fn from_iter<I: IntoIterator<Item = GroundAtom>>(iter: I) -> Self {
        Database::from_atoms(iter)
    }
}

impl<'a> IntoIterator for &'a Database {
    type Item = &'a GroundAtom;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn router(i: i64) -> GroundAtom {
        GroundAtom::make("Router", vec![Const::Int(i)])
    }

    fn connected(i: i64, j: i64) -> GroundAtom {
        GroundAtom::make("Connected", vec![Const::Int(i), Const::Int(j)])
    }

    fn example_db() -> Database {
        // The database of Example 3.6: three routers, fully connected, the
        // first initially infected.
        let mut db = Database::new();
        for i in 1..=3i64 {
            db.insert(router(i));
        }
        for i in 1..=3i64 {
            for j in 1..=3i64 {
                if i != j {
                    db.insert(connected(i, j));
                }
            }
        }
        db.insert_fact("Infected", [Const::Int(1), Const::Int(1)]);
        db
    }

    #[test]
    fn insertion_and_membership() {
        let mut db = Database::new();
        assert!(db.is_empty());
        assert!(db.insert(router(1)));
        assert!(!db.insert(router(1)));
        assert!(db.contains(&router(1)));
        assert!(!db.contains(&router(2)));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn len_and_iteration_agree_with_duplicates_dropped() {
        // Regression for the old double-storage layout: each atom is stored
        // once, so `len()`, full iteration and the per-predicate sums must
        // all agree — also after duplicate insertions.
        let mut db = example_db();
        for a in example_db().canonical_atoms() {
            assert!(!db.insert(a), "re-inserting must report a duplicate");
        }
        assert_eq!(db.len(), 10);
        assert_eq!(db.iter().count(), db.len());
        let per_predicate: usize = db
            .predicates()
            .copied()
            .collect::<Vec<_>>()
            .iter()
            .map(|p| db.atoms_of(p).count())
            .sum();
        assert_eq!(per_predicate, db.len());
        assert_eq!(db.canonical_atoms().len(), db.len());
    }

    #[test]
    fn example_3_6_database_has_expected_size() {
        let db = example_db();
        // 3 routers + 6 connections + 1 infected fact.
        assert_eq!(db.len(), 10);
        assert_eq!(db.atoms_of(&Predicate::new("Connected", 2)).count(), 6);
        assert_eq!(db.atoms_of(&Predicate::new("Router", 1)).count(), 3);
    }

    #[test]
    fn domain_collects_all_constants() {
        let db = example_db();
        let dom = db.domain();
        assert!(dom.contains(&Const::Int(1)));
        assert!(dom.contains(&Const::Int(2)));
        assert!(dom.contains(&Const::Int(3)));
        assert_eq!(dom.len(), 3);
    }

    #[test]
    fn union_difference_subset() {
        let db = example_db();
        let small = Database::from_atoms(vec![router(1), router(2)]);
        assert!(small.is_subset_of(&db));
        assert!(!db.is_subset_of(&small));
        let u = small.union(&db);
        assert_eq!(u, db);
        let d = db.difference(&small);
        assert_eq!(d.len(), db.len() - 2);
        assert!(!d.contains(&router(1)));
    }

    #[test]
    fn candidates_are_indexed_by_predicate() {
        let db = example_db();
        let pattern = Atom::make("Connected", vec![Term::var("x"), Term::var("y")]);
        assert_eq!(db.candidates(&pattern).count(), 6);
        let pattern = Atom::make("Missing", vec![Term::var("x")]);
        assert_eq!(db.candidates(&pattern).count(), 0);
    }

    #[test]
    fn candidates_bound_consults_the_positional_index() {
        let db = example_db();
        let pattern = Atom::make("Connected", vec![Term::int(1), Term::var("y")]);
        let hits: Vec<_> = db
            .candidates_bound(&pattern, &Substitution::new())
            .collect();
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|a| a.args[0] == Const::Int(1)));

        // A bound variable narrows the same way.
        let pattern = Atom::make("Connected", vec![Term::var("x"), Term::var("y")]);
        let mut subst = Substitution::new();
        subst.bind(crate::term::Var::new("y"), Const::Int(3));
        assert_eq!(db.candidates_bound(&pattern, &subst).count(), 2);

        // Unknown predicate or absent constant: empty without scanning.
        let pattern = Atom::make("Missing", vec![Term::var("x")]);
        assert_eq!(
            db.candidates_bound(&pattern, &Substitution::new()).count(),
            0
        );
        let pattern = Atom::make("Connected", vec![Term::int(99), Term::var("y")]);
        assert_eq!(
            db.candidates_bound(&pattern, &Substitution::new()).count(),
            0
        );
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let a = Database::from_atoms(vec![router(1), router(2)]);
        let b = Database::from_atoms(vec![router(2), router(1)]);
        assert_eq!(a, b);
        // Differing contents with equal sizes are unequal.
        let c = Database::from_atoms(vec![router(1), router(3)]);
        assert_ne!(a, c);
    }

    #[test]
    fn canonical_atoms_are_sorted_and_stable() {
        let db = example_db();
        let c1 = db.canonical_atoms();
        let c2 = db.canonical_atoms();
        assert_eq!(c1, c2);
        assert_eq!(c1.len(), db.len());
        let mut sorted = c1.clone();
        sorted.sort();
        assert_eq!(c1, sorted);
    }

    #[test]
    fn schema_and_predicates() {
        let db = example_db();
        let schema = db.schema();
        assert!(schema.contains(&Predicate::new("Router", 1)));
        assert!(schema.contains(&Predicate::new("Connected", 2)));
        assert!(schema.contains(&Predicate::new("Infected", 2)));
        assert_eq!(db.predicates().count(), 3);
    }

    #[test]
    fn display_lists_atoms() {
        let db = Database::from_atoms(vec![router(1)]);
        assert_eq!(db.to_string(), "{Router(1)}");
    }

    #[test]
    fn from_iterator_collects() {
        let db: Database = vec![router(1), router(2)].into_iter().collect();
        assert_eq!(db.len(), 2);
        assert_eq!((&db).into_iter().count(), 2);
    }

    #[test]
    fn snapshots_share_the_prefix_and_diverge_independently() {
        let mut db = example_db();
        let before = db.canonical_atoms();
        let mut snap = db.snapshot();
        assert_eq!(snap, db);
        assert_eq!(snap.canonical_atoms(), before);

        // Divergent growth: neither side sees the other's insertions.
        assert!(db.insert(router(10)));
        assert!(snap.insert(router(20)));
        assert!(db.contains(&router(10)) && !db.contains(&router(20)));
        assert!(snap.contains(&router(20)) && !snap.contains(&router(10)));
        assert_eq!(db.len(), before.len() + 1);
        assert_eq!(snap.len(), before.len() + 1);
        assert_eq!(db.iter().count(), db.len());

        // Duplicate insertion across the layer boundary is detected.
        assert!(!db.insert(router(1)));
        assert!(!snap.insert(router(1)));
    }

    #[test]
    fn layered_lookups_agree_with_a_flat_database() {
        let mut db = example_db();
        let mut snap = db.snapshot();
        snap.insert(connected(1, 1));
        snap.insert(router(4));
        let mut deeper = snap.snapshot();
        deeper.insert(connected(4, 1));
        let flat = Database::from_atoms(deeper.iter().cloned());
        assert_eq!(deeper, flat);
        assert_eq!(deeper.snapshot_depth(), 2);

        // candidates_bound chains posting lists across layers.
        let pattern = Atom::make("Connected", vec![Term::int(1), Term::var("y")]);
        let mut layered: Vec<_> = deeper
            .candidates_bound(&pattern, &Substitution::new())
            .cloned()
            .collect();
        let mut flat_hits: Vec<_> = flat
            .candidates_bound(&pattern, &Substitution::new())
            .cloned()
            .collect();
        layered.sort();
        flat_hits.sort();
        assert_eq!(layered, flat_hits);
        assert_eq!(layered.len(), 3);

        // atoms_of / predicates / schema see every layer.
        assert_eq!(
            deeper.atoms_of(&Predicate::new("Connected", 2)).count(),
            flat.atoms_of(&Predicate::new("Connected", 2)).count()
        );
        assert_eq!(deeper.predicates().count(), flat.predicates().count());
        assert_eq!(deeper.schema(), flat.schema());
    }

    #[test]
    fn deep_snapshot_chains_are_flattened() {
        let mut db = Database::new();
        let mut last = Database::new();
        for i in 0..100i64 {
            db.insert(router(i));
            last = db.snapshot();
        }
        assert!(db.snapshot_depth() <= super::MAX_SNAPSHOT_DEPTH + 1);
        assert_eq!(db.len(), 100);
        assert_eq!(db.iter().count(), 100);
        // The *returned* snapshots survive flattening rounds too: the
        // collapsed layer is frozen and shared, never dropped.
        assert_eq!(last, db);
        assert_eq!(last.iter().count(), 100);
        assert!(last.contains(&router(0)));
    }
}

//! Relational schemas.

use crate::error::DataError;
use crate::predicate::Predicate;
use crate::symbol::Symbol;
use std::collections::BTreeMap;
use std::fmt;

/// A finite set of predicates (relation names with arities).
///
/// Schemas reject a name being registered with two different arities, which
/// is the usual convention for Datalog programs and catches a common class of
/// modelling mistakes early.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Schema {
    by_name: BTreeMap<Symbol, Predicate>,
}

impl Schema {
    /// The empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a schema from predicates. Later duplicates with the same arity
    /// are ignored; conflicting arities panic (use [`Schema::add`] for a
    /// fallible variant).
    pub fn from_predicates<I: IntoIterator<Item = Predicate>>(preds: I) -> Self {
        let mut s = Schema::new();
        for p in preds {
            s.add(p).expect("conflicting arity while building schema");
        }
        s
    }

    /// Add a predicate.
    pub fn add(&mut self, predicate: Predicate) -> Result<(), DataError> {
        match self.by_name.get(&predicate.symbol()) {
            Some(existing) if existing.arity() != predicate.arity() => {
                Err(DataError::InconsistentArity {
                    predicate: predicate.name().to_owned(),
                    previous: existing.arity(),
                    requested: predicate.arity(),
                })
            }
            _ => {
                self.by_name.insert(predicate.symbol(), predicate);
                Ok(())
            }
        }
    }

    /// Does the schema contain this exact predicate (name and arity)?
    pub fn contains(&self, predicate: &Predicate) -> bool {
        self.by_name.get(&predicate.symbol()) == Some(predicate)
    }

    /// Look up a predicate by name.
    pub fn get(&self, name: &str) -> Option<Predicate> {
        self.by_name.get(&Symbol::new(name)).copied()
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// Iterate over the predicates in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Predicate> {
        self.by_name.values()
    }

    /// Union of two schemas; fails on conflicting arities.
    pub fn union(&self, other: &Schema) -> Result<Schema, DataError> {
        let mut out = self.clone();
        for p in other.iter() {
            out.add(*p)?;
        }
        Ok(out)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Predicate> for Schema {
    fn from_iter<I: IntoIterator<Item = Predicate>>(iter: I) -> Self {
        Schema::from_predicates(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut s = Schema::new();
        assert!(s.is_empty());
        s.add(Predicate::new("Router", 1)).unwrap();
        s.add(Predicate::new("Connected", 2)).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.contains(&Predicate::new("Router", 1)));
        assert!(!s.contains(&Predicate::new("Router", 2)));
        assert_eq!(s.get("Connected"), Some(Predicate::new("Connected", 2)));
        assert_eq!(s.get("Missing"), None);
    }

    #[test]
    fn conflicting_arity_is_rejected() {
        let mut s = Schema::new();
        s.add(Predicate::new("Infected", 2)).unwrap();
        let err = s.add(Predicate::new("Infected", 1)).unwrap_err();
        assert!(matches!(err, DataError::InconsistentArity { .. }));
        // Re-adding the same arity is fine.
        assert!(s.add(Predicate::new("Infected", 2)).is_ok());
    }

    #[test]
    fn union_merges_schemas() {
        let a = Schema::from_predicates(vec![Predicate::new("A", 1)]);
        let b = Schema::from_predicates(vec![Predicate::new("B", 2), Predicate::new("A", 1)]);
        let u = a.union(&b).unwrap();
        assert_eq!(u.len(), 2);

        let c = Schema::from_predicates(vec![Predicate::new("A", 3)]);
        assert!(a.union(&c).is_err());
    }

    #[test]
    fn display_and_iteration_are_ordered_by_name() {
        let s: Schema = vec![Predicate::new("B", 1), Predicate::new("A", 2)]
            .into_iter()
            .collect();
        let names: Vec<&str> = s.iter().map(|p| p.name()).collect();
        // Ordering is by interning order of the symbol, which is stable per
        // process; just check the listing is complete and deterministic.
        assert_eq!(names.len(), 2);
        assert_eq!(s.to_string(), s.to_string());
    }
}

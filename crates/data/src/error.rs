//! Error type for the relational substrate.

use std::fmt;

/// Errors raised by the data layer.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A non-finite float was used as a constant.
    NonFiniteReal(f64),
    /// An atom was constructed with the wrong number of arguments for its
    /// predicate.
    ArityMismatch {
        /// The predicate name.
        predicate: String,
        /// Arity declared by the predicate.
        expected: usize,
        /// Number of arguments supplied.
        actual: usize,
    },
    /// A ground operation was attempted on a non-ground atom or term.
    NotGround(String),
    /// A predicate was used with two different arities.
    InconsistentArity {
        /// The predicate name.
        predicate: String,
        /// Previously registered arity.
        previous: usize,
        /// Newly requested arity.
        requested: usize,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::NonFiniteReal(v) => write!(f, "non-finite real constant: {v}"),
            DataError::ArityMismatch {
                predicate,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch for predicate {predicate}: expected {expected}, got {actual}"
            ),
            DataError::NotGround(what) => write!(f, "expected a ground expression, found {what}"),
            DataError::InconsistentArity {
                predicate,
                previous,
                requested,
            } => write!(
                f,
                "predicate {predicate} used with arity {requested} but previously declared with arity {previous}"
            ),
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DataError::ArityMismatch {
            predicate: "Connected".into(),
            expected: 2,
            actual: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("Connected"));
        assert!(msg.contains('2'));
        assert!(msg.contains('3'));

        assert!(DataError::NonFiniteReal(f64::NAN)
            .to_string()
            .contains("non-finite"));
        assert!(DataError::NotGround("X".into())
            .to_string()
            .contains("ground"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&DataError::NonFiniteReal(1.0 / 0.0));
    }
}

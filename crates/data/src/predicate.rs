//! Predicates (relation names with arity).

use crate::symbol::Symbol;
use std::fmt;

/// A predicate (relation name) together with its arity.
///
/// In the paper a schema **S** is a finite set of relation names with
/// associated arities; here the arity travels with the name so that atoms can
/// be validated locally.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Predicate {
    name: Symbol,
    arity: usize,
}

impl Predicate {
    /// Create a predicate from a name and arity.
    pub fn new(name: &str, arity: usize) -> Self {
        Predicate {
            name: Symbol::new(name),
            arity,
        }
    }

    /// Create a predicate from an already-interned symbol.
    pub fn from_symbol(name: Symbol, arity: usize) -> Self {
        Predicate { name, arity }
    }

    /// The predicate's name symbol.
    pub fn symbol(&self) -> Symbol {
        self.name
    }

    /// The predicate's name as a string (borrowed from the interner).
    pub fn name(&self) -> &'static str {
        self.name.as_str()
    }

    /// The predicate's arity (`ar(R)` in the paper).
    pub fn arity(&self) -> usize {
        self.arity
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_are_identified_by_name_and_arity() {
        let p = Predicate::new("Connected", 2);
        let q = Predicate::new("Connected", 2);
        let r = Predicate::new("Connected", 3);
        assert_eq!(p, q);
        assert_ne!(p, r);
        assert_eq!(p.arity(), 2);
        assert_eq!(p.name(), "Connected");
    }

    #[test]
    fn display_uses_name_slash_arity() {
        assert_eq!(Predicate::new("Router", 1).to_string(), "Router/1");
    }

    #[test]
    fn from_symbol_round_trip() {
        let sym = Symbol::new("Infected");
        let p = Predicate::from_symbol(sym, 2);
        assert_eq!(p.symbol(), sym);
        assert_eq!(p, Predicate::new("Infected", 2));
    }
}

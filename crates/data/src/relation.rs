//! Per-predicate indexed atom stores.
//!
//! A [`Relation`] holds the ground atoms of one predicate exactly once, in a
//! dense insertion-ordered table, together with
//!
//! * a duplicate-detection map from the hash of an argument tuple to the rows
//!   carrying that hash (so membership tests never need a second copy of the
//!   atom, unlike the old `HashSet<GroundAtom>` + `Vec<GroundAtom>` layout
//!   which stored every atom twice), and
//! * one hash index per argument position, mapping a constant to the rows
//!   holding it at that position.
//!
//! [`Relation::select`] is the index-aware lookup used by the grounders: for
//! a pattern atom and a partial substitution it inspects every argument
//! position that is already determined (a constant in the pattern, or a
//! variable the substitution binds) and returns the smallest matching posting
//! list — the caller's matcher re-verifies all positions, so `select` only
//! has to be sound, never complete per position.

use crate::atom::{Atom, GroundAtom};
use crate::substitution::Substitution;
use crate::term::Term;
use crate::value::Const;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// The atoms of a single predicate, stored once and indexed by argument
/// position.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    atoms: Vec<GroundAtom>,
    /// Argument-tuple hash → rows with that hash (collision chain).
    buckets: HashMap<u64, Vec<u32>>,
    /// `index[i]`: constant at position `i` → rows holding it there.
    index: Vec<HashMap<Const, Vec<u32>>>,
}

fn hash_args(args: &[Const]) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    args.hash(&mut hasher);
    hasher.finish()
}

impl Relation {
    /// An empty relation for a predicate of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            atoms: Vec::new(),
            buckets: HashMap::new(),
            index: vec![HashMap::new(); arity],
        }
    }

    /// Insert an atom; returns `true` if it was not already present.
    pub fn insert(&mut self, atom: GroundAtom) -> bool {
        debug_assert_eq!(atom.args.len(), self.index.len());
        let h = hash_args(&atom.args);
        let rows = self.buckets.entry(h).or_default();
        // Compare whole atoms: a standalone Relation may legitimately be fed
        // several same-arity predicates (the Database wrapper never does).
        if rows.iter().any(|&r| self.atoms[r as usize] == atom) {
            return false;
        }
        let row = self.atoms.len() as u32;
        rows.push(row);
        for (position, constant) in atom.args.iter().enumerate() {
            self.index[position].entry(*constant).or_default().push(row);
        }
        self.atoms.push(atom);
        true
    }

    /// Membership test (hash lookup plus a collision-chain scan).
    pub fn contains(&self, atom: &GroundAtom) -> bool {
        self.buckets
            .get(&hash_args(&atom.args))
            .is_some_and(|rows| rows.iter().any(|&r| &self.atoms[r as usize] == atom))
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Iterate over the atoms in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, GroundAtom> {
        self.atoms.iter()
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a GroundAtom;
    type IntoIter = std::slice::Iter<'a, GroundAtom>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl Relation {
    /// The candidate atoms `pattern` can match given the bindings of `subst`:
    /// the shortest posting list among the argument positions that are
    /// already determined, or the whole relation when none is. Returns an
    /// empty iterator as soon as some determined position has a constant that
    /// occurs nowhere in the relation at that position.
    pub fn select<'a>(&'a self, pattern: &Atom, subst: &Substitution) -> Candidates<'a> {
        debug_assert_eq!(pattern.args.len(), self.index.len());
        let mut best: Option<&'a [u32]> = None;
        for (position, term) in pattern.args.iter().enumerate() {
            let constant = match term {
                Term::Const(c) => Some(*c),
                Term::Var(v) => subst.get(v).copied(),
            };
            if let Some(c) = constant {
                match self.index[position].get(&c) {
                    None => return Candidates::Empty,
                    Some(rows) => {
                        if best.is_none_or(|b| rows.len() < b.len()) {
                            best = Some(rows);
                        }
                    }
                }
            }
        }
        match best {
            Some(rows) => Candidates::Rows {
                atoms: &self.atoms,
                rows: rows.iter(),
            },
            None => Candidates::All(self.atoms.iter()),
        }
    }
}

/// Iterator returned by [`Relation::select`] /
/// [`crate::Database::candidates_bound`].
#[derive(Debug)]
pub enum Candidates<'a> {
    /// No atom can match (a determined position is absent from the index).
    Empty,
    /// Every atom of the relation (no position was determined).
    All(std::slice::Iter<'a, GroundAtom>),
    /// The rows of the shortest applicable posting list.
    Rows {
        /// The relation's dense atom table.
        atoms: &'a [GroundAtom],
        /// Row ids to yield.
        rows: std::slice::Iter<'a, u32>,
    },
    /// Candidates drawn from several snapshot layers of a
    /// [`crate::Database`], yielded in order (oldest layer first). The parts
    /// are exhausted back to front.
    Chain(Vec<Candidates<'a>>),
}

impl<'a> Iterator for Candidates<'a> {
    type Item = &'a GroundAtom;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            Candidates::Empty => None,
            Candidates::All(iter) => iter.next(),
            Candidates::Rows { atoms, rows } => rows.next().map(|&r| &atoms[r as usize]),
            Candidates::Chain(parts) => loop {
                let part = parts.last_mut()?;
                match part.next() {
                    Some(atom) => return Some(atom),
                    None => {
                        parts.pop();
                    }
                }
            },
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            Candidates::Empty => (0, Some(0)),
            Candidates::All(iter) => iter.size_hint(),
            Candidates::Rows { rows, .. } => (0, Some(rows.len())),
            Candidates::Chain(parts) => parts.iter().fold((0, Some(0)), |(lo, hi), p| {
                let (plo, phi) = p.size_hint();
                (lo + plo, hi.zip(phi).map(|(a, b)| a + b))
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Var;

    fn edge(a: i64, b: i64) -> GroundAtom {
        GroundAtom::make("E", vec![Const::Int(a), Const::Int(b)])
    }

    fn triangle() -> Relation {
        let mut r = Relation::new(2);
        for (a, b) in [(1, 2), (2, 3), (3, 1)] {
            assert!(r.insert(edge(a, b)));
        }
        r
    }

    #[test]
    fn insert_deduplicates_without_second_copy() {
        let mut r = triangle();
        assert!(!r.insert(edge(1, 2)));
        assert_eq!(r.len(), 3);
        assert!(r.contains(&edge(2, 3)));
        assert!(!r.contains(&edge(3, 2)));
        assert_eq!(r.iter().count(), r.len());
    }

    #[test]
    fn select_uses_positional_index() {
        let r = triangle();
        let pattern = Atom::make("E", vec![Term::int(2), Term::var("y")]);
        let hits: Vec<_> = r.select(&pattern, &Substitution::new()).collect();
        assert_eq!(hits, vec![&edge(2, 3)]);

        // A bound variable behaves like a constant.
        let pattern = Atom::make("E", vec![Term::var("x"), Term::var("y")]);
        let mut subst = Substitution::new();
        subst.bind(Var::new("y"), Const::Int(1));
        let hits: Vec<_> = r.select(&pattern, &subst).collect();
        assert_eq!(hits, vec![&edge(3, 1)]);

        // Nothing bound: the whole relation.
        assert_eq!(r.select(&pattern, &Substitution::new()).count(), 3);

        // A constant outside the index short-circuits to empty.
        let pattern = Atom::make("E", vec![Term::int(9), Term::var("y")]);
        assert_eq!(r.select(&pattern, &Substitution::new()).count(), 0);
    }

    #[test]
    fn select_prefers_the_shortest_posting_list() {
        let mut r = Relation::new(2);
        for b in 1..=10 {
            r.insert(edge(1, b));
        }
        r.insert(edge(2, 1));
        // Position 0 bound to 1 has 10 rows; position 1 bound to 5 has one.
        let pattern = Atom::make("E", vec![Term::int(1), Term::int(5)]);
        let candidates = r.select(&pattern, &Substitution::new());
        assert!(matches!(&candidates, Candidates::Rows { rows, .. } if rows.len() == 1));
        assert_eq!(candidates.count(), 1);
    }

    #[test]
    fn same_args_different_predicates_are_distinct() {
        let mut r = Relation::new(2);
        assert!(r.insert(edge(1, 2)));
        let other = GroundAtom::make("F", vec![Const::Int(1), Const::Int(2)]);
        assert!(r.insert(other.clone()));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&other));
    }

    #[test]
    fn zero_arity_relations_work() {
        let mut r = Relation::new(0);
        let fact = GroundAtom::prop("Fail");
        assert!(r.insert(fact.clone()));
        assert!(!r.insert(fact.clone()));
        assert!(r.contains(&fact));
        let pattern = Atom::make("Fail", vec![]);
        assert_eq!(r.select(&pattern, &Substitution::new()).count(), 1);
    }

    #[test]
    fn size_hints_are_sane() {
        let r = triangle();
        let pattern = Atom::make("E", vec![Term::var("x"), Term::var("y")]);
        let all = r.select(&pattern, &Substitution::new());
        assert_eq!(all.size_hint(), (3, Some(3)));
        assert_eq!(Candidates::Empty.size_hint(), (0, Some(0)));
    }
}

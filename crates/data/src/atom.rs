//! Atoms, ground atoms and literals.

use crate::error::DataError;
use crate::predicate::Predicate;
use crate::substitution::Substitution;
use crate::term::{Term, Var};
use crate::value::Const;
use std::fmt;

/// Polarity of a literal: positive or negated (negation as failure).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Polarity {
    /// A positive literal (the atom itself).
    Positive,
    /// A negative literal (`¬ atom`, interpreted under the stable model
    /// semantics).
    Negative,
}

/// A relational atom `R(t1, ..., tn)` whose arguments may contain variables.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Atom {
    /// The predicate.
    pub predicate: Predicate,
    /// The argument terms; `args.len() == predicate.arity()`.
    pub args: Vec<Term>,
}

impl Atom {
    /// Construct an atom, checking the arity.
    pub fn new(predicate: Predicate, args: Vec<Term>) -> Result<Self, DataError> {
        if args.len() != predicate.arity() {
            return Err(DataError::ArityMismatch {
                predicate: predicate.name().to_owned(),
                expected: predicate.arity(),
                actual: args.len(),
            });
        }
        Ok(Atom { predicate, args })
    }

    /// Construct an atom from a predicate name and terms, deriving the arity
    /// from the argument count.
    pub fn make(name: &str, args: Vec<Term>) -> Self {
        let predicate = Predicate::new(name, args.len());
        Atom { predicate, args }
    }

    /// The set of variables occurring in the atom (in order of first
    /// occurrence, without duplicates).
    pub fn variables(&self) -> Vec<Var> {
        // Order-preserving set walk: membership is O(1) instead of the
        // O(n²) `Vec::contains` scan per argument.
        let mut seen = std::collections::HashSet::with_capacity(self.args.len());
        let mut out = Vec::new();
        for t in &self.args {
            if let Term::Var(v) = t {
                if seen.insert(*v) {
                    out.push(*v);
                }
            }
        }
        out
    }

    /// Is the atom ground (free of variables)?
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(Term::is_ground)
    }

    /// Convert into a [`GroundAtom`], failing if any argument is a variable.
    pub fn to_ground(&self) -> Result<GroundAtom, DataError> {
        let mut args = Vec::with_capacity(self.args.len());
        for t in &self.args {
            match t {
                Term::Const(c) => args.push(*c),
                Term::Var(v) => return Err(DataError::NotGround(v.to_string())),
            }
        }
        Ok(GroundAtom {
            predicate: self.predicate,
            args,
        })
    }

    /// Apply a substitution to all arguments.
    pub fn apply(&self, theta: &Substitution) -> Atom {
        Atom {
            predicate: self.predicate,
            args: self.args.iter().map(|t| theta.apply_term(t)).collect(),
        }
    }

    /// Apply a substitution and convert to a ground atom; the substitution
    /// must cover all variables of the atom.
    pub fn apply_ground(&self, theta: &Substitution) -> Result<GroundAtom, DataError> {
        self.apply(theta).to_ground()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate.name())?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A ground atom `R(c1, ..., cn)`: all arguments are constants.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct GroundAtom {
    /// The predicate.
    pub predicate: Predicate,
    /// The constant arguments.
    pub args: Vec<Const>,
}

impl GroundAtom {
    /// Construct a ground atom, checking the arity.
    pub fn new(predicate: Predicate, args: Vec<Const>) -> Result<Self, DataError> {
        if args.len() != predicate.arity() {
            return Err(DataError::ArityMismatch {
                predicate: predicate.name().to_owned(),
                expected: predicate.arity(),
                actual: args.len(),
            });
        }
        Ok(GroundAtom { predicate, args })
    }

    /// Construct a ground atom from a predicate name and constants, deriving
    /// the arity from the argument count.
    pub fn make(name: &str, args: Vec<Const>) -> Self {
        let predicate = Predicate::new(name, args.len());
        GroundAtom { predicate, args }
    }

    /// A 0-ary ground atom (propositional fact).
    pub fn prop(name: &str) -> Self {
        GroundAtom::make(name, vec![])
    }

    /// View as a non-ground [`Atom`] (all arguments constant).
    pub fn to_atom(&self) -> Atom {
        Atom {
            predicate: self.predicate,
            args: self.args.iter().map(|c| Term::Const(*c)).collect(),
        }
    }
}

impl fmt::Display for GroundAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.args.is_empty() {
            return write!(f, "{}", self.predicate.name());
        }
        write!(f, "{}(", self.predicate.name())?;
        for (i, c) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// A literal: an atom with a polarity.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Literal {
    /// The underlying atom.
    pub atom: Atom,
    /// Positive or negative.
    pub polarity: Polarity,
}

impl Literal {
    /// A positive literal.
    pub fn positive(atom: Atom) -> Self {
        Literal {
            atom,
            polarity: Polarity::Positive,
        }
    }

    /// A negative literal.
    pub fn negative(atom: Atom) -> Self {
        Literal {
            atom,
            polarity: Polarity::Negative,
        }
    }

    /// Is the literal positive?
    pub fn is_positive(&self) -> bool {
        self.polarity == Polarity::Positive
    }

    /// Is the literal negative?
    pub fn is_negative(&self) -> bool {
        self.polarity == Polarity::Negative
    }

    /// Apply a substitution to the underlying atom.
    pub fn apply(&self, theta: &Substitution) -> Literal {
        Literal {
            atom: self.atom.apply(theta),
            polarity: self.polarity,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.polarity {
            Polarity::Positive => write!(f, "{}", self.atom),
            Polarity::Negative => write!(f, "not {}", self.atom),
        }
    }
}

/// A ground literal: a ground atom with a polarity.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct GroundLiteral {
    /// The underlying ground atom.
    pub atom: GroundAtom,
    /// Positive or negative.
    pub polarity: Polarity,
}

impl GroundLiteral {
    /// A positive ground literal.
    pub fn positive(atom: GroundAtom) -> Self {
        GroundLiteral {
            atom,
            polarity: Polarity::Positive,
        }
    }

    /// A negative ground literal.
    pub fn negative(atom: GroundAtom) -> Self {
        GroundLiteral {
            atom,
            polarity: Polarity::Negative,
        }
    }
}

impl fmt::Display for GroundLiteral {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.polarity {
            Polarity::Positive => write!(f, "{}", self.atom),
            Polarity::Negative => write!(f, "not {}", self.atom),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn connected(a: Term, b: Term) -> Atom {
        Atom::make("Connected", vec![a, b])
    }

    #[test]
    fn arity_is_checked() {
        let p = Predicate::new("Router", 1);
        assert!(Atom::new(p, vec![Term::int(1)]).is_ok());
        assert!(Atom::new(p, vec![Term::int(1), Term::int(2)]).is_err());
        assert!(GroundAtom::new(p, vec![]).is_err());
    }

    #[test]
    fn variables_are_collected_in_order_without_duplicates() {
        let a = Atom::make(
            "T",
            vec![Term::var("x"), Term::var("y"), Term::var("x"), Term::int(2)],
        );
        assert_eq!(a.variables(), vec![Var::new("x"), Var::new("y")]);
    }

    #[test]
    fn groundness_and_conversion() {
        let g = connected(Term::int(1), Term::int(2));
        assert!(g.is_ground());
        let ga = g.to_ground().unwrap();
        assert_eq!(
            ga,
            GroundAtom::make("Connected", vec![Const::Int(1), Const::Int(2)])
        );
        assert_eq!(ga.to_atom(), g);

        let ng = connected(Term::var("x"), Term::int(2));
        assert!(!ng.is_ground());
        assert!(ng.to_ground().is_err());
    }

    #[test]
    fn apply_substitution() {
        let mut theta = Substitution::new();
        theta.bind(Var::new("x"), Const::Int(7));
        let a = connected(Term::var("x"), Term::var("y"));
        let b = a.apply(&theta);
        assert_eq!(b.args[0], Term::int(7));
        assert_eq!(b.args[1], Term::var("y"));
        assert!(a.apply_ground(&theta).is_err());

        theta.bind(Var::new("y"), Const::Int(9));
        let g = a.apply_ground(&theta).unwrap();
        assert_eq!(g.args, vec![Const::Int(7), Const::Int(9)]);
    }

    #[test]
    fn literal_polarity() {
        let a = connected(Term::var("x"), Term::var("y"));
        let pos = Literal::positive(a.clone());
        let neg = Literal::negative(a);
        assert!(pos.is_positive() && !pos.is_negative());
        assert!(neg.is_negative() && !neg.is_positive());
        assert!(neg.to_string().starts_with("not "));
    }

    #[test]
    fn display() {
        let a = connected(Term::var("x"), Term::int(3));
        assert_eq!(a.to_string(), "Connected(x, 3)");
        assert_eq!(GroundAtom::prop("Fail").to_string(), "Fail");
        let gl = GroundLiteral::negative(GroundAtom::prop("Aux"));
        assert_eq!(gl.to_string(), "not Aux");
    }

    #[test]
    fn ground_literal_constructors() {
        let g = GroundAtom::make("Coin", vec![Const::Int(1)]);
        assert_eq!(
            GroundLiteral::positive(g.clone()).polarity,
            Polarity::Positive
        );
        assert_eq!(GroundLiteral::negative(g).polarity, Polarity::Negative);
    }
}

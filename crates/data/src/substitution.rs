//! Substitutions and homomorphism-style matching.
//!
//! The grounders of the paper (`Simple_Σ`, `Perfect_Σ`) extend ground
//! programs by matching the positive body literals of a rule against the set
//! of head atoms derived so far; formally this is a homomorphism from a set
//! of atoms to a set of ground atoms. [`Substitution`] implements the
//! variable assignment and [`match_atoms`] enumerates all homomorphisms.

use crate::atom::{Atom, GroundAtom};
use crate::database::Database;
use crate::term::{Term, Var};
use crate::value::Const;
use std::collections::BTreeMap;
use std::fmt;

/// A (partial) assignment of constants to variables.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Substitution {
    map: BTreeMap<Var, Const>,
}

impl Substitution {
    /// The empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `var` to `value`, overwriting any previous binding.
    pub fn bind(&mut self, var: Var, value: Const) {
        self.map.insert(var, value);
    }

    /// Look up the binding of `var`.
    pub fn get(&self, var: &Var) -> Option<&Const> {
        self.map.get(var)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the substitution empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Apply to a term: bound variables are replaced by their constants,
    /// unbound variables and constants are left untouched.
    pub fn apply_term(&self, term: &Term) -> Term {
        match term {
            Term::Const(c) => Term::Const(*c),
            Term::Var(v) => match self.map.get(v) {
                Some(c) => Term::Const(*c),
                None => Term::Var(*v),
            },
        }
    }

    /// Try to extend the substitution so that `pattern` maps to `target`.
    ///
    /// Returns `false` (leaving bindings possibly partially extended in a
    /// scratch copy discarded by the caller) if the match is impossible. Use
    /// [`Substitution::matched`] for a non-destructive variant.
    pub fn match_atom(&mut self, pattern: &Atom, target: &GroundAtom) -> bool {
        if pattern.predicate != target.predicate {
            return false;
        }
        for (t, c) in pattern.args.iter().zip(target.args.iter()) {
            match t {
                Term::Const(pc) => {
                    if pc != c {
                        return false;
                    }
                }
                Term::Var(v) => match self.map.get(v) {
                    Some(bound) => {
                        if bound != c {
                            return false;
                        }
                    }
                    None => {
                        self.map.insert(*v, *c);
                    }
                },
            }
        }
        true
    }

    /// Non-destructive matching: returns the extended substitution if
    /// `pattern` can be mapped onto `target` consistently with `self`.
    pub fn matched(&self, pattern: &Atom, target: &GroundAtom) -> Option<Substitution> {
        let mut next = self.clone();
        if next.match_atom(pattern, target) {
            Some(next)
        } else {
            None
        }
    }

    /// Iterate over the bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Const)> {
        self.map.iter()
    }
}

impl fmt::Display for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, c)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} -> {c}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(Var, Const)> for Substitution {
    fn from_iter<I: IntoIterator<Item = (Var, Const)>>(iter: I) -> Self {
        Substitution {
            map: iter.into_iter().collect(),
        }
    }
}

/// Enumerate all homomorphisms `h` with `h(patterns) ⊆ targets`, i.e. every
/// substitution that maps each pattern atom onto *some* atom of `targets`.
///
/// `targets` is accessed through the `candidates` closure so callers can use
/// an index (for example a per-predicate index of a [`crate::Database`]); the
/// closure receives a pattern atom and must return the ground atoms of the
/// target set with the same predicate.
pub fn match_atoms<'a, F, I>(patterns: &[Atom], candidates: F) -> Vec<Substitution>
where
    F: Fn(&Atom) -> I,
    I: IntoIterator<Item = &'a GroundAtom>,
{
    let mut results = Vec::new();
    let mut current = Substitution::new();
    match_rec(patterns, 0, &candidates, &mut current, &mut results);
    results
}

fn match_rec<'a, F, I>(
    patterns: &[Atom],
    idx: usize,
    candidates: &F,
    current: &mut Substitution,
    out: &mut Vec<Substitution>,
) where
    F: Fn(&Atom) -> I,
    I: IntoIterator<Item = &'a GroundAtom>,
{
    if idx == patterns.len() {
        out.push(current.clone());
        return;
    }
    let pattern = &patterns[idx];
    for target in candidates(pattern) {
        if let Some(mut extended) = current.matched(pattern, target) {
            std::mem::swap(current, &mut extended);
            match_rec(patterns, idx + 1, candidates, current, out);
            std::mem::swap(current, &mut extended);
        }
    }
}

/// Enumerate all homomorphisms mapping `patterns` into `db`, consulting the
/// database's per-position indexes.
///
/// Unlike [`match_atoms`], the body literals are not matched left-to-right:
/// at every step the not-yet-matched pattern with the most determined
/// argument positions (constants or variables the substitution already
/// binds) is matched next, and its candidates are fetched through
/// [`Database::candidates_bound`] so already-made bindings prune the scan
/// instead of being re-checked per candidate.
pub fn match_atoms_indexed(patterns: &[Atom], db: &Database) -> Vec<Substitution> {
    match_planned(patterns, None, db, db)
}

/// Semi-naive variant of [`match_atoms_indexed`]: the pattern at `delta_idx`
/// is matched first and only against `delta` (the atoms that are new this
/// round); every other pattern is matched against the full `total` set.
///
/// Enumerating this for each `delta_idx` in turn yields exactly the
/// homomorphisms that use at least one delta atom at that position —
/// instantiations whose body atoms are all old are never re-derived.
pub fn match_atoms_delta(
    patterns: &[Atom],
    delta_idx: usize,
    total: &Database,
    delta: &Database,
) -> Vec<Substitution> {
    match_planned(patterns, Some(delta_idx), total, delta)
}

/// How many argument positions of `pattern` are already determined under
/// `subst` (the greedy join-ordering score).
fn bound_score(pattern: &Atom, subst: &Substitution) -> usize {
    pattern
        .args
        .iter()
        .filter(|t| match t {
            Term::Const(_) => true,
            Term::Var(v) => subst.get(v).is_some(),
        })
        .count()
}

fn match_planned(
    patterns: &[Atom],
    forced_first: Option<usize>,
    total: &Database,
    delta: &Database,
) -> Vec<Substitution> {
    let mut out = Vec::new();
    let mut current = Substitution::new();
    let mut used = vec![false; patterns.len()];
    match_planned_rec(
        patterns,
        forced_first,
        total,
        delta,
        0,
        &mut used,
        &mut current,
        &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn match_planned_rec(
    patterns: &[Atom],
    forced_first: Option<usize>,
    total: &Database,
    delta: &Database,
    depth: usize,
    used: &mut [bool],
    current: &mut Substitution,
    out: &mut Vec<Substitution>,
) {
    if depth == patterns.len() {
        out.push(current.clone());
        return;
    }
    // The forced (delta) literal goes first; afterwards pick greedily by the
    // number of bound argument positions so indexed lookups stay selective.
    let idx = match (depth, forced_first) {
        (0, Some(forced)) => forced,
        _ => {
            let mut best = usize::MAX;
            let mut best_score = 0usize;
            for (i, pattern) in patterns.iter().enumerate() {
                if used[i] {
                    continue;
                }
                let score = bound_score(pattern, current);
                if best == usize::MAX || score > best_score {
                    best = i;
                    best_score = score;
                }
            }
            best
        }
    };
    let source = if Some(idx) == forced_first {
        delta
    } else {
        total
    };
    used[idx] = true;
    let pattern = &patterns[idx];
    for target in source.candidates_bound(pattern, current) {
        if let Some(mut extended) = current.matched(pattern, target) {
            std::mem::swap(current, &mut extended);
            match_planned_rec(
                patterns,
                forced_first,
                total,
                delta,
                depth + 1,
                used,
                current,
                out,
            );
            std::mem::swap(current, &mut extended);
        }
    }
    used[idx] = false;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(a: Term, b: Term) -> Atom {
        Atom::make("E", vec![a, b])
    }

    fn gedge(a: i64, b: i64) -> GroundAtom {
        GroundAtom::make("E", vec![Const::Int(a), Const::Int(b)])
    }

    #[test]
    fn binding_and_lookup() {
        let mut s = Substitution::new();
        assert!(s.is_empty());
        s.bind(Var::new("x"), Const::Int(1));
        assert_eq!(s.get(&Var::new("x")), Some(&Const::Int(1)));
        assert_eq!(s.get(&Var::new("y")), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn match_atom_consistency() {
        let mut s = Substitution::new();
        assert!(s.match_atom(&edge(Term::var("x"), Term::var("y")), &gedge(1, 2)));
        assert_eq!(s.get(&Var::new("x")), Some(&Const::Int(1)));
        // y already bound to 2; matching E(y, y) against E(2, 3) must fail.
        assert!(!s
            .clone()
            .match_atom(&edge(Term::var("y"), Term::var("y")), &gedge(2, 3)));
        // ... but E(y, y) against E(2, 2) succeeds.
        assert!(s
            .clone()
            .match_atom(&edge(Term::var("y"), Term::var("y")), &gedge(2, 2)));
    }

    #[test]
    fn match_atom_respects_constants_and_predicates() {
        let mut s = Substitution::new();
        assert!(!s.match_atom(&edge(Term::int(5), Term::var("y")), &gedge(1, 2)));
        let other = GroundAtom::make("F", vec![Const::Int(1), Const::Int(2)]);
        assert!(!s.match_atom(&edge(Term::var("x"), Term::var("y")), &other));
    }

    #[test]
    fn matched_is_non_destructive() {
        let s = Substitution::new();
        let extended = s.matched(&edge(Term::var("x"), Term::var("y")), &gedge(4, 5));
        assert!(extended.is_some());
        assert!(s.is_empty());
    }

    #[test]
    fn enumerate_homomorphisms_path_of_length_two() {
        // Patterns: E(x, y), E(y, z) over the triangle {E(1,2), E(2,3), E(3,1)}.
        let facts = [gedge(1, 2), gedge(2, 3), gedge(3, 1)];
        let patterns = vec![
            edge(Term::var("x"), Term::var("y")),
            edge(Term::var("y"), Term::var("z")),
        ];
        let homs = match_atoms(&patterns, |_| facts.iter());
        // Every edge has exactly one successor edge in the triangle.
        assert_eq!(homs.len(), 3);
        for h in &homs {
            let x = h.get(&Var::new("x")).unwrap().as_int().unwrap();
            let y = h.get(&Var::new("y")).unwrap().as_int().unwrap();
            let z = h.get(&Var::new("z")).unwrap().as_int().unwrap();
            assert!(facts.contains(&gedge(x, y)));
            assert!(facts.contains(&gedge(y, z)));
        }
    }

    #[test]
    fn empty_pattern_list_yields_the_empty_substitution() {
        let facts: Vec<GroundAtom> = vec![];
        let homs = match_atoms(&[], |_| facts.iter());
        assert_eq!(homs.len(), 1);
        assert!(homs[0].is_empty());
    }

    #[test]
    fn indexed_matching_agrees_with_scan_matching() {
        let facts = [gedge(1, 2), gedge(2, 3), gedge(3, 1), gedge(2, 1)];
        let db = Database::from_atoms(facts.iter().cloned());
        let patterns = vec![
            edge(Term::var("x"), Term::var("y")),
            edge(Term::var("y"), Term::var("z")),
            edge(Term::var("z"), Term::var("x")),
        ];
        let mut scanned = match_atoms(&patterns, |_| facts.iter());
        let mut indexed = match_atoms_indexed(&patterns, &db);
        let key = |s: &Substitution| s.to_string();
        scanned.sort_by_key(key);
        indexed.sort_by_key(key);
        assert_eq!(scanned, indexed);
        assert!(!indexed.is_empty());
    }

    #[test]
    fn indexed_matching_handles_constants_and_empty_patterns() {
        let db = Database::from_atoms(vec![gedge(1, 2), gedge(1, 3)]);
        let patterns = vec![edge(Term::int(1), Term::var("y"))];
        assert_eq!(match_atoms_indexed(&patterns, &db).len(), 2);
        assert_eq!(match_atoms_indexed(&[], &db).len(), 1);
        let missing = vec![edge(Term::int(7), Term::var("y"))];
        assert!(match_atoms_indexed(&missing, &db).is_empty());
    }

    #[test]
    fn delta_matching_only_yields_homomorphisms_through_the_delta() {
        let total = Database::from_atoms(vec![gedge(1, 2), gedge(2, 3)]);
        let delta = Database::from_atoms(vec![gedge(2, 3)]);
        let patterns = vec![
            edge(Term::var("x"), Term::var("y")),
            edge(Term::var("y"), Term::var("z")),
        ];
        // Forcing position 0 into the delta: only E(2,3), E(3,?) — no match.
        assert!(match_atoms_delta(&patterns, 0, &total, &delta).is_empty());
        // Forcing position 1 into the delta: E(1,2), E(2,3) — one match.
        let homs = match_atoms_delta(&patterns, 1, &total, &delta);
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].get(&Var::new("x")), Some(&Const::Int(1)));
        assert_eq!(homs[0].get(&Var::new("z")), Some(&Const::Int(3)));
    }

    #[test]
    fn display_and_from_iterator() {
        let s: Substitution = vec![
            (Var::new("a"), Const::Int(1)),
            (Var::new("b"), Const::Int(2)),
        ]
        .into_iter()
        .collect();
        let shown = s.to_string();
        assert!(shown.contains("a -> 1"));
        assert!(shown.contains("b -> 2"));
        assert_eq!(s.iter().count(), 2);
    }
}

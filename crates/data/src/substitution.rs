//! Substitutions and homomorphism-style matching.
//!
//! The grounders of the paper (`Simple_Σ`, `Perfect_Σ`) extend ground
//! programs by matching the positive body literals of a rule against the set
//! of head atoms derived so far; formally this is a homomorphism from a set
//! of atoms to a set of ground atoms. [`Substitution`] implements the
//! variable assignment and [`match_atoms`] enumerates all homomorphisms.

use crate::atom::{Atom, GroundAtom};
use crate::term::{Term, Var};
use crate::value::Const;
use std::collections::BTreeMap;
use std::fmt;

/// A (partial) assignment of constants to variables.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Substitution {
    map: BTreeMap<Var, Const>,
}

impl Substitution {
    /// The empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `var` to `value`, overwriting any previous binding.
    pub fn bind(&mut self, var: Var, value: Const) {
        self.map.insert(var, value);
    }

    /// Look up the binding of `var`.
    pub fn get(&self, var: &Var) -> Option<&Const> {
        self.map.get(var)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the substitution empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Apply to a term: bound variables are replaced by their constants,
    /// unbound variables and constants are left untouched.
    pub fn apply_term(&self, term: &Term) -> Term {
        match term {
            Term::Const(c) => Term::Const(*c),
            Term::Var(v) => match self.map.get(v) {
                Some(c) => Term::Const(*c),
                None => Term::Var(*v),
            },
        }
    }

    /// Try to extend the substitution so that `pattern` maps to `target`.
    ///
    /// Returns `false` (leaving bindings possibly partially extended in a
    /// scratch copy discarded by the caller) if the match is impossible. Use
    /// [`Substitution::matched`] for a non-destructive variant.
    pub fn match_atom(&mut self, pattern: &Atom, target: &GroundAtom) -> bool {
        if pattern.predicate != target.predicate {
            return false;
        }
        for (t, c) in pattern.args.iter().zip(target.args.iter()) {
            match t {
                Term::Const(pc) => {
                    if pc != c {
                        return false;
                    }
                }
                Term::Var(v) => match self.map.get(v) {
                    Some(bound) => {
                        if bound != c {
                            return false;
                        }
                    }
                    None => {
                        self.map.insert(*v, *c);
                    }
                },
            }
        }
        true
    }

    /// Non-destructive matching: returns the extended substitution if
    /// `pattern` can be mapped onto `target` consistently with `self`.
    pub fn matched(&self, pattern: &Atom, target: &GroundAtom) -> Option<Substitution> {
        let mut next = self.clone();
        if next.match_atom(pattern, target) {
            Some(next)
        } else {
            None
        }
    }

    /// Iterate over the bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Const)> {
        self.map.iter()
    }
}

impl fmt::Display for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, c)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} -> {c}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(Var, Const)> for Substitution {
    fn from_iter<I: IntoIterator<Item = (Var, Const)>>(iter: I) -> Self {
        Substitution {
            map: iter.into_iter().collect(),
        }
    }
}

/// Enumerate all homomorphisms `h` with `h(patterns) ⊆ targets`, i.e. every
/// substitution that maps each pattern atom onto *some* atom of `targets`.
///
/// `targets` is accessed through the `candidates` closure so callers can use
/// an index (for example a per-predicate index of a [`crate::Database`]); the
/// closure receives a pattern atom and must return the ground atoms of the
/// target set with the same predicate.
pub fn match_atoms<'a, F, I>(patterns: &[Atom], candidates: F) -> Vec<Substitution>
where
    F: Fn(&Atom) -> I,
    I: IntoIterator<Item = &'a GroundAtom>,
{
    let mut results = Vec::new();
    let mut current = Substitution::new();
    match_rec(patterns, 0, &candidates, &mut current, &mut results);
    results
}

fn match_rec<'a, F, I>(
    patterns: &[Atom],
    idx: usize,
    candidates: &F,
    current: &mut Substitution,
    out: &mut Vec<Substitution>,
) where
    F: Fn(&Atom) -> I,
    I: IntoIterator<Item = &'a GroundAtom>,
{
    if idx == patterns.len() {
        out.push(current.clone());
        return;
    }
    let pattern = &patterns[idx];
    for target in candidates(pattern) {
        if let Some(mut extended) = current.matched(pattern, target) {
            std::mem::swap(current, &mut extended);
            match_rec(patterns, idx + 1, candidates, current, out);
            std::mem::swap(current, &mut extended);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(a: Term, b: Term) -> Atom {
        Atom::make("E", vec![a, b])
    }

    fn gedge(a: i64, b: i64) -> GroundAtom {
        GroundAtom::make("E", vec![Const::Int(a), Const::Int(b)])
    }

    #[test]
    fn binding_and_lookup() {
        let mut s = Substitution::new();
        assert!(s.is_empty());
        s.bind(Var::new("x"), Const::Int(1));
        assert_eq!(s.get(&Var::new("x")), Some(&Const::Int(1)));
        assert_eq!(s.get(&Var::new("y")), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn match_atom_consistency() {
        let mut s = Substitution::new();
        assert!(s.match_atom(&edge(Term::var("x"), Term::var("y")), &gedge(1, 2)));
        assert_eq!(s.get(&Var::new("x")), Some(&Const::Int(1)));
        // y already bound to 2; matching E(y, y) against E(2, 3) must fail.
        assert!(!s
            .clone()
            .match_atom(&edge(Term::var("y"), Term::var("y")), &gedge(2, 3)));
        // ... but E(y, y) against E(2, 2) succeeds.
        assert!(s
            .clone()
            .match_atom(&edge(Term::var("y"), Term::var("y")), &gedge(2, 2)));
    }

    #[test]
    fn match_atom_respects_constants_and_predicates() {
        let mut s = Substitution::new();
        assert!(!s.match_atom(&edge(Term::int(5), Term::var("y")), &gedge(1, 2)));
        let other = GroundAtom::make("F", vec![Const::Int(1), Const::Int(2)]);
        assert!(!s.match_atom(&edge(Term::var("x"), Term::var("y")), &other));
    }

    #[test]
    fn matched_is_non_destructive() {
        let s = Substitution::new();
        let extended = s.matched(&edge(Term::var("x"), Term::var("y")), &gedge(4, 5));
        assert!(extended.is_some());
        assert!(s.is_empty());
    }

    #[test]
    fn enumerate_homomorphisms_path_of_length_two() {
        // Patterns: E(x, y), E(y, z) over the triangle {E(1,2), E(2,3), E(3,1)}.
        let facts = [gedge(1, 2), gedge(2, 3), gedge(3, 1)];
        let patterns = vec![
            edge(Term::var("x"), Term::var("y")),
            edge(Term::var("y"), Term::var("z")),
        ];
        let homs = match_atoms(&patterns, |_| facts.iter());
        // Every edge has exactly one successor edge in the triangle.
        assert_eq!(homs.len(), 3);
        for h in &homs {
            let x = h.get(&Var::new("x")).unwrap().as_int().unwrap();
            let y = h.get(&Var::new("y")).unwrap().as_int().unwrap();
            let z = h.get(&Var::new("z")).unwrap().as_int().unwrap();
            assert!(facts.contains(&gedge(x, y)));
            assert!(facts.contains(&gedge(y, z)));
        }
    }

    #[test]
    fn empty_pattern_list_yields_the_empty_substitution() {
        let facts: Vec<GroundAtom> = vec![];
        let homs = match_atoms(&[], |_| facts.iter());
        assert_eq!(homs.len(), 1);
        assert!(homs[0].is_empty());
    }

    #[test]
    fn display_and_from_iterator() {
        let s: Substitution = vec![
            (Var::new("a"), Const::Int(1)),
            (Var::new("b"), Const::Int(2)),
        ]
        .into_iter()
        .collect();
        let shown = s.to_string();
        assert!(shown.contains("a -> 1"));
        assert!(shown.contains("b -> 2"));
        assert_eq!(s.iter().count(), 2);
    }
}

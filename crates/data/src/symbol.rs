//! String interning.
//!
//! Predicate names, constant symbols and variable names are interned into a
//! global, thread-safe [`Interner`] so that the rest of the workspace can
//! compare and hash them as `u32` handles ([`Symbol`]).
//!
//! Interned strings live for the lifetime of the process (they are leaked on
//! first interning), which lets [`Symbol::as_str`] hand out `&'static str`
//! without taking the interner lock or allocating — `Display` of atoms,
//! rules and databases sits on this path and used to allocate a fresh
//! `String` under a global lock per call.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// A handle to an interned string.
///
/// Symbols are cheap to copy, compare and hash. Two symbols are equal iff the
/// strings they intern are equal (interning is global per process).
///
/// Ordering is **lexicographic on the interned string**, not by interning
/// index: every canonical sort downstream (model-set event keys, program
/// fingerprints, golden JSON reports) goes through this `Ord`, and
/// interning-index order is an accident of process history — two processes
/// that compile programs in different orders must still render identical
/// canonical output. Equality stays the O(1) index compare.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl Symbol {
    /// Intern `name` and return its symbol.
    pub fn new(name: &str) -> Self {
        global().intern(name)
    }

    /// The raw index of this symbol in the global interner.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Resolve the symbol back to its string without allocating.
    pub fn as_str(self) -> &'static str {
        global().resolve(self)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::new(&s)
    }
}

/// A thread-safe string interner.
///
/// Most users never construct one directly: [`Symbol::new`] uses a global
/// instance. A standalone interner is still exposed for tests and tools that
/// need isolated symbol tables. Interned strings are leaked (they live until
/// process exit even if the interner is dropped); the set of distinct
/// predicate, variable and constant names is small and bounded in practice.
#[derive(Default)]
pub struct Interner {
    inner: RwLock<InternerInner>,
}

#[derive(Default)]
struct InternerInner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its (stable) symbol.
    pub fn intern(&self, name: &str) -> Symbol {
        {
            let guard = self.inner.read();
            if let Some(&idx) = guard.map.get(name) {
                return Symbol(idx);
            }
        }
        let mut guard = self.inner.write();
        if let Some(&idx) = guard.map.get(name) {
            return Symbol(idx);
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let idx = guard.strings.len() as u32;
        guard.strings.push(leaked);
        guard.map.insert(leaked, idx);
        Symbol(idx)
    }

    /// Resolve a symbol previously returned by [`Interner::intern`].
    ///
    /// # Panics
    ///
    /// Panics if the symbol was interned by a different interner and is out of
    /// range for this one.
    pub fn resolve(&self, sym: Symbol) -> &'static str {
        let guard = self.inner.read();
        guard.strings[sym.0 as usize]
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().strings.len()
    }

    /// Whether no strings have been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn global() -> &'static Interner {
    static GLOBAL: OnceLock<Interner> = OnceLock::new();
    GLOBAL.get_or_init(Interner::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("Router");
        let b = Symbol::new("Router");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "Router");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Symbol::new("Infected");
        let b = Symbol::new("Uninfected");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "Infected");
        assert_eq!(b.as_str(), "Uninfected");
    }

    #[test]
    fn as_str_is_stable_and_static() {
        let a = Symbol::new("StablePointer");
        let s1: &'static str = a.as_str();
        let s2: &'static str = a.as_str();
        // Same leaked allocation both times: no per-call String.
        assert!(std::ptr::eq(s1, s2));
    }

    #[test]
    fn standalone_interner_is_isolated() {
        let interner = Interner::new();
        let a = interner.intern("x");
        let b = interner.intern("y");
        let a2 = interner.intern("x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(interner.len(), 2);
        assert!(!interner.is_empty());
        assert_eq!(interner.resolve(b), "y");
    }

    #[test]
    fn display_and_debug_show_the_string() {
        let s = Symbol::new("Connected");
        assert_eq!(format!("{s}"), "Connected");
        assert_eq!(format!("{s:?}"), "\"Connected\"");
    }

    #[test]
    fn symbols_are_ordered_lexicographically() {
        // Interning order must not leak into the canonical order: `zeta`
        // interned before `alpha` still sorts after it.
        let a = Symbol::new("zeta-ordering-test");
        let b = Symbol::new("alpha-ordering-test");
        assert!(b < a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
        assert_eq!(
            a.partial_cmp(&b),
            Some(std::cmp::Ordering::Greater),
            "partial_cmp must agree with cmp"
        );
    }

    #[test]
    fn from_impls() {
        let a: Symbol = "FromStr".into();
        let b: Symbol = String::from("FromStr").into();
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let interner = std::sync::Arc::new(Interner::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let interner = interner.clone();
            handles.push(std::thread::spawn(move || {
                let mut syms = Vec::new();
                for i in 0..100 {
                    syms.push(interner.intern(&format!("sym{}", (i + t) % 50)));
                }
                syms
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // (i + t) % 50 always lies in 0..50, so exactly 50 distinct strings.
        assert_eq!(interner.len(), 50);
    }
}

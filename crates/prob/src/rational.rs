//! Exact rational arithmetic.
//!
//! Probabilities in the paper's examples are rational (`0.1`, `0.5`, `0.9²`),
//! and the headline numbers (e.g. `0.19` in Example 3.10) are exact rational
//! values. [`Rational`] provides `i128`-backed rationals with checked
//! arithmetic; the [`crate::Prob`] wrapper decides what to do on overflow.

use std::cmp::Ordering;
use std::fmt;

/// A rational number `num / den` in lowest terms with `den > 0`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Create a rational from numerator and denominator.
    ///
    /// Returns `None` if `den == 0`.
    pub fn new(num: i128, den: i128) -> Option<Self> {
        if den == 0 {
            return None;
        }
        Some(Self::normalised(num, den))
    }

    /// Create a rational from an integer.
    pub fn from_int(value: i128) -> Self {
        Rational { num: value, den: 1 }
    }

    fn normalised(num: i128, den: i128) -> Self {
        if num == 0 {
            return Rational { num: 0, den: 1 };
        }
        let sign = if (num < 0) != (den < 0) { -1 } else { 1 };
        let (num, den) = (num.unsigned_abs(), den.unsigned_abs());
        let g = gcd(num, den);
        Rational {
            num: sign * (num / g) as i128,
            den: (den / g) as i128,
        }
    }

    /// Parse a decimal literal such as `"0.1"`, `"3"`, `"-2.25"` into an
    /// exact rational. Scientific notation is not supported.
    pub fn from_decimal_str(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.is_empty() {
            return None;
        }
        let (sign, rest) = match s.strip_prefix('-') {
            Some(r) => (-1i128, r),
            None => (1i128, s.strip_prefix('+').unwrap_or(s)),
        };
        let mut parts = rest.splitn(2, '.');
        let int_part = parts.next()?;
        let frac_part = parts.next().unwrap_or("");
        if int_part.is_empty() && frac_part.is_empty() {
            return None;
        }
        if !int_part.chars().all(|c| c.is_ascii_digit())
            || !frac_part.chars().all(|c| c.is_ascii_digit())
        {
            return None;
        }
        let mut num: i128 = if int_part.is_empty() {
            0
        } else {
            int_part.parse().ok()?
        };
        let mut den: i128 = 1;
        for c in frac_part.chars() {
            num = num.checked_mul(10)?.checked_add((c as u8 - b'0') as i128)?;
            den = den.checked_mul(10)?;
        }
        Some(Self::normalised(sign * num, den))
    }

    /// Best-effort conversion of a float to an exact rational. Succeeds for
    /// floats with a short decimal representation (up to 12 fractional
    /// digits); used when distribution parameters arrive as `f64` constants.
    pub fn approximate_f64(value: f64) -> Option<Self> {
        if !value.is_finite() {
            return None;
        }
        // Render with enough precision and re-parse; check the round trip.
        for digits in 0..=12u32 {
            let s = format!("{value:.*}", digits as usize);
            if let Some(r) = Self::from_decimal_str(&s) {
                if (r.to_f64() - value).abs() <= f64::EPSILON * value.abs().max(1.0) {
                    return Some(r);
                }
            }
        }
        None
    }

    /// Numerator (in lowest terms, sign carried here).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Convert to `f64`.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Is this exactly zero?
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Is this strictly positive?
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Is this strictly negative?
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Checked addition. The denominators are reduced by their gcd before
    /// multiplying, so sums of many same-family fractions (e.g. the dyadic
    /// masses of a geometric support prefix) stay exact instead of
    /// overflowing `i128` at `den₁ · den₂`.
    pub fn checked_add(&self, other: &Rational) -> Option<Rational> {
        let g = gcd(self.den.unsigned_abs(), other.den.unsigned_abs()).max(1) as i128;
        let self_scale = other.den / g;
        let other_scale = self.den / g;
        let num = self
            .num
            .checked_mul(self_scale)?
            .checked_add(other.num.checked_mul(other_scale)?)?;
        let den = self.den.checked_mul(self_scale)?;
        Some(Self::normalised(num, den))
    }

    /// Checked subtraction.
    pub fn checked_sub(&self, other: &Rational) -> Option<Rational> {
        self.checked_add(&other.neg())
    }

    /// Checked multiplication.
    pub fn checked_mul(&self, other: &Rational) -> Option<Rational> {
        // Cross-reduce first to keep the intermediate values small.
        let g1 = gcd(self.num.unsigned_abs(), other.den.unsigned_abs()).max(1);
        let g2 = gcd(other.num.unsigned_abs(), self.den.unsigned_abs()).max(1);
        let num = (self.num / g1 as i128).checked_mul(other.num / g2 as i128)?;
        let den = (self.den / g2 as i128).checked_mul(other.den / g1 as i128)?;
        Some(Self::normalised(num, den))
    }

    /// Checked division.
    pub fn checked_div(&self, other: &Rational) -> Option<Rational> {
        if other.is_zero() {
            return None;
        }
        self.checked_mul(&Rational {
            num: other.den * other.num.signum(),
            den: other.num.abs(),
        })
    }

    /// Negation.
    pub fn neg(&self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }

    /// `1 - self`, if representable.
    pub fn complement(&self) -> Option<Rational> {
        Rational::ONE.checked_sub(self)
    }

    /// Checked integer power.
    pub fn checked_pow(&self, exp: u32) -> Option<Rational> {
        let mut acc = Rational::ONE;
        for _ in 0..exp {
            acc = acc.checked_mul(self)?;
        }
        Some(acc)
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    if a == 0 {
        return b.max(1);
    }
    if b == 0 {
        return a;
    }
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Compare a/b vs c/d by a*d vs c*b, falling back to f64 on overflow.
        match (
            self.num.checked_mul(other.den),
            other.num.checked_mul(self.den),
        ) {
            (Some(l), Some(r)) => l.cmp(&r),
            _ => self
                .to_f64()
                .partial_cmp(&other.to_f64())
                .unwrap_or(Ordering::Equal),
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(v as i128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d).unwrap()
    }

    #[test]
    fn construction_normalises() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), Rational::ZERO);
        assert!(Rational::new(1, 0).is_none());
        assert_eq!(r(1, 2).numer(), 1);
        assert_eq!(r(1, 2).denom(), 2);
    }

    #[test]
    fn decimal_parsing() {
        assert_eq!(Rational::from_decimal_str("0.1"), Some(r(1, 10)));
        assert_eq!(Rational::from_decimal_str("0.5"), Some(r(1, 2)));
        assert_eq!(Rational::from_decimal_str("3"), Some(r(3, 1)));
        assert_eq!(Rational::from_decimal_str("-2.25"), Some(r(-9, 4)));
        assert_eq!(Rational::from_decimal_str("+0.75"), Some(r(3, 4)));
        assert_eq!(Rational::from_decimal_str(".5"), Some(r(1, 2)));
        assert_eq!(Rational::from_decimal_str("1."), Some(r(1, 1)));
        assert_eq!(Rational::from_decimal_str(""), None);
        assert_eq!(Rational::from_decimal_str("."), None);
        assert_eq!(Rational::from_decimal_str("1e5"), None);
        assert_eq!(Rational::from_decimal_str("abc"), None);
    }

    #[test]
    fn approximate_f64_round_trips_short_decimals() {
        assert_eq!(Rational::approximate_f64(0.1), Some(r(1, 10)));
        assert_eq!(Rational::approximate_f64(0.5), Some(r(1, 2)));
        assert_eq!(Rational::approximate_f64(2.0), Some(r(2, 1)));
        assert_eq!(Rational::approximate_f64(f64::NAN), None);
    }

    #[test]
    fn arithmetic_matches_paper_example_3_10() {
        // Pr(Σ) = Flip⟨0.1⟩(0)² = 0.9² = 0.81; the domination probability is
        // 1 − 0.81 = 0.19.
        let p_zero = r(9, 10);
        let pr = p_zero.checked_mul(&p_zero).unwrap();
        assert_eq!(pr, r(81, 100));
        let domination = Rational::ONE.checked_sub(&pr).unwrap();
        assert_eq!(domination, r(19, 100));
        assert_eq!(domination.to_f64(), 0.19);
    }

    #[test]
    fn add_sub_mul_div() {
        assert_eq!(r(1, 3).checked_add(&r(1, 6)).unwrap(), r(1, 2));
        assert_eq!(r(1, 2).checked_sub(&r(1, 3)).unwrap(), r(1, 6));
        assert_eq!(r(2, 3).checked_mul(&r(3, 4)).unwrap(), r(1, 2));
        assert_eq!(r(1, 2).checked_div(&r(1, 4)).unwrap(), r(2, 1));
        assert!(r(1, 2).checked_div(&Rational::ZERO).is_none());
        assert_eq!(r(1, 2).neg(), r(-1, 2));
        assert_eq!(r(1, 4).complement().unwrap(), r(3, 4));
        assert_eq!(r(1, 2).checked_pow(3).unwrap(), r(1, 8));
        assert_eq!(r(7, 3).checked_pow(0).unwrap(), Rational::ONE);
    }

    #[test]
    fn overflow_is_detected() {
        let huge = Rational::from_int(i128::MAX / 2);
        assert!(huge.checked_mul(&huge).is_none());
        assert!(huge.checked_add(&huge).is_some());
        let huge2 = Rational::from_int(i128::MAX - 1);
        assert!(huge2.checked_add(&huge2).is_none());
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < Rational::ZERO);
        assert!(r(3, 2) > Rational::ONE);
        let mut v = vec![r(1, 2), r(1, 3), Rational::ONE, Rational::ZERO];
        v.sort();
        assert_eq!(v, vec![Rational::ZERO, r(1, 3), r(1, 2), Rational::ONE]);
    }

    #[test]
    fn predicates_and_display() {
        assert!(Rational::ZERO.is_zero());
        assert!(r(1, 2).is_positive());
        assert!(r(-1, 2).is_negative());
        assert_eq!(r(3, 1).to_string(), "3");
        assert_eq!(r(1, 2).to_string(), "1/2");
        assert_eq!(Rational::from(4i64), r(4, 1));
    }

    #[test]
    fn cross_reduction_avoids_spurious_overflow() {
        // (big/1) * (1/big) = 1 must not overflow thanks to cross-reduction.
        let big = i128::MAX / 3;
        let a = Rational::from_int(big);
        let b = r(1, big);
        assert_eq!(a.checked_mul(&b).unwrap(), Rational::ONE);
    }
}

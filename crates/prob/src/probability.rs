//! Probability values.
//!
//! A [`Prob`] is a probability that is kept as an exact [`Rational`] whenever
//! possible and degrades *explicitly* to an `f64` approximation when an exact
//! representation is unavailable (irrational parameters, `i128` overflow in a
//! very long product). All of the paper's worked examples stay exact.

use crate::rational::Rational;
use std::cmp::Ordering;
use std::fmt;

/// A probability value in `[0, 1]` (not enforced structurally; see
/// [`Prob::is_valid_probability`]), exact when possible.
#[derive(Clone, Copy, Debug)]
pub enum Prob {
    /// An exact rational probability.
    Exact(Rational),
    /// An `f64` approximation (produced by overflow or irrational inputs).
    Approx(f64),
}

impl Prob {
    /// Exactly zero.
    pub const ZERO: Prob = Prob::Exact(Rational::ZERO);
    /// Exactly one.
    pub const ONE: Prob = Prob::Exact(Rational::ONE);

    /// An exact probability from a rational.
    pub fn exact(r: Rational) -> Self {
        Prob::Exact(r)
    }

    /// An exact probability `num/den`. Panics if `den == 0`.
    pub fn ratio(num: i128, den: i128) -> Self {
        Prob::Exact(Rational::new(num, den).expect("denominator must be non-zero"))
    }

    /// A probability from a float, promoted to exact if the float has a short
    /// decimal representation (0.1, 0.25, ...), which covers the typical way
    /// distribution parameters are written.
    pub fn from_f64(value: f64) -> Self {
        match Rational::approximate_f64(value) {
            Some(r) => Prob::Exact(r),
            None => Prob::Approx(value),
        }
    }

    /// Is this value exact?
    pub fn is_exact(&self) -> bool {
        matches!(self, Prob::Exact(_))
    }

    /// Convert to `f64`.
    pub fn to_f64(&self) -> f64 {
        match self {
            Prob::Exact(r) => r.to_f64(),
            Prob::Approx(v) => *v,
        }
    }

    /// The exact rational value, if this probability is exact.
    pub fn as_exact(&self) -> Option<Rational> {
        match self {
            Prob::Exact(r) => Some(*r),
            Prob::Approx(_) => None,
        }
    }

    /// Is this probability zero (exactly, or numerically for approximations)?
    pub fn is_zero(&self) -> bool {
        match self {
            Prob::Exact(r) => r.is_zero(),
            Prob::Approx(v) => *v == 0.0,
        }
    }

    /// Is this probability strictly positive?
    pub fn is_positive(&self) -> bool {
        self.to_f64() > 0.0 || matches!(self, Prob::Exact(r) if r.is_positive())
    }

    /// Does the value lie in `[0, 1]` (within a small tolerance for
    /// approximations)?
    pub fn is_valid_probability(&self) -> bool {
        let v = self.to_f64();
        (-1e-12..=1.0 + 1e-12).contains(&v)
    }

    /// Multiplication, staying exact when both operands are exact and the
    /// product does not overflow.
    pub fn mul(&self, other: &Prob) -> Prob {
        match (self, other) {
            (Prob::Exact(a), Prob::Exact(b)) => match a.checked_mul(b) {
                Some(r) => Prob::Exact(r),
                None => Prob::Approx(a.to_f64() * b.to_f64()),
            },
            _ => Prob::Approx(self.to_f64() * other.to_f64()),
        }
    }

    /// Addition, staying exact when possible.
    pub fn add(&self, other: &Prob) -> Prob {
        match (self, other) {
            (Prob::Exact(a), Prob::Exact(b)) => match a.checked_add(b) {
                Some(r) => Prob::Exact(r),
                None => Prob::Approx(a.to_f64() + b.to_f64()),
            },
            _ => Prob::Approx(self.to_f64() + other.to_f64()),
        }
    }

    /// Subtraction, staying exact when possible.
    pub fn sub(&self, other: &Prob) -> Prob {
        match (self, other) {
            (Prob::Exact(a), Prob::Exact(b)) => match a.checked_sub(b) {
                Some(r) => Prob::Exact(r),
                None => Prob::Approx(a.to_f64() - b.to_f64()),
            },
            _ => Prob::Approx(self.to_f64() - other.to_f64()),
        }
    }

    /// `1 - self`.
    pub fn complement(&self) -> Prob {
        Prob::ONE.sub(self)
    }

    /// Division, staying exact when both operands are exact and the quotient
    /// does not overflow. Returns `None` when `other` is zero.
    ///
    /// Exact division goes through [`Rational::checked_div`], whose
    /// cross-reduction keeps deep quotients of dyadic masses (e.g. a joint
    /// mass over a conditioning mass, both with denominator `2^100`) exact
    /// instead of silently overflowing to floats.
    pub fn div(&self, other: &Prob) -> Option<Prob> {
        if other.is_zero() {
            return None;
        }
        Some(match (self, other) {
            (Prob::Exact(a), Prob::Exact(b)) => match a.checked_div(b) {
                Some(r) => Prob::Exact(r),
                None => Prob::Approx(a.to_f64() / b.to_f64()),
            },
            _ => Prob::Approx(self.to_f64() / other.to_f64()),
        })
    }

    /// Product of an iterator of probabilities (1 for the empty product).
    pub fn product<I: IntoIterator<Item = Prob>>(iter: I) -> Prob {
        iter.into_iter().fold(Prob::ONE, |acc, p| acc.mul(&p))
    }

    /// Sum of an iterator of probabilities (0 for the empty sum).
    pub fn sum<I: IntoIterator<Item = Prob>>(iter: I) -> Prob {
        iter.into_iter().fold(Prob::ZERO, |acc, p| acc.add(&p))
    }

    /// Approximate equality: exact values are compared exactly, otherwise the
    /// absolute difference must be below `tol`.
    pub fn approx_eq(&self, other: &Prob, tol: f64) -> bool {
        match (self, other) {
            (Prob::Exact(a), Prob::Exact(b)) => a == b,
            _ => (self.to_f64() - other.to_f64()).abs() <= tol,
        }
    }

    /// A *total* order on probabilities, for deterministic sorting.
    ///
    /// The order is lexicographic on `(f64 value, exactness, rational)`:
    /// first [`f64::total_cmp`] on the rounded values (which — unlike
    /// `partial_cmp(..).unwrap_or(Equal)` — never invents spurious
    /// equalities for NaN), then exact-before-approximate among equal
    /// roundings, then rational comparison between two exact values. The
    /// first key never disagrees with the third (rational → f64 rounding is
    /// monotone), so restricted to exact values this *is* the rational
    /// order — dyadic ties and values that differ only past `f64` precision
    /// sort identically on every platform — while the lexicographic shape
    /// keeps the order transitive even when exact and approximate values
    /// mix (comparing the mixed pair by `f64` alone would let `a < b` by
    /// rationals and `a = x = b` by rounding coexist, a comparator cycle
    /// that `sort_by` may punish with a panic).
    pub fn total_cmp(&self, other: &Prob) -> Ordering {
        self.to_f64()
            .total_cmp(&other.to_f64())
            .then_with(|| match (self, other) {
                (Prob::Exact(a), Prob::Exact(b)) => a.cmp(b),
                (Prob::Exact(_), Prob::Approx(_)) => Ordering::Less,
                (Prob::Approx(_), Prob::Exact(_)) => Ordering::Greater,
                (Prob::Approx(_), Prob::Approx(_)) => Ordering::Equal,
            })
    }
}

impl PartialEq for Prob {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Prob::Exact(a), Prob::Exact(b)) => a == b,
            _ => self.to_f64() == other.to_f64(),
        }
    }
}

impl PartialOrd for Prob {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match (self, other) {
            (Prob::Exact(a), Prob::Exact(b)) => Some(a.cmp(b)),
            _ => self.to_f64().partial_cmp(&other.to_f64()),
        }
    }
}

impl fmt::Display for Prob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prob::Exact(r) => write!(f, "{r}"),
            Prob::Approx(v) => write!(f, "≈{v}"),
        }
    }
}

impl From<Rational> for Prob {
    fn from(r: Rational) -> Self {
        Prob::Exact(r)
    }
}

impl From<f64> for Prob {
    fn from(v: f64) -> Self {
        Prob::from_f64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d).unwrap()
    }

    #[test]
    fn total_cmp_is_exact_and_total() {
        use std::cmp::Ordering;
        // Rational comparison even where f64 cannot tell the values apart.
        let tiny = Prob::exact(r(1, i128::MAX / 2));
        let tinier = Prob::exact(r(1, i128::MAX / 2 + 1));
        assert_eq!(tiny.to_f64(), tinier.to_f64());
        assert_eq!(tiny.total_cmp(&tinier), Ordering::Greater);
        assert_eq!(tinier.total_cmp(&tiny), Ordering::Less);
        assert_eq!(tiny.total_cmp(&tiny), Ordering::Equal);
        // Mixed exact/approx compares by f64 first.
        assert_eq!(
            Prob::ratio(1, 2).total_cmp(&Prob::Approx(0.25)),
            Ordering::Greater
        );
        assert_eq!(
            Prob::Approx(0.25).total_cmp(&Prob::ratio(1, 2)),
            Ordering::Less
        );
        // No comparator cycle when exact values that round identically mix
        // with an approximate value at that very rounding: the order is
        // lexicographic (f64, exactness, rational), hence transitive.
        let x = Prob::Approx(tiny.to_f64());
        let mut all = [x, tiny, tinier];
        all.sort_by(Prob::total_cmp);
        assert_eq!(all, [tinier, tiny, x]);
        for a in &all {
            for b in &all {
                assert_eq!(a.total_cmp(b), b.total_cmp(a).reverse());
            }
        }
    }

    #[test]
    fn exact_construction_and_conversion() {
        let p = Prob::ratio(1, 10);
        assert!(p.is_exact());
        assert_eq!(p.to_f64(), 0.1);
        assert_eq!(p.as_exact(), Some(r(1, 10)));
        assert!(Prob::ZERO.is_zero());
        assert!(!Prob::ZERO.is_positive());
        assert!(Prob::ONE.is_positive());
    }

    #[test]
    fn from_f64_promotes_short_decimals() {
        assert!(Prob::from_f64(0.1).is_exact());
        assert!(Prob::from_f64(0.25).is_exact());
        let irrational = Prob::from_f64(std::f64::consts::FRAC_1_SQRT_2);
        // 1/sqrt(2) has no short decimal representation.
        assert!(!irrational.is_exact() || irrational.as_exact().is_none());
    }

    #[test]
    fn network_resilience_numbers_are_exact() {
        // Example 3.10: 1 − 0.9² = 0.19.
        let q = Prob::ratio(9, 10);
        let pr_sigma = q.mul(&q);
        assert_eq!(pr_sigma.as_exact(), Some(r(81, 100)));
        let domination = pr_sigma.complement();
        assert_eq!(domination.as_exact(), Some(r(19, 100)));
        assert_eq!(domination.to_f64(), 0.19);
    }

    #[test]
    fn arithmetic_and_aggregation() {
        let half = Prob::ratio(1, 2);
        let quarter = Prob::ratio(1, 4);
        assert_eq!(half.add(&quarter), Prob::ratio(3, 4));
        assert_eq!(half.sub(&quarter), Prob::ratio(1, 4));
        assert_eq!(half.mul(&quarter), Prob::ratio(1, 8));
        assert_eq!(Prob::product(vec![half, half, half]), Prob::ratio(1, 8));
        assert_eq!(Prob::sum(vec![quarter, quarter]), half);
        assert_eq!(Prob::product(Vec::<Prob>::new()), Prob::ONE);
        assert_eq!(Prob::sum(Vec::<Prob>::new()), Prob::ZERO);
    }

    #[test]
    fn division_is_exact_and_guards_zero() {
        let half = Prob::ratio(1, 2);
        let quarter = Prob::ratio(1, 4);
        assert_eq!(quarter.div(&half), Some(half));
        assert_eq!(half.div(&Prob::ONE), Some(half));
        assert!(half.div(&Prob::ZERO).is_none());
        assert!(half.div(&Prob::Approx(0.0)).is_none());
        // Mixed exact/approx degrades explicitly.
        let mixed = half.div(&Prob::Approx(0.25)).unwrap();
        assert!(!mixed.is_exact());
        assert!((mixed.to_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn deep_dyadic_quotients_stay_exact() {
        // Joint and conditioning masses with denominator 2^100 (far past
        // i128 cross-multiplication range): the quotient must reduce
        // exactly, not overflow to a float.
        let dyadic = |num: i128| {
            Prob::exact((0..100).fold(r(num, 1), |acc, _| {
                acc.checked_mul(&r(1, 2)).expect("2^100 fits i128")
            }))
        };
        let joint = dyadic(3);
        let given = dyadic(5);
        let q = joint.div(&given).unwrap();
        assert!(q.is_exact(), "deep dyadic quotient overflowed to float");
        assert_eq!(q, Prob::ratio(3, 5));
        // Self-division at the extreme is exactly one.
        assert_eq!(joint.div(&joint), Some(Prob::ONE));
        // And products of 100 halves stay exact end to end.
        let p = Prob::product(std::iter::repeat_n(Prob::ratio(1, 2), 100));
        assert!(p.is_exact());
        assert_eq!(p.div(&p), Some(Prob::ONE));
    }

    #[test]
    fn mixed_arithmetic_degrades_to_approx() {
        let exact = Prob::ratio(1, 2);
        let approx = Prob::Approx(0.3333333333333333);
        let prod = exact.mul(&approx);
        assert!(!prod.is_exact());
        assert!((prod.to_f64() - 0.16666666666666666).abs() < 1e-12);
    }

    #[test]
    fn overflow_degrades_to_approx() {
        let tiny = Prob::ratio(1, i128::MAX / 2);
        let product = tiny.mul(&tiny);
        assert!(!product.is_exact());
        assert!(product.to_f64() >= 0.0);
    }

    #[test]
    fn comparisons() {
        assert!(Prob::ratio(1, 3) < Prob::ratio(1, 2));
        assert!(Prob::ratio(1, 2) <= Prob::from_f64(0.5));
        assert_eq!(Prob::ratio(2, 4), Prob::ratio(1, 2));
        assert!(Prob::ratio(19, 100).approx_eq(&Prob::from_f64(0.19), 1e-12));
        assert!(Prob::Approx(0.5).approx_eq(&Prob::ratio(1, 2), 1e-9));
        assert!(!Prob::ratio(1, 2).approx_eq(&Prob::ratio(1, 3), 1e-9));
    }

    #[test]
    fn validity_range() {
        assert!(Prob::ratio(1, 2).is_valid_probability());
        assert!(Prob::ONE.is_valid_probability());
        assert!(Prob::ZERO.is_valid_probability());
        assert!(!Prob::ratio(3, 2).is_valid_probability());
        assert!(!Prob::Approx(-0.5).is_valid_probability());
    }

    #[test]
    fn display_and_from() {
        assert_eq!(Prob::ratio(1, 2).to_string(), "1/2");
        assert!(Prob::Approx(0.25).to_string().starts_with('≈'));
        let p: Prob = r(1, 3).into();
        assert_eq!(p, Prob::ratio(1, 3));
        let p: Prob = 0.75f64.into();
        assert_eq!(p, Prob::ratio(3, 4));
    }
}

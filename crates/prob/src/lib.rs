//! # gdlog-prob — probability substrate
//!
//! Implements Section 2 ("Probability Spaces") and Appendix B of *Generative
//! Datalog with Stable Negation*:
//!
//! * [`Rational`] — exact rational arithmetic over `i128` with checked
//!   operations,
//! * [`Prob`] — probability values that stay exact whenever possible and
//!   degrade explicitly to `f64`,
//! * [`Distribution`] — the parameterized numerical discrete probability
//!   distributions `δ⟨p̄⟩` of the paper (Flip, the biased Die of Appendix B,
//!   Categorical, UniformInt, Geometric),
//! * [`DeltaRegistry`] — the finite set Δ of distributions a program may use,
//! * [`DiscreteSpace`] — discrete probability spaces `(Ω, P)` and event
//!   partitions used to build the output space of a program,
//! * [`FactoredSpace`] — products of independent discrete spaces that are
//!   never materialized into a flat cross product,
//! * [`sampler`] — random sampling from parameterized distributions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distribution;
pub mod factored;
pub mod probability;
pub mod rational;
pub mod registry;
pub mod sampler;
pub mod space;

pub use distribution::{DistError, Distribution, Support};
pub use factored::FactoredSpace;
pub use probability::Prob;
pub use rational::Rational;
pub use registry::DeltaRegistry;
pub use sampler::sample_distribution;
pub use space::{DiscreteSpace, EventPartition};

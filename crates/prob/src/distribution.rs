//! Parameterized numerical discrete probability distributions.
//!
//! A parameterized probability distribution `δ : R^k → P_Ω` (Section 2 of the
//! paper) maps a parameter tuple `p̄` to a discrete distribution `δ⟨p̄⟩` over a
//! numerical sample space `Ω ⊆ R`. The finite set Δ of such distributions a
//! program may mention is collected in a [`crate::DeltaRegistry`].
//!
//! The built-in distributions are:
//!
//! * [`Distribution::Flip`] — `Flip⟨p⟩(1) = p`, `Flip⟨p⟩(0) = 1 − p`
//!   (Example 3.1 and the coin program of §3),
//! * [`Distribution::Die`] — the biased die of Appendix B: parameters
//!   `p1..p6`; if they sum to 1 the outcomes `1..6` get those probabilities
//!   and `0` gets probability 0, otherwise outcome `0` gets probability 1,
//! * [`Distribution::Categorical`] — outcomes `1..k` with the given weights
//!   (same invalid-parameter convention as `Die`),
//! * [`Distribution::UniformInt`] — uniform over the integer range `[lo, hi]`,
//! * [`Distribution::Geometric`] — `P(k) = (1−p)^k · p` over `k = 0, 1, 2, …`,
//!   a countably *infinite* support used to exercise the error event
//!   machinery of the semantics.

use crate::probability::Prob;
use crate::rational::Rational;
use gdlog_data::Const;
use std::fmt;

/// Errors raised when evaluating a distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// The number of parameters does not match the distribution's dimension.
    WrongParameterCount {
        /// Distribution name.
        distribution: String,
        /// Expected number of parameters (`None` = any positive number).
        expected: Option<usize>,
        /// Number supplied.
        actual: usize,
    },
    /// A parameter value is invalid (e.g. a probability outside `[0,1]`, or a
    /// non-numeric constant).
    InvalidParameter {
        /// Distribution name.
        distribution: String,
        /// Description of the problem.
        message: String,
    },
    /// The requested distribution name is not registered in Δ.
    UnknownDistribution(String),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::WrongParameterCount {
                distribution,
                expected,
                actual,
            } => match expected {
                Some(e) => write!(f, "{distribution}: expected {e} parameter(s), got {actual}"),
                None => write!(
                    f,
                    "{distribution}: expected a positive number of parameters, got {actual}"
                ),
            },
            DistError::InvalidParameter {
                distribution,
                message,
            } => write!(f, "{distribution}: invalid parameter: {message}"),
            DistError::UnknownDistribution(name) => {
                write!(f, "unknown distribution: {name}")
            }
        }
    }
}

impl std::error::Error for DistError {}

/// The support of an instantiated distribution `δ⟨p̄⟩`.
#[derive(Debug, Clone, PartialEq)]
pub enum Support {
    /// A finite support: every outcome with a strictly positive probability.
    Finite(Vec<(Const, Prob)>),
    /// A countably infinite support; use [`Distribution::enumerate`] to list
    /// a prefix of it.
    CountablyInfinite,
}

impl Support {
    /// Is the support finite?
    pub fn is_finite(&self) -> bool {
        matches!(self, Support::Finite(_))
    }

    /// The outcomes if the support is finite.
    pub fn outcomes(&self) -> Option<&[(Const, Prob)]> {
        match self {
            Support::Finite(v) => Some(v),
            Support::CountablyInfinite => None,
        }
    }
}

/// A parameterized numerical discrete probability distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// `Flip⟨p⟩` over `{0, 1}` with `P(1) = p`.
    Flip,
    /// The biased die of Appendix B over `{0, …, 6}` with parameters
    /// `p1..p6`.
    Die,
    /// `Categorical⟨p1..pk⟩` over `{1..k}` (and `0` for invalid parameters).
    Categorical,
    /// `UniformInt⟨lo, hi⟩` uniform over the integers `lo..=hi`.
    UniformInt,
    /// `Geometric⟨p⟩` over `{0, 1, 2, …}` with `P(k) = (1−p)^k p`.
    Geometric,
}

impl Distribution {
    /// The distribution's canonical name (as used in the surface syntax).
    pub fn name(&self) -> &'static str {
        match self {
            Distribution::Flip => "Flip",
            Distribution::Die => "Die",
            Distribution::Categorical => "Categorical",
            Distribution::UniformInt => "UniformInt",
            Distribution::Geometric => "Geometric",
        }
    }

    /// The parameter dimension `k`; `None` means any positive number of
    /// parameters is accepted (Categorical).
    pub fn param_dim(&self) -> Option<usize> {
        match self {
            Distribution::Flip => Some(1),
            Distribution::Die => Some(6),
            Distribution::Categorical => None,
            Distribution::UniformInt => Some(2),
            Distribution::Geometric => Some(1),
        }
    }

    /// Does `δ⟨p̄⟩` have a finite support for every valid `p̄`?
    pub fn has_finite_support(&self) -> bool {
        !matches!(self, Distribution::Geometric)
    }

    fn check_param_count(&self, params: &[Const]) -> Result<(), DistError> {
        let ok = match self.param_dim() {
            Some(k) => params.len() == k,
            None => !params.is_empty(),
        };
        if ok {
            Ok(())
        } else {
            Err(DistError::WrongParameterCount {
                distribution: self.name().to_owned(),
                expected: self.param_dim(),
                actual: params.len(),
            })
        }
    }

    /// The probability mass `δ⟨p̄⟩(o)` of outcome `o`.
    pub fn pmf(&self, params: &[Const], outcome: &Const) -> Result<Prob, DistError> {
        self.check_param_count(params)?;
        match self {
            Distribution::Flip => {
                let p = prob_param(self, &params[0])?;
                match outcome.as_int() {
                    Some(1) => Ok(p),
                    Some(0) => Ok(p.complement()),
                    _ => Ok(Prob::ZERO),
                }
            }
            Distribution::Die => weighted_pmf(self, params, 6, outcome),
            Distribution::Categorical => weighted_pmf(self, params, params.len(), outcome),
            Distribution::UniformInt => {
                let (lo, hi) = int_range(self, params)?;
                match outcome.as_int() {
                    Some(v) if v >= lo && v <= hi => Ok(Prob::ratio(1, (hi - lo + 1) as i128)),
                    _ => Ok(Prob::ZERO),
                }
            }
            Distribution::Geometric => {
                let p = prob_param(self, &params[0])?;
                if !p.is_positive() {
                    return Err(DistError::InvalidParameter {
                        distribution: self.name().to_owned(),
                        message: "geometric parameter must be positive".to_owned(),
                    });
                }
                match outcome.as_int() {
                    Some(k) if k >= 0 => {
                        let q = p.complement();
                        let mut mass = p;
                        for _ in 0..k {
                            mass = mass.mul(&q);
                        }
                        Ok(mass)
                    }
                    _ => Ok(Prob::ZERO),
                }
            }
        }
    }

    /// The support of `δ⟨p̄⟩`: all outcomes with strictly positive
    /// probability, or [`Support::CountablyInfinite`].
    pub fn support(&self, params: &[Const]) -> Result<Support, DistError> {
        self.check_param_count(params)?;
        match self {
            Distribution::Geometric => Ok(Support::CountablyInfinite),
            _ => {
                let all = self.enumerate(params, usize::MAX)?;
                Ok(Support::Finite(all))
            }
        }
    }

    /// Enumerate up to `max_outcomes` outcomes of `δ⟨p̄⟩` with strictly
    /// positive probability, in a canonical order (by outcome value for
    /// finite supports; by increasing `k` for the geometric distribution).
    pub fn enumerate(
        &self,
        params: &[Const],
        max_outcomes: usize,
    ) -> Result<Vec<(Const, Prob)>, DistError> {
        self.check_param_count(params)?;
        let mut out = Vec::new();
        match self {
            Distribution::Flip => {
                let p = prob_param(self, &params[0])?;
                push_positive(&mut out, Const::Int(0), p.complement());
                push_positive(&mut out, Const::Int(1), p);
            }
            Distribution::Die => {
                enumerate_weighted(self, params, 6, &mut out)?;
            }
            Distribution::Categorical => {
                enumerate_weighted(self, params, params.len(), &mut out)?;
            }
            Distribution::UniformInt => {
                let (lo, hi) = int_range(self, params)?;
                let mass = Prob::ratio(1, (hi - lo + 1) as i128);
                for v in lo..=hi {
                    push_positive(&mut out, Const::Int(v), mass);
                    if out.len() >= max_outcomes {
                        break;
                    }
                }
            }
            Distribution::Geometric => {
                let p = prob_param(self, &params[0])?;
                if !p.is_positive() {
                    return Err(DistError::InvalidParameter {
                        distribution: self.name().to_owned(),
                        message: "geometric parameter must be positive".to_owned(),
                    });
                }
                let q = p.complement();
                let mut mass = p;
                let mut k: i64 = 0;
                while (k as usize) < max_outcomes && mass.is_positive() {
                    out.push((Const::Int(k), mass));
                    mass = mass.mul(&q);
                    k += 1;
                }
            }
        }
        out.truncate(max_outcomes);
        Ok(out)
    }

    /// Validate a parameter tuple without evaluating anything else.
    pub fn validate_params(&self, params: &[Const]) -> Result<(), DistError> {
        // Enumerating the first outcome exercises all parameter checks.
        self.enumerate(params, 1).map(|_| ())
    }
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

fn push_positive(out: &mut Vec<(Const, Prob)>, value: Const, mass: Prob) {
    if mass.is_positive() {
        out.push((value, mass));
    }
}

/// Interpret a constant as a probability parameter.
fn prob_param(dist: &Distribution, value: &Const) -> Result<Prob, DistError> {
    let p = match value {
        Const::Int(i) => Prob::exact(Rational::from_int(*i as i128)),
        Const::Real(r) => Prob::from_f64(*r),
        Const::Bool(b) => Prob::exact(if *b { Rational::ONE } else { Rational::ZERO }),
        Const::Sym(_) => {
            return Err(DistError::InvalidParameter {
                distribution: dist.name().to_owned(),
                message: format!("symbolic constant {value} is not a probability"),
            })
        }
    };
    if p.is_valid_probability() {
        Ok(p)
    } else {
        Err(DistError::InvalidParameter {
            distribution: dist.name().to_owned(),
            message: format!("{value} is not in [0, 1]"),
        })
    }
}

fn int_range(dist: &Distribution, params: &[Const]) -> Result<(i64, i64), DistError> {
    let lo = params[0]
        .as_int()
        .ok_or_else(|| DistError::InvalidParameter {
            distribution: dist.name().to_owned(),
            message: format!("lower bound {} is not an integer", params[0]),
        })?;
    let hi = params[1]
        .as_int()
        .ok_or_else(|| DistError::InvalidParameter {
            distribution: dist.name().to_owned(),
            message: format!("upper bound {} is not an integer", params[1]),
        })?;
    if lo > hi {
        return Err(DistError::InvalidParameter {
            distribution: dist.name().to_owned(),
            message: format!("empty range [{lo}, {hi}]"),
        });
    }
    Ok((lo, hi))
}

/// Weighted distribution over `{1..k}` with the Appendix-B convention: if the
/// weights do not sum to 1, all mass moves to the outcome `0`.
fn weighted_pmf(
    dist: &Distribution,
    params: &[Const],
    k: usize,
    outcome: &Const,
) -> Result<Prob, DistError> {
    let weights = weights(dist, params, k)?;
    let valid = weights_sum_to_one(&weights);
    match outcome.as_int() {
        Some(0) => Ok(if valid { Prob::ZERO } else { Prob::ONE }),
        Some(i) if i >= 1 && (i as usize) <= k => Ok(if valid {
            weights[(i - 1) as usize]
        } else {
            Prob::ZERO
        }),
        _ => Ok(Prob::ZERO),
    }
}

fn enumerate_weighted(
    dist: &Distribution,
    params: &[Const],
    k: usize,
    out: &mut Vec<(Const, Prob)>,
) -> Result<(), DistError> {
    let weights = weights(dist, params, k)?;
    if weights_sum_to_one(&weights) {
        for (i, w) in weights.iter().enumerate() {
            push_positive(out, Const::Int((i + 1) as i64), *w);
        }
    } else {
        out.push((Const::Int(0), Prob::ONE));
    }
    Ok(())
}

fn weights(dist: &Distribution, params: &[Const], k: usize) -> Result<Vec<Prob>, DistError> {
    if params.len() != k {
        return Err(DistError::WrongParameterCount {
            distribution: dist.name().to_owned(),
            expected: Some(k),
            actual: params.len(),
        });
    }
    params.iter().map(|p| prob_param(dist, p)).collect()
}

fn weights_sum_to_one(weights: &[Prob]) -> bool {
    Prob::sum(weights.iter().copied()).approx_eq(&Prob::ONE, 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn real(v: f64) -> Const {
        Const::real(v).unwrap()
    }

    #[test]
    fn flip_pmf_matches_example_3_1() {
        let d = Distribution::Flip;
        let params = [real(0.1)];
        assert_eq!(d.pmf(&params, &Const::Int(1)).unwrap(), Prob::ratio(1, 10));
        assert_eq!(d.pmf(&params, &Const::Int(0)).unwrap(), Prob::ratio(9, 10));
        assert_eq!(d.pmf(&params, &Const::Int(7)).unwrap(), Prob::ZERO);
    }

    #[test]
    fn flip_support_and_enumeration() {
        let d = Distribution::Flip;
        let support = d.support(&[real(0.5)]).unwrap();
        assert!(support.is_finite());
        assert_eq!(support.outcomes().unwrap().len(), 2);
        // Degenerate flip: only one outcome has positive probability.
        let support = d.support(&[Const::Int(1)]).unwrap();
        assert_eq!(support.outcomes().unwrap(), &[(Const::Int(1), Prob::ONE)]);
        let support = d.support(&[Const::Int(0)]).unwrap();
        assert_eq!(support.outcomes().unwrap(), &[(Const::Int(0), Prob::ONE)]);
    }

    #[test]
    fn flip_rejects_bad_parameters() {
        let d = Distribution::Flip;
        assert!(d.pmf(&[real(1.5)], &Const::Int(1)).is_err());
        assert!(d.pmf(&[Const::sym("p")], &Const::Int(1)).is_err());
        assert!(d.pmf(&[], &Const::Int(1)).is_err());
        assert!(d.pmf(&[real(0.5), real(0.5)], &Const::Int(1)).is_err());
    }

    #[test]
    fn die_follows_appendix_b_convention() {
        let d = Distribution::Die;
        let fair: Vec<Const> = (0..6).map(|_| real(1.0 / 6.0)).collect();
        // Valid parameters: outcome 0 has probability 0, faces share the mass.
        assert!(d.pmf(&fair, &Const::Int(0)).unwrap().is_zero());
        let p3 = d.pmf(&fair, &Const::Int(3)).unwrap();
        assert!(p3.approx_eq(&Prob::from_f64(1.0 / 6.0), 1e-12));
        // Invalid parameters (sum ≠ 1): all mass on outcome 0.
        let invalid: Vec<Const> = (0..6).map(|_| real(0.1)).collect();
        assert_eq!(d.pmf(&invalid, &Const::Int(0)).unwrap(), Prob::ONE);
        assert_eq!(d.pmf(&invalid, &Const::Int(3)).unwrap(), Prob::ZERO);
        let support = d.support(&invalid).unwrap();
        assert_eq!(support.outcomes().unwrap(), &[(Const::Int(0), Prob::ONE)]);
    }

    #[test]
    fn categorical_uses_its_own_arity() {
        let d = Distribution::Categorical;
        let params = [real(0.2), real(0.3), real(0.5)];
        assert_eq!(d.pmf(&params, &Const::Int(3)).unwrap(), Prob::ratio(1, 2));
        assert_eq!(d.pmf(&params, &Const::Int(4)).unwrap(), Prob::ZERO);
        assert_eq!(d.enumerate(&params, usize::MAX).unwrap().len(), 3);
        assert!(d.pmf(&[], &Const::Int(1)).is_err());
    }

    #[test]
    fn uniform_int_range() {
        let d = Distribution::UniformInt;
        let params = [Const::Int(2), Const::Int(5)];
        assert_eq!(d.pmf(&params, &Const::Int(2)).unwrap(), Prob::ratio(1, 4));
        assert_eq!(d.pmf(&params, &Const::Int(6)).unwrap(), Prob::ZERO);
        assert_eq!(d.enumerate(&params, usize::MAX).unwrap().len(), 4);
        assert!(d
            .pmf(&[Const::Int(5), Const::Int(2)], &Const::Int(3))
            .is_err());
        assert!(d.pmf(&[real(0.5), Const::Int(2)], &Const::Int(3)).is_err());
    }

    #[test]
    fn geometric_has_infinite_support() {
        let d = Distribution::Geometric;
        let params = [real(0.5)];
        assert_eq!(d.support(&params).unwrap(), Support::CountablyInfinite);
        assert!(!d.has_finite_support());
        assert_eq!(d.pmf(&params, &Const::Int(0)).unwrap(), Prob::ratio(1, 2));
        assert_eq!(d.pmf(&params, &Const::Int(2)).unwrap(), Prob::ratio(1, 8));
        assert_eq!(d.pmf(&params, &Const::Int(-1)).unwrap(), Prob::ZERO);
        let prefix = d.enumerate(&params, 4).unwrap();
        assert_eq!(prefix.len(), 4);
        let total = Prob::sum(prefix.iter().map(|(_, p)| *p));
        assert_eq!(total, Prob::ratio(15, 16));
        assert!(d.pmf(&[real(0.0)], &Const::Int(0)).is_err());
    }

    #[test]
    fn enumerated_masses_sum_to_one_for_finite_supports() {
        for (d, params) in [
            (Distribution::Flip, vec![real(0.3)]),
            (Distribution::UniformInt, vec![Const::Int(1), Const::Int(6)]),
            (
                Distribution::Categorical,
                vec![real(0.25), real(0.25), real(0.5)],
            ),
        ] {
            let outcomes = d.enumerate(&params, usize::MAX).unwrap();
            let total = Prob::sum(outcomes.iter().map(|(_, p)| *p));
            assert!(total.approx_eq(&Prob::ONE, 1e-9), "{d}: total mass {total}");
        }
    }

    #[test]
    fn names_dims_and_display() {
        assert_eq!(Distribution::Flip.name(), "Flip");
        assert_eq!(Distribution::Flip.param_dim(), Some(1));
        assert_eq!(Distribution::Die.param_dim(), Some(6));
        assert_eq!(Distribution::Categorical.param_dim(), None);
        assert_eq!(Distribution::UniformInt.param_dim(), Some(2));
        assert_eq!(Distribution::Geometric.param_dim(), Some(1));
        assert_eq!(Distribution::Geometric.to_string(), "Geometric");
    }

    #[test]
    fn validate_params() {
        assert!(Distribution::Flip.validate_params(&[real(0.1)]).is_ok());
        assert!(Distribution::Flip.validate_params(&[real(2.0)]).is_err());
        assert!(Distribution::UniformInt
            .validate_params(&[Const::Int(1), Const::Int(0)])
            .is_err());
    }

    #[test]
    fn error_display() {
        let e = DistError::WrongParameterCount {
            distribution: "Flip".into(),
            expected: Some(1),
            actual: 2,
        };
        assert!(e.to_string().contains("Flip"));
        let e = DistError::UnknownDistribution("Gauss".into());
        assert!(e.to_string().contains("Gauss"));
        let e = DistError::InvalidParameter {
            distribution: "Categorical".into(),
            message: "nope".into(),
        };
        assert!(e.to_string().contains("nope"));
    }
}

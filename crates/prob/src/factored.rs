//! Factored (product) outcome spaces.
//!
//! A [`FactoredSpace`] represents a probability space that is a *product* of
//! independent [`DiscreteSpace`] factors without ever materializing the flat
//! cross product: a space with factors of sizes `n₁, …, nₘ` stores
//! `n₁ + … + nₘ` samples but describes `n₁ · … · nₘ` joint outcomes. Global
//! quantities (total mass, residual mass, top-k joint outcomes) are computed
//! by per-factor lookup and exact [`Prob`] factor multiplication.
//!
//! The top-k listing uses a lazy best-first merge over per-factor index
//! tuples (a k-way generalization of pairwise merge): factors are pre-sorted
//! by descending mass, the heap starts at the all-zeros tuple (the joint
//! maximum) and each pop pushes its coordinate-successors, so only
//! `O(k·m log k)` work is done no matter how astronomically large the full
//! product is.

use crate::probability::Prob;
use crate::space::DiscreteSpace;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// A product of independent discrete probability spaces.
///
/// Each factor's samples are kept sorted by descending mass (ties broken by
/// the sample key), which is the precondition for the lazy [`top_k`]
/// merge: the all-zeros index tuple is then guaranteed to be the joint
/// maximum, and incrementing any single coordinate never increases the mass.
///
/// [`top_k`]: FactoredSpace::top_k
#[derive(Clone, Debug)]
pub struct FactoredSpace<T: Ord + Clone> {
    factors: Vec<DiscreteSpace<T>>,
}

/// A heap entry of the lazy product merge: a joint index tuple and its mass.
/// Ordered by mass (descending pops first), ties broken toward the
/// lexicographically smallest tuple so the listing is deterministic.
struct Candidate {
    mass: Prob,
    indices: Vec<usize>,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: larger mass wins; among equal masses the
        // smaller index tuple must pop first, so reverse the tuple order.
        self.mass
            .total_cmp(&other.mass)
            .then_with(|| other.indices.cmp(&self.indices))
    }
}

impl<T: Ord + Clone> FactoredSpace<T> {
    /// Build a factored space, sorting each factor's samples into the
    /// canonical (mass-descending, key-ascending) order the lazy merge
    /// relies on.
    pub fn from_factors(factors: Vec<DiscreteSpace<T>>) -> Self {
        let factors = factors
            .into_iter()
            .map(|f| {
                let mut samples: Vec<(T, Prob)> = f.iter().cloned().collect();
                samples.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                DiscreteSpace::from_samples(samples)
            })
            .collect();
        FactoredSpace { factors }
    }

    /// Number of factors.
    pub fn factor_count(&self) -> usize {
        self.factors.len()
    }

    /// The factors, each sorted by descending mass.
    pub fn factors(&self) -> &[DiscreteSpace<T>] {
        &self.factors
    }

    /// One factor by index.
    pub fn factor(&self, i: usize) -> &DiscreteSpace<T> {
        &self.factors[i]
    }

    /// Total explored mass: the product of the per-factor explored masses
    /// (exactly one when every factor was fully explored). The empty product
    /// is one, matching the flat convention for a space with no choices.
    pub fn total_mass(&self) -> Prob {
        Prob::product(self.factors.iter().map(|f| f.total_mass()))
    }

    /// Unexplored mass: `1 − total_mass()`, clamped at zero against float
    /// dust from approximate factors.
    pub fn residual_mass(&self) -> Prob {
        let r = Prob::ONE.sub(&self.total_mass());
        if r.to_f64() < 0.0 {
            Prob::ZERO
        } else {
            r
        }
    }

    /// Number of joint samples the flat cross product would hold, saturating
    /// at `u128::MAX` (a `coin_farm_n100`-style space has `2^100` of them —
    /// the whole point is never to enumerate these).
    pub fn combined_samples(&self) -> u128 {
        self.factors
            .iter()
            .fold(1u128, |acc, f| acc.saturating_mul(f.len() as u128))
    }

    /// Sum of the per-factor sample counts — the number of samples actually
    /// stored.
    pub fn stored_samples(&self) -> usize {
        self.factors.iter().map(|f| f.len()).sum()
    }

    /// The `k` heaviest joint samples, each as one sample reference per
    /// factor with the exact product mass, in (mass-descending,
    /// index-tuple-ascending) order — computed by the lazy best-first merge
    /// without materializing the cross product.
    ///
    /// Returns fewer than `k` entries only when the whole product has fewer;
    /// an empty factor makes the product empty.
    pub fn top_k(&self, k: usize) -> Vec<(Vec<&T>, Prob)> {
        if k == 0 || self.factors.iter().any(|f| f.is_empty()) {
            return Vec::new();
        }
        let samples: Vec<Vec<&(T, Prob)>> =
            self.factors.iter().map(|f| f.iter().collect()).collect();
        let mass_at = |indices: &[usize]| {
            Prob::product(indices.iter().enumerate().map(|(f, &i)| samples[f][i].1))
        };

        let mut heap = BinaryHeap::new();
        let mut visited: HashSet<Vec<usize>> = HashSet::new();
        let root = vec![0usize; samples.len()];
        visited.insert(root.clone());
        heap.push(Candidate {
            mass: mass_at(&root),
            indices: root,
        });

        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            let Some(Candidate { mass, indices }) = heap.pop() else {
                break;
            };
            for (f, &i) in indices.iter().enumerate() {
                if i + 1 < samples[f].len() {
                    let mut next = indices.clone();
                    next[f] = i + 1;
                    if visited.insert(next.clone()) {
                        heap.push(Candidate {
                            mass: mass_at(&next),
                            indices: next,
                        });
                    }
                }
            }
            let parts = indices
                .iter()
                .enumerate()
                .map(|(f, &i)| &samples[f][i].0)
                .collect();
            out.push((parts, mass));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coin(head_mass: Prob) -> DiscreteSpace<&'static str> {
        let mut s = DiscreteSpace::new();
        s.push("H", head_mass);
        s.push("T", head_mass.complement());
        s
    }

    #[test]
    fn product_masses_and_counts() {
        let space = FactoredSpace::from_factors(vec![
            coin(Prob::ratio(1, 2)),
            coin(Prob::ratio(1, 4)),
            coin(Prob::ratio(1, 8)),
        ]);
        assert_eq!(space.factor_count(), 3);
        assert_eq!(space.total_mass(), Prob::ONE);
        assert_eq!(space.residual_mass(), Prob::ZERO);
        assert_eq!(space.combined_samples(), 8);
        assert_eq!(space.stored_samples(), 6);
    }

    #[test]
    fn top_k_is_the_lazy_joint_maximum_walk() {
        let space = FactoredSpace::from_factors(vec![
            coin(Prob::ratio(1, 4)),  // sorted: T 3/4, H 1/4
            coin(Prob::ratio(1, 10)), // sorted: T 9/10, H 1/10
        ]);
        let top = space.top_k(4);
        assert_eq!(top.len(), 4);
        // (T,T) 27/40, (T,H) 3/40·... compute: 3/4·9/10=27/40, 3/4·1/10=3/40,
        // 1/4·9/10=9/40, 1/4·1/10=1/40.
        assert_eq!(top[0].0, vec![&"T", &"T"]);
        assert_eq!(top[0].1, Prob::ratio(27, 40));
        assert_eq!(top[1].0, vec![&"H", &"T"]);
        assert_eq!(top[1].1, Prob::ratio(9, 40));
        assert_eq!(top[2].0, vec![&"T", &"H"]);
        assert_eq!(top[2].1, Prob::ratio(3, 40));
        assert_eq!(top[3].0, vec![&"H", &"H"]);
        assert_eq!(top[3].1, Prob::ratio(1, 40));
    }

    #[test]
    fn top_k_stops_at_the_product_size_and_handles_empties() {
        let space = FactoredSpace::from_factors(vec![coin(Prob::ratio(1, 2))]);
        assert_eq!(space.top_k(10).len(), 2);
        assert_eq!(space.top_k(0).len(), 0);
        let empty = FactoredSpace::from_factors(vec![
            coin(Prob::ratio(1, 2)),
            DiscreteSpace::<&'static str>::new(),
        ]);
        assert_eq!(empty.combined_samples(), 0);
        assert!(empty.top_k(3).is_empty());
    }

    #[test]
    fn huge_products_never_materialize() {
        // 100 fair coins: 2^100 joint samples; top_k(5) must answer
        // instantly with exact dyadic masses.
        let factors: Vec<_> = (0..100).map(|_| coin(Prob::ratio(1, 2))).collect();
        let space = FactoredSpace::from_factors(factors);
        assert_eq!(space.combined_samples(), 1u128 << 100);
        assert_eq!(space.total_mass(), Prob::ONE);
        let top = space.top_k(5);
        assert_eq!(top.len(), 5);
        for (_, mass) in &top {
            assert!(mass.is_exact(), "dyadic product degraded to float");
        }
        // All 2^100 joint samples are equally likely: each mass is 1/2^100.
        assert_eq!(top[0].1, top[4].1);
        // Saturation: 200 ternary factors overflow u128.
        let mut big = DiscreteSpace::new();
        big.push("a", Prob::ratio(1, 3));
        big.push("b", Prob::ratio(1, 3));
        big.push("c", Prob::ratio(1, 3));
        let sat = FactoredSpace::from_factors((0..200).map(|_| big.clone()).collect());
        assert_eq!(sat.combined_samples(), u128::MAX);
    }

    #[test]
    fn residual_mass_multiplies_truncated_factors() {
        let mut truncated = DiscreteSpace::new();
        truncated.push("seen", Prob::ratio(3, 4)); // 1/4 unexplored
        let space = FactoredSpace::from_factors(vec![truncated.clone(), coin(Prob::ratio(1, 2))]);
        assert_eq!(space.total_mass(), Prob::ratio(3, 4));
        assert_eq!(space.residual_mass(), Prob::ratio(1, 4));
        let both = FactoredSpace::from_factors(vec![truncated.clone(), truncated]);
        assert_eq!(both.total_mass(), Prob::ratio(9, 16));
        assert_eq!(both.residual_mass(), Prob::ratio(7, 16));
    }

    #[test]
    fn ties_resolve_toward_the_smaller_index_tuple() {
        // Two identical fair coins: four equal-mass joint samples; the
        // listing must be in index (hence key) order, deterministically.
        let space =
            FactoredSpace::from_factors(vec![coin(Prob::ratio(1, 2)), coin(Prob::ratio(1, 2))]);
        let keys: Vec<Vec<&&str>> = space.top_k(4).into_iter().map(|(k, _)| k).collect();
        assert_eq!(
            keys,
            vec![
                vec![&"H", &"H"],
                vec![&"H", &"T"],
                vec![&"T", &"H"],
                vec![&"T", &"T"],
            ]
        );
    }
}

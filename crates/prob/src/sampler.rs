//! Random sampling from parameterized distributions.
//!
//! The chase-based semantics enumerates *all* outcomes of a Δ-term; the
//! Monte-Carlo evaluator instead samples a single outcome per trigger. This
//! module provides that sampling, including inverse-transform sampling for
//! distributions with countably infinite support.

use crate::distribution::{DistError, Distribution, Support};
use crate::probability::Prob;
use gdlog_data::Const;
use rand::Rng;

/// Draw one outcome from `δ⟨p̄⟩`.
///
/// Finite supports use exact cumulative sampling over the enumerated
/// outcomes; the geometric distribution uses inverse-transform sampling on
/// its closed-form CDF.
pub fn sample_distribution<R: Rng + ?Sized>(
    distribution: Distribution,
    params: &[Const],
    rng: &mut R,
) -> Result<Const, DistError> {
    match distribution.support(params)? {
        Support::Finite(outcomes) => Ok(sample_finite(&outcomes, rng)),
        Support::CountablyInfinite => sample_geometric(distribution, params, rng),
    }
}

fn sample_finite<R: Rng + ?Sized>(outcomes: &[(Const, Prob)], rng: &mut R) -> Const {
    debug_assert!(!outcomes.is_empty());
    let u: f64 = rng.gen::<f64>();
    let mut acc = 0.0;
    for (value, mass) in outcomes {
        acc += mass.to_f64();
        if u < acc {
            return *value;
        }
    }
    // Floating point slack: fall back to the last outcome.
    outcomes[outcomes.len() - 1].0
}

fn sample_geometric<R: Rng + ?Sized>(
    distribution: Distribution,
    params: &[Const],
    rng: &mut R,
) -> Result<Const, DistError> {
    // Validate parameters through the pmf of outcome 0. This rejects the
    // `p = 0` endpoint (the walk never terminates: the error event has mass
    // 1), but guard the endpoints here as well so the inverse transform
    // below can never divide by `ln(1 - 0) = 0` and produce `inf as i64`.
    let p0 = distribution.pmf(params, &Const::Int(0))?;
    let p = p0.to_f64();
    if p <= 0.0 {
        return Err(DistError::InvalidParameter {
            distribution: distribution.name().to_owned(),
            message: "geometric parameter must be positive".to_owned(),
        });
    }
    if p >= 1.0 {
        // The other endpoint: all mass on the first outcome.
        return Ok(Const::Int(0));
    }
    let u: f64 = rng.gen::<f64>();
    // Inverse transform: k = floor(ln(1-u) / ln(1-p)). `ln_1p` keeps the
    // denominator non-zero (≈ -p) even when p is so small that `1.0 - p`
    // rounds to 1.0.
    let k = ((1.0 - u).ln() / (-p).ln_1p()).floor() as i64;
    Ok(Const::Int(k.max(0)))
}

/// An empirical estimate with its standard error, produced by Monte-Carlo
/// estimation of an event probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Number of samples used.
    pub samples: usize,
}

impl Estimate {
    /// Build an estimate from a count of successes among `samples` trials.
    pub fn from_bernoulli(successes: usize, samples: usize) -> Self {
        assert!(samples > 0, "cannot estimate from zero samples");
        let mean = successes as f64 / samples as f64;
        let var = mean * (1.0 - mean);
        Estimate {
            mean,
            std_error: (var / samples as f64).sqrt(),
            samples,
        }
    }

    /// Is `value` within `z` standard errors of the estimate (plus a small
    /// absolute slack for degenerate cases)?
    pub fn consistent_with(&self, value: f64, z: f64) -> bool {
        (self.mean - value).abs() <= z * self.std_error + 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn real(v: f64) -> Const {
        Const::real(v).unwrap()
    }

    #[test]
    fn flip_sampling_matches_parameter() {
        let mut rng = StdRng::seed_from_u64(42);
        let params = [real(0.1)];
        let n = 20_000;
        let mut ones = 0;
        for _ in 0..n {
            let v = sample_distribution(Distribution::Flip, &params, &mut rng).unwrap();
            if v == Const::Int(1) {
                ones += 1;
            }
        }
        let est = Estimate::from_bernoulli(ones, n);
        assert!(est.consistent_with(0.1, 5.0), "estimate {est:?}");
    }

    #[test]
    fn uniform_sampling_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let params = [Const::Int(2), Const::Int(5)];
        for _ in 0..1000 {
            let v = sample_distribution(Distribution::UniformInt, &params, &mut rng).unwrap();
            let i = v.as_int().unwrap();
            assert!((2..=5).contains(&i));
        }
    }

    #[test]
    fn geometric_sampling_has_right_mean() {
        let mut rng = StdRng::seed_from_u64(99);
        let params = [real(0.5)];
        let n = 20_000;
        let mut total = 0i64;
        for _ in 0..n {
            let v = sample_distribution(Distribution::Geometric, &params, &mut rng).unwrap();
            let k = v.as_int().unwrap();
            assert!(k >= 0);
            total += k;
        }
        // Mean of Geometric(p = 0.5) over {0,1,2,...} is (1-p)/p = 1.
        let mean = total as f64 / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn degenerate_flip_always_returns_the_certain_outcome() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = sample_distribution(Distribution::Flip, &[Const::Int(1)], &mut rng).unwrap();
            assert_eq!(v, Const::Int(1));
        }
    }

    #[test]
    fn sampling_propagates_parameter_errors() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sample_distribution(Distribution::Flip, &[real(3.0)], &mut rng).is_err());
        assert!(sample_distribution(Distribution::Geometric, &[real(0.0)], &mut rng).is_err());
    }

    #[test]
    fn geometric_endpoints_are_rejected_or_degenerate() {
        // p = 0: the walk never terminates (error-event mass 1) — rejected
        // both at validation and at sampling, never `inf as i64`.
        assert!(Distribution::Geometric
            .validate_params(&[real(0.0)])
            .is_err());
        assert!(Distribution::Geometric
            .validate_params(&[Const::Int(0)])
            .is_err());
        let mut rng = StdRng::seed_from_u64(5);
        for p in [real(0.0), Const::Int(0), Const::Bool(false)] {
            assert!(
                sample_distribution(Distribution::Geometric, &[p], &mut rng).is_err(),
                "Geometric⟨{p}⟩ must be rejected"
            );
        }

        // p = 1: all mass on outcome 0 — valid and degenerate.
        assert!(Distribution::Geometric
            .validate_params(&[real(1.0)])
            .is_ok());
        for _ in 0..50 {
            let v =
                sample_distribution(Distribution::Geometric, &[Const::Int(1)], &mut rng).unwrap();
            assert_eq!(v, Const::Int(0));
        }
    }

    #[test]
    fn geometric_sampling_survives_tiny_parameters() {
        // A p below f64 epsilon collapses to the exact-zero endpoint during
        // parameter normalization and is rejected like p = 0 — it can never
        // reach the inverse transform's division.
        let mut rng = StdRng::seed_from_u64(17);
        assert!(sample_distribution(Distribution::Geometric, &[real(1e-18)], &mut rng).is_err());

        // A tiny but representable p samples finite, non-negative draws
        // (ln_1p keeps the denominator accurate where ln(1 - p) would lose
        // most of its precision).
        for _ in 0..100 {
            let v = sample_distribution(Distribution::Geometric, &[real(1e-9)], &mut rng).unwrap();
            let k = v.as_int().unwrap();
            assert!((0..i64::MAX).contains(&k));
        }
    }

    #[test]
    fn estimate_helpers() {
        let e = Estimate::from_bernoulli(19, 100);
        assert!((e.mean - 0.19).abs() < 1e-12);
        assert!(e.std_error > 0.0);
        assert!(e.consistent_with(0.19, 1.0));
        assert!(!e.consistent_with(0.9, 3.0));
        assert_eq!(e.samples, 100);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn estimate_rejects_zero_samples() {
        let _ = Estimate::from_bernoulli(0, 0);
    }
}

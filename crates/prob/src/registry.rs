//! The finite set Δ of parameterized distributions available to a program.

use crate::distribution::{DistError, Distribution};
use std::collections::BTreeMap;
use std::fmt;

/// A registry mapping distribution names to [`Distribution`]s — the set Δ of
/// the paper. Programs refer to distributions by name in their Δ-terms and
/// the registry resolves them.
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaRegistry {
    by_name: BTreeMap<String, Distribution>,
}

impl DeltaRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        DeltaRegistry {
            by_name: BTreeMap::new(),
        }
    }

    /// The standard registry containing every built-in distribution under its
    /// canonical name.
    pub fn standard() -> Self {
        let mut reg = Self::empty();
        for d in [
            Distribution::Flip,
            Distribution::Die,
            Distribution::Categorical,
            Distribution::UniformInt,
            Distribution::Geometric,
        ] {
            reg.register(d.name(), d);
        }
        reg
    }

    /// Register a distribution under `name` (overwrites any previous entry).
    pub fn register(&mut self, name: &str, distribution: Distribution) {
        self.by_name.insert(name.to_owned(), distribution);
    }

    /// Resolve a distribution by name.
    pub fn get(&self, name: &str) -> Result<Distribution, DistError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| DistError::UnknownDistribution(name.to_owned()))
    }

    /// Does the registry contain `name`?
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Number of registered distributions.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// Iterate over `(name, distribution)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Distribution)> {
        self.by_name.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl Default for DeltaRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

impl fmt::Display for DeltaRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Δ = {{")?;
        for (i, (name, _)) in self.by_name.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_contains_all_builtins() {
        let reg = DeltaRegistry::standard();
        assert_eq!(reg.len(), 5);
        assert!(reg.contains("Flip"));
        assert!(reg.contains("Die"));
        assert!(reg.contains("Categorical"));
        assert!(reg.contains("UniformInt"));
        assert!(reg.contains("Geometric"));
        assert_eq!(reg.get("Flip").unwrap(), Distribution::Flip);
        assert!(matches!(
            reg.get("Gaussian"),
            Err(DistError::UnknownDistribution(_))
        ));
    }

    #[test]
    fn custom_registration_and_aliasing() {
        let mut reg = DeltaRegistry::empty();
        assert!(reg.is_empty());
        reg.register("Bernoulli", Distribution::Flip);
        assert_eq!(reg.get("Bernoulli").unwrap(), Distribution::Flip);
        assert!(!reg.contains("Flip"));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.iter().count(), 1);
    }

    #[test]
    fn default_is_standard_and_displays() {
        let reg = DeltaRegistry::default();
        assert_eq!(reg, DeltaRegistry::standard());
        let shown = reg.to_string();
        assert!(shown.contains("Flip"));
        assert!(shown.starts_with("Δ = {"));
    }
}

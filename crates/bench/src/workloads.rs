//! Workload generators.
//!
//! The paper has no benchmark suite; these generators produce the synthetic
//! families described in `DESIGN.md` §4: the paper's worked examples at their
//! original size and parameterised scalings of them (network topologies, coin
//! chains, dime/quarter batches).

use gdlog_core::{
    dime_quarter_program, network_resilience_program, AtrRule, AtrSet, GroundRuleSet, Grounder,
    PerfectGrounder, Program, ProgramBuilder, SigmaPi, SimpleGrounder,
};
use gdlog_data::{Const, Database, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Network topologies for the resilience workload (Example 3.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Topology {
    /// Every router connected to every other router (the paper's Example 3.6
    /// database is `Clique` with `n = 3`).
    Clique,
    /// A ring `1 – 2 – … – n – 1`.
    Ring,
    /// A line `1 – 2 – … – n`.
    Line,
    /// An Erdős–Rényi random graph with the given edge probability.
    ErdosRenyi {
        /// Probability of each undirected edge.
        edge_probability: f64,
        /// RNG seed, so workloads are reproducible.
        seed: u64,
    },
}

/// Build a router network database: `Router(i)` for `i ∈ 1..=n`, symmetric
/// `Connected` edges according to the topology, and `Infected(1, 1)`.
pub fn network_database(n: usize, topology: Topology) -> Database {
    let mut db = Database::new();
    for i in 1..=n as i64 {
        db.insert_fact("Router", [Const::Int(i)]);
    }
    let connect = |a: i64, b: i64, db: &mut Database| {
        db.insert_fact("Connected", [Const::Int(a), Const::Int(b)]);
        db.insert_fact("Connected", [Const::Int(b), Const::Int(a)]);
    };
    match topology {
        Topology::Clique => {
            for i in 1..=n as i64 {
                for j in (i + 1)..=n as i64 {
                    connect(i, j, &mut db);
                }
            }
        }
        Topology::Ring => {
            for i in 1..=n as i64 {
                let j = if i == n as i64 { 1 } else { i + 1 };
                if i != j {
                    connect(i, j, &mut db);
                }
            }
        }
        Topology::Line => {
            for i in 1..n as i64 {
                connect(i, i + 1, &mut db);
            }
        }
        Topology::ErdosRenyi {
            edge_probability,
            seed,
        } => {
            let mut rng = StdRng::seed_from_u64(seed);
            for i in 1..=n as i64 {
                for j in (i + 1)..=n as i64 {
                    if rng.gen::<f64>() < edge_probability {
                        connect(i, j, &mut db);
                    }
                }
            }
        }
    }
    db.insert_fact("Infected", [Const::Int(1), Const::Int(1)]);
    db
}

/// The network-resilience program of Example 3.1 with infection probability
/// `p` (re-exported from `gdlog-core` for convenience).
pub fn network_program(p: f64) -> Program {
    network_resilience_program(p)
}

/// The dime/quarter program of Appendix E together with a database of
/// `dimes` dimes and `quarters` quarters (quarter ids follow the dime ids).
pub fn dime_quarter_workload(dimes: usize, quarters: usize) -> (Program, Database) {
    let mut db = Database::new();
    for i in 1..=dimes as i64 {
        db.insert_fact("Dime", [Const::Int(i)]);
    }
    for q in 1..=quarters as i64 {
        db.insert_fact("Quarter", [Const::Int(dimes as i64 + q)]);
    }
    (dime_quarter_program(), db)
}

/// A "coin chain": `n` independent coins are tossed and the chain succeeds if
/// every coin shows tails; a constraint aborts the run as soon as one coin
/// shows heads. Purely positive except for the constraint, with `2^n`
/// configurations — a convenient knob for chase-size scaling.
pub fn coin_chain(n: usize, p: f64) -> (Program, Database) {
    let program = ProgramBuilder::new()
        .rule(|r| {
            r.body("Coin", vec![Term::var("x")]).head_with_delta(
                "Toss",
                vec![Term::var("x")],
                "Flip",
                vec![Term::Const(Const::real(p).expect("finite"))],
                vec![Term::var("x")],
            )
        })
        .rule(|r| {
            r.body("Toss", vec![Term::var("x"), Term::int(1)])
                .head("Tails", vec![Term::var("x")])
        })
        .rule(|r| {
            r.body("Coin", vec![Term::var("x")])
                .not_body("Tails", vec![Term::var("x")])
                .head("SomeHeads", vec![])
        })
        .build()
        .expect("coin chain program is valid");
    let mut db = Database::new();
    for i in 1..=n as i64 {
        db.insert_fact("Coin", [Const::Int(i)]);
    }
    (program, db)
}

/// A "coin farm": `n` independent coins, each tossed once, with tails
/// recorded per coin — and *no* shared head welding the coins together
/// (contrast [`coin_chain`], whose zero-arity `SomeHeads` head couples every
/// coin into one chase component). The chase-independence analysis splits
/// the farm into one component per coin, so the factored output space is a
/// product of `n` two-outcome factors while the flat chase needs `2^n`
/// outcomes — the scaling family for `bench_factor`.
pub fn coin_farm(n: usize, p: f64) -> (Program, Database) {
    let program = ProgramBuilder::new()
        .rule(|r| {
            r.body("Coin", vec![Term::var("x")]).head_with_delta(
                "Toss",
                vec![Term::var("x")],
                "Flip",
                vec![Term::Const(Const::real(p).expect("finite"))],
                vec![Term::var("x")],
            )
        })
        .rule(|r| {
            r.body("Toss", vec![Term::var("x"), Term::int(1)])
                .head("Tails", vec![Term::var("x")])
        })
        .build()
        .expect("coin farm program is valid");
    let mut db = Database::new();
    for i in 1..=n as i64 {
        db.insert_fact("Coin", [Const::Int(i)]);
    }
    (program, db)
}

/// `k` disjoint copies of the `scenarios/cascade.gdl` diamond (the nodes of
/// copy `c` live in the range `10c+1 ..= 10c+4`), generated as surface
/// syntax and parsed back so the bench measures exactly the program the
/// corpus scenario runs. Each copy chases to 9 outcomes, so the flat space
/// is `9^k` while the factored space stores `9k`.
pub fn cascade_copies(k: usize) -> (Program, Database) {
    let mut text = String::from(
        "Source(x) -> Reach(x, 1).\nReach(x, 1), Edge(x, y) -> Reach(y, Flip<0.9>[x, y]).\n\n",
    );
    for c in 0..k as i64 {
        let b = 10 * c;
        text.push_str(&format!("Source({}).\n", b + 1));
        for (x, y) in [(1, 2), (1, 3), (2, 4), (3, 4)] {
            text.push_str(&format!("Edge({}, {}).\n", b + x, b + y));
        }
    }
    gdlog_parser::parse_program(&text).expect("generated cascade program parses")
}

/// `k` disjoint copies of the `scenarios/epidemic.gdl` contact chain (the
/// persons of copy `c` live in the range `10c+1 ..= 10c+3`). Each copy
/// chases to 3 outcomes, so the flat space is `3^k` while the factored
/// space stores `3k`.
pub fn epidemic_copies(k: usize) -> (Program, Database) {
    let mut text = String::from(
        "Sick(x, 1), Contact(x, y) -> Sick(y, Flip<0.5>[x, y]).\nPerson(x), not Sick(x, 1) -> Healthy(x).\n\n",
    );
    for c in 0..k as i64 {
        let b = 10 * c;
        for i in 1..=3 {
            text.push_str(&format!("Person({}).\n", b + i));
        }
        text.push_str(&format!("Contact({}, {}).\n", b + 1, b + 2));
        text.push_str(&format!("Contact({}, {}).\n", b + 2, b + 3));
        text.push_str(&format!("Sick({}, 1).\n", b + 1));
    }
    gdlog_parser::parse_program(&text).expect("generated epidemic program parses")
}

/// One flat-vs-factored benchmark workload: a program/database pair whose
/// chase splits into independent components.
pub struct FactorWorkload {
    /// Workload name (scale-qualified, e.g. `coin_farm_n16`).
    pub name: String,
    /// The GDatalog¬\[Δ\] program.
    pub program: Program,
    /// The input database.
    pub database: Database,
    /// Number of chase components the independence analysis should find.
    pub expected_factors: usize,
    /// Can the flat path enumerate this exactly within the default chase
    /// budget? `false` marks the past-the-wall workloads (flat outcome count
    /// above `ChaseBudget::default().max_outcomes`) that only the factored
    /// path solves exactly.
    pub flat_feasible: bool,
}

/// The factorization benchmark suite — **the** scale table for
/// `bench_factor`, at CI-smoke (`full = false`) or full measurement size.
/// Scales live only here so the smoke and full runs cannot drift.
pub fn factor_workload_suite(full: bool) -> Vec<FactorWorkload> {
    let farm = if full { 16 } else { 8 };
    let game = if full { 10 } else { 5 };
    let cascade = if full { 5 } else { 3 };
    let epidemic = if full { 8 } else { 4 };
    // Past the wall: flat enumeration blows the default 100k-outcome budget
    // (2^100 and 9^10 outcomes at full scale) but the factored path solves
    // both exactly.
    let wall_farm = if full { 100 } else { 24 };
    let wall_cascade = if full { 10 } else { 7 };

    let mut suite = Vec::new();
    let (program, database) = coin_farm(farm, 0.5);
    suite.push(FactorWorkload {
        name: format!("coin_farm_n{farm}"),
        program,
        database,
        expected_factors: farm,
        flat_feasible: true,
    });
    let (program, database) = coin_game(game, 0.5);
    suite.push(FactorWorkload {
        name: format!("coin_game_n{game}"),
        program,
        database,
        expected_factors: game,
        flat_feasible: true,
    });
    let (program, database) = cascade_copies(cascade);
    suite.push(FactorWorkload {
        name: format!("cascade_x{cascade}"),
        program,
        database,
        expected_factors: cascade,
        flat_feasible: true,
    });
    let (program, database) = epidemic_copies(epidemic);
    suite.push(FactorWorkload {
        name: format!("epidemic_x{epidemic}"),
        program,
        database,
        expected_factors: epidemic,
        flat_feasible: true,
    });
    let (program, database) = coin_farm(wall_farm, 0.5);
    suite.push(FactorWorkload {
        name: format!("coin_farm_n{wall_farm}"),
        program,
        database,
        expected_factors: wall_farm,
        flat_feasible: false,
    });
    let (program, database) = cascade_copies(wall_cascade);
    suite.push(FactorWorkload {
        name: format!("cascade_x{wall_cascade}"),
        program,
        database,
        expected_factors: wall_cascade,
        flat_feasible: false,
    });
    suite
}

/// A choice set that drives the infection cascade as far as it goes: every
/// round, all open triggers are resolved with `outcome`, until the
/// configuration is terminal or `max_rounds` is hit. With `outcome = 1`
/// (infect) on a connected topology this produces the worst-case grounding —
/// `Active` atoms for every edge out of every infected router — which is the
/// scaling workload for the naive vs. semi-naive comparison.
pub fn cascade_choice_set(grounder: &dyn Grounder, outcome: i64, max_rounds: usize) -> AtrSet {
    let mut atr = AtrSet::new();
    let mut grounding = grounder.ground_node(&atr);
    for _ in 0..max_rounds {
        let triggers = grounder.triggers(&atr, grounding.rules());
        if triggers.is_empty() {
            break;
        }
        let parent_atr = atr.clone();
        for trigger in triggers {
            let rule = AtrRule::new(grounder.sigma(), trigger, Const::Int(outcome))
                .expect("triggers use Active predicates");
            atr.insert(rule).expect("fresh triggers cannot conflict");
        }
        grounding = grounder.ground_from(&atr, &parent_atr, &mut grounding);
    }
    atr
}

/// A "coin game": every player tosses a coin and each tails coin opens an
/// independent `Aux1(x)/Aux2(x)` even loop — a free binary choice in the
/// stable semantics. An outcome with `k` tails therefore induces a ground
/// program whose residual splits into `k` independent components with `2^k`
/// stable models in total: the scaling family for the component-split
/// stable-model search (one `2^k` sweep vs. `k` two-leaf searches).
pub fn coin_game(n: usize, p: f64) -> (Program, Database) {
    let program = ProgramBuilder::new()
        .rule(|r| {
            r.body("Player", vec![Term::var("x")]).head_with_delta(
                "Toss",
                vec![Term::var("x")],
                "Flip",
                vec![Term::Const(Const::real(p).expect("finite"))],
                vec![Term::var("x")],
            )
        })
        .rule(|r| {
            r.body("Toss", vec![Term::var("x"), Term::int(1)])
                .not_body("Aux2", vec![Term::var("x")])
                .head("Aux1", vec![Term::var("x")])
        })
        .rule(|r| {
            r.body("Toss", vec![Term::var("x"), Term::int(1)])
                .not_body("Aux1", vec![Term::var("x")])
                .head("Aux2", vec![Term::var("x")])
        })
        .build()
        .expect("coin game program is valid");
    let mut db = Database::new();
    for i in 1..=n as i64 {
        db.insert_fact("Player", [Const::Int(i)]);
    }
    (program, db)
}

/// The coin game with a chain constraint: adjacent players may not both pick
/// `Aux1`. The constraint's `Fail`/`Aux` machinery welds neighbouring loops
/// into one large component, so the component split alone cannot help — this
/// family exercises the *propagating* search, which prunes the invalid
/// corner of every `2^k` assignment cube instead of visiting it.
pub fn chain_game(n: usize, p: f64) -> (Program, Database) {
    let program = ProgramBuilder::new()
        .rule(|r| {
            r.body("Player", vec![Term::var("x")]).head_with_delta(
                "Toss",
                vec![Term::var("x")],
                "Flip",
                vec![Term::Const(Const::real(p).expect("finite"))],
                vec![Term::var("x")],
            )
        })
        .rule(|r| {
            r.body("Toss", vec![Term::var("x"), Term::int(1)])
                .not_body("Aux2", vec![Term::var("x")])
                .head("Aux1", vec![Term::var("x")])
        })
        .rule(|r| {
            r.body("Toss", vec![Term::var("x"), Term::int(1)])
                .not_body("Aux1", vec![Term::var("x")])
                .head("Aux2", vec![Term::var("x")])
        })
        .constraint(|r| {
            r.body("Next", vec![Term::var("x"), Term::var("y")])
                .body("Aux1", vec![Term::var("x")])
                .body("Aux1", vec![Term::var("y")])
        })
        .build()
        .expect("chain game program is valid");
    let mut db = Database::new();
    for i in 1..=n as i64 {
        db.insert_fact("Player", [Const::Int(i)]);
        if i < n as i64 {
            db.insert_fact("Next", [Const::Int(i), Const::Int(i + 1)]);
        }
    }
    (program, db)
}

/// One ready-to-chase workload for the stable-model back-end benchmarks: a
/// named grounder whose outcome space does real stable-model work (even
/// loops, constraints, coupled components).
pub struct StableWorkload {
    /// Workload name (scale-qualified, e.g. `coin_game_n7`).
    pub name: String,
    /// The grounder, ready for `enumerate_outcomes` →
    /// `OutputSpace::from_chase`.
    pub grounder: Box<dyn Grounder>,
}

/// The stable-model benchmark suite — **the** scale table for `bench_stable`,
/// at CI-smoke (`full = false`) or full measurement size. Scales live only
/// here so the smoke and full runs cannot drift.
pub fn stable_workload_suite(full: bool) -> Vec<StableWorkload> {
    let coins = if full { 7 } else { 4 };
    let chain = if full { 6 } else { 4 };
    let ring = if full { 5 } else { 4 };

    let mut suite = Vec::new();

    let (program, db) = coin_game(coins, 0.5);
    let sigma = Arc::new(SigmaPi::translate(&program, &db).expect("translates"));
    suite.push(StableWorkload {
        name: format!("coin_game_n{coins}"),
        grounder: Box::new(SimpleGrounder::new(sigma)),
    });

    let (program, db) = chain_game(chain, 0.5);
    let sigma = Arc::new(SigmaPi::translate(&program, &db).expect("translates"));
    suite.push(StableWorkload {
        name: format!("chain_game_n{chain}"),
        grounder: Box::new(SimpleGrounder::new(sigma)),
    });

    let db = network_database(ring, Topology::Ring);
    let sigma =
        Arc::new(SigmaPi::translate(&network_resilience_program(0.1), &db).expect("translates"));
    suite.push(StableWorkload {
        name: format!("network_ring_n{ring}"),
        grounder: Box::new(SimpleGrounder::new(sigma)),
    });

    suite
}

/// A grounder with the incremental chase hooks stripped: `ground_node` and
/// `ground_from` fall back to the trait defaults, i.e. a full reground at
/// every chase node. The baseline for the incremental-chase benchmarks and
/// the chase-equivalence tests — both must use the *same* definition of
/// "non-incremental" or they could silently diverge.
pub struct Reground<'a>(pub &'a dyn Grounder);

impl Grounder for Reground<'_> {
    fn sigma(&self) -> &SigmaPi {
        self.0.sigma()
    }

    fn name(&self) -> &'static str {
        "reground"
    }

    fn ground(&self, atr: &AtrSet) -> GroundRuleSet {
        self.0.ground(atr)
    }
}

/// One ready-to-chase benchmark workload: a named grounder over a translated
/// program/database pair.
pub struct ChaseWorkload {
    /// Workload name (scale-qualified, e.g. `dime_quarter_d9_q2`).
    pub name: String,
    /// Does the program have stratified negation (perfect grounder)?
    pub stratified: bool,
    /// The grounder, ready for `enumerate_outcomes` / `MonteCarlo`.
    pub grounder: Box<dyn Grounder>,
}

/// The chase benchmark suite — **the** scale table for `bench_chase` and the
/// chase criterion benches, at CI-smoke (`full = false`) or full measurement
/// size. Scales live only here so the smoke and full runs cannot drift.
pub fn chase_workload_suite(full: bool) -> Vec<ChaseWorkload> {
    let (dimes, quarters) = if full { (9, 2) } else { (5, 1) };
    let coins = if full { 10 } else { 6 };
    let ring = if full { 5 } else { 4 };

    let mut suite = Vec::new();

    // Stratified workloads — exercise the perfect grounder's stratum cursor.
    let (program, db) = dime_quarter_workload(dimes, quarters);
    let sigma = Arc::new(SigmaPi::translate(&program, &db).expect("translates"));
    suite.push(ChaseWorkload {
        name: format!("dime_quarter_d{dimes}_q{quarters}"),
        stratified: true,
        grounder: Box::new(PerfectGrounder::new(sigma).expect("dime/quarter is stratified")),
    });

    let (program, db) = coin_chain(coins, 0.5);
    let sigma = Arc::new(SigmaPi::translate(&program, &db).expect("translates"));
    suite.push(ChaseWorkload {
        name: format!("coin_chain_n{coins}"),
        stratified: true,
        grounder: Box::new(PerfectGrounder::new(sigma).expect("coin chain is stratified")),
    });

    // Non-stratified workload — the simple grounder's snapshot sharing.
    let db = network_database(ring, Topology::Ring);
    let sigma =
        Arc::new(SigmaPi::translate(&network_resilience_program(0.1), &db).expect("translates"));
    suite.push(ChaseWorkload {
        name: format!("network_ring_n{ring}"),
        stratified: false,
        grounder: Box::new(SimpleGrounder::new(sigma)),
    });

    suite
}

/// The network families the grounding benchmarks scale over: name plus
/// database, at a CI-smoke (`small = true`) or full measurement size.
pub fn grounding_network_suite(small: bool) -> Vec<(String, Database)> {
    let (clique_n, ring_n, er_n) = if small { (5, 12, 8) } else { (9, 48, 16) };
    vec![
        (
            format!("clique_n{clique_n}"),
            network_database(clique_n, Topology::Clique),
        ),
        (
            format!("ring_n{ring_n}"),
            network_database(ring_n, Topology::Ring),
        ),
        (
            format!("erdos_renyi_n{er_n}_p40"),
            network_database(
                er_n,
                Topology::ErdosRenyi {
                    edge_probability: 0.4,
                    seed: 7,
                },
            ),
        ),
    ]
}

/// A plain (non-probabilistic) ground program family for the stable-model
/// engine benchmarks: `k` independent even loops plus a shared positive
/// chain, yielding `2^k` stable models.
pub fn choice_program(k: usize) -> gdlog_engine::GroundProgram {
    use gdlog_data::GroundAtom;
    use gdlog_engine::GroundRule;
    let atom1 = |name: &str, i: i64| GroundAtom::make(name, vec![Const::Int(i)]);
    let mut program = gdlog_engine::GroundProgram::new();
    for i in 1..=k as i64 {
        program.push(GroundRule::new(
            atom1("In", i),
            vec![],
            vec![atom1("Out", i)],
        ));
        program.push(GroundRule::new(
            atom1("Out", i),
            vec![],
            vec![atom1("In", i)],
        ));
        program.push(GroundRule::new(
            atom1("Picked", i),
            vec![atom1("In", i)],
            vec![],
        ));
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_database_matches_example_3_6() {
        let db = network_database(3, Topology::Clique);
        assert_eq!(db.len(), 3 + 6 + 1);
    }

    #[test]
    fn topologies_have_expected_edge_counts() {
        assert_eq!(network_database(5, Topology::Ring).len(), 5 + 10 + 1);
        assert_eq!(network_database(5, Topology::Line).len(), 5 + 8 + 1);
        let er = network_database(
            6,
            Topology::ErdosRenyi {
                edge_probability: 1.0,
                seed: 1,
            },
        );
        assert_eq!(er.len(), 6 + 30 + 1);
        let empty = network_database(
            6,
            Topology::ErdosRenyi {
                edge_probability: 0.0,
                seed: 1,
            },
        );
        assert_eq!(empty.len(), 6 + 1);
    }

    #[test]
    fn er_generation_is_deterministic_per_seed() {
        let a = network_database(
            8,
            Topology::ErdosRenyi {
                edge_probability: 0.4,
                seed: 9,
            },
        );
        let b = network_database(
            8,
            Topology::ErdosRenyi {
                edge_probability: 0.4,
                seed: 9,
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn dime_quarter_and_coin_workloads_validate() {
        let (program, db) = dime_quarter_workload(3, 2);
        assert!(program.validate().is_ok());
        assert_eq!(db.len(), 5);
        let (program, db) = coin_chain(4, 0.5);
        assert!(program.validate().is_ok());
        assert_eq!(db.len(), 4);
        assert!(program.has_stratified_negation());
    }

    #[test]
    fn coin_and_chain_game_programs_validate() {
        let (program, db) = coin_game(3, 0.5);
        assert!(program.validate().is_ok());
        assert!(
            !program.has_stratified_negation(),
            "per-player Aux loops are even negative cycles"
        );
        assert_eq!(db.len(), 3);
        let (program, db) = chain_game(3, 0.5);
        assert!(program.validate().is_ok());
        assert_eq!(db.len(), 3 + 2, "players plus Next edges");
    }

    #[test]
    fn coin_farm_and_copy_generators_validate() {
        let (program, db) = coin_farm(4, 0.5);
        assert!(program.validate().is_ok());
        assert!(
            program.has_stratified_negation(),
            "the farm has no negation at all"
        );
        assert_eq!(db.len(), 4);
        let (program, db) = cascade_copies(3);
        assert!(program.validate().is_ok());
        assert_eq!(db.len(), 3 * 5, "one Source and four Edges per copy");
        let (program, db) = epidemic_copies(2);
        assert!(program.validate().is_ok());
        assert_eq!(db.len(), 2 * 6, "three Persons, two Contacts, one Sick");
    }

    #[test]
    fn factor_suite_scales_are_consistent_across_smoke_and_full() {
        for full in [false, true] {
            let suite = factor_workload_suite(full);
            assert_eq!(suite.len(), 6);
            assert_eq!(
                suite.iter().filter(|w| !w.flat_feasible).count(),
                2,
                "two past-the-wall workloads"
            );
            for w in &suite {
                assert!(w.program.validate().is_ok(), "{}", w.name);
            }
        }
        let smoke: Vec<String> = factor_workload_suite(false)
            .iter()
            .map(|w| w.name.clone())
            .collect();
        let full: Vec<String> = factor_workload_suite(true)
            .iter()
            .map(|w| w.name.clone())
            .collect();
        assert_ne!(smoke, full);
    }

    #[test]
    fn factor_suite_components_match_the_advertised_counts() {
        // Smoke scale only: the independence analysis saturates a universe
        // per workload, which is cheap here but not free.
        for w in factor_workload_suite(false) {
            let pipeline = gdlog_core::Pipeline::new(&w.program, &w.database).expect("pipeline");
            assert_eq!(
                pipeline.factor_count().expect("analysis succeeds"),
                w.expected_factors,
                "{}",
                w.name
            );
        }
    }

    #[test]
    fn coin_game_all_tails_outcome_has_exponential_models() {
        use gdlog_core::{SigmaPi, SimpleGrounder};
        use std::sync::Arc;
        let (program, db) = coin_game(3, 0.5);
        let sigma = Arc::new(SigmaPi::translate(&program, &db).unwrap());
        let grounder = SimpleGrounder::new(sigma);
        // Resolving every flip with outcome 1 (tails) opens all three loops.
        let atr = cascade_choice_set(&grounder, 1, 16);
        assert!(grounder.is_terminal(&atr));
        let program = grounder.full_program(&atr);
        let models =
            gdlog_engine::stable_models(&program, &gdlog_engine::StableModelLimits::default())
                .unwrap();
        assert_eq!(models.len(), 8, "three independent even loops");
        assert_eq!(
            models,
            gdlog_engine::naive_stable_models(
                &program,
                &gdlog_engine::StableModelLimits::default()
            )
            .unwrap()
        );
    }

    #[test]
    fn chain_game_constraint_prunes_adjacent_aux1_pairs() {
        use gdlog_core::{SigmaPi, SimpleGrounder};
        use std::sync::Arc;
        let (program, db) = chain_game(3, 0.5);
        let sigma = Arc::new(SigmaPi::translate(&program, &db).unwrap());
        let grounder = SimpleGrounder::new(sigma);
        let atr = cascade_choice_set(&grounder, 1, 16);
        assert!(grounder.is_terminal(&atr));
        let program = grounder.full_program(&atr);
        let limits = gdlog_engine::StableModelLimits::default();
        let models = gdlog_engine::stable_models(&program, &limits).unwrap();
        // Binary strings of length 3 with no two adjacent ones: 101 is the
        // Fibonacci count F(5) = 5.
        assert_eq!(models.len(), 5);
        assert_eq!(
            models,
            gdlog_engine::naive_stable_models(&program, &limits).unwrap()
        );
    }

    #[test]
    fn stable_suite_scales_are_consistent_across_smoke_and_full() {
        for full in [false, true] {
            let suite = stable_workload_suite(full);
            assert_eq!(suite.len(), 3);
            for w in &suite {
                assert_eq!(w.grounder.name(), "simple", "{}", w.name);
            }
        }
        let smoke: Vec<String> = stable_workload_suite(false)
            .iter()
            .map(|w| w.name.clone())
            .collect();
        let full: Vec<String> = stable_workload_suite(true)
            .iter()
            .map(|w| w.name.clone())
            .collect();
        assert_ne!(smoke, full);
    }

    #[test]
    fn cascade_choice_set_reaches_a_terminal_configuration() {
        use gdlog_core::{SigmaPi, SimpleGrounder};
        use std::sync::Arc;
        let db = network_database(4, Topology::Clique);
        let sigma = Arc::new(SigmaPi::translate(&network_program(0.1), &db).unwrap());
        let grounder = SimpleGrounder::new(sigma);
        let atr = cascade_choice_set(&grounder, 1, 64);
        assert!(grounder.is_terminal(&atr));
        // Every router infects all three neighbours: 4 × 3 Active atoms.
        assert_eq!(atr.len(), 12);
    }

    #[test]
    fn chase_suite_scales_are_consistent_across_smoke_and_full() {
        for full in [false, true] {
            let suite = chase_workload_suite(full);
            assert_eq!(suite.len(), 3);
            assert_eq!(
                suite.iter().filter(|w| w.stratified).count(),
                2,
                "two stratified workloads for the perfect grounder"
            );
            for w in &suite {
                let expected = if w.stratified { "perfect" } else { "simple" };
                assert_eq!(w.grounder.name(), expected, "{}", w.name);
            }
        }
        // The full scale strictly dominates the smoke scale per workload.
        let smoke: Vec<String> = chase_workload_suite(false)
            .iter()
            .map(|w| w.name.clone())
            .collect();
        let full: Vec<String> = chase_workload_suite(true)
            .iter()
            .map(|w| w.name.clone())
            .collect();
        assert_ne!(smoke, full);
    }

    #[test]
    fn grounding_suite_has_three_topologies_at_both_scales() {
        for small in [true, false] {
            let suite = grounding_network_suite(small);
            assert_eq!(suite.len(), 3);
            assert!(suite.iter().all(|(_, db)| !db.is_empty()));
        }
        let small: usize = grounding_network_suite(true)
            .iter()
            .map(|(_, db)| db.len())
            .sum();
        let full: usize = grounding_network_suite(false)
            .iter()
            .map(|(_, db)| db.len())
            .sum();
        assert!(small < full);
    }

    #[test]
    fn choice_program_has_exponential_stable_models() {
        let p = choice_program(3);
        let models =
            gdlog_engine::stable_models(&p, &gdlog_engine::StableModelLimits::default()).unwrap();
        assert_eq!(models.len(), 8);
    }
}

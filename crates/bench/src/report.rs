//! Textual reports for the experiment runner, and the fingerprint scheme
//! shared by the bench binaries.

use std::fmt;

// The deterministic fingerprint scheme of the bench binaries (`bench_chase`
// over outcome listings, `bench_stable` over event listings) — canonically
// defined in `gdlog_core::fingerprint` since PR 6, where the CLI and the
// scenario-corpus goldens share it. Re-exported here so the bench binaries
// (and CI's thread-determinism diff) keep their historical import path.
pub use gdlog_core::fingerprint::fnv1a_fingerprint;

/// One row of a paper-vs-measured report.
#[derive(Clone, Debug)]
pub struct Row {
    /// The quantity being reported (e.g. "P(dominated), K3, p=0.1").
    pub quantity: String,
    /// The value the paper states (or implies), as text.
    pub paper: String,
    /// The value measured by this implementation, as text.
    pub measured: String,
    /// Whether the measured value matches the paper's claim.
    pub ok: bool,
}

impl Row {
    /// Build a row.
    pub fn new(quantity: &str, paper: &str, measured: &str, ok: bool) -> Self {
        Row {
            quantity: quantity.to_owned(),
            paper: paper.to_owned(),
            measured: measured.to_owned(),
            ok,
        }
    }
}

/// A report: a titled list of rows.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// The report title (experiment id and description).
    pub title: String,
    /// The rows.
    pub rows: Vec<Row>,
}

impl Report {
    /// Create an empty report.
    pub fn new(title: &str) -> Self {
        Report {
            title: title.to_owned(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Did every row match?
    pub fn all_ok(&self) -> bool {
        self.rows.iter().all(|r| r.ok)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let qw = self
            .rows
            .iter()
            .map(|r| r.quantity.len())
            .chain(std::iter::once("quantity".len()))
            .max()
            .unwrap_or(8);
        let pw = self
            .rows
            .iter()
            .map(|r| r.paper.len())
            .chain(std::iter::once("paper".len()))
            .max()
            .unwrap_or(5);
        let mw = self
            .rows
            .iter()
            .map(|r| r.measured.len())
            .chain(std::iter::once("measured".len()))
            .max()
            .unwrap_or(8);
        writeln!(
            f,
            "{:<qw$}  {:<pw$}  {:<mw$}  status",
            "quantity", "paper", "measured"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<qw$}  {:<pw$}  {:<mw$}  {}",
                r.quantity,
                r.paper,
                r.measured,
                if r.ok { "ok" } else { "MISMATCH" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_formatting_and_status() {
        let mut report = Report::new("E1 — network resilience");
        report.push(Row::new("P(dominated)", "0.19", "19/100", true));
        report.push(Row::new("outcomes", "-", "12", true));
        assert!(report.all_ok());
        let text = report.to_string();
        assert!(text.contains("E1"));
        assert!(text.contains("P(dominated)"));
        assert!(text.contains("ok"));

        report.push(Row::new("bad", "1", "2", false));
        assert!(!report.all_ok());
        assert!(report.to_string().contains("MISMATCH"));
    }
}

//! The per-claim experiment runners (E1–E10 of `DESIGN.md` §4).
//!
//! Each experiment reproduces a quantitative claim of the paper (a worked
//! example or a finitely-checkable theorem) and reports paper-vs-measured
//! rows. E11/E12 are pure performance studies and live in the Criterion
//! benches only.

use crate::report::{Report, Row};
use crate::workloads::{
    coin_chain, dime_quarter_workload, network_database, network_program, Topology,
};
use gdlog_core::{
    as_good_as, bckov_output, coin_program, compare_outputs, dependency_graph, enumerate_outcomes,
    isomorphic_to_bckov, stratification, ChaseBudget, Grounder, GrounderChoice, McParams,
    PerfectGrounder, Pipeline, Program, SigmaPi, SimpleGrounder, TriggerOrder,
};
use gdlog_data::{Const, Database, GroundAtom, Predicate};
use gdlog_engine::{stable_models, StableModelLimits};
use gdlog_prob::Prob;
use std::sync::Arc;

/// The outcome of one experiment: its id and its report.
#[derive(Clone, Debug)]
pub struct ExperimentOutcome {
    /// Experiment identifier ("e1" … "e10").
    pub id: String,
    /// The paper-vs-measured report.
    pub report: Report,
}

impl ExperimentOutcome {
    /// Did every row of the report match the paper?
    pub fn all_ok(&self) -> bool {
        self.report.all_ok()
    }
}

/// The known experiment identifiers.
pub const EXPERIMENT_IDS: [&str; 10] =
    ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10"];

/// Run a single experiment by id. Unknown ids panic (callers validate against
/// [`EXPERIMENT_IDS`]).
pub fn run_experiment(id: &str) -> ExperimentOutcome {
    let report = match id {
        "e1" => e1_network_resilience(),
        "e2" => e2_coin_program(),
        "e3" => e3_dime_quarter(),
        "e4" => e4_chase_order_independence(),
        "e5" => e5_bckov_isomorphism(),
        "e6" => e6_as_good_as(),
        "e7" => e7_grounder_properties(),
        "e8" => e8_dependency_graph(),
        "e9" => e9_grounding_sizes(),
        "e10" => e10_monte_carlo(),
        other => panic!("unknown experiment id {other}"),
    };
    ExperimentOutcome {
        id: id.to_owned(),
        report,
    }
}

/// Run every experiment.
pub fn run_all() -> Vec<ExperimentOutcome> {
    EXPERIMENT_IDS.iter().map(|id| run_experiment(id)).collect()
}

fn fmt_prob(p: &Prob) -> String {
    match p.as_exact() {
        Some(r) => format!("{r} ({:.4})", r.to_f64()),
        None => format!("{:.6}", p.to_f64()),
    }
}

fn solve(program: &Program, db: &Database, choice: GrounderChoice) -> gdlog_core::OutputSpace {
    Pipeline::with_grounder(program, db, choice)
        .expect("pipeline construction")
        .solve()
        .expect("pipeline solve")
}

/// E1 — Example 3.10: the 3-router clique is dominated with probability 0.19,
/// plus a small sweep over the infection probability and the ring topology.
fn e1_network_resilience() -> Report {
    let mut report = Report::new("E1 — network resilience (Example 3.10)");
    let db = network_database(3, Topology::Clique);
    let space = solve(&network_program(0.1), &db, GrounderChoice::Simple);
    let dominated = space.has_stable_model_probability();
    report.push(Row::new(
        "P(dominated), K3, p=0.1",
        "0.19",
        &fmt_prob(&dominated),
        dominated == Prob::ratio(19, 100),
    ));
    report.push(Row::new(
        "P(no stable model), K3, p=0.1",
        "0.81",
        &fmt_prob(&space.probability_where(|k| k.is_empty())),
        space.probability_where(|k| k.is_empty()) == Prob::ratio(81, 100),
    ));
    report.push(Row::new(
        "explored + residual mass",
        "1",
        &fmt_prob(&space.explored_mass().add(&space.residual_mass())),
        space
            .explored_mass()
            .add(&space.residual_mass())
            .approx_eq(&Prob::ONE, 1e-9),
    ));
    // Sweep: the domination probability grows with p (shape check, the paper
    // gives no numbers beyond p = 0.1).
    let mut previous = Prob::ZERO;
    let mut monotone = true;
    for p in [0.1, 0.3, 0.5, 0.9] {
        let space = solve(&network_program(p), &db, GrounderChoice::Simple);
        let dominated = space.has_stable_model_probability();
        if dominated.to_f64() + 1e-12 < previous.to_f64() {
            monotone = false;
        }
        previous = dominated;
        report.push(Row::new(
            &format!("P(dominated), K3, p={p}"),
            "increasing in p",
            &fmt_prob(&previous),
            true,
        ));
    }
    report.push(Row::new(
        "monotone in p",
        "yes",
        if monotone { "yes" } else { "no" },
        monotone,
    ));
    report
}

/// E2 — the coin program of Section 3.
fn e2_coin_program() -> Report {
    let mut report = Report::new("E2 — the coin program (Section 3)");
    let program = coin_program();
    let pipeline = Pipeline::new(&program, &Database::new()).unwrap();
    let chase = pipeline.chase().unwrap();
    report.push(Row::new(
        "finite possible outcomes",
        "2 (heads / tails)",
        &chase.outcomes.len().to_string(),
        chase.outcomes.len() == 2,
    ));
    let all_half = chase
        .outcomes
        .iter()
        .all(|o| o.probability == Prob::ratio(1, 2));
    report.push(Row::new(
        "each outcome probability",
        "0.5",
        if all_half { "0.5" } else { "≠0.5" },
        all_half,
    ));
    let limits = StableModelLimits::default();
    let mut counts: Vec<usize> = chase
        .outcomes
        .iter()
        .map(|o| o.stable_models(&limits).unwrap().len())
        .collect();
    counts.sort();
    report.push(Row::new(
        "stable models per outcome",
        "{0, 2}",
        &format!("{counts:?}"),
        counts == vec![0, 2],
    ));
    let space = pipeline.solve().unwrap();
    report.push(Row::new(
        "P(some stable model)",
        "0.5",
        &fmt_prob(&space.has_stable_model_probability()),
        space.has_stable_model_probability() == Prob::ratio(1, 2),
    ));

    // Adding the rule Coin(1) → ⊥ makes the two configurations induce the
    // same (empty) set of stable models — "different configurations may lead
    // to the same set of stable models" (Section 3).
    let mut extended = program.clone();
    extended.push_constraint(
        vec![gdlog_data::Atom::make(
            "Coin",
            vec![gdlog_data::Term::int(1)],
        )],
        vec![],
    );
    let space = solve(&extended, &Database::new(), GrounderChoice::Simple);
    report.push(Row::new(
        "with Coin(1) → ⊥: distinct events",
        "1 (sms = ∅ everywhere)",
        &space.event_count().to_string(),
        space.event_count() == 1 && space.probability_where(|k| k.is_empty()) == Prob::ONE,
    ));
    report
}

/// E3 — the dime/quarter example of Appendix E (perfect grounder).
fn e3_dime_quarter() -> Report {
    let mut report = Report::new("E3 — dimes and quarters (Appendix E)");
    let (program, db) = dime_quarter_workload(2, 1);
    let space = solve(&program, &db, GrounderChoice::Perfect);
    report.push(Row::new(
        "finite possible outcomes",
        "5",
        &space.outcome_count().to_string(),
        space.outcome_count() == 5,
    ));
    let some_tail = GroundAtom::make("SomeDimeTail", vec![]);
    let p_tail = space.cautious_probability(&some_tail);
    report.push(Row::new(
        "P(SomeDimeTail)",
        "0.75",
        &fmt_prob(&p_tail),
        p_tail == Prob::ratio(3, 4),
    ));
    let quarter_tail = GroundAtom::make("QuarterTail", vec![Const::Int(3), Const::Int(1)]);
    let p_qt = space.cautious_probability(&quarter_tail);
    report.push(Row::new(
        "P(QuarterTail(3, 1))",
        "0.125",
        &fmt_prob(&p_qt),
        p_qt == Prob::ratio(1, 8),
    ));
    report.push(Row::new(
        "residual mass",
        "0",
        &fmt_prob(&space.residual_mass()),
        space.residual_mass() == Prob::ZERO,
    ));
    report
}

/// E4 — Theorem 4.6 / Lemma 4.4: the chase gives the same probability space
/// regardless of trigger order.
fn e4_chase_order_independence() -> Report {
    let mut report = Report::new("E4 — chase order independence (Lemma 4.4, Theorem 4.6)");
    let cases: Vec<(&str, Program, Database)> = vec![
        (
            "network K3",
            network_program(0.1),
            network_database(3, Topology::Clique),
        ),
        ("coin", coin_program(), Database::new()),
        (
            "dime/quarter",
            dime_quarter_workload(2, 1).0,
            dime_quarter_workload(2, 1).1,
        ),
        ("coin chain n=4", coin_chain(4, 0.5).0, coin_chain(4, 0.5).1),
    ];
    for (name, program, db) in cases {
        let sigma = Arc::new(SigmaPi::translate(&program, &db).unwrap());
        let grounder = SimpleGrounder::new(sigma);
        let canonical = |order| {
            let chase = enumerate_outcomes(&grounder, &ChaseBudget::default(), order).unwrap();
            let mut keys: Vec<String> = chase
                .outcomes
                .iter()
                .map(|o| format!("{}#{}", o.atr, o.probability))
                .collect();
            keys.sort();
            (keys, chase.explored_mass())
        };
        let first = canonical(TriggerOrder::First);
        let last = canonical(TriggerOrder::Last);
        let scrambled = canonical(TriggerOrder::Scrambled);
        let same = first == last && first == scrambled;
        report.push(Row::new(
            &format!("{name}: identical outcome sets across orders"),
            "yes",
            if same { "yes" } else { "no" },
            same,
        ));
        report.push(Row::new(
            &format!("{name}: total mass"),
            "1",
            &fmt_prob(&first.1),
            first.1.approx_eq(&Prob::ONE, 1e-9),
        ));
    }
    report
}

/// E5 — Theorem C.4: the simple-grounder semantics is isomorphic to the BCKOV
/// semantics on positive programs.
fn e5_bckov_isomorphism() -> Report {
    let mut report = Report::new("E5 — BCKOV isomorphism on positive programs (Theorem C.4)");
    // The positive fragment of Example 3.1 (propagation only) on several
    // topologies.
    let positive = Program::new(network_program(0.1).rules()[..1].to_vec());
    for (name, db) in [
        ("line n=4", network_database(4, Topology::Line)),
        ("ring n=4", network_database(4, Topology::Ring)),
        ("clique n=3", network_database(3, Topology::Clique)),
    ] {
        let sigma = Arc::new(SigmaPi::translate(&positive, &db).unwrap());
        let grounder = SimpleGrounder::new(sigma.clone());
        let chase =
            enumerate_outcomes(&grounder, &ChaseBudget::default(), TriggerOrder::First).unwrap();
        let bckov = bckov_output(&sigma, &ChaseBudget::default()).unwrap();
        let iso =
            isomorphic_to_bckov(&grounder, &chase, &bckov, &StableModelLimits::default()).unwrap();
        report.push(Row::new(
            &format!("{name}: isomorphic probability spaces"),
            "yes",
            if iso { "yes" } else { "no" },
            iso,
        ));
        report.push(Row::new(
            &format!("{name}: #outcomes (ours vs BCKOV)"),
            "equal",
            &format!("{} vs {}", chase.outcomes.len(), bckov.outcomes.len()),
            chase.outcomes.len() == bckov.outcomes.len(),
        ));
    }
    report
}

/// E6 — Theorems 3.12 and 5.3: the "as good as" relation.
fn e6_as_good_as() -> Report {
    let mut report = Report::new("E6 — 'as good as' comparisons (Theorems 3.12 and 5.3)");
    // Stratified case: perfect vs simple on the dime/quarter family.
    for dimes in [1usize, 2, 3] {
        let (program, db) = dime_quarter_workload(dimes, 1);
        let sigma = Arc::new(SigmaPi::translate(&program, &db).unwrap());
        let simple = SimpleGrounder::new(sigma.clone());
        let perfect = PerfectGrounder::new(sigma).unwrap();
        let chase_s =
            enumerate_outcomes(&simple, &ChaseBudget::default(), TriggerOrder::First).unwrap();
        let chase_p =
            enumerate_outcomes(&perfect, &ChaseBudget::default(), TriggerOrder::First).unwrap();
        let s_space =
            gdlog_core::OutputSpace::from_chase(&chase_s, &StableModelLimits::default()).unwrap();
        let p_space =
            gdlog_core::OutputSpace::from_chase(&chase_p, &StableModelLimits::default()).unwrap();
        let dominates = as_good_as(&p_space, &s_space);
        report.push(Row::new(
            &format!("{dimes} dime(s): perfect as good as simple"),
            "yes (Thm 5.3)",
            if dominates { "yes" } else { "no" },
            dominates,
        ));
        report.push(Row::new(
            &format!("{dimes} dime(s): outcomes perfect vs simple"),
            "perfect ≤ simple",
            &format!("{} vs {}", chase_p.outcomes.len(), chase_s.outcomes.len()),
            chase_p.outcomes.len() <= chase_s.outcomes.len(),
        ));
    }
    // Positive case: all grounders agree (Theorem 3.12 via equality).
    let positive = Program::new(network_program(0.1).rules()[..1].to_vec());
    let db = network_database(4, Topology::Line);
    let sigma = Arc::new(SigmaPi::translate(&positive, &db).unwrap());
    let simple = SimpleGrounder::new(sigma.clone());
    let perfect = PerfectGrounder::new(sigma).unwrap();
    let s_space = gdlog_core::OutputSpace::from_chase(
        &enumerate_outcomes(&simple, &ChaseBudget::default(), TriggerOrder::First).unwrap(),
        &StableModelLimits::default(),
    )
    .unwrap();
    let p_space = gdlog_core::OutputSpace::from_chase(
        &enumerate_outcomes(&perfect, &ChaseBudget::default(), TriggerOrder::First).unwrap(),
        &StableModelLimits::default(),
    )
    .unwrap();
    let cmp = compare_outputs(&s_space, &p_space);
    report.push(Row::new(
        "positive program: simple ≡ perfect",
        "yes (Thm 3.12)",
        if cmp.equivalent() { "yes" } else { "no" },
        cmp.equivalent(),
    ));
    report
}

/// E7 — Propositions 3.5 / 5.2 and Lemma E.1: grounder correctness spot
/// checks on every terminal configuration of the dime/quarter example.
fn e7_grounder_properties() -> Report {
    let mut report = Report::new("E7 — grounder properties (Prop. 3.5 / 5.2, Lemma E.1)");
    let (program, db) = dime_quarter_workload(2, 1);
    let sigma = Arc::new(SigmaPi::translate(&program, &db).unwrap());
    let perfect = PerfectGrounder::new(sigma.clone()).unwrap();
    let simple = SimpleGrounder::new(sigma);
    let limits = StableModelLimits::default();

    let chase = enumerate_outcomes(&perfect, &ChaseBudget::default(), TriggerOrder::First).unwrap();
    // Lemma E.1: every perfect-grounder possible outcome has exactly one
    // stable model, namely the heads of its rules.
    let mut lemma_e1 = true;
    for outcome in &chase.outcomes {
        let models = outcome.stable_models(&limits).unwrap();
        let full = outcome.full_program();
        if models.len() != 1 || &models[0] != full.heads() {
            lemma_e1 = false;
        }
    }
    report.push(Row::new(
        "perfect outcomes: unique stable model = heads",
        "yes (Lemma E.1)",
        if lemma_e1 { "yes" } else { "no" },
        lemma_e1,
    ));

    // Proposition 3.5 (spot check): for every terminal Σ of the *simple*
    // grounder, sms(GSimple(Σ) ∪ Σ) equals sms computed from the perfect
    // grounder's rules for the same Σ when the latter is also terminal.
    let chase_simple =
        enumerate_outcomes(&simple, &ChaseBudget::default(), TriggerOrder::First).unwrap();
    let mut prop_3_5 = true;
    for outcome in &chase_simple.outcomes {
        let models_simple = outcome.stable_models(&limits).unwrap();
        // The perfect grounding of the same choice set (restricted to the
        // choices actually required) must induce the same models on the
        // original schema.
        let perfect_rules = perfect.full_program(&outcome.atr);
        let models_perfect = stable_models(&perfect_rules, &limits).unwrap();
        let strip = |models: &[Database]| {
            let mut v: Vec<Vec<GroundAtom>> = models
                .iter()
                .map(|m| perfect.sigma().strip_generated(m).canonical_atoms())
                .collect();
            v.sort();
            v
        };
        if strip(&models_simple) != strip(&models_perfect) {
            prop_3_5 = false;
        }
    }
    report.push(Row::new(
        "simple vs perfect: same stable models on sch(Π) per configuration",
        "yes",
        if prop_3_5 { "yes" } else { "no" },
        prop_3_5,
    ));
    report
}

/// E8 — Figure 1: the dependency graph and stratification of the Appendix E
/// program.
fn e8_dependency_graph() -> Report {
    let mut report = Report::new("E8 — dependency graph and strata (Figure 1)");
    let (program, _) = dime_quarter_workload(2, 1);
    let graph = dependency_graph(&program);
    report.push(Row::new(
        "vertices",
        "5",
        &graph.vertex_count().to_string(),
        graph.vertex_count() == 5,
    ));
    let neg_edges = graph
        .edges()
        .filter(|(_, _, s)| *s == gdlog_core::depgraph::EdgeSign::Negative)
        .count();
    report.push(Row::new(
        "negative (dashed) edges",
        "1 (SomeDimeTail → QuarterTail)",
        &neg_edges.to_string(),
        neg_edges == 1,
    ));
    let strat = stratification(&program).unwrap();
    report.push(Row::new(
        "strata",
        "5 singleton components",
        &strat.len().to_string(),
        strat.len() == 5,
    ));
    let s = |name: &str, ar| strat.stratum_of(&Predicate::new(name, ar)).unwrap();
    let order_ok = s("Dime", 1) < s("DimeTail", 2)
        && s("DimeTail", 2) < s("SomeDimeTail", 0)
        && s("SomeDimeTail", 0) < s("QuarterTail", 2);
    report.push(Row::new(
        "topological order Dime < DimeTail < SomeDimeTail < QuarterTail",
        "yes",
        if order_ok { "yes" } else { "no" },
        order_ok,
    ));
    report
}

/// E9 — grounding sizes: the perfect grounder produces no more (and usually
/// fewer) ground rules than the simple grounder on stratified programs — the
/// "superfluous ground rules" the paper's conclusion mentions.
fn e9_grounding_sizes() -> Report {
    let mut report = Report::new("E9 — ground rule counts: simple vs perfect grounder");
    for dimes in [1usize, 2, 4, 6] {
        let (program, db) = dime_quarter_workload(dimes, dimes);
        let sigma = Arc::new(SigmaPi::translate(&program, &db).unwrap());
        let simple = SimpleGrounder::new(sigma.clone());
        let perfect = PerfectGrounder::new(sigma.clone()).unwrap();
        // Ground the all-heads configuration (no dime shows tails), the case
        // where the difference is largest because the quarters must be
        // tossed by both grounders.
        let schema = &sigma.atr_schemas[0];
        let mut atr = gdlog_core::AtrSet::new();
        for d in 1..=dimes as i64 {
            let active = GroundAtom {
                predicate: schema.active,
                args: vec![Const::real(0.5).unwrap(), Const::Int(d)],
            };
            atr.insert(gdlog_core::AtrRule::new(&sigma, active, Const::Int(1)).unwrap())
                .unwrap();
        }
        let simple_rules = simple.ground(&atr).len();
        let perfect_rules = perfect.ground(&atr).len();
        report.push(Row::new(
            &format!("{dimes} dimes / {dimes} quarters (all dimes tails)"),
            "perfect < simple",
            &format!("{perfect_rules} vs {simple_rules}"),
            perfect_rules < simple_rules,
        ));
    }
    report
}

/// E10 — Monte-Carlo estimation vs exact enumeration.
fn e10_monte_carlo() -> Report {
    let mut report = Report::new("E10 — Monte-Carlo vs exact enumeration");
    // Exact value on K3 is 0.19 (E1); the sampler must agree within 4σ.
    let db = network_database(3, Topology::Clique);
    let pipeline = Pipeline::new(&network_program(0.1), &db).unwrap();
    let limits = StableModelLimits::default();
    let mut mc = pipeline.sampler_with(McParams::new().with_max_triggers(128).with_seed(20230613));
    let stats = mc
        .estimate(5000, |outcome| {
            !outcome.stable_models(&limits).unwrap().is_empty()
        })
        .unwrap();
    report.push(Row::new(
        "K3, p=0.1: sampled P(dominated)",
        "0.19 ± 4σ",
        &format!(
            "{:.4} (σ = {:.4})",
            stats.estimate.mean, stats.estimate.std_error
        ),
        stats.estimate.consistent_with(0.19, 4.0),
    ));
    report.push(Row::new(
        "abandoned sample paths",
        "0",
        &stats.abandoned.to_string(),
        stats.abandoned == 0,
    ));

    // A ring of 5 routers: exact enumeration is still feasible; the sampler
    // must agree with it.
    let db = network_database(5, Topology::Ring);
    let pipeline = Pipeline::new(&network_program(0.2), &db).unwrap();
    let exact = pipeline.solve().unwrap().has_stable_model_probability();
    let mut mc = pipeline.sampler_with(McParams::new().with_max_triggers(256).with_seed(7));
    let stats = mc
        .estimate(2000, |outcome| {
            !outcome.stable_models(&limits).unwrap().is_empty()
        })
        .unwrap();
    report.push(Row::new(
        "ring n=5, p=0.2: sampled vs exact P(dominated)",
        &format!("{:.4}", exact.to_f64()),
        &format!("{:.4}", stats.estimate.mean),
        stats.estimate.consistent_with(exact.to_f64(), 4.0),
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiments_match_the_paper() {
        // The fast experiments run as part of the test suite; the heavier
        // ones (E4, E6, E9, E10) are exercised by the binary / integration
        // tests.
        for id in ["e2", "e3", "e8"] {
            let outcome = run_experiment(id);
            assert!(
                outcome.all_ok(),
                "experiment {id} failed:\n{}",
                outcome.report
            );
        }
    }

    #[test]
    fn e1_reproduces_example_3_10() {
        let outcome = run_experiment("e1");
        assert!(outcome.all_ok(), "{}", outcome.report);
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_ids_panic() {
        run_experiment("e99");
    }
}

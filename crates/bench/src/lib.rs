//! # gdlog-bench — workloads, experiments and benchmarks
//!
//! The paper *Generative Datalog with Stable Negation* is a semantics paper
//! with no experimental section; the workloads here are the synthetic
//! equivalents described in `DESIGN.md` §4 and `EXPERIMENTS.md`. The crate
//! provides:
//!
//! * [`workloads`] — generators for the paper's worked examples (network
//!   resilience, the coin program, dimes & quarters) and parameterised
//!   families of them (ring/grid/clique/Erdős–Rényi networks, coin chains,
//!   random stratified programs),
//! * [`experiments`] — the per-claim experiment runners (E1–E12) that print
//!   the paper-vs-measured report recorded in `EXPERIMENTS.md`,
//! * Criterion benches under `benches/` for the performance studies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod workloads;

pub use experiments::{run_all, run_experiment, ExperimentOutcome};
pub use report::{fnv1a_fingerprint, Report, Row};

//! Naive vs. semi-naive grounding comparison with a JSON summary.
//!
//! The vendored criterion stand-in prints timings but has no machine-readable
//! output, so CI tracks the grounding perf trajectory through this binary
//! instead: it times both saturation strategies on the scaled network
//! workloads and writes a `BENCH_grounding.json` summary.
//!
//! Usage: `bench_grounding [--full] [--out PATH]` (default: small scale,
//! `BENCH_grounding.json` in the current directory).

use gdlog_bench::workloads::{cascade_choice_set, grounding_network_suite, network_program};
use gdlog_core::{AtrSet, Grounder, SigmaPi, SimpleGrounder};
use std::sync::Arc;
use std::time::Instant;

struct Row {
    name: String,
    db_atoms: usize,
    choices: usize,
    ground_rules: usize,
    naive_ms: f64,
    seminaive_ms: f64,
}

/// Minimum wall-clock over `reps` runs, in milliseconds.
fn time_min_ms<F: FnMut() -> usize>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_grounding.json".to_owned());
    let reps = if full { 5 } else { 3 };

    let mut rows: Vec<Row> = Vec::new();
    for (name, db) in grounding_network_suite(!full) {
        let sigma = Arc::new(
            SigmaPi::translate(&network_program(0.1), &db).expect("workload program translates"),
        );
        let grounder = SimpleGrounder::new(sigma);
        let atr: AtrSet = cascade_choice_set(&grounder, 1, 1024);
        let ground_rules = grounder.ground(&atr).len();
        assert_eq!(
            grounder.ground_naive(&atr).len(),
            ground_rules,
            "naive and semi-naive groundings must agree on {name}"
        );
        let seminaive_ms = time_min_ms(reps, || grounder.ground(&atr).len());
        let naive_ms = time_min_ms(reps, || grounder.ground_naive(&atr).len());
        eprintln!(
            "{name}: db={} choices={} rules={ground_rules} naive={naive_ms:.2}ms \
             seminaive={seminaive_ms:.2}ms speedup={:.2}x",
            db.len(),
            atr.len(),
            naive_ms / seminaive_ms
        );
        rows.push(Row {
            name,
            db_atoms: db.len(),
            choices: atr.len(),
            ground_rules,
            naive_ms,
            seminaive_ms,
        });
    }

    // The acceptance metric: speedup on the workload with the most ground
    // rules (the "largest network workload").
    let largest = rows
        .iter()
        .max_by_key(|r| r.ground_rules)
        .expect("suite is non-empty");
    let largest_speedup = largest.naive_ms / largest.seminaive_ms;

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"grounding_seminaive\",\n");
    json.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        if full { "full" } else { "small" }
    ));
    json.push_str(&format!(
        "  \"largest_workload\": \"{}\",\n  \"largest_workload_speedup\": {:.3},\n",
        largest.name, largest_speedup
    ));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"db_atoms\": {}, \"choices\": {}, \"ground_rules\": {}, \
             \"naive_ms\": {:.3}, \"seminaive_ms\": {:.3}, \"speedup\": {:.3}}}{}\n",
            r.name,
            r.db_atoms,
            r.choices,
            r.ground_rules,
            r.naive_ms,
            r.seminaive_ms,
            r.naive_ms / r.seminaive_ms,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write summary");
    eprintln!("wrote {out_path}");
    println!("{json}");

    if largest_speedup < 1.0 {
        eprintln!("WARNING: semi-naive slower than naive on the largest workload");
        std::process::exit(1);
    }
}

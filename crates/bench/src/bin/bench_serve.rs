//! Warm-vs-cold benchmark of the resident server with a JSON summary.
//!
//! The tentpole claim of `gdlog serve` is that keeping compiled programs
//! **warm** amortizes parse → validate → translate → ground → solve across
//! queries: a cold query pays the whole pipeline, a warm query answers from
//! the solver's solve-entry cache. This tracker measures exactly that, over
//! the real wire protocol (an in-process server on an ephemeral loopback
//! port, queried through [`gdlog_server::ServeClient`]):
//!
//! * **cold** — per iteration: `RESET` (drops the compiled-program cache),
//!   `OPEN` (recompile), `QUERY` (solve + render). This is what a one-shot
//!   `gdlog run --json` process pays, minus process startup.
//! * **warm** — `OPEN` once, one priming query, then timed `QUERY`s served
//!   from the warm solver.
//!
//! Before anything is timed, the warm response is asserted byte-identical
//! to the cold one — the speedup must not come from answering differently.
//! Workloads are real corpus scenarios queried with their own `%! args:`
//! directives (`coin_farm` runs `--factored`, exercising the product-space
//! path end to end).
//!
//! A **fault leg** follows the healthy measurements: the same warm workload
//! against a server with `netline`'s chaos layer armed — half the
//! connections stall mid-frame and occasionally drop responses outright —
//! queried through a retry-armed client. Every response must still be
//! byte-identical to the healthy one (corruption costs latency, never
//! correctness), and the recorded p50/p99 put a number on that latency
//! cost in `BENCH_serve.json`.
//!
//! Usage: `bench_serve [--threads N] [--out PATH] [--gate-warm]`
//! (defaults: `GDLOG_THREADS` or 1 thread, `BENCH_serve.json` in the
//! current directory). With `--gate-warm` the run exits non-zero unless at
//! least two workloads reach a 5× warm-over-cold throughput floor.

use gdlog_core::THREADS_ENV;
use gdlog_server::{RetryPolicy, ServeClient, ServeConfig};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Corpus scenarios replayed as server workloads.
const WORKLOADS: &[&str] = &["network_resilience", "game_chain", "coin_farm"];

const COLD_ITERS: usize = 5;
const WARM_ITERS: usize = 200;

/// The fault leg's chaos spec: **every** connection (reconnects included —
/// there is no healthy connection to escape to) stalls each response
/// mid-frame for 2ms and drops one response in eight, which kills that
/// connection — the retry-armed client reconnects, replays its `OPEN`s and
/// retries the query.
const FAULT_SPEC: &str = "every=1,seed=7,stall=2,drop=8";
const FAULT_WORKLOAD: &str = "network_resilience";
const FAULT_ITERS: usize = 120;

struct Row {
    name: String,
    args: Vec<String>,
    cold_ms: Vec<f64>,
    warm_ms: Vec<f64>,
}

impl Row {
    fn warm_over_cold(&self) -> f64 {
        qps(&self.cold_ms).map_or(0.0, |cold| {
            qps(&self.warm_ms).map_or(0.0, |warm| warm / cold)
        })
    }
}

fn qps(latencies_ms: &[f64]) -> Option<f64> {
    let total: f64 = latencies_ms.iter().sum();
    (total > 0.0).then(|| latencies_ms.len() as f64 / (total / 1e3))
}

/// The given percentile (0–100) of a latency sample, by nearest rank.
fn percentile(latencies_ms: &[f64], p: f64) -> f64 {
    let mut sorted = latencies_ms.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

fn scenario_dir() -> PathBuf {
    // crates/bench/ -> repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn directive_args(source: &str) -> Vec<String> {
    source
        .lines()
        .filter_map(|l| l.trim().strip_prefix("%!"))
        .filter_map(|rest| rest.trim().strip_prefix("args:"))
        .flat_map(|args| args.split_whitespace().map(str::to_owned))
        .collect()
}

fn measure(client: &mut ServeClient, name: &str) -> Row {
    let path = scenario_dir().join(format!("{name}.gdl"));
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let label = format!("scenarios/{name}.gdl");
    let args = directive_args(&source);
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();

    // Cold path: drop every compiled program, recompile, solve.
    let mut cold_ms = Vec::with_capacity(COLD_ITERS);
    let mut cold_response = String::new();
    for _ in 0..COLD_ITERS {
        client.reset().expect("RESET");
        let start = Instant::now();
        client.open(&label, &source).expect("OPEN");
        cold_response = client.query(&label, &argv).expect("cold QUERY");
        cold_ms.push(start.elapsed().as_secs_f64() * 1e3);
    }

    // Warm path: the session stays open; prime once, then measure.
    let primed = client.query(&label, &argv).expect("priming QUERY");
    assert_eq!(
        primed, cold_response,
        "{name}: warm response must be byte-identical to cold"
    );
    let mut warm_ms = Vec::with_capacity(WARM_ITERS);
    for _ in 0..WARM_ITERS {
        let start = Instant::now();
        let response = client.query(&label, &argv).expect("warm QUERY");
        warm_ms.push(start.elapsed().as_secs_f64() * 1e3);
        debug_assert_eq!(response, cold_response);
    }

    let row = Row {
        name: name.to_owned(),
        args,
        cold_ms,
        warm_ms,
    };
    eprintln!(
        "{name}: cold p50 {:.2}ms ({:.1} qps) -> warm p50 {:.3}ms ({:.0} qps), {:.1}x",
        percentile(&row.cold_ms, 50.0),
        qps(&row.cold_ms).unwrap_or(0.0),
        percentile(&row.warm_ms, 50.0),
        qps(&row.warm_ms).unwrap_or(0.0),
        row.warm_over_cold(),
    );
    row
}

/// Warm latencies for one workload against a chaos-armed server, through a
/// retry-armed client. Asserts every response byte-identical to `expected`
/// (taken from the healthy server) — the fault leg measures the latency
/// cost of faults, never a correctness discount.
fn measure_under_fault(
    label: &str,
    source: &str,
    argv: &[&str],
    expected: &str,
    threads: usize,
) -> Vec<f64> {
    // Chaos arms via the environment, read once at server startup; set it
    // only around this `start` so nothing else inherits it.
    std::env::set_var(netline::chaos::CHAOS_ENV, FAULT_SPEC);
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: Some(threads),
        ..ServeConfig::default()
    };
    let started = gdlog_server::start(&config);
    std::env::remove_var(netline::chaos::CHAOS_ENV);
    let mut server = started.expect("bind chaos server");

    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    client
        .set_io_timeout(Some(Duration::from_secs(30)))
        .expect("io timeout");
    client.set_retry_policy(Some(RetryPolicy {
        attempts: 10,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(20),
        seed: 5,
    }));
    client.open(label, source).expect("OPEN under fault");
    let primed = client
        .query(label, argv)
        .expect("priming QUERY under fault");
    assert_eq!(
        primed, expected,
        "{label}: fault-leg response must be byte-identical to healthy"
    );
    let mut fault_ms = Vec::with_capacity(FAULT_ITERS);
    for _ in 0..FAULT_ITERS {
        let start = Instant::now();
        let response = client.query(label, argv).expect("QUERY under fault");
        fault_ms.push(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            response, expected,
            "fault corruption leaked into a response"
        );
    }
    drop(client);
    server.stop();
    fault_ms
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let gate = args.iter().any(|a| a == "--gate-warm");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_owned());
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .or_else(|| {
            std::env::var(THREADS_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
        })
        .unwrap_or(1);

    let config = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: Some(threads),
        ..ServeConfig::default()
    };
    let mut server = gdlog_server::start(&config).expect("bind ephemeral server");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    let rows: Vec<Row> = WORKLOADS.iter().map(|w| measure(&mut client, w)).collect();

    // Tail latency under injected transport faults, against the healthy
    // response as the byte-identity reference.
    let fault_ms = {
        let path = scenario_dir().join(format!("{FAULT_WORKLOAD}.gdl"));
        let source = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let label = format!("scenarios/{FAULT_WORKLOAD}.gdl");
        let args = directive_args(&source);
        let argv: Vec<&str> = args.iter().map(String::as_str).collect();
        let expected = client
            .query(&label, &argv)
            .expect("healthy reference QUERY");
        measure_under_fault(&label, &source, &argv, &expected, threads)
    };
    eprintln!(
        "{FAULT_WORKLOAD} under {FAULT_SPEC}: warm p50 {:.3}ms, p99 {:.3}ms ({:.0} qps)",
        percentile(&fault_ms, 50.0),
        percentile(&fault_ms, 99.0),
        qps(&fault_ms).unwrap_or(0.0),
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"resident_server\",\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!(
        "  \"cold_iters\": {COLD_ITERS},\n  \"warm_iters\": {WARM_ITERS},\n"
    ));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"args\": \"{}\", \
             \"cold_ms_p50\": {:.3}, \"cold_ms_p99\": {:.3}, \"cold_qps\": {:.2}, \
             \"warm_ms_p50\": {:.4}, \"warm_ms_p99\": {:.4}, \"warm_qps\": {:.2}, \
             \"warm_over_cold\": {:.1}}}{}\n",
            r.name,
            r.args.join(" "),
            percentile(&r.cold_ms, 50.0),
            percentile(&r.cold_ms, 99.0),
            qps(&r.cold_ms).unwrap_or(0.0),
            percentile(&r.warm_ms, 50.0),
            percentile(&r.warm_ms, 99.0),
            qps(&r.warm_ms).unwrap_or(0.0),
            r.warm_over_cold(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"fault_leg\": {{\"workload\": \"{FAULT_WORKLOAD}\", \"chaos\": \"{FAULT_SPEC}\", \
         \"iters\": {FAULT_ITERS}, \"warm_ms_p50\": {:.4}, \"warm_ms_p99\": {:.4}, \
         \"warm_qps\": {:.2}}}\n",
        percentile(&fault_ms, 50.0),
        percentile(&fault_ms, 99.0),
        qps(&fault_ms).unwrap_or(0.0),
    ));
    json.push_str("}\n");
    drop(client);
    server.stop();

    std::fs::write(&out_path, &json).expect("write summary");
    eprintln!("wrote {out_path}");
    println!("{json}");

    // Acceptance floor: warm must buy at least 5x throughput on at least
    // two workloads (it should buy orders of magnitude; 5x is the gate the
    // PR commits to, robust to noisy CI runners).
    let winners = rows.iter().filter(|r| r.warm_over_cold() >= 5.0).count();
    eprintln!(
        "acceptance: {winners}/{} workloads at >= 5x warm-over-cold throughput",
        rows.len()
    );
    if gate && winners < 2 {
        eprintln!("FAIL: fewer than two workloads reached the 5x warm floor");
        std::process::exit(1);
    }
}

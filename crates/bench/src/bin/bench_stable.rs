//! Stable-model back-end benchmark with a JSON summary: the seed `2^k`
//! enumerator vs. the component-split propagating search, plus the parallel
//! and memoized `OutputSpace::from_chase` paths.
//!
//! PR 5 rebuilt the back-end that turns explored chase outcomes into the
//! paper's output probability space (Definition 3.8). This tracker measures
//! every lever against the same outcome-space workloads:
//!
//! * `naive_ms` — the seed back-end: for every outcome, enumerate
//!   `sms(Σ ∪ G(Σ))` with the retained naive `2^k` sweep
//!   ([`gdlog_engine::naive_stable_models`]), then build and sort the event
//!   partition;
//! * `scc_ms` — sequential [`OutputSpace::from_chase_with`]: component-split
//!   propagating search, no cache;
//! * `par_ms` — the same with one task per distinct outcome program on a
//!   work-stealing pool (`--threads` workers), cold cache;
//! * `warm_ms` — sequential with a warm [`ModelSetCache`], plus the cache
//!   hit rate over one cold and `reps` warm passes.
//!
//! Before anything is timed the three semantic paths must agree **exactly**:
//! per-outcome event keys and the mass-sorted event listing are compared
//! between naive, sequential SCC and parallel+memoized, and a
//! `GDLOG_THREADS`-style sweep asserts `events_by_mass` is bit-identical at
//! 1, 2 and 8 threads. The JSON carries an event-listing fingerprint so CI
//! can diff runs across its thread matrix.
//!
//! Workload scales live in one table, `workloads::stable_workload_suite`, so
//! the CI smoke scale and the full measurement scale cannot drift.
//!
//! Usage: `bench_stable [--full] [--threads N] [--out PATH]` (defaults:
//! small scale, `GDLOG_THREADS` or 4 threads for the parallel column,
//! `BENCH_stable.json` in the current directory). At full scale the run
//! exits non-zero unless at least two workloads reach a 2× naive→SCC
//! speedup — the PR's acceptance floor.

use gdlog_bench::workloads::stable_workload_suite;
use gdlog_core::{
    enumerate_outcomes, ChaseBudget, ChaseResult, Executor, ModelSetCache, ModelSetKey,
    OutputSpace, TriggerOrder, THREADS_ENV,
};
use gdlog_engine::{naive_stable_models, StableModelLimits};
use gdlog_prob::{EventPartition, Prob};
use std::time::Instant;

struct Row {
    name: String,
    outcomes: usize,
    events: usize,
    fingerprint: String,
    naive_ms: f64,
    scc_ms: f64,
    par_ms: f64,
    warm_ms: f64,
    cache_hit_rate: f64,
    sweep_ms: Vec<(usize, f64)>,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.naive_ms / self.scc_ms
    }

    fn par_speedup(&self) -> f64 {
        self.scc_ms / self.par_ms
    }

    fn warm_speedup(&self) -> f64 {
        self.scc_ms / self.warm_ms
    }
}

/// Minimum wall-clock over `reps` runs, in milliseconds.
fn time_min_ms<F: FnMut() -> usize>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// The seed back-end, reproduced end to end: naive per-outcome stable-model
/// enumeration, event partition, mass-sorted listing.
fn naive_events(chase: &ChaseResult, limits: &StableModelLimits) -> Vec<(ModelSetKey, Prob)> {
    let keyed: Vec<(ModelSetKey, Prob)> = chase
        .outcomes
        .iter()
        .map(|o| {
            let models = naive_stable_models(&o.full_program(), limits)
                .expect("naive search stays in limits");
            (ModelSetKey::from_models(&models), o.probability)
        })
        .collect();
    let partition = EventPartition::from_weighted_keys(keyed, chase.residual_mass);
    let mut events: Vec<(ModelSetKey, Prob)> =
        partition.iter().map(|(k, m)| (k.clone(), m.mass)).collect();
    events.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    events
}

/// Fingerprint of the mass-sorted event listing (shared FNV-1a scheme) — CI
/// compares these across `GDLOG_THREADS` legs.
fn fingerprint(events: &[(ModelSetKey, Prob)], outcomes: usize) -> String {
    gdlog_bench::fnv1a_fingerprint(
        events
            .iter()
            .map(|(key, mass)| format!("{key}@{mass};"))
            .chain(std::iter::once(format!("outcomes={outcomes};"))),
    )
}

fn measure(
    name: &str,
    grounder: &dyn gdlog_core::Grounder,
    reps: usize,
    executor: &Executor,
) -> Row {
    let limits = StableModelLimits::default();
    let chase = enumerate_outcomes(grounder, &ChaseBudget::default(), TriggerOrder::First)
        .expect("chase enumeration succeeds");

    // Semantic three-way agreement before anything is timed: naive keys,
    // sequential SCC keys and the parallel+memoized keys must be identical
    // per outcome, and so must the mass-sorted event listings.
    let naive = naive_events(&chase, &limits);
    let sequential =
        OutputSpace::from_chase_with(chase.clone(), &limits, &Executor::sequential(), None)
            .expect("sequential from_chase succeeds");
    assert_eq!(
        naive,
        sequential.events_by_mass(),
        "{name}: SCC search changed the event listing"
    );
    for ((outcome, key), reference) in sequential.outcomes().iter().zip(&chase.outcomes) {
        let models = naive_stable_models(&reference.full_program(), &limits).unwrap();
        assert_eq!(
            key,
            &ModelSetKey::from_models(&models),
            "{name}: SCC search changed the key of {outcome}"
        );
    }
    let cache = ModelSetCache::new();
    let memoized = OutputSpace::from_chase_with(chase.clone(), &limits, executor, Some(&cache))
        .expect("parallel from_chase succeeds");
    assert_eq!(
        sequential.events_by_mass(),
        memoized.events_by_mass(),
        "{name}: parallel+memoized from_chase changed the event listing"
    );

    // Thread sweep: bit-identical events at 1, 2 and 8 threads.
    let mut sweep_ms = Vec::new();
    for threads in [1usize, 2, 8] {
        let exec = Executor::new(threads);
        let space = OutputSpace::from_chase_with(chase.clone(), &limits, &exec, None)
            .expect("sweep from_chase succeeds");
        assert_eq!(
            sequential.events_by_mass(),
            space.events_by_mass(),
            "{name}: events diverged at {threads} threads"
        );
        let ms = time_min_ms(reps, || {
            OutputSpace::from_chase_with(chase.clone(), &limits, &exec, None)
                .unwrap()
                .event_count()
        });
        sweep_ms.push((threads, ms));
    }

    let naive_ms = time_min_ms(reps, || naive_events(&chase, &limits).len());
    let scc_ms = time_min_ms(reps, || {
        OutputSpace::from_chase_with(chase.clone(), &limits, &Executor::sequential(), None)
            .unwrap()
            .event_count()
    });
    let par_ms = time_min_ms(reps, || {
        OutputSpace::from_chase_with(chase.clone(), &limits, executor, None)
            .unwrap()
            .event_count()
    });

    // Warm-cache column: one cold pass primes the cache, the timed passes
    // hit it; the hit rate covers the cold + warm sequence.
    let warm_cache = ModelSetCache::new();
    OutputSpace::from_chase_with(
        chase.clone(),
        &limits,
        &Executor::sequential(),
        Some(&warm_cache),
    )
    .expect("priming pass succeeds");
    let warm_ms = time_min_ms(reps, || {
        OutputSpace::from_chase_with(
            chase.clone(),
            &limits,
            &Executor::sequential(),
            Some(&warm_cache),
        )
        .unwrap()
        .event_count()
    });
    let cache_hit_rate = warm_cache.stats().hit_rate();

    let events = sequential.events_by_mass();
    let row = Row {
        name: name.to_owned(),
        outcomes: chase.outcomes.len(),
        events: events.len(),
        fingerprint: fingerprint(&events, chase.outcomes.len()),
        naive_ms,
        scc_ms,
        par_ms,
        warm_ms,
        cache_hit_rate,
        sweep_ms,
    };
    eprintln!(
        "{name}: outcomes={} events={} naive {naive_ms:.2}ms -> scc {scc_ms:.2}ms ({:.2}x) -> \
         par {par_ms:.2}ms ({:.2}x) -> warm {warm_ms:.2}ms ({:.2}x, hit rate {:.2})",
        row.outcomes,
        row.events,
        row.speedup(),
        row.par_speedup(),
        row.warm_speedup(),
        row.cache_hit_rate,
    );
    row
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_stable.json".to_owned());
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .or_else(|| {
            std::env::var(THREADS_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
        })
        .unwrap_or(4);
    let reps = if full { 3 } else { 2 };
    let executor = Executor::new(threads);
    let threads = executor.threads();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let rows: Vec<Row> = stable_workload_suite(full)
        .iter()
        .map(|w| measure(&w.name, w.grounder.as_ref(), reps, &executor))
        .collect();

    let best = rows
        .iter()
        .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
        .expect("the suite is non-empty");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"stable_backend\",\n");
    json.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        if full { "full" } else { "small" }
    ));
    json.push_str(&format!(
        "  \"threads\": {threads},\n  \"available_parallelism\": {cores},\n"
    ));
    json.push_str(&format!(
        "  \"best_workload\": \"{}\",\n  \"best_speedup\": {:.3},\n",
        best.name,
        best.speedup(),
    ));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sweep = r
            .sweep_ms
            .iter()
            .map(|(t, ms)| format!("{{\"threads\": {t}, \"ms\": {ms:.3}}}"))
            .collect::<Vec<_>>()
            .join(", ");
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"outcomes\": {}, \"events\": {}, \
             \"fingerprint\": \"{}\", \
             \"naive_ms\": {:.3}, \"scc_ms\": {:.3}, \"speedup\": {:.3}, \
             \"par_ms\": {:.3}, \"par_speedup\": {:.3}, \
             \"warm_ms\": {:.3}, \"warm_speedup\": {:.3}, \"cache_hit_rate\": {:.3}, \
             \"thread_sweep\": [{sweep}]}}{}\n",
            r.name,
            r.outcomes,
            r.events,
            r.fingerprint,
            r.naive_ms,
            r.scc_ms,
            r.speedup(),
            r.par_ms,
            r.par_speedup(),
            r.warm_ms,
            r.warm_speedup(),
            r.cache_hit_rate,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write summary");
    eprintln!("wrote {out_path}");
    println!("{json}");

    // Acceptance floor: at full scale, the SCC back-end must beat the seed
    // back-end by >= 2x on at least two workloads. The small (CI smoke)
    // scale reports without gating — its margins sit inside scheduler noise
    // on shared runners.
    let winners = rows.iter().filter(|r| r.speedup() >= 2.0).count();
    eprintln!(
        "acceptance: {winners}/{} workloads at >= 2x naive->scc speedup \
         (threads={threads}, cores={cores})",
        rows.len()
    );
    if full && winners < 2 {
        eprintln!("FAIL: fewer than two workloads reached the 2x acceptance floor");
        std::process::exit(1);
    }
}

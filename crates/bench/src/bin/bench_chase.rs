//! Chase benchmark with a JSON summary: naive-reground vs. incremental vs.
//! parallel.
//!
//! PR 3 made the chase incremental (snapshot-shared groundings plus the
//! perfect grounder's stratum cursor); PR 4 parallelizes it. This tracker
//! measures both levers against the same workloads:
//!
//! * `reground_ms` — every chase node regrounds from scratch (the same
//!   grounder with its `ground_node`/`ground_from` overrides stripped);
//! * `incremental_ms` — sequential snapshot-shared descent;
//! * `par_ms` — the same descent fanned out to a work-stealing pool with
//!   `--threads` workers, merged deterministically in trigger order.
//!
//! Before anything is timed the three modes must agree **exactly** — same
//! outcome list (order included), probabilities, residual mass and visited
//! node count — and the Monte-Carlo estimates must be bit-identical between
//! sequential and parallel (per-walk RNG streams derive from the root seed).
//! The JSON carries a fingerprint of the outcome sets so CI can diff runs
//! across a `GDLOG_THREADS` matrix.
//!
//! Workload scales live in one table, `workloads::chase_workload_suite`, so
//! the CI smoke scale and the full measurement scale cannot drift.
//!
//! Usage: `bench_chase [--full] [--threads N] [--gate-parallel] [--out PATH]`
//! (defaults: small scale, `GDLOG_THREADS` or 4 threads for the parallel
//! column, `BENCH_chase.json` in the current directory). `--gate-parallel`
//! exits non-zero if the parallel column is slower than the sequential
//! incremental one on the best stratified workload — skipped with a warning
//! when the machine cannot run the requested threads in parallel.

use gdlog_bench::workloads::{chase_workload_suite, Reground};
use gdlog_bench::workloads::{network_database, Topology};
use gdlog_core::{
    enumerate_outcomes, enumerate_outcomes_with, network_resilience_program, ChaseBudget,
    ChaseResult, Executor, Grounder, MonteCarlo, Pipeline, TriggerOrder, THREADS_ENV,
};
use std::time::Instant;

struct Row {
    name: String,
    grounder: &'static str,
    stratified: bool,
    outcomes: usize,
    nodes: usize,
    fingerprint: String,
    reground_ms: f64,
    incremental_ms: f64,
    par_ms: f64,
    mc_reground_ms: f64,
    mc_incremental_ms: f64,
    mc_par_ms: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.reground_ms / self.incremental_ms
    }

    fn par_speedup(&self) -> f64 {
        self.incremental_ms / self.par_ms
    }
}

/// Minimum wall-clock over `reps` runs, in milliseconds.
fn time_min_ms<F: FnMut() -> usize>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Fingerprint of the canonical outcome listing, residual mass and node
/// count (shared FNV-1a scheme) — CI compares these across `GDLOG_THREADS`
/// legs.
fn fingerprint(result: &ChaseResult) -> String {
    gdlog_bench::fnv1a_fingerprint(
        result
            .outcomes
            .iter()
            .map(|outcome| format!("{}@{};", outcome.atr, outcome.probability))
            .chain([
                format!("residual={};", result.residual_mass),
                format!("nodes={};", result.nodes_visited),
            ]),
    )
}

/// Panic unless the two results agree under the shared strict definition
/// (`ChaseResult::diff`): outcome order, choice sets, probabilities,
/// residual mass, truncation and visited nodes.
fn assert_identical(a: &ChaseResult, b: &ChaseResult, name: &str, what: &str) {
    if let Some(diff) = a.diff(b) {
        panic!("{name}: {what} changed the result: {diff}");
    }
}

fn measure(
    name: &str,
    grounder: &dyn Grounder,
    stratified: bool,
    reps: usize,
    executor: &Executor,
) -> Row {
    let budget = ChaseBudget::default();
    let baseline = Reground(grounder);

    // All modes must agree on the result before anything is timed. The
    // reground baseline only has to match up to reordering-free semantics —
    // it visits the same nodes in the same order — so the strict comparison
    // applies to it too.
    let incremental = enumerate_outcomes(grounder, &budget, TriggerOrder::First)
        .expect("incremental enumeration succeeds");
    let reground = enumerate_outcomes(&baseline, &budget, TriggerOrder::First)
        .expect("reground enumeration succeeds");
    assert_identical(&incremental, &reground, name, "regrounding");
    let parallel = enumerate_outcomes_with(grounder, &budget, TriggerOrder::First, executor)
        .expect("parallel enumeration succeeds");
    assert_identical(&incremental, &parallel, name, "parallel exploration");

    let incremental_ms = time_min_ms(reps, || {
        enumerate_outcomes(grounder, &budget, TriggerOrder::First)
            .unwrap()
            .outcomes
            .len()
    });
    let reground_ms = time_min_ms(reps, || {
        enumerate_outcomes(&baseline, &budget, TriggerOrder::First)
            .unwrap()
            .outcomes
            .len()
    });
    let par_ms = time_min_ms(reps, || {
        enumerate_outcomes_with(grounder, &budget, TriggerOrder::First, executor)
            .unwrap()
            .outcomes
            .len()
    });

    // Monte-Carlo: per-walk RNG streams make the estimates of all three
    // modes bit-identical; assert that before timing them.
    let samples = 100;
    let estimate = |g: &dyn Grounder, exec: Option<&Executor>| {
        let mut mc = MonteCarlo::new(g, 256, 7);
        if let Some(exec) = exec {
            mc = mc.with_executor(exec);
        }
        mc.estimate(samples, |_| true).unwrap()
    };
    let mc_base = estimate(grounder, None);
    assert_eq!(
        mc_base.estimate.mean,
        estimate(&baseline, None).estimate.mean,
        "{name}: reground changed the Monte-Carlo estimate"
    );
    assert_eq!(
        mc_base.estimate.mean,
        estimate(grounder, Some(executor)).estimate.mean,
        "{name}: parallel sampling changed the Monte-Carlo estimate"
    );

    let mc_incremental_ms = time_min_ms(reps, || estimate(grounder, None).samples);
    let mc_reground_ms = time_min_ms(reps, || estimate(&baseline, None).samples);
    let mc_par_ms = time_min_ms(reps, || estimate(grounder, Some(executor)).samples);

    let row = Row {
        name: name.to_owned(),
        grounder: grounder.name(),
        stratified,
        outcomes: incremental.outcomes.len(),
        nodes: incremental.nodes_visited,
        fingerprint: fingerprint(&incremental),
        reground_ms,
        incremental_ms,
        par_ms,
        mc_reground_ms,
        mc_incremental_ms,
        mc_par_ms,
    };
    eprintln!(
        "{name} [{}]: outcomes={} nodes={} enum {reground_ms:.2}ms -> {incremental_ms:.2}ms \
         ({:.2}x) -> par {par_ms:.2}ms ({:.2}x)  mc {mc_reground_ms:.2}ms -> \
         {mc_incremental_ms:.2}ms -> par {mc_par_ms:.2}ms",
        row.grounder,
        row.outcomes,
        row.nodes,
        row.speedup(),
        row.par_speedup(),
    );
    row
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let gate_parallel = args.iter().any(|a| a == "--gate-parallel");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_chase.json".to_owned());
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .or_else(|| {
            std::env::var(THREADS_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
        })
        .unwrap_or(4);
    let reps = if full { 5 } else { 3 };
    let executor = Executor::new(threads);
    let threads = executor.threads();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let rows: Vec<Row> = chase_workload_suite(full)
        .iter()
        .map(|w| measure(&w.name, w.grounder.as_ref(), w.stratified, reps, &executor))
        .collect();

    // Guard against pipeline-level drift while we are here: the end-to-end
    // result on the paper's Example 3.10 is unchanged by the refactor, and
    // unchanged again when the pipeline itself runs parallel.
    let db = network_database(3, Topology::Clique);
    for pipeline_threads in [1, threads] {
        let pipeline = Pipeline::new(&network_resilience_program(0.1), &db)
            .expect("pipeline")
            .threads(pipeline_threads);
        let space = pipeline.solve().expect("solves");
        assert_eq!(
            space.has_stable_model_probability().to_string(),
            "19/100",
            "Example 3.10 must survive the parallel chase (threads={pipeline_threads})"
        );
    }

    // The acceptance metrics live on the best stratified workload.
    let best = rows
        .iter()
        .filter(|r| r.stratified)
        .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
        .expect("a stratified workload exists");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"chase_incremental\",\n");
    json.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        if full { "full" } else { "small" }
    ));
    json.push_str(&format!(
        "  \"threads\": {threads},\n  \"available_parallelism\": {cores},\n"
    ));
    json.push_str(&format!(
        "  \"best_stratified_workload\": \"{}\",\n  \"best_stratified_speedup\": {:.3},\n  \
         \"best_stratified_par_speedup\": {:.3},\n",
        best.name,
        best.speedup(),
        best.par_speedup(),
    ));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"grounder\": \"{}\", \"stratified\": {}, \
             \"outcomes\": {}, \"nodes\": {}, \"fingerprint\": \"{}\", \
             \"reground_ms\": {:.3}, \"incremental_ms\": {:.3}, \"speedup\": {:.3}, \
             \"par_ms\": {:.3}, \"par_speedup\": {:.3}, \
             \"mc_reground_ms\": {:.3}, \"mc_incremental_ms\": {:.3}, \"mc_speedup\": {:.3}, \
             \"mc_par_ms\": {:.3}, \"mc_par_speedup\": {:.3}}}{}\n",
            r.name,
            r.grounder,
            r.stratified,
            r.outcomes,
            r.nodes,
            r.fingerprint,
            r.reground_ms,
            r.incremental_ms,
            r.speedup(),
            r.par_ms,
            r.par_speedup(),
            r.mc_reground_ms,
            r.mc_incremental_ms,
            r.mc_reground_ms / r.mc_incremental_ms,
            r.mc_par_ms,
            r.mc_incremental_ms / r.mc_par_ms,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write summary");
    eprintln!("wrote {out_path}");
    println!("{json}");

    // The PR 4 acceptance metric (>= 1.5x parallel speedup on at least two
    // workloads at full scale) is reported, not gated: it needs real cores,
    // which shared runners and 1-core containers cannot promise. The CI
    // gate below enforces the regression floor (parallel never slower than
    // sequential incremental) per the thread-matrix satellite.
    let winners = rows.iter().filter(|r| r.par_speedup() >= 1.5).count();
    eprintln!(
        "acceptance: {winners}/{} workloads at >= 1.5x parallel speedup \
         (threads={threads}, cores={cores})",
        rows.len()
    );

    if best.speedup() < 1.0 {
        eprintln!(
            "WARNING: incremental chase slower than full reground on {}",
            best.name
        );
        // Only the full-scale run hard-fails: the ~2x chase margin at small
        // scale is within scheduling noise on shared CI runners, so the
        // smoke run reports but never gates.
        if full {
            std::process::exit(1);
        }
    }

    if best.par_speedup() < 1.0 {
        eprintln!(
            "WARNING: parallel chase ({threads} threads) slower than sequential incremental \
             on {} ({:.2}x)",
            best.name,
            best.par_speedup()
        );
        // The parallel gate is opt-in (CI passes --gate-parallel on runners
        // with real cores); a 1-core machine legitimately cannot win and
        // only warns.
        if gate_parallel && cores >= 2 {
            std::process::exit(1);
        }
        if gate_parallel {
            eprintln!(
                "NOTE: --gate-parallel skipped, only {cores} core(s) available for \
                 {threads} threads"
            );
        }
    }
}

//! Naive-reground vs. incremental chase comparison with a JSON summary.
//!
//! PR 2 made single-node grounding semi-naive; this tracker measures the
//! *tree-level* win: snapshot-shared groundings across chase siblings plus
//! the perfect grounder's stratum cursor. The baseline wraps the same
//! grounder but strips its `ground_node`/`ground_from` overrides, so every
//! chase node regrounds from scratch with the identical (semi-naive)
//! saturation — the measured gap is exactly the incrementality of the chase,
//! not the grounding algorithm.
//!
//! Usage: `bench_chase [--full] [--out PATH]` (default: small scale,
//! `BENCH_chase.json` in the current directory).

use gdlog_bench::workloads::{
    coin_chain, dime_quarter_workload, network_database, Reground, Topology,
};
use gdlog_core::{
    enumerate_outcomes, network_resilience_program, ChaseBudget, Grounder, MonteCarlo,
    PerfectGrounder, Pipeline, SigmaPi, SimpleGrounder, TriggerOrder,
};
use std::sync::Arc;
use std::time::Instant;

struct Row {
    name: String,
    grounder: &'static str,
    stratified: bool,
    outcomes: usize,
    nodes: usize,
    reground_ms: f64,
    incremental_ms: f64,
    mc_reground_ms: f64,
    mc_incremental_ms: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.reground_ms / self.incremental_ms
    }
}

/// Minimum wall-clock over `reps` runs, in milliseconds.
fn time_min_ms<F: FnMut() -> usize>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn measure(name: &str, grounder: &dyn Grounder, stratified: bool, reps: usize) -> Row {
    let budget = ChaseBudget::default();
    let baseline = Reground(grounder);

    // Both modes must agree on the result before either is timed.
    let incremental = enumerate_outcomes(grounder, &budget, TriggerOrder::First)
        .expect("incremental enumeration succeeds");
    let reground = enumerate_outcomes(&baseline, &budget, TriggerOrder::First)
        .expect("reground enumeration succeeds");
    assert_eq!(
        incremental.outcomes.len(),
        reground.outcomes.len(),
        "{name}: incremental and reground enumerations must agree"
    );
    assert_eq!(incremental.total_mass(), reground.total_mass());

    let incremental_ms = time_min_ms(reps, || {
        enumerate_outcomes(grounder, &budget, TriggerOrder::First)
            .unwrap()
            .outcomes
            .len()
    });
    let reground_ms = time_min_ms(reps, || {
        enumerate_outcomes(&baseline, &budget, TriggerOrder::First)
            .unwrap()
            .outcomes
            .len()
    });

    // Monte-Carlo: the same sampled paths with and without incremental
    // descent (identical seeds → identical choice sequences).
    let samples = 100;
    let mc_incremental_ms = time_min_ms(reps, || {
        let mut mc = MonteCarlo::new(grounder, 256, 7);
        mc.estimate(samples, |_| true).unwrap().samples
    });
    let mc_reground_ms = time_min_ms(reps, || {
        let mut mc = MonteCarlo::new(&baseline, 256, 7);
        mc.estimate(samples, |_| true).unwrap().samples
    });

    let row = Row {
        name: name.to_owned(),
        grounder: grounder.name(),
        stratified,
        outcomes: incremental.outcomes.len(),
        nodes: incremental.nodes_visited,
        reground_ms,
        incremental_ms,
        mc_reground_ms,
        mc_incremental_ms,
    };
    eprintln!(
        "{name} [{}]: outcomes={} nodes={} enum {reground_ms:.2}ms -> {incremental_ms:.2}ms \
         ({:.2}x)  mc {mc_reground_ms:.2}ms -> {mc_incremental_ms:.2}ms ({:.2}x)",
        row.grounder,
        row.outcomes,
        row.nodes,
        row.speedup(),
        row.mc_reground_ms / row.mc_incremental_ms,
    );
    row
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_chase.json".to_owned());
    let reps = if full { 5 } else { 3 };

    let mut rows: Vec<Row> = Vec::new();

    // Stratified workloads — the perfect grounder's stratum cursor.
    let (dimes, quarters) = if full { (9, 2) } else { (5, 1) };
    let (program, db) = dime_quarter_workload(dimes, quarters);
    let sigma = Arc::new(SigmaPi::translate(&program, &db).expect("translates"));
    let grounder = PerfectGrounder::new(sigma).expect("dime/quarter is stratified");
    rows.push(measure(
        &format!("dime_quarter_d{dimes}_q{quarters}"),
        &grounder,
        true,
        reps,
    ));

    let coins = if full { 10 } else { 6 };
    let (program, db) = coin_chain(coins, 0.5);
    let sigma = Arc::new(SigmaPi::translate(&program, &db).expect("translates"));
    let grounder = PerfectGrounder::new(sigma).expect("coin chain is stratified");
    rows.push(measure(
        &format!("coin_chain_n{coins}"),
        &grounder,
        true,
        reps,
    ));

    // Non-stratified workload — the simple grounder's snapshot sharing.
    let ring = if full { 5 } else { 4 };
    let db = network_database(ring, Topology::Ring);
    let sigma =
        Arc::new(SigmaPi::translate(&network_resilience_program(0.1), &db).expect("translates"));
    let grounder = SimpleGrounder::new(sigma);
    rows.push(measure(
        &format!("network_ring_n{ring}"),
        &grounder,
        false,
        reps,
    ));

    // Guard against pipeline-level drift while we are here: the end-to-end
    // result on the paper's Example 3.10 is unchanged by the refactor.
    let db = network_database(3, Topology::Clique);
    let pipeline = Pipeline::new(&network_resilience_program(0.1), &db).expect("pipeline");
    let space = pipeline.solve().expect("solves");
    assert_eq!(
        space.has_stable_model_probability().to_string(),
        "19/100",
        "Example 3.10 must survive the incremental chase"
    );

    // The acceptance metric: speedup on the best stratified workload.
    let best = rows
        .iter()
        .filter(|r| r.stratified)
        .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
        .expect("a stratified workload exists");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"chase_incremental\",\n");
    json.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        if full { "full" } else { "small" }
    ));
    json.push_str(&format!(
        "  \"best_stratified_workload\": \"{}\",\n  \"best_stratified_speedup\": {:.3},\n",
        best.name,
        best.speedup()
    ));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"grounder\": \"{}\", \"stratified\": {}, \
             \"outcomes\": {}, \"nodes\": {}, \"reground_ms\": {:.3}, \
             \"incremental_ms\": {:.3}, \"speedup\": {:.3}, \"mc_reground_ms\": {:.3}, \
             \"mc_incremental_ms\": {:.3}, \"mc_speedup\": {:.3}}}{}\n",
            r.name,
            r.grounder,
            r.stratified,
            r.outcomes,
            r.nodes,
            r.reground_ms,
            r.incremental_ms,
            r.speedup(),
            r.mc_reground_ms,
            r.mc_incremental_ms,
            r.mc_reground_ms / r.mc_incremental_ms,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write summary");
    eprintln!("wrote {out_path}");
    println!("{json}");

    if best.speedup() < 1.0 {
        eprintln!(
            "WARNING: incremental chase slower than full reground on {}",
            best.name
        );
        // Only the full-scale run hard-fails: the ~2x chase margin at small
        // scale is within scheduling noise on shared CI runners, so the
        // smoke run reports but never gates.
        if full {
            std::process::exit(1);
        }
    }
}

//! Experiment runner: reproduces every quantitative claim of the paper and
//! prints a paper-vs-measured report (recorded in `EXPERIMENTS.md`).
//!
//! Usage:
//!
//! ```text
//! cargo run -p gdlog-bench --release --bin experiments            # all experiments
//! cargo run -p gdlog-bench --release --bin experiments -- e1 e3   # a selection
//! ```

use gdlog_bench::experiments::{run_experiment, ExperimentOutcome, EXPERIMENT_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<String> = if args.is_empty() {
        EXPERIMENT_IDS.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };

    let mut failures = 0usize;
    let mut outcomes: Vec<ExperimentOutcome> = Vec::new();
    for id in &ids {
        if !EXPERIMENT_IDS.contains(&id.as_str()) {
            eprintln!("unknown experiment id `{id}`; known ids: {EXPERIMENT_IDS:?}");
            std::process::exit(2);
        }
        let started = std::time::Instant::now();
        let outcome = run_experiment(id);
        let elapsed = started.elapsed();
        println!("{}", outcome.report);
        println!("   [{} completed in {:.2?}]\n", outcome.id, elapsed);
        if !outcome.all_ok() {
            failures += 1;
        }
        outcomes.push(outcome);
    }

    println!("==================================================");
    println!(
        "experiments run: {}, matching the paper: {}, mismatching: {}",
        outcomes.len(),
        outcomes.len() - failures,
        failures
    );
    if failures > 0 {
        std::process::exit(1);
    }
}

//! Flat vs. factored output-space benchmark with a JSON summary: the chase
//! independence analysis + per-component product space against the flat
//! single-chase enumerator.
//!
//! The factored pipeline (`Pipeline::solve_factored`) partitions the ground
//! program into chase-independent components, chases each one separately and
//! answers queries from the *product* of the per-component spaces without
//! ever materializing the flat cross product. This tracker measures that
//! lever on workloads that genuinely factor:
//!
//! * `flat_ms` — `Pipeline::solve`: one chase over the joint space, one
//!   stable-model pass per joint outcome (`null` for past-the-wall
//!   workloads whose joint outcome count exceeds the default chase budget);
//! * `factored_ms` — `Pipeline::solve_factored`: independence analysis,
//!   one chase + stable-model pass per component, product arithmetic.
//!
//! Before anything is timed the two paths must agree **exactly** wherever
//! both run: total mass accounting, joint outcome counts, the mass-sorted
//! top-event listing (exact `Rational` masses included) and brave/cautious
//! probabilities of probe atoms. Past-the-wall workloads instead assert the
//! factored solve is exact (`explored = 1`, `residual = 0`, untruncated)
//! where the flat path could only truncate. The JSON carries an
//! event-listing fingerprint computed from the factored top events so CI can
//! diff it across its `GDLOG_THREADS` matrix legs *and* against the flat
//! listing.
//!
//! Workload scales live in one table, `workloads::factor_workload_suite`,
//! so the CI smoke scale and the full measurement scale cannot drift.
//!
//! Usage: `bench_factor [--full] [--threads N] [--out PATH]
//! [--gate-factored]` (defaults: small scale, `GDLOG_THREADS` or 4 threads,
//! `BENCH_factor.json` in the current directory). With `--gate-factored`
//! the run exits non-zero unless at least two flat-feasible workloads reach
//! the scale's speedup floor — 2× at smoke scale, 10× at full scale.

use gdlog_bench::workloads::{factor_workload_suite, FactorWorkload};
use gdlog_core::{ModelSetKey, Pipeline, THREADS_ENV};
use gdlog_prob::Prob;
use std::time::Instant;

/// Events hashed into the fingerprint and compared flat-vs-factored.
const PROBE_EVENTS: usize = 512;

struct Row {
    name: String,
    factors: usize,
    flat_feasible: bool,
    combined_outcomes: u128,
    stored_outcomes: usize,
    combined_events: u128,
    fingerprint: String,
    flat_ms: Option<f64>,
    factored_ms: f64,
}

impl Row {
    fn outcomes_avoided(&self) -> u128 {
        self.combined_outcomes
            .saturating_sub(self.stored_outcomes as u128)
    }

    fn speedup(&self) -> Option<f64> {
        self.flat_ms.map(|flat| flat / self.factored_ms)
    }
}

/// Minimum wall-clock over `reps` runs, in milliseconds.
fn time_min_ms<F: FnMut() -> usize>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Fingerprint of the mass-sorted top-event listing (shared FNV-1a scheme) —
/// CI compares these across `GDLOG_THREADS` legs, and `measure` asserts the
/// flat listing hashes to the same value wherever the flat path runs.
fn fingerprint(events: &[(ModelSetKey, Prob)], combined_outcomes: u128) -> String {
    gdlog_bench::fnv1a_fingerprint(
        events
            .iter()
            .map(|(key, mass)| format!("{key}@{mass};"))
            .chain(std::iter::once(format!("outcomes={combined_outcomes};"))),
    )
}

fn measure(w: &FactorWorkload, reps: usize, threads: usize) -> Row {
    let pipeline = Pipeline::new(&w.program, &w.database)
        .expect("workload pipeline builds")
        .threads(threads);
    let solve = pipeline.solve_factored().expect("factored solve succeeds");
    assert!(
        solve.is_factored(),
        "{}: expected a product space, got the flat fallback",
        w.name
    );
    assert_eq!(
        solve.factor_count(),
        w.expected_factors,
        "{}: unexpected component count",
        w.name
    );
    // Every suite workload is exactly solvable per component: the factored
    // path must cover the full joint mass with zero residual.
    assert!(
        !solve.is_truncated(),
        "{}: factored solve truncated",
        w.name
    );
    assert_eq!(
        solve.explored_mass(),
        Prob::ONE,
        "{}: factored solve is not exact",
        w.name
    );
    assert_eq!(solve.residual_mass(), Prob::ZERO, "{}", w.name);
    let product = solve.as_product().expect("asserted factored above");
    let combined_outcomes = solve.combined_outcomes();
    let top = solve.events_by_mass_top(PROBE_EVENTS);

    let flat_ms = if w.flat_feasible {
        let flat_pipeline = Pipeline::new(&w.program, &w.database)
            .expect("workload pipeline builds")
            .threads(threads);
        let flat = flat_pipeline.solve().expect("flat solve succeeds");
        assert!(
            !flat.is_truncated(),
            "{}: flat path truncated; move this workload past the wall",
            w.name
        );
        // Exact agreement on everything both paths can answer.
        assert_eq!(
            flat.outcome_count() as u128,
            combined_outcomes,
            "{}",
            w.name
        );
        assert_eq!(
            flat.event_count() as u128,
            solve.combined_events(),
            "{}",
            w.name
        );
        assert_eq!(flat.explored_mass(), solve.explored_mass(), "{}", w.name);
        assert_eq!(flat.residual_mass(), solve.residual_mass(), "{}", w.name);
        assert_eq!(
            flat.has_stable_model_probability(),
            solve.has_stable_model_probability(),
            "{}",
            w.name
        );
        let flat_events = flat.events_by_mass();
        let flat_top: Vec<(ModelSetKey, Prob)> =
            flat_events.iter().take(PROBE_EVENTS).cloned().collect();
        if flat_events.len() <= PROBE_EVENTS {
            // The probe covers the whole space: the listings must be
            // identical, order included.
            assert_eq!(
                flat_top, top,
                "{}: flat and factored event listings diverge",
                w.name
            );
        } else {
            // The probe cuts the listing, and a tied group at the cut may
            // be split differently by the two paths (the factored merge
            // cannot enumerate an astronomically large tie group to find
            // its key-ascending least members). Tie-normalize: the probed
            // boundary mass must agree, every event strictly heavier than
            // it must match exactly (order included), and every listed
            // boundary-tied event must get its exact mass from the other
            // path's point lookup.
            use std::cmp::Ordering;
            let boundary = flat_top.last().expect("probe is non-empty").1;
            assert_eq!(
                top.last().expect("probe is non-empty").1,
                boundary,
                "{}: probed boundary mass diverges",
                w.name
            );
            let strictly_above = |listing: &[(ModelSetKey, Prob)]| -> Vec<(ModelSetKey, Prob)> {
                listing
                    .iter()
                    .filter(|(_, m)| m.total_cmp(&boundary) == Ordering::Greater)
                    .cloned()
                    .collect()
            };
            assert_eq!(
                strictly_above(&flat_top),
                strictly_above(&top),
                "{}: event listings diverge above the tie boundary",
                w.name
            );
            for (key, mass) in top.iter().filter(|(_, m)| *m == boundary) {
                assert_eq!(
                    &flat.event_probability(key),
                    mass,
                    "{}: factored boundary event has the wrong flat mass",
                    w.name
                );
            }
            for (key, mass) in flat_top.iter().filter(|(_, m)| *m == boundary) {
                assert_eq!(
                    &solve.event_probability(key),
                    mass,
                    "{}: flat boundary event has the wrong factored mass",
                    w.name
                );
            }
        }
        for atom in flat_top
            .iter()
            .flat_map(|(key, _)| key.models().next())
            .flatten()
            .take(8)
        {
            assert_eq!(
                flat.brave_probability(atom),
                solve.brave_probability(atom),
                "{}: brave({atom}) diverges",
                w.name
            );
            assert_eq!(
                flat.cautious_probability(atom),
                solve.cautious_probability(atom),
                "{}: cautious({atom}) diverges",
                w.name
            );
        }
        Some(time_min_ms(reps, || {
            flat_pipeline
                .solve()
                .expect("flat solve succeeds")
                .event_count()
        }))
    } else {
        // Past the wall: the flat chase could not even enumerate the joint
        // outcomes within its default budget, so only exactness of the
        // factored answer is asserted (above) and `flat_ms` stays null.
        assert!(
            combined_outcomes > 1_000_000,
            "{}: joint space too small to count as past the wall",
            w.name
        );
        None
    };

    let factored_ms = time_min_ms(reps, || {
        pipeline
            .solve_factored()
            .expect("factored solve succeeds")
            .factor_count()
    });

    let row = Row {
        name: w.name.clone(),
        factors: solve.factor_count(),
        flat_feasible: w.flat_feasible,
        combined_outcomes,
        stored_outcomes: product.stored_outcomes(),
        combined_events: solve.combined_events(),
        fingerprint: fingerprint(&top, combined_outcomes),
        flat_ms,
        factored_ms,
    };
    match row.speedup() {
        Some(s) => eprintln!(
            "{}: factors={} outcomes={} (stored {}) flat {:.2}ms -> factored {:.2}ms ({s:.2}x)",
            row.name,
            row.factors,
            row.combined_outcomes,
            row.stored_outcomes,
            row.flat_ms.expect("speedup implies flat ran"),
            row.factored_ms,
        ),
        None => eprintln!(
            "{}: factors={} outcomes={} (stored {}) flat infeasible -> factored {:.2}ms, exact",
            row.name, row.factors, row.combined_outcomes, row.stored_outcomes, row.factored_ms,
        ),
    }
    row
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let gate = args.iter().any(|a| a == "--gate-factored");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_factor.json".to_owned());
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .or_else(|| {
            std::env::var(THREADS_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
        })
        .unwrap_or(4);
    let reps = 2;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let rows: Vec<Row> = factor_workload_suite(full)
        .iter()
        .map(|w| measure(w, reps, threads))
        .collect();

    let best = rows
        .iter()
        .filter(|r| r.speedup().is_some())
        .max_by(|a, b| {
            a.speedup()
                .unwrap_or(0.0)
                .total_cmp(&b.speedup().unwrap_or(0.0))
        })
        .expect("the suite has flat-feasible workloads");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"factorized_spaces\",\n");
    json.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        if full { "full" } else { "small" }
    ));
    json.push_str(&format!(
        "  \"threads\": {threads},\n  \"available_parallelism\": {cores},\n"
    ));
    json.push_str(&format!(
        "  \"best_workload\": \"{}\",\n  \"best_speedup\": {:.3},\n",
        best.name,
        best.speedup().expect("best is flat-feasible"),
    ));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let flat_ms = match r.flat_ms {
            Some(ms) => format!("{ms:.3}"),
            None => "null".to_owned(),
        };
        let speedup = match r.speedup() {
            Some(s) => format!("{s:.3}"),
            None => "null".to_owned(),
        };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"factors\": {}, \"flat_feasible\": {}, \
             \"combined_outcomes\": {}, \"stored_outcomes\": {}, \
             \"outcomes_avoided\": {}, \"combined_events\": {}, \
             \"fingerprint\": \"{}\", \
             \"flat_ms\": {flat_ms}, \"factored_ms\": {:.3}, \"speedup\": {speedup}}}{}\n",
            r.name,
            r.factors,
            r.flat_feasible,
            r.combined_outcomes,
            r.stored_outcomes,
            r.outcomes_avoided(),
            r.combined_events,
            r.fingerprint,
            r.factored_ms,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write summary");
    eprintln!("wrote {out_path}");
    println!("{json}");

    // Acceptance floor: with --gate-factored, at least two flat-feasible
    // workloads must reach the scale's speedup threshold (10x at full
    // measurement scale, 2x at CI-smoke scale, where margins are tighter).
    let threshold = if full { 10.0 } else { 2.0 };
    let winners = rows
        .iter()
        .filter(|r| r.speedup().is_some_and(|s| s >= threshold))
        .count();
    let walls = rows.iter().filter(|r| !r.flat_feasible).count();
    eprintln!(
        "acceptance: {winners}/{} workloads at >= {threshold}x flat->factored speedup, \
         {walls} past-the-wall workloads solved exactly (threads={threads}, cores={cores})",
        rows.len()
    );
    if gate && winners < 2 {
        eprintln!("FAIL: fewer than two workloads reached the {threshold}x factored floor");
        std::process::exit(1);
    }
}

//! E9: cost of exhaustive chase enumeration as the number of probabilistic
//! choices grows (coin chains and ring networks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdlog_bench::workloads::{
    chase_workload_suite, coin_chain, network_database, network_program, Topology,
};
use gdlog_core::{
    enumerate_outcomes, enumerate_outcomes_with, ChaseBudget, Executor, SigmaPi, SimpleGrounder,
    TriggerOrder,
};
use std::sync::Arc;
use std::time::Duration;

fn bench_coin_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase/coin_chain");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [2usize, 4, 6] {
        let (program, db) = coin_chain(n, 0.5);
        let grounder = SimpleGrounder::new(Arc::new(SigmaPi::translate(&program, &db).unwrap()));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                enumerate_outcomes(&grounder, &ChaseBudget::default(), TriggerOrder::First)
                    .unwrap()
                    .outcomes
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_ring_networks(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase/ring_network");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [3usize, 4, 5] {
        let program = network_program(0.1);
        let db = network_database(n, Topology::Ring);
        let grounder = SimpleGrounder::new(Arc::new(SigmaPi::translate(&program, &db).unwrap()));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                enumerate_outcomes(&grounder, &ChaseBudget::default(), TriggerOrder::First)
                    .unwrap()
                    .outcomes
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_parallel_suite(c: &mut Criterion) {
    // The shared scale table (smoke size) across thread counts; results are
    // bit-identical per workload, so this measures scheduling cost alone.
    let mut group = c.benchmark_group("chase/parallel_suite");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for threads in [1usize, 2, 4] {
        let executor = Executor::new(threads);
        for workload in chase_workload_suite(false) {
            group.bench_with_input(
                BenchmarkId::new(workload.name.clone(), threads),
                &threads,
                |b, _| {
                    b.iter(|| {
                        enumerate_outcomes_with(
                            workload.grounder.as_ref(),
                            &ChaseBudget::default(),
                            TriggerOrder::First,
                            &executor,
                        )
                        .unwrap()
                        .outcomes
                        .len()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_coin_chain,
    bench_ring_networks,
    bench_parallel_suite
);
criterion_main!(benches);

//! E9: cost of exhaustive chase enumeration as the number of probabilistic
//! choices grows (coin chains and ring networks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdlog_bench::workloads::{coin_chain, network_database, network_program, Topology};
use gdlog_core::{enumerate_outcomes, ChaseBudget, SigmaPi, SimpleGrounder, TriggerOrder};
use std::sync::Arc;
use std::time::Duration;

fn bench_coin_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase/coin_chain");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [2usize, 4, 6] {
        let (program, db) = coin_chain(n, 0.5);
        let grounder = SimpleGrounder::new(Arc::new(SigmaPi::translate(&program, &db).unwrap()));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                enumerate_outcomes(&grounder, &ChaseBudget::default(), TriggerOrder::First)
                    .unwrap()
                    .outcomes
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_ring_networks(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase/ring_network");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [3usize, 4, 5] {
        let program = network_program(0.1);
        let db = network_database(n, Topology::Ring);
        let grounder = SimpleGrounder::new(Arc::new(SigmaPi::translate(&program, &db).unwrap()));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                enumerate_outcomes(&grounder, &ChaseBudget::default(), TriggerOrder::First)
                    .unwrap()
                    .outcomes
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coin_chain, bench_ring_networks);
criterion_main!(benches);

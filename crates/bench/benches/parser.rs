//! E12: parser throughput on generated programs and databases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gdlog_bench::workloads::{network_database, Topology};
use gdlog_parser::{parse_database, parse_program, pretty_database};
use std::time::Duration;

fn program_text(rules: usize) -> String {
    let mut text = String::from(
        "Infected(x, 1), Connected(x, y) -> Infected(y, Flip<0.1>[x, y]).\n\
         Router(x), not Infected(x, 1) -> Uninfected(x).\n",
    );
    for i in 0..rules {
        text.push_str(&format!(
            "Hop{i}(x, y), Connected(y, z), not Blocked{i}(z) -> Hop{j}(x, z).\n",
            i = i,
            j = i + 1
        ));
    }
    text
}

fn bench_parse_program(c: &mut Criterion) {
    let mut group = c.benchmark_group("parser/program");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for rules in [100usize, 1000] {
        let text = program_text(rules);
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rules), &rules, |b, _| {
            b.iter(|| parse_program(&text).unwrap().0.len())
        });
    }
    group.finish();
}

fn bench_parse_database(c: &mut Criterion) {
    let mut group = c.benchmark_group("parser/database");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for n in [50usize, 200] {
        let db = network_database(n, Topology::Ring);
        let text = pretty_database(&db);
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| parse_database(&text).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parse_program, bench_parse_database);
criterion_main!(benches);

//! E9 / E11 ablation: cost of the simple vs. perfect grounder as the
//! database grows (dime/quarter family and router networks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdlog_bench::workloads::{dime_quarter_workload, network_database, network_program, Topology};
use gdlog_core::{AtrSet, Grounder, PerfectGrounder, SigmaPi, SimpleGrounder};
use std::sync::Arc;
use std::time::Duration;

fn bench_grounders_on_dimes(c: &mut Criterion) {
    let mut group = c.benchmark_group("grounding/dime_quarter");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for dimes in [2usize, 4, 8] {
        let (program, db) = dime_quarter_workload(dimes, dimes);
        let sigma = Arc::new(SigmaPi::translate(&program, &db).unwrap());
        let simple = SimpleGrounder::new(sigma.clone());
        let perfect = PerfectGrounder::new(sigma).unwrap();
        group.bench_with_input(BenchmarkId::new("simple", dimes), &dimes, |b, _| {
            b.iter(|| simple.ground(&AtrSet::new()).len())
        });
        group.bench_with_input(BenchmarkId::new("perfect", dimes), &dimes, |b, _| {
            b.iter(|| perfect.ground(&AtrSet::new()).len())
        });
    }
    group.finish();
}

fn bench_grounding_networks(c: &mut Criterion) {
    let mut group = c.benchmark_group("grounding/network_clique");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [4usize, 8, 12] {
        let program = network_program(0.1);
        let db = network_database(n, Topology::Clique);
        let sigma = Arc::new(SigmaPi::translate(&program, &db).unwrap());
        let simple = SimpleGrounder::new(sigma);
        group.bench_with_input(BenchmarkId::new("simple", n), &n, |b, _| {
            b.iter(|| simple.ground(&AtrSet::new()).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grounders_on_dimes, bench_grounding_networks);
criterion_main!(benches);

//! E11: the stable-model engine — stratified fast path vs. the generic
//! solver, and scaling of the enumeration with the number of even loops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdlog_bench::workloads::choice_program;
use gdlog_data::{Const, GroundAtom};
use gdlog_engine::{
    stable_models, stratified_model, well_founded, GroundProgram, GroundRule, StableModelLimits,
};
use std::time::Duration;

fn stratified_chain(n: usize) -> GroundProgram {
    // Reachability on a line of n nodes plus an "unreached" stratum:
    //   R(1).  R(j) ← R(i), E(i, j).  U(i) ← V(i), ¬R(i).
    // Predicate-level stratified, with O(n) ground rules.
    let atom1 = |name: &str, i: i64| GroundAtom::make(name, vec![Const::Int(i)]);
    let atom2 =
        |name: &str, i: i64, j: i64| GroundAtom::make(name, vec![Const::Int(i), Const::Int(j)]);
    let mut p = GroundProgram::new();
    p.push(GroundRule::fact(atom1("R", 1)));
    for i in 1..=n as i64 {
        p.push(GroundRule::fact(atom1("V", i)));
        if i < n as i64 && i % 2 == 1 {
            // Only odd positions are linked, so roughly half the nodes are
            // unreachable and the negative stratum does real work.
            p.push(GroundRule::fact(atom2("E", i, i + 1)));
        }
        if i > 1 {
            p.push(GroundRule::new(
                atom1("R", i),
                vec![atom1("R", i - 1), atom2("E", i - 1, i)],
                vec![],
            ));
        }
        p.push(GroundRule::new(
            atom1("U", i),
            vec![atom1("V", i)],
            vec![atom1("R", i)],
        ));
    }
    p
}

fn bench_choice_programs(c: &mut Criterion) {
    let mut group = c.benchmark_group("stable_models/even_loops");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for k in [4usize, 6, 8] {
        let program = choice_program(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                stable_models(&program, &StableModelLimits::default())
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_stratified_vs_generic(c: &mut Criterion) {
    let mut group = c.benchmark_group("stable_models/stratified_chain");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [50usize, 200] {
        let program = stratified_chain(n);
        group.bench_with_input(BenchmarkId::new("stratified_eval", n), &n, |b, _| {
            b.iter(|| stratified_model(&program).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("generic_solver", n), &n, |b, _| {
            b.iter(|| {
                stable_models(&program, &StableModelLimits::default())
                    .unwrap()
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("well_founded", n), &n, |b, _| {
            b.iter(|| well_founded(&program).true_atoms.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_choice_programs, bench_stratified_vs_generic);
criterion_main!(benches);

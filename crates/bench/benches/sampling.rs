//! E10: Monte-Carlo sampling throughput (paths per second) on networks where
//! exact enumeration becomes expensive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdlog_bench::workloads::{network_database, network_program, Topology};
use gdlog_core::{MonteCarlo, SigmaPi, SimpleGrounder};
use std::sync::Arc;
use std::time::Duration;

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling/network");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (name, db) in [
        ("clique3", network_database(3, Topology::Clique)),
        ("ring8", network_database(8, Topology::Ring)),
        (
            "er12",
            network_database(
                12,
                Topology::ErdosRenyi {
                    edge_probability: 0.25,
                    seed: 42,
                },
            ),
        ),
    ] {
        let grounder = SimpleGrounder::new(Arc::new(
            SigmaPi::translate(&network_program(0.1), &db).unwrap(),
        ));
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            let mut mc = MonteCarlo::new(&grounder, 256, 1);
            b.iter(|| mc.sample().unwrap().is_finite())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);

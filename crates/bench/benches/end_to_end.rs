//! E1/E3 end-to-end: full pipeline (translate → ground → chase → stable
//! models → output space) on the paper's worked examples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdlog_bench::workloads::{dime_quarter_workload, network_database, network_program, Topology};
use gdlog_core::{coin_program, GrounderChoice, Pipeline};
use gdlog_data::Database;
use std::time::Duration;

fn bench_paper_examples(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    group.bench_function("example_3_10_network_k3", |b| {
        let program = network_program(0.1);
        let db = network_database(3, Topology::Clique);
        b.iter(|| {
            Pipeline::new(&program, &db)
                .unwrap()
                .solve()
                .unwrap()
                .has_stable_model_probability()
                .to_f64()
        })
    });

    group.bench_function("coin_program", |b| {
        let program = coin_program();
        let db = Database::new();
        b.iter(|| {
            Pipeline::new(&program, &db)
                .unwrap()
                .solve()
                .unwrap()
                .has_stable_model_probability()
                .to_f64()
        })
    });

    for dimes in [2usize, 4] {
        let (program, db) = dime_quarter_workload(dimes, 1);
        group.bench_with_input(
            BenchmarkId::new("dime_quarter_perfect", dimes),
            &dimes,
            |b, _| {
                b.iter(|| {
                    Pipeline::with_grounder(&program, &db, GrounderChoice::Perfect)
                        .unwrap()
                        .solve()
                        .unwrap()
                        .outcome_count()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dime_quarter_simple", dimes),
            &dimes,
            |b, _| {
                b.iter(|| {
                    Pipeline::with_grounder(&program, &db, GrounderChoice::Simple)
                        .unwrap()
                        .solve()
                        .unwrap()
                        .outcome_count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_paper_examples);
criterion_main!(benches);

//! Naive vs. semi-naive grounding on scaled network workloads.
//!
//! Each workload grounds the network-resilience program under the
//! fully-cascading choice set (every trigger resolved with "infect"), which
//! maximises both the number of saturation rounds and the size of the head
//! set — exactly the regime where re-matching all rules against all heads
//! (the naive loop retained in `gdlog_core::naive`) loses to the delta-driven
//! loop over indexed relations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdlog_bench::workloads::{cascade_choice_set, grounding_network_suite, network_program};
use gdlog_core::{Grounder, SigmaPi, SimpleGrounder};
use std::sync::Arc;
use std::time::Duration;

fn bench_seminaive_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("grounding/seminaive_vs_naive");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for (name, db) in grounding_network_suite(true) {
        let sigma = Arc::new(SigmaPi::translate(&network_program(0.1), &db).unwrap());
        let grounder = SimpleGrounder::new(sigma);
        let atr = cascade_choice_set(&grounder, 1, 256);
        group.bench_with_input(BenchmarkId::new("seminaive", &name), &name, |b, _| {
            b.iter(|| grounder.ground(&atr).len())
        });
        group.bench_with_input(BenchmarkId::new("naive", &name), &name, |b, _| {
            b.iter(|| grounder.ground_naive(&atr).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_seminaive_vs_naive);
criterion_main!(benches);

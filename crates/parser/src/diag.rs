//! Caret diagnostics: render a [`ParseError`] against its source text.
//!
//! The format follows the familiar compiler convention — message, `-->`
//! location line, then the offending source line with a `^` caret under the
//! reported column:
//!
//! ```text
//! error: expected `.`, found `->`
//!   --> scenarios/bad.gdl:3:11
//!    |
//!  3 | Router(1) -> Up(1).
//!    |           ^
//! ```
//!
//! Errors without a position (line 0) render as `error: {message}` followed
//! by the location line only when a path is given.

use crate::parser::ParseError;

/// Render a diagnostic with a source excerpt and caret.
///
/// `line` and `column` are 1-based; pass `line == 0` for "no position"
/// (the excerpt is omitted). `path` is used verbatim in the `-->` line;
/// pass something like `"<input>"` when no file is involved.
pub fn render_diagnostic(
    message: &str,
    path: &str,
    source: &str,
    line: usize,
    column: usize,
) -> String {
    render_diagnostic_with("error", message, path, source, line, column)
}

/// Like [`render_diagnostic`], but with an explicit severity label
/// (`"error"`, `"warning"`, `"note"`) in place of the fixed `error:` prefix.
/// Lint findings render through this so warnings and notes read like
/// compiler diagnostics.
pub fn render_diagnostic_with(
    label: &str,
    message: &str,
    path: &str,
    source: &str,
    line: usize,
    column: usize,
) -> String {
    let mut out = format!("{label}: {message}\n");
    if line == 0 {
        out.push_str(&format!("  --> {path}\n"));
        return out;
    }
    out.push_str(&format!("  --> {path}:{line}:{column}\n"));
    // Errors at end-of-input (e.g. a missing final `.`) report a position
    // one past the last line; clamp the excerpt to the end of the source so
    // the caret still lands somewhere meaningful.
    let lines: Vec<&str> = source.lines().collect();
    let (line, column, text) = if line <= lines.len() {
        (line, column, lines[line - 1])
    } else if let Some(last) = lines.last() {
        (lines.len(), last.chars().count() + 1, *last)
    } else {
        return out;
    };
    let gutter = line.to_string();
    let blank = " ".repeat(gutter.len());
    out.push_str(&format!(" {blank} |\n"));
    out.push_str(&format!(" {gutter} | {text}\n"));
    // Build the caret pad character by character so hard tabs in the source
    // line stay aligned with the excerpt above.
    let pad: String = text
        .chars()
        .take(column.saturating_sub(1))
        .map(|c| if c == '\t' { '\t' } else { ' ' })
        .collect();
    out.push_str(&format!(" {blank} | {pad}^\n"));
    out
}

impl ParseError {
    /// Render this error as a caret diagnostic against `source`.
    ///
    /// `path` is the name shown in the `-->` line (a file path, or
    /// `"<input>"` for in-memory text).
    pub fn render(&self, path: &str, source: &str) -> String {
        render_diagnostic(&self.message, path, source, self.line, self.column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn renders_a_caret_under_the_reported_column() {
        let source = "Router(1).\nRouter(2)";
        let err = parse_program(source).unwrap_err();
        let text = err.render("db.gdl", source);
        assert!(text.starts_with("error: "));
        assert!(text.contains("--> db.gdl:2:"), "{text}");
        assert!(text.contains(" 2 | Router(2)"), "{text}");
        assert!(text.lines().last().unwrap().trim_end().ends_with('^'));
    }

    #[test]
    fn positionless_errors_render_without_an_excerpt() {
        let err = ParseError {
            message: "a database may only contain ground facts".into(),
            line: 0,
            column: 0,
        };
        let text = err.render("db.gdl", "A(x) -> B(x).");
        assert_eq!(
            text,
            "error: a database may only contain ground facts\n  --> db.gdl\n"
        );
    }

    #[test]
    fn tabs_in_the_excerpt_keep_the_caret_aligned() {
        let source = "\tRouter(1)";
        let err = parse_program(source).unwrap_err();
        let text = err.render("<input>", source);
        // Caret pad must start with the same hard tab as the excerpt.
        let caret_line = text.lines().last().unwrap();
        assert!(caret_line.contains("| \t"), "{text:?}");
    }

    #[test]
    fn severity_labels_replace_the_error_prefix() {
        let text =
            render_diagnostic_with("warning", "chase may not terminate", "w.gdl", "X.", 1, 1);
        assert!(
            text.starts_with("warning: chase may not terminate\n"),
            "{text}"
        );
        let text = render_diagnostic_with("note", "unused predicate", "w.gdl", "X.", 0, 0);
        assert_eq!(text, "note: unused predicate\n  --> w.gdl\n");
    }

    #[test]
    fn out_of_range_lines_clamp_to_the_last_line() {
        let err = ParseError {
            message: "boom".into(),
            line: 99,
            column: 1,
        };
        let text = err.render("x.gdl", "one line only");
        assert_eq!(
            text,
            "error: boom\n  --> x.gdl:99:1\n   |\n 1 | one line only\n   |              ^\n"
        );
        // Empty sources still omit the excerpt entirely.
        let text = err.render("x.gdl", "");
        assert_eq!(text, "error: boom\n  --> x.gdl:99:1\n");
    }
}

//! Tokenizer for the GDatalog¬\[Δ\] surface syntax.

use std::fmt;

/// The kinds of token produced by the lexer.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// An identifier starting with an upper-case letter (predicate or
    /// distribution name).
    UpperIdent(String),
    /// An identifier starting with a lower-case letter or `_` (variable).
    LowerIdent(String),
    /// A symbolic constant written `#name` or a quoted string `"name"`.
    SymbolConst(String),
    /// An integer literal.
    Int(i64),
    /// A decimal literal (kept as text so the parser can build an exact
    /// rational or a float constant as appropriate).
    Decimal(String),
    /// `not` or `!`.
    Not,
    /// `false` or `#fail` (a ⊥ rule head).
    False,
    /// `->`.
    Arrow,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `<`.
    LAngle,
    /// `>`.
    RAngle,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `,`.
    Comma,
    /// `.`.
    Dot,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::UpperIdent(s) | TokenKind::LowerIdent(s) => write!(f, "{s}"),
            TokenKind::SymbolConst(s) => write!(f, "#{s}"),
            TokenKind::Int(i) => write!(f, "{i}"),
            TokenKind::Decimal(s) => write!(f, "{s}"),
            TokenKind::Not => write!(f, "not"),
            TokenKind::False => write!(f, "false"),
            TokenKind::Arrow => write!(f, "->"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LAngle => write!(f, "<"),
            TokenKind::RAngle => write!(f, ">"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token together with its position (1-based line and column).
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token kind (and payload).
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
}

/// A lexical error.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Description of the problem.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for LexError {}

/// The lexer.
pub struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    column: usize,
    _source: &'a str,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `source`.
    pub fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            column: 1,
            _source: source,
        }
    }

    /// Tokenize the whole input (the trailing [`TokenKind::Eof`] is included).
    pub fn tokenize(mut self) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        loop {
            let token = self.next_token()?;
            let is_eof = token.kind == TokenKind::Eof;
            out.push(token);
            if is_eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            line: self.line,
            column: self.column,
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('%') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_trivia();
        let line = self.line;
        let column = self.column;
        let make = |kind| Token { kind, line, column };
        let c = match self.peek() {
            None => return Ok(make(TokenKind::Eof)),
            Some(c) => c,
        };
        match c {
            '(' => {
                self.bump();
                Ok(make(TokenKind::LParen))
            }
            ')' => {
                self.bump();
                Ok(make(TokenKind::RParen))
            }
            '<' => {
                self.bump();
                Ok(make(TokenKind::LAngle))
            }
            '>' => {
                self.bump();
                Ok(make(TokenKind::RAngle))
            }
            '[' => {
                self.bump();
                Ok(make(TokenKind::LBracket))
            }
            ']' => {
                self.bump();
                Ok(make(TokenKind::RBracket))
            }
            ',' => {
                self.bump();
                Ok(make(TokenKind::Comma))
            }
            '.' => {
                self.bump();
                Ok(make(TokenKind::Dot))
            }
            '!' => {
                self.bump();
                Ok(make(TokenKind::Not))
            }
            '-' => {
                self.bump();
                match self.peek() {
                    Some('>') => {
                        self.bump();
                        Ok(make(TokenKind::Arrow))
                    }
                    Some(d) if d.is_ascii_digit() => self.number(true, line, column),
                    _ => Err(self.error("expected '>' or a digit after '-'")),
                }
            }
            '#' => {
                self.bump();
                let name = self.ident_chars();
                if name.is_empty() {
                    return Err(self.error("expected a name after '#'"));
                }
                if name == "fail" {
                    Ok(make(TokenKind::False))
                } else {
                    Ok(make(TokenKind::SymbolConst(name)))
                }
            }
            '"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some('"') => break,
                        Some(ch) => s.push(ch),
                        // Report the *opening* quote, not wherever the input
                        // ran out — the fix is at the start of the literal.
                        None => {
                            return Err(LexError {
                                message: "unterminated string literal".to_owned(),
                                line,
                                column,
                            })
                        }
                    }
                }
                Ok(make(TokenKind::SymbolConst(s)))
            }
            d if d.is_ascii_digit() => self.number(false, line, column),
            a if a.is_alphabetic() || a == '_' => {
                let word = self.ident_chars();
                let kind = match word.as_str() {
                    "not" => TokenKind::Not,
                    "false" => TokenKind::False,
                    _ => {
                        let first = word.chars().next().expect("non-empty identifier");
                        if first.is_uppercase() {
                            TokenKind::UpperIdent(word)
                        } else {
                            TokenKind::LowerIdent(word)
                        }
                    }
                };
                Ok(make(kind))
            }
            other => Err(self.error(format!("unexpected character {other:?}"))),
        }
    }

    fn ident_chars(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn number(&mut self, negative: bool, line: usize, column: usize) -> Result<Token, LexError> {
        let mut digits = String::new();
        if negative {
            digits.push('-');
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                digits.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // A decimal point followed by a digit continues the number; a bare
        // '.' is the end-of-rule dot.
        if self.peek() == Some('.') && self.peek2().map(|c| c.is_ascii_digit()).unwrap_or(false) {
            digits.push('.');
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    digits.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            return Ok(Token {
                kind: TokenKind::Decimal(digits),
                line,
                column,
            });
        }
        // An overflow diagnostic points at the first digit of the literal
        // (`line`/`column`), not at the character after it.
        let value: i64 = digits.parse().map_err(|_| LexError {
            message: format!("integer literal {digits} out of range"),
            line,
            column,
        })?;
        Ok(Token {
            kind: TokenKind::Int(value),
            line,
            column,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        Lexer::new(source)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn tokenizes_a_paper_rule() {
        let ks = kinds("Infected(x, 1), Connected(x, y) -> Infected(y, Flip<0.1>[x, y]).");
        assert!(ks.contains(&TokenKind::UpperIdent("Infected".into())));
        assert!(ks.contains(&TokenKind::LowerIdent("x".into())));
        assert!(ks.contains(&TokenKind::Arrow));
        assert!(ks.contains(&TokenKind::Decimal("0.1".into())));
        assert!(ks.contains(&TokenKind::LAngle));
        assert!(ks.contains(&TokenKind::LBracket));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn negation_and_false_keywords() {
        let ks = kinds("Router(x), not Infected(x, 1) -> Uninfected(x). A(x) -> false.");
        assert!(ks.contains(&TokenKind::Not));
        assert!(ks.contains(&TokenKind::False));
        let ks = kinds("A(x), !B(x) -> #fail.");
        assert_eq!(ks.iter().filter(|k| **k == TokenKind::Not).count(), 1);
        assert!(ks.contains(&TokenKind::False));
    }

    #[test]
    fn comments_and_whitespace_are_skipped() {
        let ks = kinds("% a comment\n// another\n  Router(1).");
        assert_eq!(
            ks,
            vec![
                TokenKind::UpperIdent("Router".into()),
                TokenKind::LParen,
                TokenKind::Int(1),
                TokenKind::RParen,
                TokenKind::Dot,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_integers_decimals_negatives() {
        assert_eq!(
            kinds("3 -4 2.5 -0.25"),
            vec![
                TokenKind::Int(3),
                TokenKind::Int(-4),
                TokenKind::Decimal("2.5".into()),
                TokenKind::Decimal("-0.25".into()),
                TokenKind::Eof
            ]
        );
        // A trailing dot is the rule terminator, not part of the number.
        assert_eq!(
            kinds("Router(3)."),
            vec![
                TokenKind::UpperIdent("Router".into()),
                TokenKind::LParen,
                TokenKind::Int(3),
                TokenKind::RParen,
                TokenKind::Dot,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn symbolic_constants() {
        assert_eq!(
            kinds("#alice \"bob\""),
            vec![
                TokenKind::SymbolConst("alice".into()),
                TokenKind::SymbolConst("bob".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn errors_have_positions() {
        let err = Lexer::new("Router(1) @").tokenize().unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.column > 1);
        assert!(err.to_string().contains("unexpected"));
        assert!(Lexer::new("\"unterminated").tokenize().is_err());
        assert!(Lexer::new("- x").tokenize().is_err());
        assert!(Lexer::new("#").tokenize().is_err());
    }
}

//! Pretty-printing of programs, rules and databases in the surface syntax.
//!
//! The printer produces text that the parser accepts again (round-tripping is
//! property-tested in the workspace integration tests). `Display` on the core
//! types already produces the same notation; the helpers here add the
//! database serialisation and stable ordering.

use gdlog_core::{Program, Rule};
use gdlog_data::Database;

/// Pretty-print a single rule (identical to its `Display` implementation).
pub fn pretty_rule(rule: &Rule) -> String {
    rule.to_string()
}

/// Pretty-print a program, one rule per line.
pub fn pretty_program(program: &Program) -> String {
    let mut out = String::new();
    for rule in program.rules() {
        out.push_str(&pretty_rule(rule));
        out.push('\n');
    }
    out
}

/// Pretty-print a database as a list of facts in canonical (sorted) order.
///
/// Unlike the plain `Display` of ground atoms, symbolic constants are written
/// with the `#` prefix so that the output re-parses to the same database.
pub fn pretty_database(db: &Database) -> String {
    let mut out = String::new();
    for atom in db.canonical_atoms() {
        out.push_str(atom.predicate.name());
        out.push('(');
        for (i, c) in atom.args.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match c {
                gdlog_data::Const::Sym(s) => {
                    out.push('#');
                    out.push_str(s.as_str());
                }
                other => out.push_str(&other.to_string()),
            }
        }
        out.push_str(").\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_database, parse_program};
    use gdlog_core::{coin_program, dime_quarter_program, network_resilience_program};
    use gdlog_data::Const;

    #[test]
    fn programs_round_trip_through_the_printer() {
        for program in [
            network_resilience_program(0.1),
            coin_program(),
            dime_quarter_program(),
        ] {
            let text = pretty_program(&program);
            let (reparsed, facts) = parse_program(&text).unwrap();
            assert!(facts.is_empty());
            assert_eq!(pretty_program(&reparsed), text);
        }
    }

    #[test]
    fn databases_round_trip_through_the_printer() {
        let mut db = Database::new();
        db.insert_fact("Router", [Const::Int(1)]);
        db.insert_fact("Connected", [Const::Int(1), Const::Int(2)]);
        db.insert_fact("Label", [Const::sym("edge")]);
        let text = pretty_database(&db);
        let reparsed = parse_database(&text).unwrap();
        assert_eq!(reparsed.len(), 3);
        assert_eq!(pretty_database(&reparsed), text);
    }

    #[test]
    fn rule_printer_matches_display() {
        let program = network_resilience_program(0.1);
        for rule in program.rules() {
            assert_eq!(pretty_rule(rule), rule.to_string());
        }
    }
}

//! Pretty-printing of programs, rules and databases in the surface syntax.
//!
//! The printer produces text that the parser accepts again (round-tripping is
//! property-tested in the workspace integration tests). It mirrors the
//! `Display` implementations of the core types with one deliberate
//! difference: symbolic constants are written in surface form (`#name`, or a
//! quoted string when the symbol is not identifier-shaped), because the plain
//! `Display` of `Const::Sym` prints the bare name — which the parser would
//! read back as a *variable* inside a rule, or reject inside a database.

use gdlog_core::{DeltaTerm, Head, HeadTerm, Program, Rule};
use gdlog_data::{Atom, Const, Database, Term};

/// Print a constant in surface syntax.
///
/// Symbols become `#name` when the name is identifier-shaped (and not the
/// reserved `fail`, which the lexer treats as ⊥), otherwise a quoted string.
/// All other constants match their `Display` form, which the lexer already
/// accepts.
pub fn pretty_const(c: &Const) -> String {
    match c {
        Const::Sym(s) => {
            let name = s.as_str();
            let hash_ok = !name.is_empty()
                && name != "fail"
                && name.chars().all(|ch| ch.is_alphanumeric() || ch == '_');
            if hash_ok {
                format!("#{name}")
            } else {
                format!("\"{name}\"")
            }
        }
        other => other.to_string(),
    }
}

/// Print a term in surface syntax (variables bare, constants via
/// [`pretty_const`]).
pub fn pretty_term(term: &Term) -> String {
    match term {
        Term::Var(v) => v.to_string(),
        Term::Const(c) => pretty_const(c),
    }
}

/// Print a body atom in surface syntax.
pub fn pretty_atom(atom: &Atom) -> String {
    let mut out = String::new();
    out.push_str(atom.predicate.name());
    out.push('(');
    for (i, t) in atom.args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&pretty_term(t));
    }
    out.push(')');
    out
}

/// Print a Δ-term `Name<p1, …>[e1, …]` in surface syntax.
pub fn pretty_delta(d: &DeltaTerm) -> String {
    let mut out = format!("{}<", d.distribution);
    for (i, p) in d.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&pretty_term(p));
    }
    out.push('>');
    if !d.event.is_empty() {
        out.push('[');
        for (i, q) in d.event.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&pretty_term(q));
        }
        out.push(']');
    }
    out
}

/// Print a rule head (Δ-atom) in surface syntax.
pub fn pretty_head(head: &Head) -> String {
    let mut out = String::new();
    out.push_str(head.predicate.name());
    out.push('(');
    for (i, a) in head.args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match a {
            HeadTerm::Term(t) => out.push_str(&pretty_term(t)),
            HeadTerm::Delta(d) => out.push_str(&pretty_delta(d)),
        }
    }
    out.push(')');
    out
}

/// Pretty-print a single rule.
///
/// Identical to the rule's `Display` implementation except for the surface
/// spelling of symbolic constants (see the module docs).
pub fn pretty_rule(rule: &Rule) -> String {
    let mut out = String::new();
    let mut first = true;
    for a in &rule.pos {
        if !first {
            out.push_str(", ");
        }
        out.push_str(&pretty_atom(a));
        first = false;
    }
    for a in &rule.neg {
        if !first {
            out.push_str(", ");
        }
        out.push_str("not ");
        out.push_str(&pretty_atom(a));
        first = false;
    }
    if !first {
        out.push(' ');
    }
    out.push_str("-> ");
    out.push_str(&pretty_head(&rule.head));
    out.push('.');
    out
}

/// Pretty-print a program, one rule per line.
pub fn pretty_program(program: &Program) -> String {
    let mut out = String::new();
    for rule in program.rules() {
        out.push_str(&pretty_rule(rule));
        out.push('\n');
    }
    out
}

/// Pretty-print a database as a list of facts in canonical (sorted) order.
///
/// Unlike the plain `Display` of ground atoms, symbolic constants are written
/// in surface form so that the output re-parses to the same database.
pub fn pretty_database(db: &Database) -> String {
    let mut out = String::new();
    for atom in db.canonical_atoms() {
        out.push_str(atom.predicate.name());
        out.push('(');
        for (i, c) in atom.args.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&pretty_const(c));
        }
        out.push_str(").\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_database, parse_program, parse_rule};
    use gdlog_core::{coin_program, dime_quarter_program, network_resilience_program};

    #[test]
    fn programs_round_trip_through_the_printer() {
        for program in [
            network_resilience_program(0.1),
            coin_program(),
            dime_quarter_program(),
        ] {
            let text = pretty_program(&program);
            let (reparsed, facts) = parse_program(&text).unwrap();
            assert!(facts.is_empty());
            assert_eq!(pretty_program(&reparsed), text);
        }
    }

    #[test]
    fn databases_round_trip_through_the_printer() {
        let mut db = Database::new();
        db.insert_fact("Router", [Const::Int(1)]);
        db.insert_fact("Connected", [Const::Int(1), Const::Int(2)]);
        db.insert_fact("Label", [Const::sym("edge")]);
        let text = pretty_database(&db);
        let reparsed = parse_database(&text).unwrap();
        assert_eq!(reparsed.len(), 3);
        assert_eq!(pretty_database(&reparsed), text);
    }

    #[test]
    fn rule_printer_matches_display() {
        let program = network_resilience_program(0.1);
        for rule in program.rules() {
            assert_eq!(pretty_rule(rule), rule.to_string());
        }
    }

    #[test]
    fn symbols_in_rules_round_trip() {
        // Display would print `Likes(x, bob)` — a variable on re-parse. The
        // surface printer quotes or `#`-prefixes the symbol instead.
        let rule = parse_rule("Likes(x, #bob) -> Fan(x).").unwrap();
        assert_eq!(pretty_rule(&rule), "Likes(x, #bob) -> Fan(x).");
        let reparsed = parse_rule(&pretty_rule(&rule)).unwrap();
        assert_eq!(reparsed, rule);

        // `fail` and non-identifier symbols fall back to string syntax.
        let rule = parse_rule("Tag(\"fail\") -> Seen(\"two words\").").unwrap();
        assert_eq!(pretty_rule(&rule), "Tag(\"fail\") -> Seen(\"two words\").");
        assert_eq!(parse_rule(&pretty_rule(&rule)).unwrap(), rule);
    }

    #[test]
    fn symbol_database_round_trips_both_shapes() {
        let mut db = Database::new();
        db.insert_fact("Label", [Const::sym("edge case")]);
        db.insert_fact("Label", [Const::sym("fail")]);
        let text = pretty_database(&db);
        assert!(text.contains("\"edge case\""));
        assert!(text.contains("\"fail\""));
        assert_eq!(parse_database(&text).unwrap(), db);
    }
}

//! A thin AST layer between the parser and `gdlog-core`.
//!
//! The parser produces [`RuleAst`] values which distinguish ordinary rules
//! from constraints (`body -> false.`); [`ParsedProgram`] assembles them into
//! a [`gdlog_core::Program`] (desugaring constraints through
//! [`gdlog_core::Program::push_constraint`]) and collects ground facts into a
//! [`gdlog_data::Database`]. Each statement carries a [`Span`] — the position
//! of its first token — so validation errors discovered *after* parsing
//! (unsafe variables, arity conflicts, unknown distributions, unstratifiable
//! negation) can still be rendered against the source with a caret.

use gdlog_core::{CoreError, Program, Rule};
use gdlog_data::{Atom, Database};

/// A 1-based source position (line and column of a statement's first token).
///
/// The zero span `0:0` means "no position" — it is the default for
/// programmatically constructed [`ParsedProgram`]s and renders without a
/// source excerpt.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Span {
    /// 1-based line number (0 = unknown).
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
}

impl Span {
    /// Build a span.
    pub fn new(line: usize, column: usize) -> Self {
        Span { line, column }
    }

    /// Is this the "no position" span?
    pub fn is_unknown(&self) -> bool {
        self.line == 0
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// One parsed statement.
#[derive(Clone, Debug, PartialEq)]
pub enum RuleAst {
    /// An ordinary rule (possibly a fact if the body is empty).
    Rule(Rule),
    /// A constraint `pos, not neg -> false.`
    Constraint {
        /// Positive body atoms.
        pos: Vec<Atom>,
        /// Negative body atoms.
        neg: Vec<Atom>,
    },
}

/// The result of parsing a program text: rules plus ground facts.
///
/// Bodyless, variable-free, Δ-free heads (e.g. `Router(1).`) are treated as
/// database facts rather than program rules, matching the paper's `Π[D]`
/// construction which keeps the database separate.
#[derive(Clone, Debug, Default)]
pub struct ParsedProgram {
    /// The program rules (facts with variables or Δ-terms stay here).
    pub statements: Vec<RuleAst>,
    /// Source span of each statement (parallel to `statements`; may be
    /// shorter for hand-built values, in which case missing spans are
    /// unknown).
    pub spans: Vec<Span>,
    /// The ground facts, as a database.
    pub facts: Database,
}

impl ParsedProgram {
    /// Lower into an **unvalidated** [`Program`], the fact database, and one
    /// span per program rule.
    ///
    /// The returned span vector is parallel to [`Program::rules`]: a plain
    /// statement contributes one rule; a constraint contributes its `Fail`
    /// rule plus — the first time only — the `Fail, ¬Aux → Aux` auxiliary
    /// rule, both attributed to the constraint's span. This is what lets
    /// [`gdlog_core::Program::validate_rules`] errors (and stratification
    /// failures) point back into the source text.
    pub fn into_parts(self) -> (Program, Database, Vec<Span>) {
        let mut program = Program::new(Vec::new());
        let mut rule_spans: Vec<Span> = Vec::new();
        for (i, statement) in self.statements.into_iter().enumerate() {
            let span = self.spans.get(i).copied().unwrap_or_default();
            match statement {
                RuleAst::Rule(rule) => {
                    program.push(rule);
                    rule_spans.push(span);
                }
                RuleAst::Constraint { pos, neg } => {
                    let before = program.len();
                    program.push_constraint(pos, neg);
                    for _ in before..program.len() {
                        rule_spans.push(span);
                    }
                }
            }
        }
        (program, self.facts, rule_spans)
    }

    /// Convert into a validated [`Program`] (the facts are returned
    /// alongside so callers can pass them as the input database).
    pub fn into_program(self) -> Result<(Program, Database), CoreError> {
        let (program, facts, _) = self.into_parts();
        program.validate()?;
        Ok((program, facts))
    }

    /// Number of parsed statements (excluding facts).
    pub fn statement_count(&self) -> usize {
        self.statements.len()
    }

    /// Number of parsed ground facts.
    pub fn fact_count(&self) -> usize {
        self.facts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdlog_core::{Head, HeadTerm};
    use gdlog_data::Term;

    #[test]
    fn into_program_desugars_constraints() {
        let parsed = ParsedProgram {
            statements: vec![
                RuleAst::Rule(Rule::new(
                    vec![Atom::make("A", vec![Term::var("x")])],
                    vec![],
                    Head::make("B", vec![HeadTerm::var("x")]),
                )),
                RuleAst::Constraint {
                    pos: vec![Atom::make("B", vec![Term::var("x")])],
                    neg: vec![],
                },
            ],
            spans: Vec::new(),
            facts: Database::new(),
        };
        let (program, facts) = parsed.into_program().unwrap();
        // Rule + constraint rule + fail/aux rule.
        assert_eq!(program.len(), 3);
        assert!(facts.is_empty());
    }

    #[test]
    fn into_parts_attributes_constraint_rules_to_their_statement() {
        let parsed = ParsedProgram {
            statements: vec![
                RuleAst::Rule(Rule::new(
                    vec![Atom::make("A", vec![Term::var("x")])],
                    vec![],
                    Head::make("B", vec![HeadTerm::var("x")]),
                )),
                RuleAst::Constraint {
                    pos: vec![Atom::make("B", vec![Term::var("x")])],
                    neg: vec![],
                },
            ],
            spans: vec![Span::new(1, 1), Span::new(2, 5)],
            facts: Database::new(),
        };
        let (program, _, spans) = parsed.into_parts();
        assert_eq!(program.len(), 3);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0], Span::new(1, 1));
        // Both the Fail rule and the aux rule point at the constraint.
        assert_eq!(spans[1], Span::new(2, 5));
        assert_eq!(spans[2], Span::new(2, 5));
    }

    #[test]
    fn counts() {
        let mut parsed = ParsedProgram::default();
        assert_eq!(parsed.statement_count(), 0);
        parsed.facts.insert_fact("Router", [1i64]);
        assert_eq!(parsed.fact_count(), 1);
        assert!(Span::default().is_unknown());
        assert_eq!(Span::new(3, 7).to_string(), "3:7");
    }
}

//! A thin AST layer between the parser and `gdlog-core`.
//!
//! The parser produces [`RuleAst`] values which distinguish ordinary rules
//! from constraints (`body -> false.`); [`ParsedProgram`] assembles them into
//! a [`gdlog_core::Program`] (desugaring constraints through
//! [`gdlog_core::Program::push_constraint`]) and collects ground facts into a
//! [`gdlog_data::Database`]. Each statement carries a [`Span`] — the position
//! of its first token — so validation errors discovered *after* parsing
//! (unsafe variables, arity conflicts, unknown distributions, unstratifiable
//! negation) can still be rendered against the source with a caret.

use gdlog_core::{CoreError, Program, Rule, RuleLocus};
use gdlog_data::{Atom, Database};

/// A 1-based source position (line and column of a statement's first token).
///
/// The zero span `0:0` means "no position" — it is the default for
/// programmatically constructed [`ParsedProgram`]s and renders without a
/// source excerpt.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Span {
    /// 1-based line number (0 = unknown).
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
}

impl Span {
    /// Build a span.
    pub fn new(line: usize, column: usize) -> Self {
        Span { line, column }
    }

    /// Is this the "no position" span?
    pub fn is_unknown(&self) -> bool {
        self.line == 0
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Which literal of a rule a [`VarSite`] occurs in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SiteTag {
    /// The i-th positive body literal.
    Pos(usize),
    /// The i-th negative body literal.
    Neg(usize),
    /// The j-th head argument (Δ-term parameters and events included).
    Head(usize),
}

/// One occurrence of a variable in a rule's source text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarSite {
    /// The variable's name (without any sigil).
    pub name: String,
    /// Which literal the occurrence sits in.
    pub tag: SiteTag,
    /// The position of the variable token itself.
    pub span: Span,
}

/// Source positions for every addressable part of one rule.
///
/// Produced by the parser alongside each statement so that analysis findings
/// — which carry a [`gdlog_core::RuleLocus`] naming the offending literal,
/// head argument or variable — can be rendered with a caret under the exact
/// token rather than the statement start. All spans fall back to the
/// statement span (and ultimately to `0:0`, "unknown") when the parser could
/// not attribute them, so [`RuleSpans::locus_span`] is total.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleSpans {
    /// The statement's first token (the coarse span used before this type
    /// existed).
    pub rule: Span,
    /// The head predicate token.
    pub head: Span,
    /// First token of each head argument.
    pub head_args: Vec<Span>,
    /// Predicate token of each positive body literal.
    pub pos: Vec<Span>,
    /// The `not` token of each negative body literal.
    pub neg: Vec<Span>,
    /// Every variable occurrence, in source order.
    pub var_sites: Vec<VarSite>,
}

impl RuleSpans {
    /// A spans record that knows only the statement position.
    pub fn statement_only(span: Span) -> Self {
        RuleSpans {
            rule: span,
            ..RuleSpans::default()
        }
    }

    fn var_with(&self, name: &str, want: impl Fn(&SiteTag) -> bool) -> Option<Span> {
        self.var_sites
            .iter()
            .find(|s| s.name == name && want(&s.tag))
            .map(|s| s.span)
    }

    /// Resolve an analysis locus to the most precise known span.
    ///
    /// Falls back along locus → enclosing literal → head → statement; never
    /// panics on out-of-range indices (hand-built rules may have no recorded
    /// sites at all).
    pub fn locus_span(&self, locus: &RuleLocus) -> Span {
        let candidates: [Option<Span>; 3] = match locus {
            RuleLocus::Rule => [None, None, None],
            RuleLocus::Head => [Some(self.head), None, None],
            RuleLocus::HeadArg(j) => [self.head_args.get(*j).copied(), Some(self.head), None],
            RuleLocus::Pos(i) => [self.pos.get(*i).copied(), None, None],
            RuleLocus::Neg(i) => [self.neg.get(*i).copied(), None, None],
            RuleLocus::HeadVar(v) => [
                self.var_with(v, |t| matches!(t, SiteTag::Head(_))),
                Some(self.head),
                None,
            ],
            RuleLocus::NegVar(i, v) => [
                self.var_with(v, |t| t == &SiteTag::Neg(*i)),
                self.neg.get(*i).copied(),
                None,
            ],
            RuleLocus::Var(v) => [self.var_with(v, |_| true), None, None],
        };
        candidates
            .into_iter()
            .flatten()
            .find(|s| !s.is_unknown())
            .unwrap_or(self.rule)
    }
}

/// One parsed statement.
#[derive(Clone, Debug, PartialEq)]
pub enum RuleAst {
    /// An ordinary rule (possibly a fact if the body is empty).
    Rule(Rule),
    /// A constraint `pos, not neg -> false.`
    Constraint {
        /// Positive body atoms.
        pos: Vec<Atom>,
        /// Negative body atoms.
        neg: Vec<Atom>,
    },
}

/// The result of parsing a program text: rules plus ground facts.
///
/// Bodyless, variable-free, Δ-free heads (e.g. `Router(1).`) are treated as
/// database facts rather than program rules, matching the paper's `Π[D]`
/// construction which keeps the database separate.
#[derive(Clone, Debug, Default)]
pub struct ParsedProgram {
    /// The program rules (facts with variables or Δ-terms stay here).
    pub statements: Vec<RuleAst>,
    /// Source span of each statement (parallel to `statements`; may be
    /// shorter for hand-built values, in which case missing spans are
    /// unknown).
    pub spans: Vec<Span>,
    /// Fine-grained spans per statement (parallel to `statements`; may be
    /// shorter for hand-built values, in which case only the statement span
    /// is known).
    pub literal_spans: Vec<RuleSpans>,
    /// The ground facts, as a database.
    pub facts: Database,
}

impl ParsedProgram {
    /// Lower into an **unvalidated** [`Program`], the fact database, and one
    /// span per program rule.
    ///
    /// The returned span vector is parallel to [`Program::rules`]: a plain
    /// statement contributes one rule; a constraint contributes its `Fail`
    /// rule plus — the first time only — the `Fail, ¬Aux → Aux` auxiliary
    /// rule, both attributed to the constraint's span. This is what lets
    /// [`gdlog_core::Program::validate_rules`] errors (and stratification
    /// failures) point back into the source text.
    pub fn into_parts(self) -> (Program, Database, Vec<Span>) {
        let (program, facts, spans) = self.into_spanned_parts();
        (program, facts, spans.iter().map(|rs| rs.rule).collect())
    }

    /// Like [`into_parts`](Self::into_parts), but returning the full
    /// [`RuleSpans`] per program rule so analysis findings can be rendered at
    /// the offending literal rather than the statement start.
    ///
    /// A constraint's `Fail` rule inherits the constraint's literal spans
    /// (its synthetic head is attributed to the statement); the desugared
    /// `Fail, ¬Aux → Aux` auxiliary rule, emitted once, knows only the
    /// statement span.
    pub fn into_spanned_parts(self) -> (Program, Database, Vec<RuleSpans>) {
        let mut program = Program::new(Vec::new());
        let mut rule_spans: Vec<RuleSpans> = Vec::new();
        for (i, statement) in self.statements.into_iter().enumerate() {
            let span = self.spans.get(i).copied().unwrap_or_default();
            let mut spans = self
                .literal_spans
                .get(i)
                .cloned()
                .unwrap_or_else(|| RuleSpans::statement_only(span));
            if spans.rule.is_unknown() {
                spans.rule = span;
            }
            match statement {
                RuleAst::Rule(rule) => {
                    program.push(rule);
                    rule_spans.push(spans);
                }
                RuleAst::Constraint { pos, neg } => {
                    let before = program.len();
                    program.push_constraint(pos, neg);
                    for k in before..program.len() {
                        if k == before {
                            rule_spans.push(spans.clone());
                        } else {
                            rule_spans.push(RuleSpans::statement_only(span));
                        }
                    }
                }
            }
        }
        (program, self.facts, rule_spans)
    }

    /// Convert into a validated [`Program`] (the facts are returned
    /// alongside so callers can pass them as the input database).
    pub fn into_program(self) -> Result<(Program, Database), CoreError> {
        let (program, facts, _) = self.into_parts();
        program.validate()?;
        Ok((program, facts))
    }

    /// Number of parsed statements (excluding facts).
    pub fn statement_count(&self) -> usize {
        self.statements.len()
    }

    /// Number of parsed ground facts.
    pub fn fact_count(&self) -> usize {
        self.facts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdlog_core::{Head, HeadTerm};
    use gdlog_data::Term;

    #[test]
    fn into_program_desugars_constraints() {
        let parsed = ParsedProgram {
            statements: vec![
                RuleAst::Rule(Rule::new(
                    vec![Atom::make("A", vec![Term::var("x")])],
                    vec![],
                    Head::make("B", vec![HeadTerm::var("x")]),
                )),
                RuleAst::Constraint {
                    pos: vec![Atom::make("B", vec![Term::var("x")])],
                    neg: vec![],
                },
            ],
            spans: Vec::new(),
            literal_spans: Vec::new(),
            facts: Database::new(),
        };
        let (program, facts) = parsed.into_program().unwrap();
        // Rule + constraint rule + fail/aux rule.
        assert_eq!(program.len(), 3);
        assert!(facts.is_empty());
    }

    #[test]
    fn into_parts_attributes_constraint_rules_to_their_statement() {
        let parsed = ParsedProgram {
            statements: vec![
                RuleAst::Rule(Rule::new(
                    vec![Atom::make("A", vec![Term::var("x")])],
                    vec![],
                    Head::make("B", vec![HeadTerm::var("x")]),
                )),
                RuleAst::Constraint {
                    pos: vec![Atom::make("B", vec![Term::var("x")])],
                    neg: vec![],
                },
            ],
            spans: vec![Span::new(1, 1), Span::new(2, 5)],
            literal_spans: Vec::new(),
            facts: Database::new(),
        };
        let (program, _, spans) = parsed.into_parts();
        assert_eq!(program.len(), 3);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0], Span::new(1, 1));
        // Both the Fail rule and the aux rule point at the constraint.
        assert_eq!(spans[1], Span::new(2, 5));
        assert_eq!(spans[2], Span::new(2, 5));
    }

    #[test]
    fn locus_span_resolves_with_fallbacks() {
        let spans = RuleSpans {
            rule: Span::new(2, 1),
            head: Span::new(2, 20),
            head_args: vec![Span::new(2, 22), Span::new(2, 25)],
            pos: vec![Span::new(2, 1)],
            neg: vec![Span::new(2, 9)],
            var_sites: vec![
                VarSite {
                    name: "x".into(),
                    tag: SiteTag::Pos(0),
                    span: Span::new(2, 3),
                },
                VarSite {
                    name: "y".into(),
                    tag: SiteTag::Head(1),
                    span: Span::new(2, 25),
                },
            ],
        };
        assert_eq!(spans.locus_span(&RuleLocus::Rule), Span::new(2, 1));
        assert_eq!(spans.locus_span(&RuleLocus::Head), Span::new(2, 20));
        assert_eq!(spans.locus_span(&RuleLocus::HeadArg(1)), Span::new(2, 25));
        // Out-of-range head arg falls back to the head predicate.
        assert_eq!(spans.locus_span(&RuleLocus::HeadArg(9)), Span::new(2, 20));
        assert_eq!(spans.locus_span(&RuleLocus::Pos(0)), Span::new(2, 1));
        assert_eq!(spans.locus_span(&RuleLocus::Neg(0)), Span::new(2, 9));
        assert_eq!(
            spans.locus_span(&RuleLocus::HeadVar("y".into())),
            Span::new(2, 25)
        );
        // A head variable with no head occurrence lands on the head itself.
        assert_eq!(
            spans.locus_span(&RuleLocus::HeadVar("z".into())),
            Span::new(2, 20)
        );
        // A negated variable with no recorded site lands on its `not` token.
        assert_eq!(
            spans.locus_span(&RuleLocus::NegVar(0, "w".into())),
            Span::new(2, 9)
        );
        assert_eq!(
            spans.locus_span(&RuleLocus::Var("x".into())),
            Span::new(2, 3)
        );
        // Everything unknown degrades to the statement span.
        let bare = RuleSpans::statement_only(Span::new(7, 2));
        assert_eq!(
            spans.locus_span(&RuleLocus::Var("q".into())),
            Span::new(2, 1)
        );
        assert_eq!(bare.locus_span(&RuleLocus::HeadArg(0)), Span::new(7, 2));
    }

    #[test]
    fn counts() {
        let mut parsed = ParsedProgram::default();
        assert_eq!(parsed.statement_count(), 0);
        parsed.facts.insert_fact("Router", [1i64]);
        assert_eq!(parsed.fact_count(), 1);
        assert!(Span::default().is_unknown());
        assert_eq!(Span::new(3, 7).to_string(), "3:7");
    }
}

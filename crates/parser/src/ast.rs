//! A thin AST layer between the parser and `gdlog-core`.
//!
//! The parser produces [`RuleAst`] values which distinguish ordinary rules
//! from constraints (`body -> false.`); [`ParsedProgram`] assembles them into
//! a [`gdlog_core::Program`] (desugaring constraints through
//! [`gdlog_core::Program::push_constraint`]) and collects ground facts into a
//! [`gdlog_data::Database`].

use gdlog_core::{CoreError, Program, Rule};
use gdlog_data::{Atom, Database};

/// One parsed statement.
#[derive(Clone, Debug, PartialEq)]
pub enum RuleAst {
    /// An ordinary rule (possibly a fact if the body is empty).
    Rule(Rule),
    /// A constraint `pos, not neg -> false.`
    Constraint {
        /// Positive body atoms.
        pos: Vec<Atom>,
        /// Negative body atoms.
        neg: Vec<Atom>,
    },
}

/// The result of parsing a program text: rules plus ground facts.
///
/// Bodyless, variable-free, Δ-free heads (e.g. `Router(1).`) are treated as
/// database facts rather than program rules, matching the paper's `Π[D]`
/// construction which keeps the database separate.
#[derive(Clone, Debug, Default)]
pub struct ParsedProgram {
    /// The program rules (facts with variables or Δ-terms stay here).
    pub statements: Vec<RuleAst>,
    /// The ground facts, as a database.
    pub facts: Database,
}

impl ParsedProgram {
    /// Convert into a validated [`Program`] (the facts are returned
    /// alongside so callers can pass them as the input database).
    pub fn into_program(self) -> Result<(Program, Database), CoreError> {
        let mut program = Program::new(Vec::new());
        for statement in self.statements {
            match statement {
                RuleAst::Rule(rule) => program.push(rule),
                RuleAst::Constraint { pos, neg } => program.push_constraint(pos, neg),
            }
        }
        program.validate()?;
        Ok((program, self.facts))
    }

    /// Number of parsed statements (excluding facts).
    pub fn statement_count(&self) -> usize {
        self.statements.len()
    }

    /// Number of parsed ground facts.
    pub fn fact_count(&self) -> usize {
        self.facts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdlog_core::{Head, HeadTerm};
    use gdlog_data::Term;

    #[test]
    fn into_program_desugars_constraints() {
        let parsed = ParsedProgram {
            statements: vec![
                RuleAst::Rule(Rule::new(
                    vec![Atom::make("A", vec![Term::var("x")])],
                    vec![],
                    Head::make("B", vec![HeadTerm::var("x")]),
                )),
                RuleAst::Constraint {
                    pos: vec![Atom::make("B", vec![Term::var("x")])],
                    neg: vec![],
                },
            ],
            facts: Database::new(),
        };
        let (program, facts) = parsed.into_program().unwrap();
        // Rule + constraint rule + fail/aux rule.
        assert_eq!(program.len(), 3);
        assert!(facts.is_empty());
    }

    #[test]
    fn counts() {
        let mut parsed = ParsedProgram::default();
        assert_eq!(parsed.statement_count(), 0);
        parsed.facts.insert_fact("Router", [1i64]);
        assert_eq!(parsed.fact_count(), 1);
    }
}

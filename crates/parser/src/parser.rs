//! Recursive-descent parser for GDatalog¬\[Δ\] programs and databases.

use crate::ast::{ParsedProgram, RuleAst, RuleSpans, SiteTag, Span, VarSite};
use crate::lexer::{LexError, Lexer, Token, TokenKind};
use gdlog_core::{CoreError, DeltaTerm, Head, HeadTerm, Program, Rule};
use gdlog_data::{Atom, Const, Database, Term};
use gdlog_prob::Rational;
use std::fmt;

/// A parse error with position information.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
    /// 1-based line number (0 when the error has no source position, e.g.
    /// shape errors from [`parse_database`] / [`parse_rule`]).
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "{}:{}: {}", self.line, self.column, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            column: e.column,
        }
    }
}

impl From<CoreError> for ParseError {
    fn from(e: CoreError) -> Self {
        ParseError {
            message: e.to_string(),
            line: 0,
            column: 0,
        }
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(source: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            tokens: Lexer::new(source).tokenize()?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error_at(&self, message: impl Into<String>) -> ParseError {
        let t = self.peek();
        ParseError {
            message: message.into(),
            line: t.line,
            column: t.column,
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        if &self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.error_at(format!("expected `{kind}`, found `{}`", self.peek().kind)))
        }
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    /// The span of the next token.
    fn here(&self) -> Span {
        let t = self.peek();
        Span::new(t.line, t.column)
    }

    /// statement := literal ("," literal)* "->" head "." | head "." (fact)
    fn statement(&mut self) -> Result<(RuleAst, RuleSpans), ParseError> {
        // A statement is either `head.` (a fact) or `body -> head.`; we parse
        // a comma-separated list of literals, then decide based on the next
        // token. Alongside the AST we record a span per literal, per head
        // argument and per variable occurrence so later analyses can point a
        // caret at the exact offending token.
        let rule_span = self.here();
        let mut spans = RuleSpans::statement_only(rule_span);
        let mut pos: Vec<Atom> = Vec::new();
        let mut neg: Vec<Atom> = Vec::new();

        if self.peek().kind == TokenKind::Arrow {
            // Explicit bodyless rule `-> Head.` (the paper's `→ Coin(...)`).
            self.bump();
            let head = self.head(&mut spans)?;
            self.expect(&TokenKind::Dot)?;
            return Ok((RuleAst::Rule(Rule::new(pos, neg, head)), spans));
        }

        loop {
            let literal_span = self.here();
            let negated = matches!(self.peek().kind, TokenKind::Not);
            if negated {
                self.bump();
            }
            // A head position may also be `false`; but `false` can only
            // appear after `->`, which is handled below, so here we always
            // parse an atom.
            let (atom, vars) = self.atom()?;
            if negated {
                // A negative literal's span is its `not` token.
                let tag = SiteTag::Neg(neg.len());
                spans.neg.push(literal_span);
                spans
                    .var_sites
                    .extend(
                        vars.into_iter()
                            .map(|(name, span)| VarSite { name, tag, span }),
                    );
                neg.push(atom);
            } else {
                let tag = SiteTag::Pos(pos.len());
                spans.pos.push(literal_span);
                spans
                    .var_sites
                    .extend(
                        vars.into_iter()
                            .map(|(name, span)| VarSite { name, tag, span }),
                    );
                pos.push(atom);
            }
            match self.peek().kind.clone() {
                TokenKind::Comma => {
                    self.bump();
                }
                TokenKind::Arrow => {
                    self.bump();
                    if self.peek().kind == TokenKind::False {
                        self.bump();
                        self.expect(&TokenKind::Dot)?;
                        // The desugared `Fail` head is synthetic; attribute
                        // it to the statement.
                        spans.head = rule_span;
                        return Ok((RuleAst::Constraint { pos, neg }, spans));
                    }
                    let head = self.head(&mut spans)?;
                    self.expect(&TokenKind::Dot)?;
                    return Ok((RuleAst::Rule(Rule::new(pos, neg, head)), spans));
                }
                TokenKind::Dot => {
                    // A fact: a single positive atom followed by '.'.
                    self.bump();
                    if pos.len() == 1 && neg.is_empty() {
                        let atom = pos.pop().expect("one atom");
                        // The atom becomes the head; retarget its spans.
                        spans.head = spans.pos.pop().unwrap_or(rule_span);
                        for site in &mut spans.var_sites {
                            site.tag = SiteTag::Head(0);
                        }
                        let head = Head::make(
                            atom.predicate.name(),
                            atom.args.into_iter().map(HeadTerm::Term).collect(),
                        );
                        return Ok((
                            RuleAst::Rule(Rule::new(Vec::new(), Vec::new(), head)),
                            spans,
                        ));
                    }
                    return Err(self.error_at("a fact must consist of a single positive atom"));
                }
                other => {
                    return Err(self.error_at(format!("expected `,`, `->` or `.`, found `{other}`")))
                }
            }
        }
    }

    /// head := UpperIdent "(" head_term ("," head_term)* ")" | UpperIdent
    fn head(&mut self, spans: &mut RuleSpans) -> Result<Head, ParseError> {
        spans.head = self.here();
        let name = match self.bump().kind {
            TokenKind::UpperIdent(name) => name,
            other => {
                return Err(self.error_at(format!("expected a predicate name, found `{other}`")))
            }
        };
        let mut args = Vec::new();
        if self.peek().kind == TokenKind::LParen {
            self.bump();
            if self.peek().kind != TokenKind::RParen {
                loop {
                    let tag = SiteTag::Head(args.len());
                    spans.head_args.push(self.here());
                    let (term, vars) = self.head_term()?;
                    spans
                        .var_sites
                        .extend(
                            vars.into_iter()
                                .map(|(name, span)| VarSite { name, tag, span }),
                        );
                    args.push(term);
                    if self.peek().kind == TokenKind::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        Ok(Head::make(&name, args))
    }

    /// head_term := term | UpperIdent "<" term,* ">" ("[" term,* "]")?
    ///
    /// Returns the term plus the variable occurrences inside it (Δ-term
    /// parameters and event tuples included).
    fn head_term(&mut self) -> Result<(HeadTerm, Vec<(String, Span)>), ParseError> {
        let mut vars: Vec<(String, Span)> = Vec::new();
        if let TokenKind::UpperIdent(name) = self.peek().kind.clone() {
            // Look ahead: `Name<` is a Δ-term, `Name` alone is a symbolic
            // constant-like predicate misuse; we require Δ-terms to use `<`.
            if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::LAngle) {
                self.bump();
                self.bump();
                let mut params = Vec::new();
                if self.peek().kind != TokenKind::RAngle {
                    loop {
                        params.push(self.term_sited(&mut vars)?);
                        if self.peek().kind == TokenKind::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RAngle)?;
                let mut event = Vec::new();
                if self.peek().kind == TokenKind::LBracket {
                    self.bump();
                    if self.peek().kind != TokenKind::RBracket {
                        loop {
                            event.push(self.term_sited(&mut vars)?);
                            if self.peek().kind == TokenKind::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RBracket)?;
                }
                return Ok((HeadTerm::Delta(DeltaTerm::new(&name, params, event)), vars));
            }
        }
        let term = self.term_sited(&mut vars)?;
        Ok((HeadTerm::Term(term), vars))
    }

    /// atom := UpperIdent ("(" term ("," term)* ")")?
    ///
    /// Returns the atom plus the variable occurrences inside it.
    fn atom(&mut self) -> Result<(Atom, Vec<(String, Span)>), ParseError> {
        let name = match self.bump().kind {
            TokenKind::UpperIdent(name) => name,
            other => {
                return Err(self.error_at(format!("expected a predicate name, found `{other}`")))
            }
        };
        let mut args = Vec::new();
        let mut vars = Vec::new();
        if self.peek().kind == TokenKind::LParen {
            self.bump();
            if self.peek().kind != TokenKind::RParen {
                loop {
                    args.push(self.term_sited(&mut vars)?);
                    if self.peek().kind == TokenKind::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        Ok((Atom::make(&name, args), vars))
    }

    /// Parse a term, recording its span in `vars` if it is a variable.
    fn term_sited(&mut self, vars: &mut Vec<(String, Span)>) -> Result<Term, ParseError> {
        let span = self.here();
        let term = self.term()?;
        if let Term::Var(v) = &term {
            vars.push((v.name().to_string(), span));
        }
        Ok(term)
    }

    /// term := LowerIdent | Int | Decimal | SymbolConst | "true" | "false"-ish
    fn term(&mut self) -> Result<Term, ParseError> {
        let token = self.bump();
        match token.kind {
            TokenKind::LowerIdent(name) => {
                match name.as_str() {
                    // `true`/`false` inside arguments would be surprising; we
                    // accept them as booleans for convenience.
                    "true" => Ok(Term::Const(Const::Bool(true))),
                    _ => Ok(Term::var(&name)),
                }
            }
            TokenKind::Int(i) => Ok(Term::int(i)),
            TokenKind::Decimal(text) => {
                // Keep decimals exact when possible.
                let value = Rational::from_decimal_str(&text)
                    .map(|r| r.to_f64())
                    .or_else(|| text.parse::<f64>().ok())
                    .ok_or_else(|| ParseError {
                        message: format!("invalid decimal literal {text}"),
                        line: token.line,
                        column: token.column,
                    })?;
                Ok(Term::Const(Const::real(value).map_err(|e| ParseError {
                    message: e.to_string(),
                    line: token.line,
                    column: token.column,
                })?))
            }
            TokenKind::SymbolConst(name) => Ok(Term::sym(&name)),
            // `false` in an argument position is the boolean constant (as a
            // rule head it is ⊥ and handled by the statement parser).
            TokenKind::False => Ok(Term::Const(Const::Bool(false))),
            other => Err(ParseError {
                message: format!("expected a term, found `{other}`"),
                line: token.line,
                column: token.column,
            }),
        }
    }

    fn parse_statements(&mut self) -> Result<Vec<(RuleAst, RuleSpans)>, ParseError> {
        let mut out = Vec::new();
        while !self.at_eof() {
            out.push(self.statement()?);
        }
        Ok(out)
    }
}

/// Is a parsed rule a *ground fact* (no body, no variables, no Δ-terms)?
fn as_ground_fact(rule: &Rule) -> Option<gdlog_data::GroundAtom> {
    if !rule.pos.is_empty() || !rule.neg.is_empty() || rule.head.has_delta() {
        return None;
    }
    rule.head.as_atom().and_then(|a| a.to_ground().ok())
}

/// Parse a program text into rules and ground facts.
pub fn parse_source(source: &str) -> Result<ParsedProgram, ParseError> {
    let mut parser = Parser::new(source)?;
    let statements = parser.parse_statements()?;
    let mut parsed = ParsedProgram::default();
    for (statement, spans) in statements {
        match statement {
            RuleAst::Rule(rule) => match as_ground_fact(&rule) {
                Some(fact) => {
                    parsed.facts.insert(fact);
                }
                None => {
                    parsed.statements.push(RuleAst::Rule(rule));
                    parsed.spans.push(spans.rule);
                    parsed.literal_spans.push(spans);
                }
            },
            constraint => {
                parsed.statements.push(constraint);
                parsed.spans.push(spans.rule);
                parsed.literal_spans.push(spans);
            }
        }
    }
    Ok(parsed)
}

/// Parse a program text into a validated [`Program`] and the ground facts it
/// contains (its input database fragment).
///
/// Validation failures (unsafe variables, arity conflicts, unknown
/// distributions) are reported at the offending statement's source position
/// rather than as bare messages.
pub fn parse_program(source: &str) -> Result<(Program, Database), ParseError> {
    let (program, facts, spans) = parse_source(source)?.into_spanned_parts();
    if let Some(issue) = program.validate_all().into_iter().next() {
        let span = spans
            .get(issue.rule)
            .map(|rs| rs.locus_span(&issue.locus))
            .unwrap_or_default();
        return Err(ParseError {
            message: issue.error.to_string(),
            line: span.line,
            column: span.column,
        });
    }
    Ok((program, facts))
}

/// Parse a database: a list of ground facts `R(c1, …, cn).`
pub fn parse_database(source: &str) -> Result<Database, ParseError> {
    let parsed = parse_source(source)?;
    if !parsed.statements.is_empty() {
        return Err(ParseError {
            message: "a database may only contain ground facts".to_owned(),
            line: 0,
            column: 0,
        });
    }
    Ok(parsed.facts)
}

/// Parse a single rule (convenience for tests and doc examples).
pub fn parse_rule(source: &str) -> Result<Rule, ParseError> {
    let parsed = parse_source(source)?;
    let mut rules: Vec<Rule> = Vec::new();
    for statement in parsed.statements {
        match statement {
            RuleAst::Rule(r) => rules.push(r),
            RuleAst::Constraint { .. } => {
                return Err(ParseError {
                    message: "expected a rule, found a constraint".to_owned(),
                    line: 0,
                    column: 0,
                })
            }
        }
    }
    for fact in parsed.facts.canonical_atoms() {
        rules.push(Rule::fact(Head::make(
            fact.predicate.name(),
            fact.args
                .into_iter()
                .map(|c| HeadTerm::Term(Term::Const(c)))
                .collect(),
        )));
    }
    if rules.len() != 1 {
        return Err(ParseError {
            message: format!("expected exactly one rule, found {}", rules.len()),
            line: 0,
            column: 0,
        });
    }
    Ok(rules.into_iter().next().expect("one rule"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdlog_core::network_resilience_program;

    const NETWORK: &str = r#"
        % Example 3.1: network resilience
        Infected(x, 1), Connected(x, y) -> Infected(y, Flip<0.1>[x, y]).
        Router(x), not Infected(x, 1) -> Uninfected(x).
        Uninfected(x), Uninfected(y), Connected(x, y) -> false.

        Router(1). Router(2). Router(3).
        Connected(1, 2). Connected(2, 1).
        Connected(1, 3). Connected(3, 1).
        Connected(2, 3). Connected(3, 2).
        Infected(1, 1).
    "#;

    #[test]
    fn parses_the_network_example_end_to_end() {
        let (program, db) = parse_program(NETWORK).unwrap();
        assert_eq!(program.len(), 4); // 2 rules + constraint + fail/aux
        assert_eq!(db.len(), 10);
        assert!(program.is_probabilistic());
        // The parsed program is textually identical to the programmatic one.
        assert_eq!(
            program.to_string(),
            network_resilience_program(0.1).to_string()
        );
    }

    #[test]
    fn parses_the_coin_program() {
        let source = r#"
            -> Coin(Flip<0.5>).
            Coin(0) -> false.
            Coin(1), not Aux1 -> Aux2.
            Coin(1), not Aux2 -> Aux1.
        "#;
        let (program, db) = parse_program(source).unwrap();
        assert!(db.is_empty());
        assert_eq!(program.len(), 5);
        assert!(!program.has_stratified_negation());
    }

    #[test]
    fn parses_facts_variables_and_symbols() {
        let (program, db) =
            parse_program("Likes(#alice, \"bob\").  Knows(x, y), Likes(x, y) -> Friend(x, y).")
                .unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(program.len(), 1);
    }

    #[test]
    fn parse_database_accepts_only_facts() {
        let db = parse_database("Router(1). Router(2). Connected(1, 2).").unwrap();
        assert_eq!(db.len(), 3);
        assert!(parse_database("A(x) -> B(x).").is_err());
    }

    #[test]
    fn parse_rule_variants() {
        let rule = parse_rule("Dime(x) -> DimeTail(x, Flip<0.5>[x]).").unwrap();
        assert!(rule.is_probabilistic());
        assert!(parse_rule("A(x) -> B(x). C(x) -> D(x).").is_err());
        assert!(parse_rule("A(x) -> false.").is_err());
        let fact = parse_rule("Router(7).").unwrap();
        assert!(fact.pos.is_empty());
    }

    #[test]
    fn error_messages_carry_positions() {
        let err = parse_program("Router(1)").unwrap_err();
        assert!(err.line >= 1);
        assert!(err.to_string().contains("expected"));

        let err = parse_program("router(x) -> Up(x).").unwrap_err();
        assert!(err.to_string().contains("predicate"));

        let err = parse_program("A(x), -> B(x).").unwrap_err();
        assert!(err.to_string().contains("predicate name"));

        // Unsafe rules are rejected through validation, and the error points
        // at the offending variable occurrence in the head.
        let err = parse_program("A(x) -> B(x).\nA(x) -> B(z).").unwrap_err();
        assert!(err.to_string().contains("unsafe"));
        assert_eq!((err.line, err.column), (2, 11));

        // Unsafe negated variables point at their occurrence in the negative
        // literal.
        let err = parse_program("A(x), not Q(x, w) -> P(x).").unwrap_err();
        assert!(err.to_string().contains("unsafe"));
        assert_eq!((err.line, err.column), (1, 16));

        // Arity conflicts are attributed to the literal that introduced the
        // conflicting use.
        let err = parse_program("A(x) -> B(x).\n\n  A(x, y) -> C(x).").unwrap_err();
        assert!(err.to_string().contains("arity"));
        assert_eq!((err.line, err.column), (3, 3));
    }

    #[test]
    fn literal_spans_pinpoint_rule_parts() {
        use gdlog_core::RuleLocus;
        let source = "Seed(1).\nSeed(x), not Bad(x) -> Val(x, Flip<0.5>[x]).";
        let parsed = parse_source(source).unwrap();
        let (_, _, spans) = parsed.into_spanned_parts();
        assert_eq!(spans.len(), 1);
        let rs = &spans[0];
        assert_eq!(rs.rule, Span::new(2, 1));
        assert_eq!(rs.locus_span(&RuleLocus::Pos(0)), Span::new(2, 1));
        // Negative literals are anchored at their `not` token.
        assert_eq!(rs.locus_span(&RuleLocus::Neg(0)), Span::new(2, 10));
        assert_eq!(rs.locus_span(&RuleLocus::Head), Span::new(2, 24));
        // Head argument 1 is the Δ-term.
        assert_eq!(rs.locus_span(&RuleLocus::HeadArg(1)), Span::new(2, 31));
        // The variable sites distinguish occurrences per literal.
        assert_eq!(
            rs.locus_span(&RuleLocus::NegVar(0, "x".into())),
            Span::new(2, 18)
        );
        assert_eq!(
            rs.locus_span(&RuleLocus::HeadVar("x".into())),
            Span::new(2, 28)
        );
    }

    #[test]
    fn boolean_convenience_terms() {
        let (program, _) = parse_program("Router(x) -> Flag(x, true).").unwrap();
        assert_eq!(program.len(), 1);
    }

    #[test]
    fn delta_terms_with_empty_event_and_multiple_params() {
        let rule = parse_rule("Player(x) -> Score(x, Categorical<0.2, 0.3, 0.5>[x]).").unwrap();
        match &rule.head.args[1] {
            HeadTerm::Delta(d) => {
                assert_eq!(d.params.len(), 3);
                assert_eq!(d.event.len(), 1);
            }
            _ => panic!("expected a Δ-term"),
        }
    }
}

//! # gdlog-parser — surface syntax for GDatalog¬\[Δ\]
//!
//! A hand-written lexer and recursive-descent parser for the rule syntax used
//! throughout the paper's examples, e.g. the network-resilience program of
//! Example 3.1:
//!
//! ```text
//! % malware propagation
//! Infected(x, 1), Connected(x, y) -> Infected(y, Flip<0.1>[x, y]).
//! Router(x), not Infected(x, 1) -> Uninfected(x).
//! Uninfected(x), Uninfected(y), Connected(x, y) -> false.
//! ```
//!
//! and databases as lists of facts:
//!
//! ```text
//! Router(1). Router(2). Router(3).
//! Connected(1, 2). Connected(2, 1). Infected(1, 1).
//! ```
//!
//! Identifiers starting with a lower-case letter are variables; identifiers
//! starting with an upper-case letter are predicate names (inside argument
//! positions, quoted strings and numbers are constants and `#name` is a
//! symbolic constant). `not` (or `!`) marks negative body literals, `false`
//! (or `#fail`) as a rule head is the ⊥ of Example 3.1 and is desugared by
//! `gdlog-core` into the `Fail, ¬Aux → Aux` encoding described in the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod pretty;

pub use ast::{ParsedProgram, RuleAst, RuleSpans, SiteTag, Span, VarSite};
pub use diag::{render_diagnostic, render_diagnostic_with};
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{parse_database, parse_program, parse_rule, parse_source, ParseError};
pub use pretty::{pretty_database, pretty_program, pretty_rule};

//! The Gelfond–Lifschitz reduct.
//!
//! Given a ground program Σ and an interpretation `I`, the reduct `Σ^I` is
//! obtained by (i) deleting every rule with a negative literal `¬α` such that
//! `α ∈ I`, and (ii) deleting all negative literals from the remaining rules.
//! `I` is a stable model of Σ iff `I` is the least model of `Σ^I` — this is
//! equivalent to the second-order characterisation `SM[Σ]` recalled in
//! Section 2 of the paper (for ground programs).

use crate::ground::{GroundProgram, GroundRule};
use gdlog_data::Database;

/// Compute the Gelfond–Lifschitz reduct `Σ^I` of `program` w.r.t.
/// `interpretation`.
pub fn reduct(program: &GroundProgram, interpretation: &Database) -> GroundProgram {
    let mut out = GroundProgram::new();
    for rule in program.iter() {
        if rule.neg.iter().any(|a| interpretation.contains(a)) {
            continue;
        }
        out.push(GroundRule::new(
            rule.head.clone(),
            rule.pos.clone(),
            Vec::new(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::least_model::least_model;
    use gdlog_data::{Const, GroundAtom};

    fn atom(name: &str) -> GroundAtom {
        GroundAtom::make(name, vec![])
    }

    fn atom1(name: &str, arg: i64) -> GroundAtom {
        GroundAtom::make(name, vec![Const::Int(arg)])
    }

    #[test]
    fn reduct_of_positive_program_is_the_program_itself() {
        let p = GroundProgram::from_rules(vec![
            GroundRule::fact(atom("A")),
            GroundRule::new(atom("B"), vec![atom("A")], vec![]),
        ]);
        let i = Database::new();
        assert_eq!(reduct(&p, &i), p);
    }

    #[test]
    fn rules_blocked_by_true_negated_atoms_are_removed() {
        let p = GroundProgram::from_rules(vec![GroundRule::new(
            atom("B"),
            vec![atom("A")],
            vec![atom("C")],
        )]);
        let mut i = Database::new();
        i.insert(atom("C"));
        assert!(reduct(&p, &i).is_empty());
    }

    #[test]
    fn surviving_rules_lose_their_negative_literals() {
        let p = GroundProgram::from_rules(vec![GroundRule::new(
            atom("B"),
            vec![atom("A")],
            vec![atom("C")],
        )]);
        let i = Database::new();
        let r = reduct(&p, &i);
        assert_eq!(r.len(), 1);
        let rule = r.iter().next().unwrap();
        assert!(rule.neg.is_empty());
        assert_eq!(rule.pos, vec![atom("A")]);
        assert!(r.is_positive());
    }

    #[test]
    fn classic_even_loop_reducts() {
        // The classic program { a ← ¬b.  b ← ¬a. } has stable models {a}, {b}.
        let p = GroundProgram::from_rules(vec![
            GroundRule::new(atom("a"), vec![], vec![atom("b")]),
            GroundRule::new(atom("b"), vec![], vec![atom("a")]),
        ]);
        let ia = Database::from_atoms(vec![atom("a")]);
        let ra = reduct(&p, &ia);
        assert_eq!(least_model(&ra), ia);

        let ib = Database::from_atoms(vec![atom("b")]);
        let rb = reduct(&p, &ib);
        assert_eq!(least_model(&rb), ib);

        // The empty interpretation keeps both rules; its least model {a, b}
        // differs from ∅, so ∅ is not stable.
        let empty = Database::new();
        let r_empty = reduct(&p, &empty);
        assert_eq!(least_model(&r_empty).len(), 2);
    }

    #[test]
    fn reduct_matches_paper_coin_intuition() {
        // Coin(1) with the two auxiliary rules of Π_coin: the reduct w.r.t.
        // {Coin(1), Aux1} removes the rule producing Aux2 via ¬Aux1... wait:
        // Aux2 ← Coin(1), ¬Aux1 is deleted because Aux1 ∈ I; Aux1 ← Coin(1),
        // ¬Aux2 survives without the negative literal.
        let p = GroundProgram::from_rules(vec![
            GroundRule::fact(atom1("Coin", 1)),
            GroundRule::new(atom("Aux2"), vec![atom1("Coin", 1)], vec![atom("Aux1")]),
            GroundRule::new(atom("Aux1"), vec![atom1("Coin", 1)], vec![atom("Aux2")]),
        ]);
        let i = Database::from_atoms(vec![atom1("Coin", 1), atom("Aux1")]);
        let r = reduct(&p, &i);
        assert_eq!(r.len(), 2);
        assert_eq!(least_model(&r), i);
    }
}

//! The naive stable-model enumerator, retained as the equivalence oracle.
//!
//! This is the original back-end of [`crate::stable`]: compute the
//! well-founded model, branch on the full *negative signature* (undecided
//! atoms occurring in negative body literals) and, for every complete
//! assignment, rebuild the Gelfond–Lifschitz reduct and its least model from
//! scratch. The search space is a single `2^k` sweep over all `k` branching
//! atoms of the whole program.
//!
//! The production enumerator ([`crate::stable::stable_models`]) replaces this
//! with a component-split, propagating branch-and-prune search; this module
//! keeps the slow-but-obviously-faithful enumeration around as an oracle —
//! the same pattern as `gdlog-core`'s `naive` grounding module. Property
//! tests and the `bench_stable` tracker assert that the two agree (model sets
//! and error behaviour) on random and benchmark programs.
//!
//! The only change from the seed implementation is the backtracking
//! representation: the assumption set is a plain push/pop stack instead of a
//! `Database` rebuilt via `from_atoms` + filter on every undo (which made
//! each backtrack O(assumed atoms) in allocations for no semantic gain).

use crate::ground::GroundProgram;
use crate::least_model::least_model;
use crate::reduct::reduct;
use crate::stable::{is_stable_model, StableError, StableModelLimits};
use crate::wellfounded::{well_founded, WellFounded};
use gdlog_data::{Database, GroundAtom};
use std::collections::BTreeSet;

/// Enumerate all stable models of `program` by the naive `2^k` sweep over the
/// negative signature.
///
/// Same contract as [`crate::stable::stable_models`] (canonically sorted
/// result), but [`StableModelLimits::max_branch_atoms`] is applied to the
/// *total* number of branching atoms, since this enumerator cannot split
/// independent components.
pub fn naive_stable_models(
    program: &GroundProgram,
    limits: &StableModelLimits,
) -> Result<Vec<Database>, StableError> {
    let wf = well_founded(program);

    // Fast path: a total well-founded model is the unique stable model
    // (provided it actually is one — odd loops can make it non-stable, but a
    // total WFM is always stable).
    if wf.is_total() {
        return Ok(vec![wf.true_atoms.clone()]);
    }

    let branch_atoms = branching_atoms(program, &wf);
    if branch_atoms.len() > limits.max_branch_atoms {
        return Err(StableError::TooManyBranchAtoms {
            found: branch_atoms.len(),
            limit: limits.max_branch_atoms,
        });
    }

    let mut found: BTreeSet<Vec<GroundAtom>> = BTreeSet::new();
    let mut assumed_true: Vec<GroundAtom> = Vec::new();
    search(
        program,
        &wf,
        &branch_atoms,
        0,
        &mut assumed_true,
        &mut found,
        limits,
    )?;

    Ok(found.into_iter().map(Database::from_atoms).collect())
}

/// The atoms the search must branch on: undecided atoms that occur in a
/// negative body literal of some rule.
fn branching_atoms(program: &GroundProgram, wf: &WellFounded) -> Vec<GroundAtom> {
    let mut set: BTreeSet<GroundAtom> = BTreeSet::new();
    for rule in program.iter() {
        for a in &rule.neg {
            if wf.unknown_atoms.contains(a) {
                set.insert(a.clone());
            }
        }
    }
    set.into_iter().collect()
}

fn search(
    program: &GroundProgram,
    wf: &WellFounded,
    branch: &[GroundAtom],
    idx: usize,
    assumed_true: &mut Vec<GroundAtom>,
    found: &mut BTreeSet<Vec<GroundAtom>>,
    limits: &StableModelLimits,
) -> Result<(), StableError> {
    if idx == branch.len() {
        // The reduct only depends on the truth of negatively-occurring atoms.
        // Atoms decided true by the WFM are in every stable model; assumed
        // atoms complete the negative signature.
        let mut guess = wf
            .true_atoms
            .union(&Database::from_atoms(assumed_true.iter().cloned()));
        // Branch atoms not assumed true are assumed false — they are simply
        // absent from `guess`.
        let candidate = least_model(&reduct(program, &guess));
        // The candidate must agree with the guess on the negative signature,
        // otherwise the reduct we used was not the candidate's own reduct.
        for a in branch {
            let guessed = assumed_true.contains(a);
            if candidate.contains(a) != guessed {
                return Ok(());
            }
        }
        guess = candidate;
        if is_stable_model(program, &guess) {
            if found.len() >= limits.max_models {
                return Err(StableError::TooManyModels {
                    limit: limits.max_models,
                });
            }
            found.insert(guess.canonical_atoms());
        }
        return Ok(());
    }

    // Branch: atom false first (keeps models small/minimal-ish early).
    search(program, wf, branch, idx + 1, assumed_true, found, limits)?;
    assumed_true.push(branch[idx].clone());
    search(program, wf, branch, idx + 1, assumed_true, found, limits)?;
    // Backtrack: pop the assumption (O(1); the stack mirrors the branch
    // prefix exactly).
    assumed_true.pop();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::GroundRule;
    use gdlog_data::Const;

    fn atom(name: &str) -> GroundAtom {
        GroundAtom::make(name, vec![])
    }

    fn atom1(name: &str, arg: i64) -> GroundAtom {
        GroundAtom::make(name, vec![Const::Int(arg)])
    }

    fn models(p: &GroundProgram) -> Vec<Database> {
        naive_stable_models(p, &StableModelLimits::default()).unwrap()
    }

    #[test]
    fn even_loop_has_two_stable_models() {
        let p = GroundProgram::from_rules(vec![
            GroundRule::new(atom("a"), vec![], vec![atom("b")]),
            GroundRule::new(atom("b"), vec![], vec![atom("a")]),
        ]);
        let ms = models(&p);
        assert_eq!(ms.len(), 2);
        assert!(ms.contains(&Database::from_atoms(vec![atom("a")])));
        assert!(ms.contains(&Database::from_atoms(vec![atom("b")])));
    }

    #[test]
    fn odd_loop_has_no_stable_model() {
        let p =
            GroundProgram::from_rules(vec![GroundRule::new(atom("a"), vec![], vec![atom("a")])]);
        assert!(models(&p).is_empty());
    }

    #[test]
    fn total_wfm_fast_path() {
        let p = GroundProgram::from_rules(vec![
            GroundRule::fact(atom("A")),
            GroundRule::new(atom("B"), vec![atom("A")], vec![]),
        ]);
        let ms = models(&p);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0], least_model(&p));
    }

    #[test]
    fn naive_limits_apply_to_the_total_branch_count() {
        // Six *independent* even loops: the naive enumerator counts all
        // twelve branching atoms against the limit (the component-split
        // search in `crate::stable` does not — that is its point).
        let mut p = GroundProgram::new();
        for i in 0..6 {
            p.push(GroundRule::new(
                atom1("In", i),
                vec![],
                vec![atom1("Out", i)],
            ));
            p.push(GroundRule::new(
                atom1("Out", i),
                vec![],
                vec![atom1("In", i)],
            ));
        }
        let tight = StableModelLimits {
            max_branch_atoms: 4,
            max_models: 100,
        };
        assert!(matches!(
            naive_stable_models(&p, &tight),
            Err(StableError::TooManyBranchAtoms {
                found: 12,
                limit: 4
            })
        ));
        let tight_models = StableModelLimits {
            max_branch_atoms: 64,
            max_models: 10,
        };
        assert!(matches!(
            naive_stable_models(&p, &tight_models),
            Err(StableError::TooManyModels { limit: 10 })
        ));
    }
}

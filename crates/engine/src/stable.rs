//! Stable model checking and enumeration.
//!
//! An interpretation `I` is a stable model of a ground program Σ iff `I` is
//! the least model of the Gelfond–Lifschitz reduct `Σ^I` — the ground special
//! case of the second-order sentence `SM[Σ]` recalled in Section 2 of the
//! paper. `sms(Σ)` is the set of all stable models.
//!
//! The enumerator is a component-split, propagating branch-and-prune search
//! (the decomposition playbook of Brik & Remmel's *Characterizing and
//! computing stable models of logic programs*, specialised to ground
//! programs):
//!
//! 1. **Well-founded core.** Atoms decided by the well-founded model have the
//!    same value in every stable model. The program is simplified to its
//!    *residual*: only rules whose head is WFM-undecided survive, with
//!    decided literals evaluated away. `sms(Σ) = { T ∪ S }` where `T` is the
//!    WFM-true core and `S` ranges over the stable models of the residual
//!    (see `ARCHITECTURE.md`, "Stable-model back-end", for the argument).
//! 2. **Component split.** The residual's ground-atom dependency graph is
//!    decomposed into strongly connected components
//!    ([`crate::depgraph::sccs_of`], the same Tarjan kernel as
//!    stratification); SCCs whose condensation is connected are grouped into
//!    independent *solve units* that share no atoms. The stable models of the
//!    residual are exactly the cross products of the units' stable models, so
//!    one `2^k` search becomes a product of `2^kᵢ` searches.
//! 3. **Propagating search.** Within a unit, the search branches on the
//!    negative signature in bottom-up SCC order and, after every decision,
//!    runs Fitting/unit propagation to fixpoint: a rule whose body is
//!    certainly satisfied forces its head true, an atom all of whose rules
//!    are blocked is forced false, and contradictions prune the subtree
//!    immediately. The reduct is maintained incrementally (per-rule blocked
//!    counters with O(1) push/pop backtracking); only the surviving leaves
//!    pay for a least-model computation, on dense local indexes.
//!
//! The original exhaustive enumerator is retained verbatim as the equivalence
//! oracle in [`crate::naive_stable`].
//!
//! The search is exact; [`StableModelLimits`] only guards against
//! pathological inputs (it returns an error instead of silently truncating).
//! [`StableModelLimits::max_branch_atoms`] now bounds the branching atoms of
//! the *largest solve unit* — programs made of many small independent
//! components solve comfortably even when their total negative signature is
//! large (that is the point of the split).

use crate::cancel::CancelToken;
use crate::depgraph::sccs_of;
use crate::ground::GroundProgram;
use crate::least_model::least_model;
use crate::reduct::reduct;
use crate::wellfounded::{well_founded, WellFounded};
use gdlog_data::{Database, GroundAtom};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Guard rails for the stable-model search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StableModelLimits {
    /// Maximum number of branching atoms (atoms occurring in negative body
    /// literals and undecided by the well-founded model) in any single
    /// independent component of the residual program. The per-component
    /// search space is `2^branching`, so this effectively bounds the
    /// worst-case work.
    pub max_branch_atoms: usize,
    /// Maximum number of stable models to return.
    pub max_models: usize,
}

impl Default for StableModelLimits {
    fn default() -> Self {
        StableModelLimits {
            max_branch_atoms: 26,
            max_models: 100_000,
        }
    }
}

/// Errors raised by the stable-model enumerator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StableError {
    /// The program has more undecided negatively-occurring atoms (in one
    /// independent component) than [`StableModelLimits::max_branch_atoms`].
    TooManyBranchAtoms {
        /// Number of branching atoms found (in the largest component).
        found: usize,
        /// The configured limit.
        limit: usize,
    },
    /// More than [`StableModelLimits::max_models`] stable models exist.
    TooManyModels {
        /// The configured limit.
        limit: usize,
    },
    /// The caller's [`CancelToken`] fired mid-search. The enumeration is
    /// exact-or-nothing, so a cancelled search reports this typed error
    /// rather than a silently incomplete model set.
    Interrupted,
}

impl fmt::Display for StableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StableError::TooManyBranchAtoms { found, limit } => write!(
                f,
                "stable-model search would branch on {found} atoms (limit {limit})"
            ),
            StableError::TooManyModels { limit } => {
                write!(f, "program has more than {limit} stable models")
            }
            StableError::Interrupted => {
                write!(f, "stable-model search interrupted by cancellation")
            }
        }
    }
}

impl std::error::Error for StableError {}

/// Is `interpretation` a stable model of `program`?
pub fn is_stable_model(program: &GroundProgram, interpretation: &Database) -> bool {
    least_model(&reduct(program, interpretation)) == *interpretation
}

/// Enumerate all stable models of `program`.
///
/// The result is returned in a canonical (sorted) order so that callers can
/// compare sets of stable models structurally.
pub fn stable_models(
    program: &GroundProgram,
    limits: &StableModelLimits,
) -> Result<Vec<Database>, StableError> {
    stable_models_with_cancel(program, limits, &CancelToken::never())
}

/// [`stable_models`] with a cooperative [`CancelToken`]: the token is polled
/// once per branch decision, per component, and per cross-product step, so a
/// cancellation request surfaces as [`StableError::Interrupted`] within one
/// unit of search work. The enumeration stays exact-or-nothing — a cancelled
/// search never returns a partial model set.
pub fn stable_models_with_cancel(
    program: &GroundProgram,
    limits: &StableModelLimits,
    cancel: &CancelToken,
) -> Result<Vec<Database>, StableError> {
    if cancel.is_cancelled() {
        return Err(StableError::Interrupted);
    }
    let wf = well_founded(program);

    // Fast path: a total well-founded model is the unique stable model
    // (provided it actually is one — odd loops can make it non-stable, but a
    // total WFM is always stable).
    if wf.is_total() {
        return Ok(vec![wf.true_atoms.clone()]);
    }

    let residual = Residual::build(program, &wf);
    let components = residual.split();

    // Enforce the branch limit over every component before solving any, so
    // the error does not depend on how far the search got.
    let worst = components.iter().map(|c| c.branch.len()).max().unwrap_or(0);
    if worst > limits.max_branch_atoms {
        return Err(StableError::TooManyBranchAtoms {
            found: worst,
            limit: limits.max_branch_atoms,
        });
    }

    // Solve each component independently, capping the per-component model
    // count at max_models + 1: the cap only has to distinguish "within
    // budget" from "over budget", and an empty component empties the whole
    // cross product regardless of the other components' sizes.
    let cap = limits.max_models.saturating_add(1);
    let mut solved: Vec<Vec<Vec<u32>>> = Vec::with_capacity(components.len());
    let mut capped = false;
    for comp in &components {
        let (mut models, hit_cap) = Solver::new(comp).solve(cap, cancel)?;
        if models.is_empty() {
            // No stable model for this component ⇒ none for the program
            // (matches the naive enumerator, which never reports
            // TooManyModels when the true count is zero).
            return Ok(Vec::new());
        }
        models.sort_unstable();
        capped |= hit_cap;
        solved.push(models);
    }
    let mut product: usize = 1;
    for m in &solved {
        product = product.saturating_mul(m.len());
    }
    if capped || product > limits.max_models {
        return Err(StableError::TooManyModels {
            limit: limits.max_models,
        });
    }

    // Cross product of the per-component model sets, each completed with the
    // well-founded core.
    let core: Vec<GroundAtom> = wf.true_atoms.canonical_atoms();
    let mut out: BTreeSet<Vec<GroundAtom>> = BTreeSet::new();
    let mut pick = vec![0usize; solved.len()];
    loop {
        if cancel.is_cancelled() {
            return Err(StableError::Interrupted);
        }
        let mut model: Vec<GroundAtom> = core.clone();
        for (ci, comp) in components.iter().enumerate() {
            for &local in &solved[ci][pick[ci]] {
                model.push(comp.atoms[local as usize].clone());
            }
        }
        model.sort();
        out.insert(model);

        // Mixed-radix increment over the component choices.
        let mut ci = 0;
        loop {
            if ci == pick.len() {
                return Ok(out.into_iter().map(Database::from_atoms).collect());
            }
            pick[ci] += 1;
            if pick[ci] < solved[ci].len() {
                break;
            }
            pick[ci] = 0;
            ci += 1;
        }
    }
}

/// A residual rule over dense indexes into [`Residual::atoms`]; `pos` and
/// `neg` are sorted and duplicate-free so per-literal counters are exact.
struct LocalRule {
    head: u32,
    pos: Vec<u32>,
    neg: Vec<u32>,
}

/// The residual program: the WFM-undecided part of the input, with decided
/// literals evaluated away. Every atom it mentions is WFM-unknown.
struct Residual {
    atoms: Vec<GroundAtom>,
    rules: Vec<LocalRule>,
}

impl Residual {
    fn build(program: &GroundProgram, wf: &WellFounded) -> Residual {
        let atoms: Vec<GroundAtom> = wf.unknown_atoms.canonical_atoms();
        let index_of: HashMap<&GroundAtom, u32> = atoms
            .iter()
            .enumerate()
            .map(|(i, a)| (a, i as u32))
            .collect();

        let mut rules = Vec::new();
        'rules: for rule in program.iter() {
            // Only rules for undecided heads survive: WFM-true heads are in
            // every stable model already, WFM-false heads can never fire.
            let Some(&head) = index_of.get(&rule.head) else {
                continue;
            };
            let mut pos = Vec::new();
            for a in &rule.pos {
                if let Some(&i) = index_of.get(a) {
                    pos.push(i);
                } else if !wf.true_atoms.contains(a) {
                    // A WFM-false positive literal: the body is never
                    // satisfied in any stable model.
                    continue 'rules;
                }
                // WFM-true positive literals are simply satisfied.
            }
            let mut neg = Vec::new();
            for a in &rule.neg {
                if let Some(&i) = index_of.get(a) {
                    neg.push(i);
                } else if wf.true_atoms.contains(a) {
                    // A WFM-true negated atom blocks the rule in every
                    // stable model.
                    continue 'rules;
                }
                // WFM-false negated atoms are simply satisfied.
            }
            pos.sort_unstable();
            pos.dedup();
            neg.sort_unstable();
            neg.dedup();
            // `α ∧ ¬α` in one body can never be satisfied by the candidate
            // the rule's reduct would have to reproduce; drop it eagerly so
            // it does not feign support for its head.
            if pos.iter().any(|p| neg.binary_search(p).is_ok()) {
                continue;
            }
            rules.push(LocalRule { head, pos, neg });
        }
        Residual { atoms, rules }
    }

    /// Split into independent solve units: the connected components of the
    /// SCC condensation of the atom dependency graph (equivalently, of its
    /// undirected view). Units share no atoms, so `sms` factors as their
    /// cross product.
    fn split(&self) -> Vec<Component> {
        let n = self.atoms.len();
        let mut uf = UnionFind::new(n);
        for rule in &self.rules {
            for &b in rule.pos.iter().chain(rule.neg.iter()) {
                uf.union(rule.head as usize, b as usize);
            }
        }

        // Group atoms by representative; iterating in ascending order keeps
        // each group's members sorted and lets us order the groups by their
        // smallest atom — fully deterministic.
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for a in 0..n {
            groups.entry(uf.find(a)).or_default().push(a);
        }
        let mut members: Vec<Vec<usize>> = groups.into_values().collect();
        members.sort_by_key(|g| g[0]);

        let mut local_of = vec![(0u32, 0u32); n]; // (component, local index)
        for (ci, group) in members.iter().enumerate() {
            for (li, &a) in group.iter().enumerate() {
                local_of[a] = (ci as u32, li as u32);
            }
        }

        let mut components: Vec<Component> = members
            .iter()
            .map(|group| Component {
                atoms: group.iter().map(|&a| self.atoms[a].clone()).collect(),
                rules: Vec::new(),
                branch: Vec::new(),
            })
            .collect();
        for rule in &self.rules {
            let (ci, head) = local_of[rule.head as usize];
            let remap = |lits: &[u32]| -> Vec<u32> {
                lits.iter().map(|&a| local_of[a as usize].1).collect()
            };
            components[ci as usize].rules.push(LocalRule {
                head,
                pos: remap(&rule.pos),
                neg: remap(&rule.neg),
            });
        }
        for comp in &mut components {
            comp.order_branch_atoms();
        }
        components
    }
}

/// One independent solve unit of the residual program.
struct Component {
    atoms: Vec<GroundAtom>,
    rules: Vec<LocalRule>,
    /// Local indexes of the negatively-occurring atoms (the negative
    /// signature of the unit), in bottom-up SCC order: branching on the
    /// dependency-wise lowest atoms first lets propagation cascade through
    /// everything that depends on them.
    branch: Vec<u32>,
}

impl Component {
    fn order_branch_atoms(&mut self) {
        let n = self.atoms.len();
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut negative: Vec<bool> = vec![false; n];
        for rule in &self.rules {
            for &b in rule.pos.iter().chain(rule.neg.iter()) {
                succ[b as usize].push(rule.head as usize);
            }
            for &b in &rule.neg {
                negative[b as usize] = true;
            }
        }
        for s in &mut succ {
            s.sort_unstable();
            s.dedup();
        }
        let mut scc_pos = vec![0usize; n];
        for (i, scc) in sccs_of(n, &succ).into_iter().enumerate() {
            for a in scc {
                scc_pos[a] = i;
            }
        }
        let mut branch: Vec<u32> = (0..n as u32).filter(|&a| negative[a as usize]).collect();
        branch.sort_by_key(|&a| (scc_pos[a as usize], a));
        self.branch = branch;
    }
}

/// Three-valued assignment state of one atom during the search.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Val {
    Unknown,
    True,
    False,
}

/// The propagating branch-and-prune search over one component.
///
/// All state is indexed by dense local atom/rule ids; decisions and their
/// propagated consequences are recorded on a trail and undone by reversing
/// the per-rule counter updates, so backtracking is O(consequences), with no
/// allocation and no `Database` rebuilds.
struct Solver<'a> {
    comp: &'a Component,
    value: Vec<Val>,
    /// Has this assigned atom's counter effects been applied yet? (Assigned
    /// atoms whose effects were still queued when a conflict surfaced must
    /// not be reverse-applied on undo.)
    applied: Vec<bool>,
    trail: Vec<u32>,
    pending: Vec<u32>,
    conflict: bool,

    // Per-rule counters.
    /// Positive literals not yet assigned true.
    unsat_pos: Vec<u32>,
    /// Negative literals not yet assigned false.
    unfalse_neg: Vec<u32>,
    /// Literals contradicting the body: positives assigned false plus
    /// negatives assigned true. A rule with `blocked > 0` can never fire.
    blocked: Vec<u32>,
    /// Negative literals assigned true — the incremental reduct: at a leaf
    /// the Gelfond–Lifschitz reduct is exactly the rules with
    /// `neg_true == 0`, with their negative bodies deleted.
    neg_true: Vec<u32>,
    /// Per-atom count of unblocked rules with that head; at zero the atom is
    /// unfounded and forced false.
    support: Vec<u32>,

    // Occurrence lists (atom → rules).
    pos_occ: Vec<Vec<u32>>,
    neg_occ: Vec<Vec<u32>>,

    // Scratch for the leaf least-model computation.
    lm_counts: Vec<u32>,
    lm_stack: Vec<u32>,
    in_model: Vec<bool>,

    models: Vec<Vec<u32>>,
    /// Set when the cancel token fired mid-search (the search unwinds via
    /// the same early-stop path as the model cap).
    interrupted: bool,
}

impl<'a> Solver<'a> {
    fn new(comp: &'a Component) -> Self {
        let n = comp.atoms.len();
        let m = comp.rules.len();
        let mut pos_occ: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut neg_occ: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut support = vec![0u32; n];
        let mut unsat_pos = vec![0u32; m];
        let mut unfalse_neg = vec![0u32; m];
        for (r, rule) in comp.rules.iter().enumerate() {
            for &a in &rule.pos {
                pos_occ[a as usize].push(r as u32);
            }
            for &a in &rule.neg {
                neg_occ[a as usize].push(r as u32);
            }
            unsat_pos[r] = rule.pos.len() as u32;
            unfalse_neg[r] = rule.neg.len() as u32;
            support[rule.head as usize] += 1;
        }
        Solver {
            comp,
            value: vec![Val::Unknown; n],
            applied: vec![false; n],
            trail: Vec::with_capacity(n),
            pending: Vec::new(),
            conflict: false,
            unsat_pos,
            unfalse_neg,
            blocked: vec![0; m],
            neg_true: vec![0; m],
            support,
            pos_occ,
            neg_occ,
            lm_counts: vec![0; m],
            lm_stack: Vec::with_capacity(n),
            in_model: vec![false; n],
            models: Vec::new(),
            interrupted: false,
        }
    }

    /// Enumerate the component's stable models, stopping after `cap` of them
    /// (returns whether the cap was hit). Errors with
    /// [`StableError::Interrupted`] if `cancel` fires mid-search.
    fn solve(
        mut self,
        cap: usize,
        cancel: &CancelToken,
    ) -> Result<(Vec<Vec<u32>>, bool), StableError> {
        // Root propagation: rules with (residually) empty bodies fire, atoms
        // with no rules are unfounded. A root conflict means no stable model.
        self.conflict = false;
        self.pending.clear();
        for r in 0..self.comp.rules.len() {
            if self.fireable(r) {
                self.enqueue(self.comp.rules[r].head, Val::True);
            }
        }
        for a in 0..self.comp.atoms.len() as u32 {
            if self.support[a as usize] == 0 {
                self.enqueue(a, Val::False);
            }
        }
        if !self.run_queue() {
            return Ok((Vec::new(), false));
        }
        let hit_cap = !self.search(0, cap, cancel);
        if self.interrupted {
            return Err(StableError::Interrupted);
        }
        Ok((self.models, hit_cap))
    }

    fn fireable(&self, r: usize) -> bool {
        self.blocked[r] == 0 && self.unsat_pos[r] == 0 && self.unfalse_neg[r] == 0
    }

    /// Record an assignment without applying its effects yet. Assigning an
    /// atom against its current value raises the conflict flag instead (the
    /// caller finishes applying the current effect batch — plain counter
    /// arithmetic — so undo stays exact).
    fn enqueue(&mut self, atom: u32, val: Val) {
        match self.value[atom as usize] {
            Val::Unknown => {
                self.value[atom as usize] = val;
                self.trail.push(atom);
                self.pending.push(atom);
            }
            v if v == val => {}
            _ => self.conflict = true,
        }
    }

    /// Apply pending assignment effects to fixpoint. Returns `false` on
    /// conflict (the trail still records every assignment made, applied or
    /// not, so [`Solver::undo_to`] restores the exact prior state).
    fn run_queue(&mut self) -> bool {
        let mut qi = 0;
        while qi < self.pending.len() && !self.conflict {
            let a = self.pending[qi] as usize;
            qi += 1;
            self.applied[a] = true;
            match self.value[a] {
                Val::True => {
                    for i in 0..self.pos_occ[a].len() {
                        let r = self.pos_occ[a][i] as usize;
                        self.unsat_pos[r] -= 1;
                        if self.fireable(r) {
                            self.enqueue(self.comp.rules[r].head, Val::True);
                        }
                    }
                    for i in 0..self.neg_occ[a].len() {
                        let r = self.neg_occ[a][i] as usize;
                        self.neg_true[r] += 1;
                        self.block(r);
                    }
                }
                Val::False => {
                    for i in 0..self.pos_occ[a].len() {
                        let r = self.pos_occ[a][i] as usize;
                        self.block(r);
                    }
                    for i in 0..self.neg_occ[a].len() {
                        let r = self.neg_occ[a][i] as usize;
                        self.unfalse_neg[r] -= 1;
                        if self.fireable(r) {
                            self.enqueue(self.comp.rules[r].head, Val::True);
                        }
                    }
                }
                Val::Unknown => unreachable!("pending atoms are assigned"),
            }
        }
        let ok = !self.conflict;
        self.pending.clear();
        ok
    }

    fn block(&mut self, r: usize) {
        self.blocked[r] += 1;
        if self.blocked[r] == 1 {
            let head = self.comp.rules[r].head as usize;
            self.support[head] -= 1;
            if self.support[head] == 0 {
                self.enqueue(head as u32, Val::False);
            }
        }
    }

    fn unblock(&mut self, r: usize) {
        self.blocked[r] -= 1;
        if self.blocked[r] == 0 {
            self.support[self.comp.rules[r].head as usize] += 1;
        }
    }

    /// Decide `atom = val` and propagate. Returns `false` on conflict.
    fn decide(&mut self, atom: u32, val: Val) -> bool {
        self.conflict = false;
        self.pending.clear();
        self.enqueue(atom, val);
        self.run_queue()
    }

    /// Undo every assignment made after `mark`, reversing applied effects.
    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let a = self.trail.pop().expect("trail is non-empty") as usize;
            if self.applied[a] {
                self.applied[a] = false;
                match self.value[a] {
                    Val::True => {
                        for i in 0..self.pos_occ[a].len() {
                            let r = self.pos_occ[a][i] as usize;
                            self.unsat_pos[r] += 1;
                        }
                        for i in 0..self.neg_occ[a].len() {
                            let r = self.neg_occ[a][i] as usize;
                            self.neg_true[r] -= 1;
                            self.unblock(r);
                        }
                    }
                    Val::False => {
                        for i in 0..self.pos_occ[a].len() {
                            let r = self.pos_occ[a][i] as usize;
                            self.unblock(r);
                        }
                        for i in 0..self.neg_occ[a].len() {
                            let r = self.neg_occ[a][i] as usize;
                            self.unfalse_neg[r] += 1;
                        }
                    }
                    Val::Unknown => unreachable!("trail atoms are assigned"),
                }
            }
            self.value[a] = Val::Unknown;
        }
    }

    /// Branch on the remaining unassigned negative-signature atoms. Returns
    /// `false` as soon as `cap` models have been collected (or the cancel
    /// token fires — distinguished by the `interrupted` flag).
    fn search(&mut self, mut bi: usize, cap: usize, cancel: &CancelToken) -> bool {
        if cancel.is_cancelled() {
            self.interrupted = true;
            return false;
        }
        while bi < self.comp.branch.len()
            && self.value[self.comp.branch[bi] as usize] != Val::Unknown
        {
            bi += 1;
        }
        if bi == self.comp.branch.len() {
            return self.leaf(cap);
        }
        let atom = self.comp.branch[bi];
        // False first, matching the naive enumerator's small-models-first
        // exploration (the final order is canonicalised anyway).
        for val in [Val::False, Val::True] {
            let mark = self.trail.len();
            let ok = self.decide(atom, val);
            if ok && !self.search(bi + 1, cap, cancel) {
                self.undo_to(mark);
                return false;
            }
            self.undo_to(mark);
        }
        true
    }

    /// All negative-signature atoms are assigned: the reduct is fully
    /// determined (`neg_true == 0` rules, negative bodies deleted). Compute
    /// its least model over the local indexes and keep it if it reproduces
    /// the branch assignment — then it is a stable model by construction.
    fn leaf(&mut self, cap: usize) -> bool {
        self.in_model.iter_mut().for_each(|b| *b = false);
        self.lm_stack.clear();
        for (r, rule) in self.comp.rules.iter().enumerate() {
            if self.neg_true[r] > 0 {
                self.lm_counts[r] = u32::MAX; // not in the reduct
            } else {
                self.lm_counts[r] = rule.pos.len() as u32;
                if rule.pos.is_empty() && !self.in_model[rule.head as usize] {
                    self.in_model[rule.head as usize] = true;
                    self.lm_stack.push(rule.head);
                }
            }
        }
        while let Some(a) = self.lm_stack.pop() {
            for i in 0..self.pos_occ[a as usize].len() {
                let r = self.pos_occ[a as usize][i] as usize;
                if self.lm_counts[r] == u32::MAX {
                    continue;
                }
                self.lm_counts[r] -= 1;
                if self.lm_counts[r] == 0 {
                    let head = self.comp.rules[r].head;
                    if !self.in_model[head as usize] {
                        self.in_model[head as usize] = true;
                        self.lm_stack.push(head);
                    }
                }
            }
        }
        // The candidate must agree with the branch assignment on the whole
        // negative signature, otherwise the reduct we used was not the
        // candidate's own reduct.
        for &b in &self.comp.branch {
            if self.in_model[b as usize] != (self.value[b as usize] == Val::True) {
                return true;
            }
        }
        let model: Vec<u32> = (0..self.comp.atoms.len() as u32)
            .filter(|&a| self.in_model[a as usize])
            .collect();
        self.models.push(model);
        self.models.len() < cap
    }
}

/// Plain union-find with path halving; union by attaching the larger root to
/// the smaller keeps representatives deterministic (always the minimum).
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut a: usize) -> usize {
        while self.parent[a] != a {
            self.parent[a] = self.parent[self.parent[a]];
            a = self.parent[a];
        }
        a
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra < rb {
            self.parent[rb] = ra;
        } else if rb < ra {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::GroundRule;
    use crate::naive_stable::naive_stable_models;
    use gdlog_data::Const;

    fn atom(name: &str) -> GroundAtom {
        GroundAtom::make(name, vec![])
    }

    fn atom1(name: &str, arg: i64) -> GroundAtom {
        GroundAtom::make(name, vec![Const::Int(arg)])
    }

    fn models(p: &GroundProgram) -> Vec<Database> {
        let ms = stable_models(p, &StableModelLimits::default()).unwrap();
        // Every path through the new enumerator is cross-checked against the
        // retained naive oracle.
        assert_eq!(
            ms,
            naive_stable_models(p, &StableModelLimits::default()).unwrap(),
            "component search diverged from the naive oracle"
        );
        ms
    }

    #[test]
    fn positive_program_has_its_least_model_as_unique_stable_model() {
        let p = GroundProgram::from_rules(vec![
            GroundRule::fact(atom("A")),
            GroundRule::new(atom("B"), vec![atom("A")], vec![]),
        ]);
        let ms = models(&p);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0], least_model(&p));
        assert!(is_stable_model(&p, &ms[0]));
    }

    #[test]
    fn even_loop_has_two_stable_models() {
        let p = GroundProgram::from_rules(vec![
            GroundRule::new(atom("a"), vec![], vec![atom("b")]),
            GroundRule::new(atom("b"), vec![], vec![atom("a")]),
        ]);
        let ms = models(&p);
        assert_eq!(ms.len(), 2);
        assert!(ms.contains(&Database::from_atoms(vec![atom("a")])));
        assert!(ms.contains(&Database::from_atoms(vec![atom("b")])));
        assert!(!is_stable_model(&p, &Database::new()));
        assert!(!is_stable_model(
            &p,
            &Database::from_atoms(vec![atom("a"), atom("b")])
        ));
    }

    #[test]
    fn odd_loop_has_no_stable_model() {
        let p =
            GroundProgram::from_rules(vec![GroundRule::new(atom("a"), vec![], vec![atom("a")])]);
        assert!(models(&p).is_empty());
    }

    #[test]
    fn constraint_encoding_via_fail_aux() {
        // The paper's ⊥ encoding: Fail, ¬Aux → Aux kills every model with
        // Fail. Program: Fail ← ¬G.  G ← ¬F.  F ← ¬G.  plus the constraint.
        let p = GroundProgram::from_rules(vec![
            GroundRule::new(atom("Fail"), vec![], vec![atom("G")]),
            GroundRule::new(atom("G"), vec![], vec![atom("F")]),
            GroundRule::new(atom("F"), vec![], vec![atom("G")]),
            GroundRule::new(atom("Aux"), vec![atom("Fail")], vec![atom("Aux")]),
        ]);
        let ms = models(&p);
        // Without the constraint there would be two stable models ({G} and
        // {F, Fail}); the constraint eliminates the one containing Fail.
        assert_eq!(ms.len(), 1);
        assert!(ms[0].contains(&atom("G")));
        assert!(!ms[0].contains(&atom("Fail")));
    }

    #[test]
    fn coin_program_stable_models_match_paper() {
        // Π_coin for the configuration Coin(1): two stable models
        // {Coin(1), Aux1} and {Coin(1), Aux2} (§3 of the paper).
        let p = GroundProgram::from_rules(vec![
            GroundRule::fact(atom1("Coin", 1)),
            GroundRule::new(atom("Aux2"), vec![atom1("Coin", 1)], vec![atom("Aux1")]),
            GroundRule::new(atom("Aux1"), vec![atom1("Coin", 1)], vec![atom("Aux2")]),
        ]);
        let ms = models(&p);
        assert_eq!(ms.len(), 2);
        assert!(ms.contains(&Database::from_atoms(vec![atom1("Coin", 1), atom("Aux1")])));
        assert!(ms.contains(&Database::from_atoms(vec![atom1("Coin", 1), atom("Aux2")])));

        // For the configuration Coin(0) with the constraint Coin(0) → ⊥
        // (encoded via Fail/Aux) there is no stable model.
        let p0 = GroundProgram::from_rules(vec![
            GroundRule::fact(atom1("Coin", 0)),
            GroundRule::new(atom("Fail"), vec![atom1("Coin", 0)], vec![]),
            GroundRule::new(atom("Aux"), vec![atom("Fail")], vec![atom("Aux")]),
            GroundRule::new(atom("Aux2"), vec![atom1("Coin", 1)], vec![atom("Aux1")]),
            GroundRule::new(atom("Aux1"), vec![atom1("Coin", 1)], vec![atom("Aux2")]),
        ]);
        assert!(models(&p0).is_empty());
    }

    #[test]
    fn stable_models_are_minimal_models() {
        // Every stable model is a minimal (classical) model of the program.
        let p = GroundProgram::from_rules(vec![
            GroundRule::new(atom("a"), vec![], vec![atom("b")]),
            GroundRule::new(atom("b"), vec![], vec![atom("a")]),
            GroundRule::new(atom("c"), vec![atom("a")], vec![]),
        ]);
        for m in models(&p) {
            assert!(p.is_model(&m));
            for a in m.iter() {
                let smaller = Database::from_atoms(m.iter().filter(|x| *x != a).cloned());
                assert!(
                    !p.is_model(&smaller) || !is_stable_model(&p, &smaller),
                    "proper subset is also a model and stable"
                );
            }
        }
    }

    #[test]
    fn three_independent_choices_give_eight_models() {
        let mut p = GroundProgram::new();
        for i in 1..=3 {
            p.push(GroundRule::new(
                atom1("In", i),
                vec![],
                vec![atom1("Out", i)],
            ));
            p.push(GroundRule::new(
                atom1("Out", i),
                vec![],
                vec![atom1("In", i)],
            ));
        }
        let ms = models(&p);
        assert_eq!(ms.len(), 8);
        // All models are distinct and each picks exactly one of In(i)/Out(i).
        for m in &ms {
            for i in 1..=3 {
                assert!(m.contains(&atom1("In", i)) ^ m.contains(&atom1("Out", i)));
            }
        }
    }

    #[test]
    fn limits_are_enforced() {
        // One big negative cycle X(0) ← ¬X(1) ← … ← ¬X(0): a single
        // component with six branching atoms.
        let mut chained = GroundProgram::new();
        for i in 0..6 {
            chained.push(GroundRule::new(
                atom1("X", i),
                vec![],
                vec![atom1("X", (i + 1) % 6)],
            ));
        }
        let tight = StableModelLimits {
            max_branch_atoms: 4,
            max_models: 100,
        };
        assert!(matches!(
            stable_models(&chained, &tight),
            Err(StableError::TooManyBranchAtoms { found: 6, limit: 4 })
        ));

        // Six independent even loops: 64 stable models exceed a model cap of
        // ten even though every component is tiny.
        let mut p = GroundProgram::new();
        for i in 0..6 {
            p.push(GroundRule::new(
                atom1("In", i),
                vec![],
                vec![atom1("Out", i)],
            ));
            p.push(GroundRule::new(
                atom1("Out", i),
                vec![],
                vec![atom1("In", i)],
            ));
        }
        let tight_models = StableModelLimits {
            max_branch_atoms: 64,
            max_models: 10,
        };
        assert!(matches!(
            stable_models(&p, &tight_models),
            Err(StableError::TooManyModels { limit: 10 })
        ));
    }

    #[test]
    fn component_split_beats_the_naive_branch_limit() {
        // Thirty independent even loops: 60 branching atoms in total, but
        // two per component — far past the naive enumerator's global limit,
        // yet trivial for the split search under a tight model cap check.
        let mut p = GroundProgram::new();
        for i in 0..30 {
            p.push(GroundRule::new(
                atom1("In", i),
                vec![],
                vec![atom1("Out", i)],
            ));
            p.push(GroundRule::new(
                atom1("Out", i),
                vec![],
                vec![atom1("In", i)],
            ));
        }
        let limits = StableModelLimits {
            max_branch_atoms: 4,
            max_models: 100,
        };
        // 2^30 models overflow max_models — reported as such, not as a
        // branching failure, and without enumerating 2^30 leaves.
        assert!(matches!(
            stable_models(&p, &limits),
            Err(StableError::TooManyModels { limit: 100 })
        ));
        assert!(matches!(
            naive_stable_models(&p, &limits),
            Err(StableError::TooManyBranchAtoms { .. })
        ));

        // With an odd loop welded onto one of the components the whole
        // program collapses to zero models — detected without enumerating
        // the other components' cross product.
        p.push(GroundRule::new(
            atom1("Boom", 0),
            vec![atom1("In", 0)],
            vec![atom1("Boom", 0)],
        ));
        p.push(GroundRule::new(
            atom1("Boom", 0),
            vec![atom1("Out", 0)],
            vec![atom1("Boom", 0)],
        ));
        assert_eq!(stable_models(&p, &limits).unwrap(), Vec::<Database>::new());
    }

    #[test]
    fn cross_component_programs_match_oracle() {
        // Two components with asymmetric model counts (2 × 1), linked only
        // through WFM-decided atoms which must not merge them.
        let p = GroundProgram::from_rules(vec![
            GroundRule::fact(atom("Seed")),
            GroundRule::new(atom("a"), vec![atom("Seed")], vec![atom("b")]),
            GroundRule::new(atom("b"), vec![atom("Seed")], vec![atom("a")]),
            GroundRule::new(atom("G"), vec![atom("Seed")], vec![atom("F")]),
            GroundRule::new(atom("F"), vec![], vec![atom("G")]),
            GroundRule::new(atom("Fail"), vec![atom("F"), atom("Seed")], vec![]),
            GroundRule::new(atom("Aux"), vec![atom("Fail")], vec![atom("Aux")]),
        ]);
        let ms = models(&p);
        // a/b is a free even loop; the F/G loop is constrained to G.
        assert_eq!(ms.len(), 2);
        for m in &ms {
            assert!(m.contains(&atom("G")));
            assert!(!m.contains(&atom("Fail")));
        }
    }

    #[test]
    fn error_display() {
        let e = StableError::TooManyBranchAtoms {
            found: 40,
            limit: 26,
        };
        assert!(e.to_string().contains("40"));
        let e = StableError::TooManyModels { limit: 5 };
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn stable_model_check_rejects_non_models() {
        let p = GroundProgram::from_rules(vec![GroundRule::fact(atom("A"))]);
        assert!(!is_stable_model(&p, &Database::new()));
        assert!(is_stable_model(&p, &Database::from_atoms(vec![atom("A")])));
        assert!(!is_stable_model(
            &p,
            &Database::from_atoms(vec![atom("A"), atom("B")])
        ));
    }

    #[test]
    fn duplicate_and_contradictory_body_literals() {
        // Duplicate literals must not double-count in the propagation
        // counters; `a ∧ ¬a` bodies can never fire.
        let p = GroundProgram::from_rules(vec![
            GroundRule::new(atom("a"), vec![], vec![atom("b"), atom("b")]),
            GroundRule::new(atom("b"), vec![], vec![atom("a"), atom("a")]),
            GroundRule::new(atom("c"), vec![atom("a"), atom("a")], vec![atom("a")]),
        ]);
        let ms = models(&p);
        assert_eq!(ms.len(), 2);
        for m in &ms {
            assert!(!m.contains(&atom("c")));
        }
    }
}

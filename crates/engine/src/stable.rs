//! Stable model checking and enumeration.
//!
//! An interpretation `I` is a stable model of a ground program Σ iff `I` is
//! the least model of the Gelfond–Lifschitz reduct `Σ^I` — the ground special
//! case of the second-order sentence `SM[Σ]` recalled in Section 2 of the
//! paper. `sms(Σ)` is the set of all stable models.
//!
//! Enumeration proceeds by:
//!
//! 1. computing the well-founded model (atoms decided there have the same
//!    value in every stable model and need not be branched on),
//! 2. branching on the *negative signature*: the undecided atoms that occur
//!    in some negative body literal — the reduct, and hence the candidate
//!    stable model, is a function of exactly those atoms' truth values,
//! 3. for every assignment, computing the least model of the corresponding
//!    reduct and keeping it if it is a stable model consistent with the
//!    assignment and the well-founded core.
//!
//! The search is exact; [`StableModelLimits`] only guards against pathological
//! inputs (it returns an error instead of silently truncating).

use crate::ground::GroundProgram;
use crate::least_model::least_model;
use crate::reduct::reduct;
use crate::wellfounded::{well_founded, WellFounded};
use gdlog_data::{Database, GroundAtom};
use std::collections::BTreeSet;
use std::fmt;

/// Guard rails for the stable-model search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StableModelLimits {
    /// Maximum number of branching atoms (atoms occurring in negative body
    /// literals and undecided by the well-founded model). The search space is
    /// `2^branching`, so this effectively bounds the worst-case work.
    pub max_branch_atoms: usize,
    /// Maximum number of stable models to return.
    pub max_models: usize,
}

impl Default for StableModelLimits {
    fn default() -> Self {
        StableModelLimits {
            max_branch_atoms: 26,
            max_models: 100_000,
        }
    }
}

/// Errors raised by the stable-model enumerator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StableError {
    /// The program has more undecided negatively-occurring atoms than
    /// [`StableModelLimits::max_branch_atoms`].
    TooManyBranchAtoms {
        /// Number of branching atoms found.
        found: usize,
        /// The configured limit.
        limit: usize,
    },
    /// More than [`StableModelLimits::max_models`] stable models exist.
    TooManyModels {
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for StableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StableError::TooManyBranchAtoms { found, limit } => write!(
                f,
                "stable-model search would branch on {found} atoms (limit {limit})"
            ),
            StableError::TooManyModels { limit } => {
                write!(f, "program has more than {limit} stable models")
            }
        }
    }
}

impl std::error::Error for StableError {}

/// Is `interpretation` a stable model of `program`?
pub fn is_stable_model(program: &GroundProgram, interpretation: &Database) -> bool {
    least_model(&reduct(program, interpretation)) == *interpretation
}

/// Enumerate all stable models of `program`.
///
/// The result is returned in a canonical (sorted) order so that callers can
/// compare sets of stable models structurally.
pub fn stable_models(
    program: &GroundProgram,
    limits: &StableModelLimits,
) -> Result<Vec<Database>, StableError> {
    let wf = well_founded(program);

    // Fast path: a total well-founded model is the unique stable model
    // (provided it actually is one — odd loops can make it non-stable, but a
    // total WFM is always stable).
    if wf.is_total() {
        return Ok(vec![wf.true_atoms.clone()]);
    }

    let branch_atoms = branching_atoms(program, &wf);
    if branch_atoms.len() > limits.max_branch_atoms {
        return Err(StableError::TooManyBranchAtoms {
            found: branch_atoms.len(),
            limit: limits.max_branch_atoms,
        });
    }

    let mut found: BTreeSet<Vec<GroundAtom>> = BTreeSet::new();
    let mut assumed_true = Database::new();
    search(
        program,
        &wf,
        &branch_atoms,
        0,
        &mut assumed_true,
        &mut found,
        limits,
    )?;

    Ok(found.into_iter().map(Database::from_atoms).collect())
}

/// The atoms the search must branch on: undecided atoms that occur in a
/// negative body literal of some rule.
fn branching_atoms(program: &GroundProgram, wf: &WellFounded) -> Vec<GroundAtom> {
    let mut set: BTreeSet<GroundAtom> = BTreeSet::new();
    for rule in program.iter() {
        for a in &rule.neg {
            if wf.unknown_atoms.contains(a) {
                set.insert(a.clone());
            }
        }
    }
    set.into_iter().collect()
}

fn search(
    program: &GroundProgram,
    wf: &WellFounded,
    branch: &[GroundAtom],
    idx: usize,
    assumed_true: &mut Database,
    found: &mut BTreeSet<Vec<GroundAtom>>,
    limits: &StableModelLimits,
) -> Result<(), StableError> {
    if idx == branch.len() {
        // The reduct only depends on the truth of negatively-occurring atoms.
        // Atoms decided true by the WFM are in every stable model; assumed
        // atoms complete the negative signature.
        let mut guess = wf.true_atoms.union(assumed_true);
        // Branch atoms not assumed true are assumed false — they are simply
        // absent from `guess`.
        let candidate = least_model(&reduct(program, &guess));
        // The candidate must agree with the guess on the negative signature,
        // otherwise the reduct we used was not the candidate's own reduct.
        for a in branch {
            let guessed = assumed_true.contains(a);
            if candidate.contains(a) != guessed {
                return Ok(());
            }
        }
        guess = candidate;
        if is_stable_model(program, &guess) {
            if found.len() >= limits.max_models {
                return Err(StableError::TooManyModels {
                    limit: limits.max_models,
                });
            }
            found.insert(guess.canonical_atoms());
        }
        return Ok(());
    }

    // Branch: atom false first (keeps models small/minimal-ish early).
    search(program, wf, branch, idx + 1, assumed_true, found, limits)?;
    assumed_true.insert(branch[idx].clone());
    search(program, wf, branch, idx + 1, assumed_true, found, limits)?;
    // Backtrack: rebuild without the atom (Database has no remove; cheap for
    // the sizes involved).
    let without: Database =
        Database::from_atoms(assumed_true.iter().filter(|a| **a != branch[idx]).cloned());
    *assumed_true = without;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::GroundRule;
    use gdlog_data::Const;

    fn atom(name: &str) -> GroundAtom {
        GroundAtom::make(name, vec![])
    }

    fn atom1(name: &str, arg: i64) -> GroundAtom {
        GroundAtom::make(name, vec![Const::Int(arg)])
    }

    fn models(p: &GroundProgram) -> Vec<Database> {
        stable_models(p, &StableModelLimits::default()).unwrap()
    }

    #[test]
    fn positive_program_has_its_least_model_as_unique_stable_model() {
        let p = GroundProgram::from_rules(vec![
            GroundRule::fact(atom("A")),
            GroundRule::new(atom("B"), vec![atom("A")], vec![]),
        ]);
        let ms = models(&p);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0], least_model(&p));
        assert!(is_stable_model(&p, &ms[0]));
    }

    #[test]
    fn even_loop_has_two_stable_models() {
        let p = GroundProgram::from_rules(vec![
            GroundRule::new(atom("a"), vec![], vec![atom("b")]),
            GroundRule::new(atom("b"), vec![], vec![atom("a")]),
        ]);
        let ms = models(&p);
        assert_eq!(ms.len(), 2);
        assert!(ms.contains(&Database::from_atoms(vec![atom("a")])));
        assert!(ms.contains(&Database::from_atoms(vec![atom("b")])));
        assert!(!is_stable_model(&p, &Database::new()));
        assert!(!is_stable_model(
            &p,
            &Database::from_atoms(vec![atom("a"), atom("b")])
        ));
    }

    #[test]
    fn odd_loop_has_no_stable_model() {
        let p =
            GroundProgram::from_rules(vec![GroundRule::new(atom("a"), vec![], vec![atom("a")])]);
        assert!(models(&p).is_empty());
    }

    #[test]
    fn constraint_encoding_via_fail_aux() {
        // The paper's ⊥ encoding: Fail, ¬Aux → Aux kills every model with
        // Fail. Program: Fail ← ¬G.  G ← ¬F.  F ← ¬G.  plus the constraint.
        let p = GroundProgram::from_rules(vec![
            GroundRule::new(atom("Fail"), vec![], vec![atom("G")]),
            GroundRule::new(atom("G"), vec![], vec![atom("F")]),
            GroundRule::new(atom("F"), vec![], vec![atom("G")]),
            GroundRule::new(atom("Aux"), vec![atom("Fail")], vec![atom("Aux")]),
        ]);
        let ms = models(&p);
        // Without the constraint there would be two stable models ({G} and
        // {F, Fail}); the constraint eliminates the one containing Fail.
        assert_eq!(ms.len(), 1);
        assert!(ms[0].contains(&atom("G")));
        assert!(!ms[0].contains(&atom("Fail")));
    }

    #[test]
    fn coin_program_stable_models_match_paper() {
        // Π_coin for the configuration Coin(1): two stable models
        // {Coin(1), Aux1} and {Coin(1), Aux2} (§3 of the paper).
        let p = GroundProgram::from_rules(vec![
            GroundRule::fact(atom1("Coin", 1)),
            GroundRule::new(atom("Aux2"), vec![atom1("Coin", 1)], vec![atom("Aux1")]),
            GroundRule::new(atom("Aux1"), vec![atom1("Coin", 1)], vec![atom("Aux2")]),
        ]);
        let ms = models(&p);
        assert_eq!(ms.len(), 2);
        assert!(ms.contains(&Database::from_atoms(vec![atom1("Coin", 1), atom("Aux1")])));
        assert!(ms.contains(&Database::from_atoms(vec![atom1("Coin", 1), atom("Aux2")])));

        // For the configuration Coin(0) with the constraint Coin(0) → ⊥
        // (encoded via Fail/Aux) there is no stable model.
        let p0 = GroundProgram::from_rules(vec![
            GroundRule::fact(atom1("Coin", 0)),
            GroundRule::new(atom("Fail"), vec![atom1("Coin", 0)], vec![]),
            GroundRule::new(atom("Aux"), vec![atom("Fail")], vec![atom("Aux")]),
            GroundRule::new(atom("Aux2"), vec![atom1("Coin", 1)], vec![atom("Aux1")]),
            GroundRule::new(atom("Aux1"), vec![atom1("Coin", 1)], vec![atom("Aux2")]),
        ]);
        assert!(models(&p0).is_empty());
    }

    #[test]
    fn stable_models_are_minimal_models() {
        // Every stable model is a minimal (classical) model of the program.
        let p = GroundProgram::from_rules(vec![
            GroundRule::new(atom("a"), vec![], vec![atom("b")]),
            GroundRule::new(atom("b"), vec![], vec![atom("a")]),
            GroundRule::new(atom("c"), vec![atom("a")], vec![]),
        ]);
        for m in models(&p) {
            assert!(p.is_model(&m));
            for a in m.iter() {
                let smaller = Database::from_atoms(m.iter().filter(|x| *x != a).cloned());
                assert!(
                    !p.is_model(&smaller) || !is_stable_model(&p, &smaller),
                    "proper subset is also a model and stable"
                );
            }
        }
    }

    #[test]
    fn three_independent_choices_give_eight_models() {
        let mut p = GroundProgram::new();
        for i in 1..=3 {
            p.push(GroundRule::new(
                atom1("In", i),
                vec![],
                vec![atom1("Out", i)],
            ));
            p.push(GroundRule::new(
                atom1("Out", i),
                vec![],
                vec![atom1("In", i)],
            ));
        }
        let ms = models(&p);
        assert_eq!(ms.len(), 8);
        // All models are distinct and each picks exactly one of In(i)/Out(i).
        for m in &ms {
            for i in 1..=3 {
                assert!(m.contains(&atom1("In", i)) ^ m.contains(&atom1("Out", i)));
            }
        }
    }

    #[test]
    fn limits_are_enforced() {
        let mut p = GroundProgram::new();
        for i in 0..6 {
            p.push(GroundRule::new(
                atom1("In", i),
                vec![],
                vec![atom1("Out", i)],
            ));
            p.push(GroundRule::new(
                atom1("Out", i),
                vec![],
                vec![atom1("In", i)],
            ));
        }
        let tight = StableModelLimits {
            max_branch_atoms: 4,
            max_models: 100,
        };
        assert!(matches!(
            stable_models(&p, &tight),
            Err(StableError::TooManyBranchAtoms { .. })
        ));
        let tight_models = StableModelLimits {
            max_branch_atoms: 64,
            max_models: 10,
        };
        assert!(matches!(
            stable_models(&p, &tight_models),
            Err(StableError::TooManyModels { .. })
        ));
    }

    #[test]
    fn error_display() {
        let e = StableError::TooManyBranchAtoms {
            found: 40,
            limit: 26,
        };
        assert!(e.to_string().contains("40"));
        let e = StableError::TooManyModels { limit: 5 };
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn stable_model_check_rejects_non_models() {
        let p = GroundProgram::from_rules(vec![GroundRule::fact(atom("A"))]);
        assert!(!is_stable_model(&p, &Database::new()));
        assert!(is_stable_model(&p, &Database::from_atoms(vec![atom("A")])));
        assert!(!is_stable_model(
            &p,
            &Database::from_atoms(vec![atom("A"), atom("B")])
        ));
    }
}

//! The well-founded model via the alternating fixpoint.
//!
//! The well-founded model is a three-valued approximation of the stable
//! models: atoms true in it belong to *every* stable model, atoms false in it
//! belong to *none*. The stable-model enumerator of [`crate::stable`] uses it
//! to prune its search: only atoms left *unknown* need to be branched on.
//!
//! The construction is Van Gelder's alternating fixpoint: with
//! `Γ(I) = least_model(reduct(Σ, I))` (antimonotone), the sequence
//! `T₀ = ∅, U₀ = Γ(T₀), T_{i+1} = Γ(U_i), U_{i+1} = Γ(T_{i+1})` converges to
//! the well-founded model: `T` holds the true atoms and the complement of `U`
//! the false ones.

use crate::ground::GroundProgram;
use crate::least_model::least_model;
use crate::reduct::reduct;
use gdlog_data::Database;

/// The three-valued well-founded model of a ground program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WellFounded {
    /// Atoms true in the well-founded model (true in every stable model).
    pub true_atoms: Database,
    /// Atoms false in the well-founded model, restricted to the atoms
    /// mentioned by the program (false in every stable model).
    pub false_atoms: Database,
    /// Atoms whose truth value is left undefined.
    pub unknown_atoms: Database,
}

impl WellFounded {
    /// Is the model total (no unknown atoms)? A total well-founded model is
    /// the unique stable model of the program.
    pub fn is_total(&self) -> bool {
        self.unknown_atoms.is_empty()
    }
}

/// Compute the well-founded model of `program`.
pub fn well_founded(program: &GroundProgram) -> WellFounded {
    let gamma = |i: &Database| least_model(&reduct(program, i));

    let mut t = Database::new();
    let mut u = gamma(&t);
    loop {
        let t_next = gamma(&u);
        let u_next = gamma(&t_next);
        if t_next == t && u_next == u {
            break;
        }
        t = t_next;
        u = u_next;
    }

    let base = program.atoms();
    let false_atoms = Database::from_atoms(base.iter().filter(|a| !u.contains(a)).cloned());
    let unknown_atoms = Database::from_atoms(u.iter().filter(|a| !t.contains(a)).cloned());
    WellFounded {
        true_atoms: t,
        false_atoms,
        unknown_atoms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::GroundRule;
    use gdlog_data::GroundAtom;

    fn atom(name: &str) -> GroundAtom {
        GroundAtom::make(name, vec![])
    }

    #[test]
    fn positive_programs_are_total() {
        let p = GroundProgram::from_rules(vec![
            GroundRule::fact(atom("A")),
            GroundRule::new(atom("B"), vec![atom("A")], vec![]),
            GroundRule::new(atom("C"), vec![atom("D")], vec![]),
        ]);
        let wf = well_founded(&p);
        assert!(wf.is_total());
        assert!(wf.true_atoms.contains(&atom("A")));
        assert!(wf.true_atoms.contains(&atom("B")));
        assert!(wf.false_atoms.contains(&atom("C")));
        assert!(wf.false_atoms.contains(&atom("D")));
    }

    #[test]
    fn stratified_negation_is_total() {
        // B ← ¬A.  A never derivable ⇒ B true.
        let p =
            GroundProgram::from_rules(vec![GroundRule::new(atom("B"), vec![], vec![atom("A")])]);
        let wf = well_founded(&p);
        assert!(wf.is_total());
        assert!(wf.true_atoms.contains(&atom("B")));
        assert!(wf.false_atoms.contains(&atom("A")));
    }

    #[test]
    fn even_loop_is_unknown() {
        // a ← ¬b.  b ← ¬a.  Everything is undefined in the WFM.
        let p = GroundProgram::from_rules(vec![
            GroundRule::new(atom("a"), vec![], vec![atom("b")]),
            GroundRule::new(atom("b"), vec![], vec![atom("a")]),
        ]);
        let wf = well_founded(&p);
        assert!(!wf.is_total());
        assert!(wf.true_atoms.is_empty());
        assert!(wf.false_atoms.is_empty());
        assert_eq!(wf.unknown_atoms.len(), 2);
    }

    #[test]
    fn odd_loop_is_unknown_in_wfm() {
        // a ← ¬a. has no stable model; the WFM leaves a unknown.
        let p =
            GroundProgram::from_rules(vec![GroundRule::new(atom("a"), vec![], vec![atom("a")])]);
        let wf = well_founded(&p);
        assert!(!wf.is_total());
        assert_eq!(wf.unknown_atoms.len(), 1);
    }

    #[test]
    fn mixed_program_decides_what_it_can() {
        // Facts decide part of the program even when an even loop remains.
        let p = GroundProgram::from_rules(vec![
            GroundRule::fact(atom("F")),
            GroundRule::new(atom("G"), vec![atom("F")], vec![atom("H")]),
            GroundRule::new(atom("a"), vec![atom("F")], vec![atom("b")]),
            GroundRule::new(atom("b"), vec![atom("F")], vec![atom("a")]),
        ]);
        let wf = well_founded(&p);
        assert!(wf.true_atoms.contains(&atom("F")));
        assert!(wf.true_atoms.contains(&atom("G")));
        assert!(wf.false_atoms.contains(&atom("H")));
        assert_eq!(wf.unknown_atoms.len(), 2);
    }

    #[test]
    fn wfm_true_atoms_are_in_every_stable_model() {
        use crate::stable::{stable_models, StableModelLimits};
        let p = GroundProgram::from_rules(vec![
            GroundRule::fact(atom("F")),
            GroundRule::new(atom("a"), vec![atom("F")], vec![atom("b")]),
            GroundRule::new(atom("b"), vec![atom("F")], vec![atom("a")]),
            GroundRule::new(atom("C"), vec![atom("a")], vec![]),
            GroundRule::new(atom("C"), vec![atom("b")], vec![]),
        ]);
        let wf = well_founded(&p);
        let models = stable_models(&p, &StableModelLimits::default()).unwrap();
        assert_eq!(models.len(), 2);
        for t in wf.true_atoms.iter() {
            for m in &models {
                assert!(m.contains(t), "{t} missing from {m}");
            }
        }
        for f in wf.false_atoms.iter() {
            for m in &models {
                assert!(!m.contains(f));
            }
        }
        // C follows in both stable models but is unknown in the WFM? No: C is
        // derivable from a or b, both unknown, so C is unknown too. It is
        // nevertheless in every stable model, showing WFM is an
        // under-approximation.
        assert!(wf.unknown_atoms.contains(&atom("C")));
    }
}

//! Cooperative cancellation for long-running solves.
//!
//! The chase is not guaranteed to terminate (weak acyclicity is a *lint*,
//! not a precondition), and even terminating solves can outlive a caller's
//! patience. A [`CancelToken`] is a shared flag that every long-running loop
//! in the stack — chase node expansion, grounding saturation rounds,
//! stable-model branch-and-prune steps, factor saturation, Monte-Carlo walk
//! boundaries — polls between units of work. Cancellation is *cooperative*:
//! setting the flag never tears anything down, it only asks the next
//! checkpoint to stop, so every data structure a cancelled solve leaves
//! behind is in a consistent (if incomplete) state and the layers above can
//! degrade gracefully.
//!
//! The token lives in `gdlog-engine` — the lowest crate that runs unbounded
//! searches — so `gdlog-core` and `gdlog-server` can thread one shared flag
//! through every layer without a dependency cycle.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A shared, cloneable cancellation flag.
///
/// Clones share the same underlying flag: cancelling any clone cancels them
/// all. The default token is never cancelled unless someone calls
/// [`CancelToken::cancel`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that is never cancelled by anyone — the identity element for
    /// APIs that take a token unconditionally.
    pub fn never() -> Self {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; takes effect at the next checkpoint
    /// of every loop polling this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    ///
    /// This is the checkpoint primitive: a relaxed-ish acquire load of one
    /// shared `AtomicBool`, cheap enough to call once per chase node, per
    /// saturation round, per branch decision, per Monte-Carlo walk.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Arm a deadline: cancel this token after `timeout` unless the returned
    /// guard is dropped first. Dropping the guard *disarms* the deadline
    /// (and reaps the timer thread), so the usual shape is
    ///
    /// ```ignore
    /// let _deadline = token.cancel_after(Duration::from_millis(budget_ms));
    /// run_the_solve(&token)?; // guard drops here; a finished solve is never cancelled late
    /// ```
    pub fn cancel_after(&self, timeout: Duration) -> DeadlineGuard {
        let token = self.clone();
        let disarm = Arc::new((Mutex::new(false), Condvar::new()));
        let disarm2 = Arc::clone(&disarm);
        let handle = std::thread::Builder::new()
            .name("gdlog-deadline".into())
            .spawn(move || {
                let (lock, cvar) = &*disarm2;
                let mut disarmed = lock.lock().expect("deadline mutex poisoned");
                let mut remaining = timeout;
                loop {
                    if *disarmed {
                        return;
                    }
                    let start = std::time::Instant::now();
                    let (guard, result) = cvar
                        .wait_timeout(disarmed, remaining)
                        .expect("deadline mutex poisoned");
                    disarmed = guard;
                    if result.timed_out() {
                        token.cancel();
                        return;
                    }
                    // Spurious wakeup (or disarm, handled at loop top).
                    remaining = remaining.saturating_sub(start.elapsed());
                }
            })
            .expect("spawning the deadline timer thread failed");
        DeadlineGuard {
            disarm,
            handle: Some(handle),
        }
    }
}

/// Disarms a [`CancelToken::cancel_after`] deadline when dropped.
#[derive(Debug)]
pub struct DeadlineGuard {
    disarm: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.disarm;
        *lock.lock().expect("deadline mutex poisoned") = true;
        cvar.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tokens_are_uncancelled_and_cancel_is_shared() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        assert!(clone.is_cancelled());
        // Idempotent.
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn never_token_is_independent() {
        let a = CancelToken::never();
        let b = CancelToken::never();
        a.cancel();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn deadline_fires_after_timeout() {
        let t = CancelToken::new();
        let _guard = t.cancel_after(Duration::from_millis(10));
        let start = std::time::Instant::now();
        while !t.is_cancelled() {
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "deadline never fired"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn dropping_the_guard_disarms_the_deadline() {
        let t = CancelToken::new();
        let guard = t.cancel_after(Duration::from_millis(30));
        drop(guard); // well before the deadline
        std::thread::sleep(Duration::from_millis(60));
        assert!(!t.is_cancelled());
    }
}

//! Evaluation of stratified ground programs.
//!
//! A stratified ground program has exactly one stable model (Corollary 1 of
//! Gelfond & Lifschitz, used by Proposition 5.2 of the paper). It can be
//! computed stratum by stratum: within a stratum, negative literals only
//! refer to predicates of strictly lower strata, whose extensions are already
//! fixed, so each stratum reduces to a positive least-model computation.

use crate::depgraph::{DependencyGraph, NotStratified};
use crate::ground::{GroundProgram, GroundRule};
use crate::least_model::least_model;
use gdlog_data::Database;
use std::fmt;

/// Errors raised by the stratified evaluator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StratifiedError {
    /// The program is not stratified.
    NotStratified(NotStratified),
}

impl fmt::Display for StratifiedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StratifiedError::NotStratified(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StratifiedError {}

impl From<NotStratified> for StratifiedError {
    fn from(e: NotStratified) -> Self {
        StratifiedError::NotStratified(e)
    }
}

/// Compute the unique stable model of a stratified ground program.
///
/// Returns an error if the program is not stratified (use
/// [`crate::stable_models`] in that case).
pub fn stratified_model(program: &GroundProgram) -> Result<Database, StratifiedError> {
    let graph = DependencyGraph::from_ground_program(program);
    let stratification = graph.stratify()?;

    let mut model = Database::new();
    for stratum in stratification.strata() {
        // Rules whose head predicate belongs to the current stratum.
        let stratum_rules: Vec<&GroundRule> = program
            .iter()
            .filter(|r| stratum.contains(&r.head.predicate))
            .collect();
        if stratum_rules.is_empty() {
            continue;
        }
        // Negative literals refer to lower strata (or extensional predicates),
        // whose truth is already settled in `model`: drop blocked rules,
        // strip negation from the rest, seed with the current model as facts.
        let mut positive = GroundProgram::from_database(&model);
        for rule in stratum_rules {
            if rule.neg.iter().any(|a| model.contains(a)) {
                continue;
            }
            positive.push(GroundRule::new(
                rule.head.clone(),
                rule.pos.clone(),
                Vec::new(),
            ));
        }
        model = least_model(&positive);
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::{is_stable_model, stable_models, StableModelLimits};
    use gdlog_data::{Const, GroundAtom};

    fn atom(name: &str) -> GroundAtom {
        GroundAtom::make(name, vec![])
    }

    fn atom1(name: &str, arg: i64) -> GroundAtom {
        GroundAtom::make(name, vec![Const::Int(arg)])
    }

    fn atom2(name: &str, a: i64, b: i64) -> GroundAtom {
        GroundAtom::make(name, vec![Const::Int(a), Const::Int(b)])
    }

    #[test]
    fn positive_program_matches_least_model() {
        let p = GroundProgram::from_rules(vec![
            GroundRule::fact(atom("A")),
            GroundRule::new(atom("B"), vec![atom("A")], vec![]),
        ]);
        let m = stratified_model(&p).unwrap();
        assert_eq!(m, crate::least_model::least_model(&p));
    }

    #[test]
    fn two_strata_with_negation() {
        // Reachable/unreachable: U(x) ← V(x), ¬R(x).
        let mut p = GroundProgram::new();
        for i in 1..=3 {
            p.push(GroundRule::fact(atom1("V", i)));
        }
        p.push(GroundRule::fact(atom2("E", 1, 2)));
        p.push(GroundRule::fact(atom1("R", 1)));
        for i in 1..=3 {
            for j in 1..=3 {
                p.push(GroundRule::new(
                    atom1("R", j),
                    vec![atom1("R", i), atom2("E", i, j)],
                    vec![],
                ));
            }
        }
        for i in 1..=3 {
            p.push(GroundRule::new(
                atom1("U", i),
                vec![atom1("V", i)],
                vec![atom1("R", i)],
            ));
        }
        let m = stratified_model(&p).unwrap();
        assert!(m.contains(&atom1("R", 1)));
        assert!(m.contains(&atom1("R", 2)));
        assert!(!m.contains(&atom1("R", 3)));
        assert!(!m.contains(&atom1("U", 1)));
        assert!(!m.contains(&atom1("U", 2)));
        assert!(m.contains(&atom1("U", 3)));
        // Cross-check against the generic solver.
        assert!(is_stable_model(&p, &m));
        let all = stable_models(&p, &StableModelLimits::default()).unwrap();
        assert_eq!(all, vec![m]);
    }

    #[test]
    fn non_stratified_program_is_rejected() {
        let p = GroundProgram::from_rules(vec![
            GroundRule::new(atom("a"), vec![], vec![atom("b")]),
            GroundRule::new(atom("b"), vec![], vec![atom("a")]),
        ]);
        let err = stratified_model(&p).unwrap_err();
        assert!(matches!(err, StratifiedError::NotStratified(_)));
        assert!(err.to_string().contains("not stratified"));
    }

    #[test]
    fn dime_quarter_scenario_from_appendix_e() {
        // Ground instance of the Appendix E example for the configuration
        // "dime 1 tails, dime 2 heads": the quarter is not tossed.
        let p = GroundProgram::from_rules(vec![
            GroundRule::fact(atom1("Dime", 1)),
            GroundRule::fact(atom1("Dime", 2)),
            GroundRule::fact(atom1("Quarter", 3)),
            GroundRule::fact(atom2("DimeTail", 1, 1)),
            GroundRule::fact(atom2("DimeTail", 2, 0)),
            GroundRule::new(atom("SomeDimeTail"), vec![atom2("DimeTail", 1, 1)], vec![]),
            GroundRule::new(atom("SomeDimeTail"), vec![atom2("DimeTail", 2, 1)], vec![]),
            GroundRule::new(
                atom1("TossQuarter", 3),
                vec![atom1("Quarter", 3)],
                vec![atom("SomeDimeTail")],
            ),
        ]);
        let m = stratified_model(&p).unwrap();
        assert!(m.contains(&atom("SomeDimeTail")));
        assert!(!m.contains(&atom1("TossQuarter", 3)));

        // The unique stable model coincides with the generic enumeration.
        let all = stable_models(&p, &StableModelLimits::default()).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0], m);
    }

    #[test]
    fn three_strata_chain() {
        // C ← ¬B. B ← ¬A. A is a fact ⇒ B false, C true.
        let p = GroundProgram::from_rules(vec![
            GroundRule::fact(atom("A")),
            GroundRule::new(atom("B"), vec![], vec![atom("A")]),
            GroundRule::new(atom("C"), vec![], vec![atom("B")]),
        ]);
        let m = stratified_model(&p).unwrap();
        assert!(m.contains(&atom("A")));
        assert!(!m.contains(&atom("B")));
        assert!(m.contains(&atom("C")));
    }

    #[test]
    fn stratified_model_agrees_with_generic_solver_on_random_like_cases() {
        // A handful of handcrafted stratified programs; the unique stable
        // model must match the generic enumerator.
        let programs = vec![
            GroundProgram::from_rules(vec![
                GroundRule::fact(atom1("P", 1)),
                GroundRule::new(atom1("Q", 1), vec![atom1("P", 1)], vec![atom1("R", 1)]),
                GroundRule::new(atom1("S", 1), vec![atom1("Q", 1)], vec![]),
            ]),
            GroundProgram::from_rules(vec![
                GroundRule::new(atom("X"), vec![], vec![atom("Y")]),
                GroundRule::new(atom("Z"), vec![atom("X")], vec![]),
            ]),
        ];
        for p in programs {
            let m = stratified_model(&p).unwrap();
            let all = stable_models(&p, &StableModelLimits::default()).unwrap();
            assert_eq!(all, vec![m]);
        }
    }
}
